//! Property-based tests (proptest) over the whole stack.

use hhc_suite::hhc::{bounds, disjoint, routing, verify, CrossingOrder, Hhc, NodeId};
use hhc_suite::hypercube::{fan, gray, paths as qpaths, Cube};
use proptest::prelude::*;

/// Strategy: a network size and a pair of distinct nodes in it.
fn hhc_pair() -> impl Strategy<Value = (u32, u128, u128)> {
    (1u32..=6).prop_flat_map(|m| {
        let n = (1u32 << m) + m;
        let mask = if n >= 128 {
            u128::MAX
        } else {
            (1u128 << n) - 1
        };
        (Just(m), any::<u128>(), any::<u128>())
            .prop_map(move |(m, a, b)| (m, a & mask, b & mask))
            .prop_filter("distinct", |(_, a, b)| a != b)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The central theorem: for any m and any distinct pair, the
    /// construction yields m+1 paths that verify and respect the bound.
    #[test]
    fn disjoint_paths_always_verify((m, a, b) in hhc_pair()) {
        let h = Hhc::new(m).unwrap();
        let (u, v) = (NodeId::from_raw(a), NodeId::from_raw(b));
        let paths = h.disjoint_paths(u, v).unwrap();
        prop_assert_eq!(paths.len() as u32, h.degree());
        verify::verify_disjoint_paths(&h, u, v, &paths)
            .map_err(TestCaseError::fail)?;
        let bound = bounds::length_bound(&h, u, v);
        for p in &paths {
            prop_assert!((p.len() - 1) as u32 <= bound);
        }
    }

    /// Sorted crossing order is also always correct (ablation safety).
    #[test]
    fn sorted_order_always_verifies((m, a, b) in hhc_pair()) {
        let h = Hhc::new(m).unwrap();
        let (u, v) = (NodeId::from_raw(a), NodeId::from_raw(b));
        let paths = disjoint::disjoint_paths(&h, u, v, CrossingOrder::Sorted).unwrap();
        verify::verify_disjoint_paths(&h, u, v, &paths)
            .map_err(TestCaseError::fail)?;
    }

    /// Routing always produces a valid simple path within its bound.
    #[test]
    fn route_always_valid((m, a, b) in hhc_pair()) {
        let h = Hhc::new(m).unwrap();
        let (u, v) = (NodeId::from_raw(a), NodeId::from_raw(b));
        let p = h.route(u, v).unwrap();
        verify::verify_path(&h, u, v, &p).map_err(TestCaseError::fail)?;
        prop_assert!((p.len() - 1) as u32 <= routing::route_length_bound(&h, u, v));
        prop_assert!((p.len() - 1) as u32 >= h.distance_lower_bound(u, v));
    }

    /// Q_n one-to-one disjoint paths: always n of them, always disjoint,
    /// lengths exactly {k × H, (n−k) × (H+2)}.
    #[test]
    fn qn_disjoint_paths_structure(n in 1u32..=24, a in any::<u128>(), b in any::<u128>()) {
        let cube = Cube::new(n).unwrap();
        let mask = if n >= 128 { u128::MAX } else { (1u128 << n) - 1 };
        let (u, v) = (a & mask, b & mask);
        prop_assume!(u != v);
        let ps = qpaths::disjoint_paths(&cube, u, v).unwrap();
        prop_assert_eq!(ps.len() as u32, n);
        qpaths::check_disjoint(&cube, u, v, &ps).map_err(|e| TestCaseError::fail(proptest::test_runner::Reason::from(e)))?;
        let k = cube.distance(u, v) as usize;
        let mut lens: Vec<usize> = ps.iter().map(|p| p.len() - 1).collect();
        lens.sort_unstable();
        let mut expected = vec![k; k];
        expected.extend(std::iter::repeat_n(k + 2, n as usize - k));
        expected.sort_unstable();
        prop_assert_eq!(lens, expected);
    }

    /// Gray rank is a bijection inverse on every m-bit word.
    #[test]
    fn gray_roundtrip(i in any::<u64>()) {
        prop_assert_eq!(gray::gray_rank(gray::gray(i)), i);
    }

    /// Fans in the largest son-cube always exist and verify for any ≤ m
    /// distinct targets.
    #[test]
    fn fans_always_verify(
        s in 0u128..64,
        raw_targets in proptest::collection::vec(0u128..64, 1..=6),
    ) {
        let cube = Cube::new(6).unwrap();
        let mut targets = raw_targets;
        targets.sort_unstable();
        targets.dedup();
        targets.retain(|&t| t != s);
        prop_assume!(!targets.is_empty());
        let f = fan::fan_paths(&cube, s, &targets).unwrap();
        fan::check_fan(&cube, s, &targets, &f).map_err(|e| TestCaseError::fail(proptest::test_runner::Reason::from(e)))?;
    }

    /// Length bound is monotone in k (more crossings can't lower it) and
    /// always at least the diameter's same-cube floor.
    #[test]
    fn bound_is_sane((m, a, b) in hhc_pair()) {
        let h = Hhc::new(m).unwrap();
        let (u, v) = (NodeId::from_raw(a), NodeId::from_raw(b));
        let bound = bounds::length_bound(&h, u, v);
        prop_assert!(bound >= 1);
        prop_assert!(bound <= bounds::wide_diameter_upper_bound(&h));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// End-to-end: the disjoint paths survive any fault set of size ≤ m
    /// that avoids the endpoints (the fault-tolerance theorem, fuzzed).
    #[test]
    fn fault_tolerance_theorem_fuzzed(
        (m, a, b) in hhc_pair(),
        fault_seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let h = Hhc::new(m).unwrap();
        let (u, v) = (NodeId::from_raw(a), NodeId::from_raw(b));
        let mut rng = rand::rngs::StdRng::seed_from_u64(fault_seed);
        let n = h.n();
        let mask = if n >= 128 { u128::MAX } else { (1u128 << n) - 1 };
        let mut faults = std::collections::HashSet::new();
        while faults.len() < m as usize {
            let x = ((rng.gen::<u64>() as u128) << 64 | rng.gen::<u64>() as u128) & mask;
            let f = NodeId::from_raw(x);
            if f != u && f != v {
                faults.insert(f);
            }
        }
        let paths = h.disjoint_paths(u, v).unwrap();
        let alive = paths
            .iter()
            .filter(|p| !p.iter().any(|x| faults.contains(x)))
            .count();
        prop_assert!(alive >= 1, "m faults cannot block all m+1 disjoint paths");
    }
}
