//! Cross-crate validation: the symbolic construction (hhc-core) against
//! explicit-graph ground truth (graphs) on materialised networks.

use hhc_suite::graphs::{bfs, vertex_disjoint};
use hhc_suite::hhc::{verify, CrossingOrder, Hhc, NodeId};

/// The constructive path count equals the Menger optimum for *every*
/// ordered pair of HHC(2) — i.e. the construction achieves connectivity.
#[test]
fn construction_achieves_menger_optimum_everywhere_m2() {
    let h = Hhc::new(2).unwrap();
    let g = h.materialize().unwrap();
    for u in h.iter_nodes() {
        for v in h.iter_nodes() {
            if u == v {
                continue;
            }
            let built = h.disjoint_paths(u, v).unwrap();
            let flow =
                vertex_disjoint::vertex_connectivity_between(&g, u.raw() as u32, v.raw() as u32);
            assert_eq!(built.len() as u32, flow, "pair {u:?} {v:?}");
        }
    }
}

/// Constructive paths, re-expressed as explicit-graph paths, satisfy the
/// *graph library's* independent disjointness checker too.
#[test]
fn construction_passes_graph_level_checker_m2() {
    let h = Hhc::new(2).unwrap();
    let g = h.materialize().unwrap();
    let interesting: Vec<(u128, u128)> = vec![(0, 63), (1, 62), (5, 40), (17, 18), (0, 1)];
    for (a, b) in interesting {
        let u = NodeId::from_raw(a);
        let v = NodeId::from_raw(b);
        let paths = h.disjoint_paths(u, v).unwrap();
        let as_u32: Vec<Vec<u32>> = paths
            .iter()
            .map(|p| p.iter().map(|x| x.raw() as u32).collect())
            .collect();
        vertex_disjoint::check_disjoint_paths(&g, a as u32, b as u32, &as_u32)
            .unwrap_or_else(|e| panic!("pair ({a},{b}): {e}"));
    }
}

/// Single-path routing is never shorter than BFS distance and never
/// exceeds its own bound, over all pairs of HHC(2).
#[test]
fn routing_sandwiched_between_bfs_and_bound_m2() {
    let h = Hhc::new(2).unwrap();
    let g = h.materialize().unwrap();
    for u in h.iter_nodes() {
        let bfs = bfs::Bfs::run(&g, u.raw() as u32);
        for v in h.iter_nodes() {
            if u == v {
                continue;
            }
            let route = h.route(u, v).unwrap();
            let len = (route.len() - 1) as u32;
            let d = bfs.dist(v.raw() as u32).unwrap();
            assert!(len >= d, "route shorter than shortest path?!");
            assert!(len <= hhc_suite::hhc::routing::route_length_bound(&h, u, v));
        }
    }
}

/// The shortest disjoint path in each family is at most a small additive
/// term above the BFS distance (the family contains a near-optimal path).
#[test]
fn families_contain_near_shortest_paths_m2() {
    let h = Hhc::new(2).unwrap();
    let g = h.materialize().unwrap();
    let mut worst_gap = 0i64;
    for u in h.iter_nodes() {
        let bfs = bfs::Bfs::run(&g, u.raw() as u32);
        for v in h.iter_nodes() {
            if u == v {
                continue;
            }
            let paths = h.disjoint_paths(u, v).unwrap();
            let best = paths.iter().map(|p| (p.len() - 1) as i64).min().unwrap();
            let d = bfs.dist(v.raw() as u32).unwrap() as i64;
            worst_gap = worst_gap.max(best - d);
        }
    }
    // One lap of the Gray cycle (2^m = 4) plus the entry/exit slack.
    assert!(
        worst_gap <= (1 << h.m()) + h.m() as i64,
        "shortest family member is {worst_gap} above the true distance"
    );
}

/// Sorted crossing order also verifies everywhere on HHC(1) and HHC(2)
/// (correctness must be order-independent; only lengths differ).
#[test]
fn sorted_order_verifies_everywhere_small() {
    for m in 1..=2 {
        let h = Hhc::new(m).unwrap();
        for u in h.iter_nodes() {
            for v in h.iter_nodes() {
                if u == v {
                    continue;
                }
                let paths =
                    hhc_suite::hhc::disjoint::disjoint_paths(&h, u, v, CrossingOrder::Sorted)
                        .unwrap();
                verify::verify_disjoint_paths(&h, u, v, &paths).unwrap();
            }
        }
    }
}

/// BFS on the materialised HHC(3) confirms the diameter formula 2^(m+1)
/// from a spread of sources (full all-pairs is covered in unit tests for
/// smaller m). The network is self-centered — every sampled eccentricity
/// equals the diameter.
#[test]
fn diameter_formula_spotcheck_m3() {
    let h = Hhc::new(3).unwrap();
    let g = h.materialize().unwrap();
    for src in [0u32, 17, 999, 2047] {
        let ecc = bfs::Bfs::run(&g, src).eccentricity().unwrap();
        assert_eq!(ecc, h.diameter(), "eccentricity of node {src}");
    }
}

/// One-to-many fans on the materialised HHC: from any node, a fan to
/// m + 1 distinct targets exists (the one-to-many generalisation of the
/// paper's theorem, verified through the flow baseline).
#[test]
fn one_to_many_fans_exist_on_hhc2() {
    let h = Hhc::new(2).unwrap();
    let g = h.materialize().unwrap();
    for (s, targets) in [(0u32, [21u32, 42, 63]), (17, [0, 1, 2]), (63, [10, 20, 30])] {
        let f = hhc_suite::graphs::fan::fan_paths(&g, s, &targets)
            .unwrap_or_else(|| panic!("no fan from {s} to {targets:?}"));
        hhc_suite::graphs::fan::check_fan(&g, s, &targets, &f).unwrap();
    }
}

/// Many-to-many disjoint path covers on the materialised HHC: any m+1
/// sources can be matched to any m+1 targets with fully vertex-disjoint
/// paths (the unpaired many-to-many generalisation, flow-verified).
#[test]
fn many_to_many_covers_exist_on_hhc2() {
    let h = Hhc::new(2).unwrap();
    let g = h.materialize().unwrap();
    for (sources, targets) in [
        ([0u32, 9, 33], [63u32, 42, 21]),
        ([1, 2, 3], [60, 61, 62]),
        ([5, 10, 15], [50, 45, 40]),
    ] {
        let ps = hhc_suite::graphs::many_to_many_paths(&g, &sources, &targets)
            .unwrap_or_else(|| panic!("no cover for {sources:?} → {targets:?}"));
        hhc_suite::graphs::many_to_many::check_many_to_many(&g, &sources, &targets, &ps).unwrap();
    }
}
