//! End-to-end scenarios across hhc-core + workloads + netsim.

use hhc_suite::hhc::{Hhc, NodeId};
use hhc_suite::netsim::{fault, SimConfig, Simulator, Strategy};
use hhc_suite::workloads::{random_fault_set, Pattern};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

/// Full pipeline at moderate load: inject, route, drain — conservation
/// holds and every delivered packet's latency ≥ its hop count.
#[test]
fn pipeline_conservation_and_latency_sanity() {
    let h = Hhc::new(2).unwrap();
    for strategy in [Strategy::SinglePath, Strategy::MultipathRandom] {
        let stats = Simulator::new(&h, Pattern::UniformRandom, strategy).run(SimConfig {
            cycles: 400,
            drain_cycles: 10_000,
            inject_rate: 0.1,
            seed: 123,
            ..SimConfig::default()
        });
        assert_eq!(stats.delivered, stats.injected, "{strategy:?} must drain");
        assert!(
            stats.latency_sum >= stats.hops_sum,
            "{strategy:?} latency floor"
        );
        assert!(
            stats.delivered > 500,
            "{strategy:?} too little traffic to be meaningful"
        );
    }
}

/// Every traffic pattern runs end-to-end without loss.
#[test]
fn all_patterns_run_clean() {
    let h = Hhc::new(2).unwrap();
    for pattern in [
        Pattern::UniformRandom,
        Pattern::BitComplement,
        Pattern::BitReversal,
        Pattern::Transpose,
        Pattern::Hotspot { hot_fraction: 0.4 },
    ] {
        let stats = Simulator::new(&h, pattern, Strategy::SinglePath).run(SimConfig {
            cycles: 200,
            drain_cycles: 8_000,
            inject_rate: 0.05,
            seed: 5,
            ..SimConfig::default()
        });
        assert_eq!(stats.delivered, stats.injected, "{pattern:?}");
        assert_eq!(
            stats.dropped_unroutable, 0,
            "{pattern:?}: no faults, no drops"
        );
    }
}

/// Fault-adaptive routing under exactly m faults: zero routing drops,
/// across many random fault sets (the theorem, exercised through the
/// whole simulator stack).
#[test]
fn theorem_holds_through_the_simulator() {
    let h = Hhc::new(2).unwrap();
    let mut rng = StdRng::seed_from_u64(31);
    for trial in 0..10 {
        let faults = random_fault_set(&h, h.m() as usize, &[], &mut rng);
        let stats = Simulator::new(&h, Pattern::UniformRandom, Strategy::FaultAdaptive)
            .with_faults(faults)
            .run(SimConfig {
                cycles: 150,
                drain_cycles: 6_000,
                inject_rate: 0.08,
                seed: 1000 + trial,
                ..SimConfig::default()
            });
        assert_eq!(stats.dropped_unroutable, 0, "trial {trial}");
        assert_eq!(stats.delivered, stats.injected, "trial {trial}");
    }
}

/// Static fault analysis agrees with BFS ground truth: whenever the
/// multipath analysis says "deliverable", the pair is in fact connected
/// in the faulty residual graph (soundness; completeness can fail — BFS
/// may find a path when all m+1 fixed paths are blocked).
#[test]
fn static_analysis_sound_against_bfs() {
    let h = Hhc::new(2).unwrap();
    let g = h.materialize().unwrap();
    let mut rng = StdRng::seed_from_u64(77);
    for f in [1usize, 3, 6, 12, 24] {
        for _ in 0..30 {
            let u = NodeId::from_raw(17);
            let v = NodeId::from_raw(42);
            let faults = random_fault_set(&h, f, &[u, v], &mut rng);
            let out = fault::analyze(&h, u, v, &faults);
            let fault_ids: HashSet<u32> = faults.iter().map(|x| x.raw() as u32).collect();
            let bfs = hhc_suite::graphs::bfs::Bfs::run_avoiding(&g, u.raw() as u32, |x| {
                fault_ids.contains(&x)
            });
            let reachable = bfs.dist(v.raw() as u32).is_some();
            if out.multipath_ok {
                assert!(reachable, "analysis claimed deliverable but BFS disagrees");
            }
            if out.single_path_ok {
                assert!(reachable, "single path alive implies reachable");
            }
        }
    }
}

/// Deterministic replay: identical configs give identical stats across
/// the full stack (patterns, strategies, faults).
#[test]
fn full_stack_determinism() {
    let h = Hhc::new(2).unwrap();
    let faults = random_fault_set(&h, 3, &[], &mut StdRng::seed_from_u64(8));
    let mk = || {
        Simulator::new(
            &h,
            Pattern::Hotspot { hot_fraction: 0.3 },
            Strategy::FaultAdaptive,
        )
        .with_faults(faults.clone())
        .run(SimConfig {
            cycles: 250,
            drain_cycles: 5_000,
            inject_rate: 0.07,
            seed: 4242,
            ..SimConfig::default()
        })
    };
    assert_eq!(mk(), mk());
}
