//! The reproduction gate: the paper's headline claims, each asserted
//! end-to-end in one place. If this file is green, the reproduction
//! stands; see EXPERIMENTS.md for the quantitative versions.

use hhc_suite::graphs::vertex_disjoint;
use hhc_suite::hhc::{bounds, verify, Hhc, NodeId};
use hhc_suite::workloads::random_fault_set;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sample_pairs(h: &Hhc, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mask = if h.n() >= 128 {
        u128::MAX
    } else {
        (1u128 << h.n()) - 1
    };
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let a = ((rng.gen::<u64>() as u128) << 64 | rng.gen::<u64>() as u128) & mask;
        let b = ((rng.gen::<u64>() as u128) << 64 | rng.gen::<u64>() as u128) & mask;
        if a != b {
            out.push((NodeId::from_raw(a), NodeId::from_raw(b)));
        }
    }
    out
}

/// Claim 1 — existence and optimality: between any two distinct nodes
/// there are exactly m+1 internally node-disjoint paths; m+1 is optimal
/// because it equals the Menger value (checked against max-flow on the
/// materialised HHC(3)).
#[test]
fn claim_1_m_plus_1_disjoint_paths_optimal() {
    let h = Hhc::new(3).unwrap();
    let g = h.materialize().unwrap();
    for (u, v) in sample_pairs(&h, 12, 0xC1A1) {
        let paths = h.disjoint_paths(u, v).unwrap();
        assert_eq!(paths.len() as u32, h.degree());
        verify::verify_disjoint_paths(&h, u, v, &paths).unwrap();
        let menger =
            vertex_disjoint::vertex_connectivity_between(&g, u.raw() as u32, v.raw() as u32);
        assert_eq!(paths.len() as u32, menger, "construction must be optimal");
    }
}

/// Claim 2 — bounded length: every constructed path respects the
/// explicit bound, across the whole supported family (symbolically, up
/// to the 2^70-node HHC(6)).
#[test]
fn claim_2_length_bound_holds_at_every_scale() {
    for m in 1..=6 {
        let h = Hhc::new(m).unwrap();
        for (u, v) in sample_pairs(&h, 25, 0xC1A2 + m as u64) {
            let bound = bounds::length_bound(&h, u, v);
            let paths = h.disjoint_paths(u, v).unwrap();
            verify::verify_disjoint_paths(&h, u, v, &paths).unwrap();
            for p in &paths {
                assert!((p.len() - 1) as u32 <= bound, "m={m}");
            }
        }
    }
}

/// Claim 3 — fault tolerance: up to m node faults (alive endpoints) can
/// never disconnect a pair, because each fault blocks at most one of the
/// m+1 internally disjoint paths.
#[test]
fn claim_3_m_faults_never_disconnect() {
    let h = Hhc::new(4).unwrap();
    let mut rng = StdRng::seed_from_u64(0xC1A3);
    for (u, v) in sample_pairs(&h, 20, 0xC1A3) {
        let faults = random_fault_set(&h, h.m() as usize, &[u, v], &mut rng);
        let paths = h.disjoint_paths(u, v).unwrap();
        let alive = paths
            .iter()
            .filter(|p| !p.iter().any(|x| faults.contains(x)))
            .count();
        assert!(alive >= 1, "theorem violated");
        assert!(
            alive >= paths.len() - faults.len(),
            "each fault blocks at most one path"
        );
    }
}

/// Claim 4 — the wide diameter implied by the construction stays within
/// the provable bound and above the plain diameter.
#[test]
fn claim_4_wide_diameter_sandwich() {
    for m in 1..=4 {
        let h = Hhc::new(m).unwrap();
        let est = hhc_suite::hhc::wide::sampled(&h, 150, 0xC1A4 + m as u64).unwrap();
        assert!(est.observed_max <= est.upper_bound);
        // Antipodal pairs force at least diameter-length longest paths.
        let adv = hhc_suite::hhc::wide::adversarial(&h).unwrap();
        assert!(adv.observed_max as u32 >= h.diameter());
    }
}

/// Claim 5 — symbolic scalability: construction cost is independent of
/// the network size (2^11 → 2^70 nodes changes per-pair work only
/// polynomially in m, not in the node count).
#[test]
fn claim_5_symbolic_scalability() {
    use std::time::Instant;
    let mut costs = Vec::new();
    for m in [3u32, 6] {
        let h = Hhc::new(m).unwrap();
        let pairs = sample_pairs(&h, 50, 0xC1A5);
        let start = Instant::now();
        for &(u, v) in &pairs {
            let _ = h.disjoint_paths(u, v).unwrap();
        }
        costs.push(start.elapsed().as_secs_f64() / pairs.len() as f64);
    }
    // 2^59× more nodes must not cost more than ~200× per pair (debug
    // builds are noisy; the real ratio is ~10× — see T3).
    assert!(
        costs[1] / costs[0] < 200.0,
        "per-pair cost exploded with network size: {costs:?}"
    );
}
