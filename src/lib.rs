//! # hhc-suite
//!
//! Umbrella crate for the reproduction of *"Node-disjoint paths in
//! hierarchical hypercube networks"* (IPPS/IPDPS 2006). It re-exports the
//! member crates so the examples and integration tests can use a single
//! dependency, and so downstream users get one obvious entry point.
//!
//! * [`hhc`] (`hhc-core`) — the paper's contribution: the hierarchical
//!   hypercube topology and the construction of `m+1` node-disjoint paths
//!   between any two nodes;
//! * [`hypercube`] — symbolic `Q_n` algorithms (routing, disjoint paths,
//!   fans, embeddings) the construction builds upon;
//! * [`graphs`] — explicit-graph ground truth (BFS, Dinic max-flow,
//!   Menger-optimal disjoint path baseline);
//! * [`netsim`] — discrete-event store-and-forward simulator used by the
//!   routing experiments;
//! * [`workloads`] — traffic patterns, arrival processes and fault sets.
//!
//! ## Quickstart
//!
//! ```
//! use hhc_suite::hhc::{Hhc, NodeId};
//!
//! let net = Hhc::new(3).unwrap();             // m = 3, n = 11, 2^11 nodes
//! let u = net.node(0b101, 0b010).unwrap();    // (cube field X, node field Y)
//! let v = net.node(0b11011010, 0b111).unwrap();
//! let paths = net.disjoint_paths(u, v).unwrap();
//! assert_eq!(paths.len(), 4);                 // m + 1 internally disjoint paths
//! hhc_suite::hhc::verify::verify_disjoint_paths(&net, u, v, &paths).unwrap();
//! # let _ : NodeId = u;
//! ```

pub use graphs;
pub use hhc_core as hhc;
pub use hypercube;
pub use netsim;
pub use workloads;
