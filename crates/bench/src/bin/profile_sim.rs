//! Quick throughput profiler for the DES core: flat engine vs the legacy
//! map-based engine across representative workloads, asserting
//! byte-identical [`SimStats`] before timing anything, plus a replication
//! sweep through `run_many` at 1 and 4 rayon workers. Min-over-repeats
//! protocol mirrors `profile_batch`; `cargo bench -p bench --bench
//! netsim_throughput` is the canonical single-engine measurement.
//!
//! The headline figure is packets delivered per wall-second. The largest
//! simulable HHC is `HHC(3)` (2048 nodes, 11-bit addresses): the engine's
//! dense per-address tables cap at 16-bit address spaces, and `HHC(4)`
//! already needs 20 bits — so the paper-scale topologies are exercised
//! through the routing layer, not the simulator (see `EXPERIMENTS.md`
//! §B4).
//!
//! `--quick` runs one iteration on reduced workloads: a CI smoke test
//! that the two engines still agree and the JSON sidecar is well-formed,
//! not a measurement. A machine-readable summary is written to
//! `results/BENCH_sim.json`.

use hhc_core::Hhc;
use netsim::{CubeNet, SimConfig, SimStats, Simulator, Strategy, Switching};
use obs::json;
use std::time::Instant;
use workloads::Pattern;

fn min_time<F: FnMut()>(repeats: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Measured engine comparison for one workload.
struct SimRow {
    name: &'static str,
    nodes: u64,
    delivered: u64,
    flat_pps: f64,
    legacy_pps: f64,
}

/// Times both engines on one simulator/config, asserting equal stats
/// first — the equivalence gate is the point of the bench, so it runs
/// even in `--quick` mode.
fn profile_workload<N: netsim::Network + ?Sized>(
    name: &'static str,
    sim: &Simulator<'_, N>,
    cfg: SimConfig,
    repeats: usize,
) -> SimRow {
    let flat = sim.run(cfg);
    let legacy = sim.run_legacy(cfg);
    assert_eq!(flat, legacy, "flat and legacy stats diverged on {name}");
    assert!(flat.delivered > 0, "workload {name} delivered nothing");
    let flat_secs = min_time(repeats, || {
        std::hint::black_box(sim.run(cfg));
    });
    let legacy_secs = min_time(repeats, || {
        std::hint::black_box(sim.run_legacy(cfg));
    });
    SimRow {
        name,
        nodes: flat.nodes,
        delivered: flat.delivered,
        flat_pps: flat.delivered as f64 / flat_secs,
        legacy_pps: flat.delivered as f64 / legacy_secs,
    }
}

fn main() {
    let quick = std::env::args().skip(1).any(|a| a == "--quick");
    let repeats = if quick { 1 } else { 5 };
    // Enough cycles to fill the network, enough drain to land everything
    // that can land.
    let cfg = SimConfig {
        cycles: if quick { 30 } else { 150 },
        drain_cycles: 20_000,
        inject_rate: 0.05,
        seed: 0xD15C,
        ..SimConfig::default()
    };

    let h3 = Hhc::new(3).unwrap();
    let h2 = Hhc::new(2).unwrap();
    let q11 = CubeNet::matching_hhc(3);
    let bp_cfg = SimConfig {
        inject_rate: 0.15,
        queue_capacity: Some(4),
        ..cfg
    };
    let rows = vec![
        profile_workload(
            "hhc3_uniform_single",
            &Simulator::new(&h3, Pattern::UniformRandom, Strategy::SinglePath),
            cfg,
            repeats,
        ),
        profile_workload(
            "hhc3_uniform_multipath",
            &Simulator::new(&h3, Pattern::UniformRandom, Strategy::MultipathRandom),
            cfg,
            repeats,
        ),
        profile_workload(
            "hhc3_hotspot_single",
            &Simulator::new(
                &h3,
                Pattern::Hotspot { hot_fraction: 0.1 },
                Strategy::SinglePath,
            ),
            cfg,
            repeats,
        ),
        profile_workload(
            "hhc2_bitcomp_backpressure",
            &Simulator::new(&h2, Pattern::BitComplement, Strategy::MultipathRandom),
            SimConfig {
                switching: Switching::CutThrough,
                packet_len: 4,
                ..bp_cfg
            },
            repeats,
        ),
        profile_workload(
            "q11_uniform_single",
            &Simulator::new(&q11, Pattern::UniformRandom, Strategy::SinglePath),
            cfg,
            repeats,
        ),
    ];

    println!(
        "{:28} {:>6} {:>10} {:>14} {:>14} {:>8}",
        "workload", "nodes", "delivered", "flat pkt/s", "legacy pkt/s", "speedup"
    );
    for r in &rows {
        println!(
            "{:28} {:>6} {:>10} {:>14.0} {:>14.0} {:>7.2}x",
            r.name,
            r.nodes,
            r.delivered,
            r.flat_pps,
            r.legacy_pps,
            r.flat_pps / r.legacy_pps
        );
    }

    // --- Replication sweep (run_many) --------------------------------
    // Scaling is whatever the host gives: on a single-core container
    // both thread counts measure the same (the result equality is the
    // real assertion — worker count must be observationally invisible).
    let n_runs = if quick { 4 } else { 16 };
    let sim = Simulator::new(&h3, Pattern::UniformRandom, Strategy::MultipathRandom);
    let mut merged_seq = SimStats::default();
    for i in 0..n_runs as u64 {
        merged_seq.merge(&sim.run(SimConfig {
            seed: cfg.seed.wrapping_add(i),
            ..cfg
        }));
    }
    let timed_sweep = |threads: &str| {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let merged = sim.run_many(cfg, n_runs);
        assert_eq!(
            merged, merged_seq,
            "run_many at {threads} workers diverged from sequential merge"
        );
        let secs = min_time(repeats, || {
            std::hint::black_box(sim.run_many(cfg, n_runs));
        });
        std::env::remove_var("RAYON_NUM_THREADS");
        secs
    };
    let t1 = timed_sweep("1");
    let t4 = timed_sweep("4");
    println!();
    println!(
        "run_many: {n_runs} replications of hhc3_uniform_multipath \
         ({} delivered total)",
        merged_seq.delivered
    );
    println!("  1 worker   {:8.3} s", t1);
    println!("  4 workers  {:8.3} s  ({:.2}x scaling)", t4, t1 / t4);

    // Machine-readable sidecar for CI and the experiment notes.
    let mut o = json::Obj::new();
    o.str("bench", "profile_sim");
    o.u64("quick", quick as u64);
    o.u64("cycles", cfg.cycles);
    o.f64("inject_rate", cfg.inject_rate);
    let row_objs: Vec<String> = rows
        .iter()
        .map(|r| {
            let mut ro = json::Obj::new();
            ro.str("workload", r.name);
            ro.u64("nodes", r.nodes);
            ro.u64("delivered", r.delivered);
            ro.f64("flat_packets_per_sec", r.flat_pps);
            ro.f64("legacy_packets_per_sec", r.legacy_pps);
            ro.f64("speedup", r.flat_pps / r.legacy_pps);
            ro.finish()
        })
        .collect();
    o.raw("workloads", &json::array(&row_objs));
    let mut rep = json::Obj::new();
    rep.u64("replications", n_runs as u64);
    rep.u64("delivered_total", merged_seq.delivered);
    rep.f64("secs_1_worker", t1);
    rep.f64("secs_4_workers", t4);
    rep.f64("scaling", t1 / t4);
    o.raw("run_many", &rep.finish());
    let payload = o.finish();
    let path = "results/BENCH_sim.json";
    if let Err(e) =
        std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, payload.as_bytes()))
    {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("\nwrote {path}");
    }
}
