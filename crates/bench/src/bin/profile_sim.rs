//! Quick throughput profiler for the DES core: the default engine (lazy
//! link store + hybrid link fidelity) against the reference engine
//! (eager store + full queueing) across representative workloads,
//! asserting byte-identical [`SimStats`] before timing anything, plus a
//! replication sweep through `run_many` at 1 and 4 rayon workers.
//! Min-over-repeats protocol mirrors `profile_batch`; `cargo bench -p
//! bench --bench netsim_throughput` is the canonical single-engine
//! measurement.
//!
//! The headline workload is **HHC(4)** — 2^20 ≈ 1M nodes, the first
//! paper topology at the million scale — run packet-level end-to-end
//! with latency histograms, under a stated peak-RSS budget asserted
//! from `/proc/self/status` (VmHWM). Its reference engine is lazy +
//! full fidelity: the eager store would materialise all ~5.2M directed
//! links, which is exactly the cost the lazy store exists to avoid.
//!
//! `--quick` runs reduced workloads and writes
//! `results/BENCH_sim.quick.json` (the committed `results/BENCH_sim.json`
//! baseline is only rewritten by full runs): a CI smoke that the engine
//! variants still agree and feeds the `perf_gate` regression check.

use hhc_core::Hhc;
use netsim::{
    CubeNet, EngineConfig, Fidelity, LinkStoreMode, Network, SimConfig, SimStats, Simulator,
    Strategy, Switching,
};
use obs::json;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use workloads::Pattern;

/// Peak-RSS budget (MiB) for the HHC(4) headline run; asserted when the
/// platform exposes VmHWM.
const HHC4_RSS_BUDGET_MB: f64 = 2048.0;

fn min_time<F: FnMut()>(repeats: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Peak resident set size in MiB, from `/proc/self/status` (Linux).
fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line
        .trim_start_matches("VmHWM:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb / 1024.0)
}

/// Measured engine comparison for one workload.
struct SimRow {
    name: &'static str,
    stats: SimStats,
    pps: f64,
    baseline_pps: f64,
}

/// Times the default engine against `baseline` on one simulator/config,
/// asserting equal stats first — the equivalence gate is the point of
/// the bench, so it runs even in `--quick` mode. Only
/// `peak_links_materialised` may differ between store modes.
fn profile_workload<N: netsim::Network + ?Sized + 'static>(
    name: &'static str,
    sim: &Simulator<'_, N>,
    mk_baseline: impl Fn() -> Simulator<'static, N>,
    cfg: SimConfig,
    repeats: usize,
) -> SimRow {
    let baseline_sim = mk_baseline();
    let fast = sim.run(cfg);
    let reference = baseline_sim.run(cfg);
    let mut masked = fast.clone();
    masked.peak_links_materialised = reference.peak_links_materialised;
    assert_eq!(masked, reference, "engine variants diverged on {name}");
    assert!(fast.delivered > 0, "workload {name} delivered nothing");
    let fast_secs = min_time(repeats, || {
        std::hint::black_box(sim.run(cfg));
    });
    let baseline_secs = min_time(repeats, || {
        std::hint::black_box(baseline_sim.run(cfg));
    });
    SimRow {
        name,
        pps: fast.delivered as f64 / fast_secs,
        baseline_pps: fast.delivered as f64 / baseline_secs,
        stats: fast,
    }
}

fn main() {
    let quick = std::env::args().skip(1).any(|a| a == "--quick");
    let repeats = if quick { 3 } else { 5 };
    // Enough cycles to fill the network, enough drain to land everything
    // that can land.
    let cfg = SimConfig {
        cycles: if quick { 30 } else { 150 },
        drain_cycles: 20_000,
        inject_rate: 0.05,
        seed: 0xD15C,
        ..SimConfig::default()
    };
    let lazy_full = EngineConfig {
        store: LinkStoreMode::Lazy,
        fidelity: Fidelity::Full,
    };

    // --- HHC(4) headline: 2^20 nodes, packet-level, first so VmHWM
    // reflects it alone. Low rate keeps the offered load per node
    // realistic for a million sources; traffic is still ~10^5 packets.
    let h4 = Box::leak(Box::new(Hhc::new(4).unwrap()));
    let h4_cfg = SimConfig {
        cycles: if quick { 10 } else { 30 },
        inject_rate: 0.01,
        ..cfg
    };
    let hhc4_row = profile_workload(
        "hhc4_uniform_single",
        &Simulator::new(h4, Pattern::UniformRandom, Strategy::SinglePath),
        || Simulator::new(h4, Pattern::UniformRandom, Strategy::SinglePath).with_engine(lazy_full),
        h4_cfg,
        repeats.min(2),
    );
    let hhc4_rss_mb = peak_rss_mb();
    if let Some(rss) = hhc4_rss_mb {
        assert!(
            rss < HHC4_RSS_BUDGET_MB,
            "HHC(4) peak RSS {rss:.0} MiB exceeds the {HHC4_RSS_BUDGET_MB:.0} MiB budget"
        );
    }

    let h3 = Box::leak(Box::new(Hhc::new(3).unwrap()));
    let h2 = Box::leak(Box::new(Hhc::new(2).unwrap()));
    let q11 = Box::leak(Box::new(CubeNet::matching_hhc(3)));
    let bp_cfg = SimConfig {
        inject_rate: 0.15,
        queue_capacity: Some(4),
        ..cfg
    };
    let reference = EngineConfig::reference;
    let mut rows = vec![hhc4_row];
    rows.push(profile_workload(
        "hhc3_uniform_single",
        &Simulator::new(h3, Pattern::UniformRandom, Strategy::SinglePath),
        || {
            Simulator::new(h3, Pattern::UniformRandom, Strategy::SinglePath)
                .with_engine(reference())
        },
        cfg,
        repeats,
    ));
    rows.push(profile_workload(
        "hhc3_uniform_multipath",
        &Simulator::new(h3, Pattern::UniformRandom, Strategy::MultipathRandom),
        || {
            Simulator::new(h3, Pattern::UniformRandom, Strategy::MultipathRandom)
                .with_engine(reference())
        },
        cfg,
        repeats,
    ));
    rows.push(profile_workload(
        "hhc3_hotspot_single",
        &Simulator::new(
            h3,
            Pattern::Hotspot { hot_fraction: 0.1 },
            Strategy::SinglePath,
        ),
        || {
            Simulator::new(
                h3,
                Pattern::Hotspot { hot_fraction: 0.1 },
                Strategy::SinglePath,
            )
            .with_engine(reference())
        },
        cfg,
        repeats,
    ));
    let bp_full = SimConfig {
        switching: Switching::CutThrough,
        packet_len: 4,
        ..bp_cfg
    };
    rows.push(profile_workload(
        "hhc2_bitcomp_backpressure",
        &Simulator::new(h2, Pattern::BitComplement, Strategy::MultipathRandom),
        || {
            Simulator::new(h2, Pattern::BitComplement, Strategy::MultipathRandom)
                .with_engine(reference())
        },
        bp_full,
        repeats,
    ));
    rows.push(profile_workload(
        "q11_uniform_single",
        &Simulator::new(q11, Pattern::UniformRandom, Strategy::SinglePath),
        || {
            Simulator::new(q11, Pattern::UniformRandom, Strategy::SinglePath)
                .with_engine(reference())
        },
        cfg,
        repeats,
    ));
    println!(
        "{:28} {:>8} {:>10} {:>13} {:>13} {:>8} {:>10} {:>9}",
        "workload", "nodes", "delivered", "pkt/s", "ref pkt/s", "speedup", "mat.links", "B/node"
    );
    for r in &rows {
        println!(
            "{:28} {:>8} {:>10} {:>13.0} {:>13.0} {:>7.2}x {:>10} {:>9.1}",
            r.name,
            r.stats.nodes,
            r.stats.delivered,
            r.pps,
            r.baseline_pps,
            r.pps / r.baseline_pps,
            r.stats.peak_links_materialised,
            r.stats.bytes_per_node(),
        );
    }
    if let Some(rss) = hhc4_rss_mb {
        println!("\nhhc4 peak RSS: {rss:.0} MiB (budget {HHC4_RSS_BUDGET_MB:.0} MiB)");
    }

    // --- Replication sweep (run_many) --------------------------------
    // Scaling is whatever the host gives: on a single-core container
    // both thread counts measure the same (the result equality is the
    // real assertion — worker count must be observationally invisible).
    let n_runs = if quick { 4 } else { 16 };
    let sim = Simulator::new(h3, Pattern::UniformRandom, Strategy::MultipathRandom);
    let mut merged_seq = SimStats::default();
    for i in 0..n_runs as u64 {
        merged_seq.merge(&sim.run(SimConfig {
            seed: cfg.seed.wrapping_add(i),
            ..cfg
        }));
    }
    let timed_sweep = |threads: &str| {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let merged = sim.run_many(cfg, n_runs);
        assert_eq!(
            merged, merged_seq,
            "run_many at {threads} workers diverged from sequential merge"
        );
        let secs = min_time(repeats, || {
            std::hint::black_box(sim.run_many(cfg, n_runs));
        });
        std::env::remove_var("RAYON_NUM_THREADS");
        secs
    };
    let t1 = timed_sweep("1");
    let t4 = timed_sweep("4");
    println!();
    println!(
        "run_many: {n_runs} replications of hhc3_uniform_multipath \
         ({} delivered total)",
        merged_seq.delivered
    );
    println!("  1 worker   {:8.3} s", t1);
    println!("  4 workers  {:8.3} s  ({:.2}x scaling)", t4, t1 / t4);

    // --- Warm shared route arena (run_many_warm) ----------------------
    // Bit-complement traffic is deterministic per source, so the warm
    // pre-pass predicts every route the replications will request: all
    // of them then read one frozen arena through private overlays
    // instead of each re-interning the same (m + 1) routes per pair.
    // The equality assertion is the contract — warming must be
    // observationally invisible in the merged statistics.
    let wsim = Simulator::new(h3, Pattern::BitComplement, Strategy::MultipathRandom);
    let mut wrng = StdRng::seed_from_u64(0);
    let warm_pairs: Vec<_> = Network::all_nodes(h3)
        .into_iter()
        .filter_map(|u| {
            Pattern::BitComplement
                .destination(h3, u, &mut wrng)
                .map(|v| (u, v))
        })
        .collect();
    let warm = wsim.warm_routes(&warm_pairs);
    assert_eq!(
        wsim.run_many(cfg, n_runs),
        wsim.run_many_warm(cfg, n_runs, &warm),
        "warm route arena changed the statistics"
    );
    let cold_secs = min_time(repeats, || {
        std::hint::black_box(wsim.run_many(cfg, n_runs));
    });
    let warm_secs = min_time(repeats, || {
        std::hint::black_box(wsim.run_many_warm(cfg, n_runs, &warm));
    });
    println!();
    println!(
        "run_many_warm: {} pre-warmed routes shared across {n_runs} replications \
         (hhc3_bitcomp_multipath)",
        warm.len()
    );
    println!("  cold arenas {:8.3} s", cold_secs);
    println!(
        "  warm arena  {:8.3} s  ({:.2}x)",
        warm_secs,
        cold_secs / warm_secs
    );

    // Machine-readable sidecar for CI and the experiment notes.
    let mut o = json::Obj::new();
    o.str("bench", "profile_sim");
    o.u64("quick", quick as u64);
    o.u64("cycles", cfg.cycles);
    o.f64("inject_rate", cfg.inject_rate);
    o.f64("hhc4_peak_rss_mb", hhc4_rss_mb.unwrap_or(f64::NAN));
    o.f64("hhc4_rss_budget_mb", HHC4_RSS_BUDGET_MB);
    let row_objs: Vec<String> = rows
        .iter()
        .map(|r| {
            let mut ro = json::Obj::new();
            ro.str("workload", r.name);
            ro.u64("nodes", r.stats.nodes);
            ro.u64("delivered", r.stats.delivered);
            ro.f64("packets_per_sec", r.pps);
            ro.f64("baseline_packets_per_sec", r.baseline_pps);
            ro.f64("speedup", r.pps / r.baseline_pps);
            ro.f64("mean_latency", r.stats.mean_latency().unwrap_or(f64::NAN));
            ro.f64(
                "latency_p99",
                r.stats.latency_p99().map_or(f64::NAN, |v| v as f64),
            );
            ro.u64("latency_max", r.stats.latency_max);
            ro.u64("peak_links_materialised", r.stats.peak_links_materialised);
            ro.u64("links_total", r.stats.links_total);
            ro.f64("bytes_per_node", r.stats.bytes_per_node());
            ro.raw("latency_hist", &r.stats.latency_hist.to_json());
            ro.finish()
        })
        .collect();
    o.raw("workloads", &json::array(&row_objs));
    let mut rep = json::Obj::new();
    rep.u64("replications", n_runs as u64);
    rep.u64("delivered_total", merged_seq.delivered);
    rep.f64("secs_1_worker", t1);
    rep.f64("secs_4_workers", t4);
    rep.f64("scaling", t1 / t4);
    // Warm-arena delta (keyed `warm_speedup`, distinct from the gated
    // per-workload `speedup` metrics): single measurements, informative
    // rather than gated.
    rep.u64("warm_routes", warm.len() as u64);
    rep.f64("secs_cold_arena", cold_secs);
    rep.f64("secs_warm_arena", warm_secs);
    rep.f64("warm_speedup", cold_secs / warm_secs);
    o.raw("run_many", &rep.finish());
    let payload = o.finish();
    let path = if quick {
        "results/BENCH_sim.quick.json"
    } else {
        "results/BENCH_sim.json"
    };
    if let Err(e) =
        std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, payload.as_bytes()))
    {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("\nwrote {path}");
    }
}
