//! Sustained-throughput profiler for the concurrent routing service:
//! measures queries/sec of a [`Router`] worker pool under a live fault
//! feed, across thread counts and the three reuse workloads the batch
//! profiler uses (uniform / permutation / hotspot), against two ablation
//! baselines:
//!
//! * `l1_only` — the same pool with the shared L2 tier disabled
//!   (per-worker caches only: what PR 4 already shipped);
//! * `rebuild` — every fault event flushes both cache tiers
//!   ([`Router::flush_caches`]), the classic correct-but-crude answer to
//!   "a fault arrived, the cache might be stale". The tiered router
//!   instead keeps its fault-blind entries and repairs lazily, so the
//!   gated `speedup` is tiered_qps / rebuild_qps.
//!
//! The fault feed toggles interior nodes of answered families (so lazy
//! invalidation actually fires) on a balanced schedule — every add is
//! later cleared — which keeps each timed pass starting from an empty
//! fault set. Before timing, every router mode's answers over the full
//! schedule are asserted byte-identical to a serial cold-cache oracle;
//! the speedups below are speedups *between equivalent outputs*.
//!
//! `--quick` runs a reduced workload and writes
//! `results/BENCH_router.quick.json` (CI smoke + `perf_gate` input);
//! full runs write `results/BENCH_router.json`.

use hhc_core::{
    disjoint, disjoint_paths_avoiding, disjoint_paths_avoiding_into, CacheConfig, CrossingOrder,
    Hhc, L2Config, NodeId, PathBuilder, PathSet, QueryResult, Router, RouterConfig,
    SharedFamilyCache,
};
use obs::json;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, RwLock};
use std::time::Instant;

fn min_time<F: FnMut()>(repeats: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// One serving workload: a pair sequence plus its reuse label.
struct Workload {
    name: &'static str,
    distinct: usize,
    pairs: Vec<(NodeId, NodeId)>,
}

/// The same three reuse profiles as `profile_batch` (same seeds, so the
/// two sidecars describe the same traffic).
fn make_workloads(h: &Hhc, total: usize, pool: usize) -> Vec<Workload> {
    let uniform = workloads::sampling::random_pairs(h, total, 0x10_000);
    let perm_pool = workloads::sampling::random_pairs(h, pool, 0x22_222);
    let permutation: Vec<_> = perm_pool.iter().copied().cycle().take(total).collect();
    let hot_pool = workloads::sampling::random_pairs(h, pool + 1, 0x33_333);
    let hot = hot_pool[0].0;
    let hot_pairs: Vec<_> = hot_pool[1..]
        .iter()
        .map(|&(s, _)| (s, hot))
        .filter(|&(s, _)| s != hot)
        .collect();
    let hotspot: Vec<_> = hot_pairs.iter().copied().cycle().take(total).collect();
    vec![
        Workload {
            name: "uniform",
            distinct: total,
            pairs: uniform,
        },
        Workload {
            name: "permutation",
            distinct: pool,
            pairs: permutation,
        },
        Workload {
            name: "hotspot",
            distinct: hot_pairs.len(),
            pairs: hotspot,
        },
    ]
}

/// Picks fault-feed targets: interior nodes of the workload's own plain
/// families (so cached entries really do get blocked), skipping nodes
/// that appear as endpoints anywhere in the workload (a faulty endpoint
/// short-circuits to an error, which would pad qps in every mode).
fn fault_pool(h: &Hhc, pairs: &[(NodeId, NodeId)], want: usize) -> Vec<NodeId> {
    let endpoints: HashSet<NodeId> = pairs.iter().flat_map(|&(u, v)| [u, v]).collect();
    let mut seen = HashSet::new();
    let mut pool = Vec::new();
    for &(u, v) in pairs {
        if pool.len() >= want {
            break;
        }
        let Ok(paths) = disjoint::disjoint_paths(h, u, v, CrossingOrder::Gray) else {
            continue;
        };
        for p in &paths {
            let w = p[p.len() / 2];
            if p.len() > 2 && !endpoints.contains(&w) && seen.insert(w) {
                pool.push(w);
            }
        }
    }
    assert!(!pool.is_empty(), "no interior fault targets found");
    pool.truncate(want);
    pool
}

/// Per-batch fault events, applied *before* each batch; the extra
/// trailing slot (index `n_batches`) runs after the last batch. Events
/// alternate add/clear of the same node, so the schedule is balanced:
/// every pass starts and ends with an empty fault set, making repeats
/// identical work.
fn make_schedule(n_batches: usize, every: usize, pool: &[NodeId]) -> Vec<Vec<(NodeId, bool)>> {
    let mut schedule = vec![Vec::new(); n_batches + 1];
    let mut e = 0usize;
    let mut b = every;
    while b < n_batches {
        schedule[b].push((pool[(e / 2) % pool.len()], e.is_multiple_of(2)));
        e += 1;
        b += every;
    }
    if e % 2 == 1 {
        schedule[n_batches].push((pool[((e - 1) / 2) % pool.len()], false));
    }
    schedule
}

/// The serial cold-cache oracle over the same batches and fault
/// schedule: every query solved from scratch at its linearisation point.
fn oracle_answers(
    h: &Hhc,
    batches: &[&[(NodeId, NodeId)]],
    schedule: &[Vec<(NodeId, bool)>],
) -> Vec<QueryResult> {
    let mut faults: HashSet<NodeId> = HashSet::new();
    let mut out = Vec::new();
    for (b, batch) in batches.iter().enumerate() {
        for &(w, add) in &schedule[b] {
            if add {
                faults.insert(w);
            } else {
                faults.remove(&w);
            }
        }
        for &(u, v) in *batch {
            out.push(
                disjoint_paths_avoiding(h, u, v, CrossingOrder::Gray, &faults).map(|(p, _)| p),
            );
        }
    }
    out
}

/// Feeds the whole schedule through a router: fault events before each
/// batch (plus the trailing balance slot), queries via `query_many`.
/// `rebuild` flushes both cache tiers after every event — the baseline.
fn run_pass(
    router: &mut Router,
    batches: &[&[(NodeId, NodeId)]],
    schedule: &[Vec<(NodeId, bool)>],
    rebuild: bool,
    sink: &mut Vec<QueryResult>,
) {
    sink.clear();
    let apply = |router: &mut Router, events: &[(NodeId, bool)]| {
        for &(w, add) in events {
            if add {
                router.add_fault(w);
            } else {
                router.clear_fault(w);
            }
            if rebuild {
                router.flush_caches();
            }
        }
    };
    for (b, batch) in batches.iter().enumerate() {
        apply(router, &schedule[b]);
        sink.extend(router.query_many(batch));
    }
    apply(router, &schedule[batches.len()]);
    std::hint::black_box(&sink);
}

/// The PR 9-shaped shared-tier baseline for the hit-path
/// microbenchmark: lock-striped `RwLock<HashMap>` shards (std SipHash,
/// as shipped); a probe takes the shard read lock and clones the entry
/// out to release the lock before replaying. Paired below with the
/// per-query `Vec<Path>` materialisation the PR 9 worker loop
/// performed, this reproduces that pipeline's per-hit work; the current
/// tier answers the same probe from an immutable published snapshot
/// with no lock and no per-query allocation.
struct StripedL2 {
    shards: Vec<RwLock<HashMap<u128, StripedEntry>>>,
    shard_mask: usize,
}

struct StripedEntry {
    nodes: Box<[u128]>,
    offsets: Box<[u32]>,
}

impl StripedL2 {
    fn new(shards: usize) -> Self {
        let n = shards.next_power_of_two();
        StripedL2 {
            shards: (0..n).map(|_| RwLock::new(HashMap::new())).collect(),
            shard_mask: n - 1,
        }
    }

    fn shard_of(&self, key: u128) -> usize {
        let h = ((key ^ (key >> 64)) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize & self.shard_mask
    }

    fn store(&self, key: u128, set: &PathSet) {
        let mut nodes = Vec::with_capacity(set.total_nodes());
        let mut offsets = Vec::with_capacity(set.len() + 1);
        offsets.push(0u32);
        for p in set.iter() {
            nodes.extend(p.iter().map(|v| v.raw()));
            offsets.push(nodes.len() as u32);
        }
        self.shards[self.shard_of(key)].write().unwrap().insert(
            key,
            StripedEntry {
                nodes: nodes.into_boxed_slice(),
                offsets: offsets.into_boxed_slice(),
            },
        );
    }

    fn replay(&self, key: u128, out: &mut PathSet) -> bool {
        // Clone under the read lock, replay after releasing it — the
        // shortest-lock-hold discipline the striped design forces.
        let e = {
            let shard = self.shards[self.shard_of(key)].read().unwrap();
            let Some(e) = shard.get(&key) else {
                return false;
            };
            StripedEntry {
                nodes: e.nodes.clone(),
                offsets: e.offsets.clone(),
            }
        };
        for w in e.offsets.windows(2) {
            for &raw in &e.nodes[w[0] as usize..w[1] as usize] {
                out.push_node(NodeId::from_raw(raw));
            }
            out.finish_path();
        }
        true
    }
}

/// Hit-path microbenchmark: every query replays a cached family
/// (hit-heavy: the pool fits every tier), comparing the current
/// lock-free snapshot tier against the PR 9 striped-RwLock pipeline.
///
/// The lock-free side runs the *full* public serving path
/// ([`disjoint_paths_avoiding_into`] on a builder whose L1 is disabled,
/// so every query is an L2 snapshot probe plus the avoiding layer's
/// validation) into a reused `PathSet`. The striped side replays the
/// identical families from the [`StripedL2`] baseline and materialises
/// per-query `Vec<Path>`s, as the PR 9 worker did — it skips the
/// validation/metrics work the real path pays, so the reported speedup
/// is conservative.
fn hit_path_bench(h: &Hhc, repeats: usize, pool_sz: usize, iters: usize) -> String {
    let m = h.m();
    let pairs = workloads::sampling::random_pairs(h, pool_sz, 0x417_0000 + m as u64);
    let empty: HashSet<NodeId> = HashSet::new();

    // Lock-free side: shared snapshot tier, no L1 in front.
    let l2 = Arc::new(SharedFamilyCache::new(L2Config::enabled()));
    let no_l1 = CacheConfig {
        fan_capacity: 0,
        family_capacity: 0,
    };
    let mut builder = PathBuilder::with_caches(no_l1);
    builder.attach_shared_cache(Arc::clone(&l2));
    let mut out = PathSet::new();

    // Striped baseline, fed the *same* families (byte-identical slabs).
    let striped = StripedL2::new(16);
    for (i, &(u, v)) in pairs.iter().enumerate() {
        disjoint_paths_avoiding_into(h, u, v, CrossingOrder::Gray, &empty, &mut out, &mut builder)
            .unwrap();
        striped.store(i as u128, &out);
        // Sanity: the baseline replays exactly what the tier serves.
        let mut back = PathSet::new();
        assert!(striped.replay(i as u128, &mut back));
        assert_eq!(back, out, "striped baseline diverged from the tier");
    }

    let secs_lockfree = min_time(repeats, || {
        for _ in 0..iters {
            for &(u, v) in &pairs {
                disjoint_paths_avoiding_into(
                    h,
                    u,
                    v,
                    CrossingOrder::Gray,
                    &empty,
                    &mut out,
                    &mut builder,
                )
                .unwrap();
                std::hint::black_box(&out);
            }
        }
    });
    let c = builder.metrics().construction;
    assert_eq!(c.family_hits, 0, "L1 is disabled in the hit bench");
    assert_eq!(
        c.l2_misses as usize,
        pairs.len(),
        "only the warm-up pass constructs"
    );

    let secs_striped = min_time(repeats, || {
        for _ in 0..iters {
            for i in 0..pairs.len() {
                out.clear();
                assert!(striped.replay(i as u128, &mut out));
                // The PR 9 pipeline handed every answer back as an owned
                // Vec<Path>; that allocation is part of its hit path.
                std::hint::black_box(out.to_paths());
            }
        }
    });

    let queries = (pairs.len() * iters) as f64;
    let lockfree_qps = queries / secs_lockfree;
    let striped_qps = queries / secs_striped;
    let hit_speedup = lockfree_qps / striped_qps;
    println!(
        "hit path m={m}  lockfree {:9.0} qps  striped+clone {:9.0} qps  speedup {:4.2}x",
        lockfree_qps, striped_qps, hit_speedup
    );
    let mut ro = json::Obj::new();
    ro.str("case", &format!("hit_m{m}"));
    ro.u64("pool", pairs.len() as u64);
    ro.u64("iters", iters as u64);
    ro.f64("lockfree_qps", lockfree_qps);
    ro.f64("striped_qps", striped_qps);
    ro.f64("hit_speedup", hit_speedup);
    ro.finish()
}

/// The three router modes per cell.
const MODES: [&str; 3] = ["tiered", "l1_only", "rebuild"];

fn main() {
    let quick = std::env::args().skip(1).any(|a| a == "--quick");
    // (timing repeats, pairs per workload, distinct pool, batch size,
    //  fault event every N batches, thread sweep)
    let (repeats, total, pool_sz, batch_sz, fault_every, threads): (_, _, _, _, _, &[usize]) =
        if quick {
            (1, 240, 24, 48, 1, &[1, 2])
        } else {
            (3, 4000, 256, 256, 1, &[1, 2, 4])
        };
    let h = Hhc::new(5).unwrap();
    println!(
        "router profile: HHC(5), {total} pairs/workload, batches of {batch_sz}, \
         fault event every {fault_every} batch(es), min over {repeats} repeat(s)"
    );

    let mut rows: Vec<String> = Vec::new();
    for w in make_workloads(&h, total, pool_sz) {
        let batches: Vec<&[(NodeId, NodeId)]> = w.pairs.chunks(batch_sz).collect();
        let pool = fault_pool(&h, &w.pairs, 8);
        let schedule = make_schedule(batches.len(), fault_every, &pool);
        let fault_events: usize = schedule.iter().map(Vec::len).sum();
        let want = oracle_answers(&h, &batches, &schedule);

        for &t in threads {
            let mut qps = [f64::NAN; MODES.len()];
            let mut tiered_metrics = None;
            for (mi, &mode) in MODES.iter().enumerate() {
                let cfg = RouterConfig {
                    threads: t,
                    order: CrossingOrder::Gray,
                    l1: hhc_core::CacheConfig::enabled(),
                    l2: if mode == "l1_only" {
                        L2Config::disabled()
                    } else {
                        L2Config::enabled()
                    },
                };
                let mut router = Router::new(5, cfg).unwrap();
                let rebuild = mode == "rebuild";
                let mut sink = Vec::new();
                // Warmup pass doubles as the equivalence check: every
                // mode must answer exactly like the cold-cache oracle.
                run_pass(&mut router, &batches, &schedule, rebuild, &mut sink);
                assert_eq!(
                    sink, want,
                    "{} mode diverged from the oracle on {}",
                    mode, w.name
                );
                let secs = min_time(repeats, || {
                    run_pass(&mut router, &batches, &schedule, rebuild, &mut sink);
                });
                qps[mi] = w.pairs.len() as f64 / secs;
                if mode == "tiered" {
                    tiered_metrics = Some(router.metrics().construction);
                }
            }
            let c = tiered_metrics.expect("tiered mode always runs");
            let l2_probes = c.l2_hits + c.l2_misses;
            let l2_hit_rate = if l2_probes > 0 {
                c.l2_hits as f64 / l2_probes as f64
            } else {
                f64::NAN
            };
            let speedup = qps[0] / qps[2];
            let speedup_vs_l1 = qps[0] / qps[1];
            println!(
                "{:11} ({:5} distinct) t={}  tiered {:9.0} qps  l1_only {:9.0} qps  \
                 rebuild {:9.0} qps  speedup {:5.2}x (vs l1 {:4.2}x)  l2 hits {:5.1}%  \
                 invalidations {}",
                w.name,
                w.distinct,
                t,
                qps[0],
                qps[1],
                qps[2],
                speedup,
                speedup_vs_l1,
                l2_hit_rate * 100.0,
                c.l2_invalidations,
            );
            let mut ro = json::Obj::new();
            ro.str("workload", &format!("{}_t{}", w.name, t));
            ro.u64("threads", t as u64);
            ro.u64("distinct_pairs", w.distinct as u64);
            ro.u64("fault_events", fault_events as u64);
            ro.f64("tiered_qps", qps[0]);
            ro.f64("l1_only_qps", qps[1]);
            ro.f64("rebuild_qps", qps[2]);
            ro.f64("speedup", speedup);
            ro.f64("speedup_vs_l1", speedup_vs_l1);
            ro.f64("l2_hit_rate", l2_hit_rate);
            ro.f64("family_hit_rate", c.family_hit_rate().unwrap_or(f64::NAN));
            ro.u64("l2_invalidations", c.l2_invalidations);
            ro.u64("fault_reroutes", c.fault_reroutes);
            rows.push(ro.finish());
        }
    }

    // Hit-path microbenchmark: lock-free snapshot tier vs the PR 9
    // striped-RwLock pipeline on a replay-only workload, at two network
    // sizes (family length scales with m).
    let (hit_pool, hit_iters) = if quick { (32, 50) } else { (64, 400) };
    let hit_rows: Vec<String> = [3u32, 5]
        .iter()
        .map(|&m| hit_path_bench(&Hhc::new(m).unwrap(), repeats, hit_pool, hit_iters))
        .collect();

    let mut o = json::Obj::new();
    o.str("bench", "profile_router");
    o.u64("quick", quick as u64);
    o.u64("m", 5);
    o.u64("pairs_per_workload", total as u64);
    o.u64("batch_size", batch_sz as u64);
    o.u64("fault_every_batches", fault_every as u64);
    // 1-CPU containers make thread-sweep numbers self-explanatory only
    // with the host parallelism recorded next to them.
    o.u64(
        "available_parallelism",
        std::thread::available_parallelism().map_or(0, |n| n.get() as u64),
    );
    o.raw(
        "threads_swept",
        &json::u64_array(&threads.iter().map(|&t| t as u64).collect::<Vec<_>>()),
    );
    o.raw("cells", &json::array(&rows));
    o.raw("hit_path", &json::array(&hit_rows));
    let payload = o.finish();
    // Quick runs feed the perf_gate regression check and must never
    // overwrite the committed full-run results.
    let path = if quick {
        "results/BENCH_router.quick.json"
    } else {
        "results/BENCH_router.json"
    };
    if let Err(e) =
        std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, payload.as_bytes()))
    {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("\nwrote {path}");
    }
}
