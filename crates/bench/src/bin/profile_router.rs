//! Sustained-throughput profiler for the concurrent routing service:
//! measures queries/sec of a [`Router`] worker pool under a live fault
//! feed, across thread counts and the three reuse workloads the batch
//! profiler uses (uniform / permutation / hotspot), against two ablation
//! baselines:
//!
//! * `l1_only` — the same pool with the shared L2 tier disabled
//!   (per-worker caches only: what PR 4 already shipped);
//! * `rebuild` — every fault event flushes both cache tiers
//!   ([`Router::flush_caches`]), the classic correct-but-crude answer to
//!   "a fault arrived, the cache might be stale". The tiered router
//!   instead keeps its fault-blind entries and repairs lazily, so the
//!   gated `speedup` is tiered_qps / rebuild_qps.
//!
//! The fault feed toggles interior nodes of answered families (so lazy
//! invalidation actually fires) on a balanced schedule — every add is
//! later cleared — which keeps each timed pass starting from an empty
//! fault set. Before timing, every router mode's answers over the full
//! schedule are asserted byte-identical to a serial cold-cache oracle;
//! the speedups below are speedups *between equivalent outputs*.
//!
//! `--quick` runs a reduced workload and writes
//! `results/BENCH_router.quick.json` (CI smoke + `perf_gate` input);
//! full runs write `results/BENCH_router.json`.

use hhc_core::{
    disjoint, disjoint_paths_avoiding, CrossingOrder, Hhc, L2Config, NodeId, QueryResult, Router,
    RouterConfig,
};
use obs::json;
use std::collections::HashSet;
use std::time::Instant;

fn min_time<F: FnMut()>(repeats: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// One serving workload: a pair sequence plus its reuse label.
struct Workload {
    name: &'static str,
    distinct: usize,
    pairs: Vec<(NodeId, NodeId)>,
}

/// The same three reuse profiles as `profile_batch` (same seeds, so the
/// two sidecars describe the same traffic).
fn make_workloads(h: &Hhc, total: usize, pool: usize) -> Vec<Workload> {
    let uniform = workloads::sampling::random_pairs(h, total, 0x10_000);
    let perm_pool = workloads::sampling::random_pairs(h, pool, 0x22_222);
    let permutation: Vec<_> = perm_pool.iter().copied().cycle().take(total).collect();
    let hot_pool = workloads::sampling::random_pairs(h, pool + 1, 0x33_333);
    let hot = hot_pool[0].0;
    let hot_pairs: Vec<_> = hot_pool[1..]
        .iter()
        .map(|&(s, _)| (s, hot))
        .filter(|&(s, _)| s != hot)
        .collect();
    let hotspot: Vec<_> = hot_pairs.iter().copied().cycle().take(total).collect();
    vec![
        Workload {
            name: "uniform",
            distinct: total,
            pairs: uniform,
        },
        Workload {
            name: "permutation",
            distinct: pool,
            pairs: permutation,
        },
        Workload {
            name: "hotspot",
            distinct: hot_pairs.len(),
            pairs: hotspot,
        },
    ]
}

/// Picks fault-feed targets: interior nodes of the workload's own plain
/// families (so cached entries really do get blocked), skipping nodes
/// that appear as endpoints anywhere in the workload (a faulty endpoint
/// short-circuits to an error, which would pad qps in every mode).
fn fault_pool(h: &Hhc, pairs: &[(NodeId, NodeId)], want: usize) -> Vec<NodeId> {
    let endpoints: HashSet<NodeId> = pairs.iter().flat_map(|&(u, v)| [u, v]).collect();
    let mut seen = HashSet::new();
    let mut pool = Vec::new();
    for &(u, v) in pairs {
        if pool.len() >= want {
            break;
        }
        let Ok(paths) = disjoint::disjoint_paths(h, u, v, CrossingOrder::Gray) else {
            continue;
        };
        for p in &paths {
            let w = p[p.len() / 2];
            if p.len() > 2 && !endpoints.contains(&w) && seen.insert(w) {
                pool.push(w);
            }
        }
    }
    assert!(!pool.is_empty(), "no interior fault targets found");
    pool.truncate(want);
    pool
}

/// Per-batch fault events, applied *before* each batch; the extra
/// trailing slot (index `n_batches`) runs after the last batch. Events
/// alternate add/clear of the same node, so the schedule is balanced:
/// every pass starts and ends with an empty fault set, making repeats
/// identical work.
fn make_schedule(n_batches: usize, every: usize, pool: &[NodeId]) -> Vec<Vec<(NodeId, bool)>> {
    let mut schedule = vec![Vec::new(); n_batches + 1];
    let mut e = 0usize;
    let mut b = every;
    while b < n_batches {
        schedule[b].push((pool[(e / 2) % pool.len()], e.is_multiple_of(2)));
        e += 1;
        b += every;
    }
    if e % 2 == 1 {
        schedule[n_batches].push((pool[((e - 1) / 2) % pool.len()], false));
    }
    schedule
}

/// The serial cold-cache oracle over the same batches and fault
/// schedule: every query solved from scratch at its linearisation point.
fn oracle_answers(
    h: &Hhc,
    batches: &[&[(NodeId, NodeId)]],
    schedule: &[Vec<(NodeId, bool)>],
) -> Vec<QueryResult> {
    let mut faults: HashSet<NodeId> = HashSet::new();
    let mut out = Vec::new();
    for (b, batch) in batches.iter().enumerate() {
        for &(w, add) in &schedule[b] {
            if add {
                faults.insert(w);
            } else {
                faults.remove(&w);
            }
        }
        for &(u, v) in *batch {
            out.push(
                disjoint_paths_avoiding(h, u, v, CrossingOrder::Gray, &faults).map(|(p, _)| p),
            );
        }
    }
    out
}

/// Feeds the whole schedule through a router: fault events before each
/// batch (plus the trailing balance slot), queries via `query_many`.
/// `rebuild` flushes both cache tiers after every event — the baseline.
fn run_pass(
    router: &mut Router,
    batches: &[&[(NodeId, NodeId)]],
    schedule: &[Vec<(NodeId, bool)>],
    rebuild: bool,
    sink: &mut Vec<QueryResult>,
) {
    sink.clear();
    let apply = |router: &mut Router, events: &[(NodeId, bool)]| {
        for &(w, add) in events {
            if add {
                router.add_fault(w);
            } else {
                router.clear_fault(w);
            }
            if rebuild {
                router.flush_caches();
            }
        }
    };
    for (b, batch) in batches.iter().enumerate() {
        apply(router, &schedule[b]);
        sink.extend(router.query_many(batch));
    }
    apply(router, &schedule[batches.len()]);
    std::hint::black_box(&sink);
}

/// The three router modes per cell.
const MODES: [&str; 3] = ["tiered", "l1_only", "rebuild"];

fn main() {
    let quick = std::env::args().skip(1).any(|a| a == "--quick");
    // (timing repeats, pairs per workload, distinct pool, batch size,
    //  fault event every N batches, thread sweep)
    let (repeats, total, pool_sz, batch_sz, fault_every, threads): (_, _, _, _, _, &[usize]) =
        if quick {
            (1, 240, 24, 48, 1, &[1, 2])
        } else {
            (3, 4000, 256, 256, 1, &[1, 2, 4])
        };
    let h = Hhc::new(5).unwrap();
    println!(
        "router profile: HHC(5), {total} pairs/workload, batches of {batch_sz}, \
         fault event every {fault_every} batch(es), min over {repeats} repeat(s)"
    );

    let mut rows: Vec<String> = Vec::new();
    for w in make_workloads(&h, total, pool_sz) {
        let batches: Vec<&[(NodeId, NodeId)]> = w.pairs.chunks(batch_sz).collect();
        let pool = fault_pool(&h, &w.pairs, 8);
        let schedule = make_schedule(batches.len(), fault_every, &pool);
        let fault_events: usize = schedule.iter().map(Vec::len).sum();
        let want = oracle_answers(&h, &batches, &schedule);

        for &t in threads {
            let mut qps = [f64::NAN; MODES.len()];
            let mut tiered_metrics = None;
            for (mi, &mode) in MODES.iter().enumerate() {
                let cfg = RouterConfig {
                    threads: t,
                    order: CrossingOrder::Gray,
                    l1: hhc_core::CacheConfig::enabled(),
                    l2: if mode == "l1_only" {
                        L2Config::disabled()
                    } else {
                        L2Config::enabled()
                    },
                };
                let mut router = Router::new(5, cfg).unwrap();
                let rebuild = mode == "rebuild";
                let mut sink = Vec::new();
                // Warmup pass doubles as the equivalence check: every
                // mode must answer exactly like the cold-cache oracle.
                run_pass(&mut router, &batches, &schedule, rebuild, &mut sink);
                assert_eq!(
                    sink, want,
                    "{} mode diverged from the oracle on {}",
                    mode, w.name
                );
                let secs = min_time(repeats, || {
                    run_pass(&mut router, &batches, &schedule, rebuild, &mut sink);
                });
                qps[mi] = w.pairs.len() as f64 / secs;
                if mode == "tiered" {
                    tiered_metrics = Some(router.metrics().construction);
                }
            }
            let c = tiered_metrics.expect("tiered mode always runs");
            let l2_probes = c.l2_hits + c.l2_misses;
            let l2_hit_rate = if l2_probes > 0 {
                c.l2_hits as f64 / l2_probes as f64
            } else {
                f64::NAN
            };
            let speedup = qps[0] / qps[2];
            let speedup_vs_l1 = qps[0] / qps[1];
            println!(
                "{:11} ({:5} distinct) t={}  tiered {:9.0} qps  l1_only {:9.0} qps  \
                 rebuild {:9.0} qps  speedup {:5.2}x (vs l1 {:4.2}x)  l2 hits {:5.1}%  \
                 invalidations {}",
                w.name,
                w.distinct,
                t,
                qps[0],
                qps[1],
                qps[2],
                speedup,
                speedup_vs_l1,
                l2_hit_rate * 100.0,
                c.l2_invalidations,
            );
            let mut ro = json::Obj::new();
            ro.str("workload", &format!("{}_t{}", w.name, t));
            ro.u64("threads", t as u64);
            ro.u64("distinct_pairs", w.distinct as u64);
            ro.u64("fault_events", fault_events as u64);
            ro.f64("tiered_qps", qps[0]);
            ro.f64("l1_only_qps", qps[1]);
            ro.f64("rebuild_qps", qps[2]);
            ro.f64("speedup", speedup);
            ro.f64("speedup_vs_l1", speedup_vs_l1);
            ro.f64("l2_hit_rate", l2_hit_rate);
            ro.f64("family_hit_rate", c.family_hit_rate().unwrap_or(f64::NAN));
            ro.u64("l2_invalidations", c.l2_invalidations);
            ro.u64("fault_reroutes", c.fault_reroutes);
            rows.push(ro.finish());
        }
    }

    let mut o = json::Obj::new();
    o.str("bench", "profile_router");
    o.u64("quick", quick as u64);
    o.u64("m", 5);
    o.u64("pairs_per_workload", total as u64);
    o.u64("batch_size", batch_sz as u64);
    o.u64("fault_every_batches", fault_every as u64);
    o.raw("cells", &json::array(&rows));
    let payload = o.finish();
    // Quick runs feed the perf_gate regression check and must never
    // overwrite the committed full-run results.
    let path = if quick {
        "results/BENCH_router.quick.json"
    } else {
        "results/BENCH_router.json"
    };
    if let Err(e) =
        std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, payload.as_bytes()))
    {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("\nwrote {path}");
    }
}
