//! CI perf-regression gate: compares a fresh `--quick` profiler sidecar
//! against the committed quick-mode baseline and exits non-zero when the
//! machine-normalised speedup figures regressed.
//!
//! ```text
//! perf_gate --kind sim    --baseline results/BENCH_sim.gate.json    --fresh results/BENCH_sim.quick.json
//! perf_gate --kind batch  --baseline results/BENCH_batch.gate.json  --fresh results/BENCH_batch.quick.json
//! perf_gate --kind router --baseline results/BENCH_router.gate.json --fresh results/BENCH_router.quick.json
//! ```
//!
//! Gated metrics (all ratios measured within one process, so they are
//! comparable across machines — see `bench::gate`):
//!
//! * `sim` — per-workload `speedup` (default engine vs the reference
//!   eager/full engine).
//! * `batch` — per-cache-workload `speedup` (cache on vs off) and the
//!   batch amortisation ratio `per_pair_us / batched_serial_us`.
//! * `router` — per-workload `speedup` (tiered-cache router vs the
//!   full-rebuild-on-fault baseline, under the live fault feed).
//!
//! Two tiers: the **geomean** of the workload speedups is gated
//! strictly at `--max-drop` (default 15%) — it is stable to a few
//! percent run-to-run. Individual workloads and single-measurement
//! scalar ratios (amortisation) are gated loosely at `max_drop + 0.25`:
//! enough slack for the ±25% swings quick-mode measurements show on
//! shared runners, tight enough to catch an optimisation collapsing.
//!
//! Baselines are quick-mode runs committed as `BENCH_*.gate.json`
//! (quick and full configs produce systematically different speedups,
//! so the gate must compare like with like). To re-record after an
//! intentional perf change:
//!
//! ```text
//! cargo run --release -p bench --bin profile_sim -- --quick
//! cp results/BENCH_sim.quick.json results/BENCH_sim.gate.json
//! ```
//!
//! (and the same for `profile_batch`).

use bench::gate;

/// `(name, value)` metric list extracted from one sidecar.
type Metrics = Vec<(String, f64)>;

fn usage() -> ! {
    eprintln!(
        "usage: perf_gate --kind <sim|batch|router> --baseline <json> --fresh <json> [--max-drop <frac>]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut kind = None;
    let mut baseline_path = None;
    let mut fresh_path = None;
    let mut max_drop = 0.15f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--kind" => kind = it.next().cloned(),
            "--baseline" => baseline_path = it.next().cloned(),
            "--fresh" => fresh_path = it.next().cloned(),
            "--max-drop" => {
                max_drop = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }
    let (Some(kind), Some(baseline_path), Some(fresh_path)) = (kind, baseline_path, fresh_path)
    else {
        usage()
    };
    let read = |p: &str| -> String {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("perf_gate: cannot read {p}: {e}");
            std::process::exit(2);
        })
    };
    let base = read(&baseline_path);
    let fresh = read(&fresh_path);

    // (strict scalar metrics, per-workload metrics) for one sidecar.
    let metrics = |json: &str| -> (Metrics, Metrics) {
        let workloads = gate::workload_metric(json, "workload", "speedup");
        let mut strict = Vec::new();
        if let Some(g) = gate::geomean(&workloads) {
            strict.push(("speedup_geomean".to_string(), g));
        }
        let mut loose = workloads;
        match kind.as_str() {
            "sim" | "router" => {}
            "batch" => {
                // Quick-mode scalar timings are single measurements, so
                // their ratio swings ~±20% run-to-run: loose tier.
                if let (Some(pp), Some(bs)) = (
                    gate::scalar(json, "per_pair_us"),
                    gate::scalar(json, "batched_serial_us"),
                ) {
                    if bs > 0.0 {
                        loose.push(("batch_amortization".to_string(), pp / bs));
                    }
                }
            }
            _ => usage(),
        }
        (strict, loose)
    };

    let (base_strict, base_loose) = metrics(&base);
    let (fresh_strict, fresh_loose) = metrics(&fresh);
    let loose_drop = max_drop + 0.25;
    let mut checks = gate::compare(&base_strict, &fresh_strict, max_drop);
    let n_strict = checks.len();
    checks.extend(gate::compare(&base_loose, &fresh_loose, loose_drop));
    if n_strict == 0 {
        eprintln!(
            "perf_gate: no strictly gated metrics between {baseline_path} and {fresh_path} — \
             the gate would be vacuous"
        );
        std::process::exit(1);
    }
    println!(
        "perf_gate ({kind}): allowed drop {:.0}% aggregate, {:.0}% per workload  [{} metrics]",
        max_drop * 100.0,
        loose_drop * 100.0,
        checks.len()
    );
    let mut failed = false;
    for (i, c) in checks.iter().enumerate() {
        println!(
            "  {:32} baseline {:>9.3}  fresh {:>9.3}  ratio {:>5.2}  {}",
            c.name,
            c.baseline,
            c.fresh,
            c.ratio,
            match (c.ok, i < n_strict) {
                (true, _) => "ok",
                (false, true) => "REGRESSED",
                (false, false) => "REGRESSED (workload)",
            }
        );
        failed |= !c.ok;
    }
    if failed {
        eprintln!("perf_gate: speedup regression beyond the allowed drop");
        std::process::exit(1);
    }
}
