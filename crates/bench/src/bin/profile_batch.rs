//! Quick throughput profiler for the batch engine: measures the per-pair
//! loop, the scratch-reusing core, and both batch entry points on the
//! acceptance workload (random HHC(5) pairs), plus the metered batch
//! path (counters on, timing off — the zero-cost claim) and a replay of
//! the exact fan queries the construction issues. Uses a min-over-repeats
//! protocol so a noisy host does not swamp the numbers; `cargo bench -p
//! bench --bench batch_throughput` is the canonical measurement.
//!
//! The cache section compares the symmetry caches on vs off across three
//! 10k-pair workloads with different reuse profiles — uniform (every pair
//! distinct), permutation (a fixed pair pool cycled) and hotspot (many
//! sources, one destination) — asserting byte-identical output in both
//! modes and reporting ns/pair, speedup and hit rates. `--cache on` /
//! `--cache off` restrict to one mode; the default runs both. A
//! machine-readable summary is written to `results/BENCH_batch.json`.
//!
//! `--quick` runs one iteration on a reduced workload and writes
//! `results/BENCH_batch.quick.json` instead (the committed baseline is
//! only rewritten by full runs): a CI smoke test that the profiler
//! itself works (including the cached ≡ uncached assertion) and the
//! input to the `perf_gate` regression check.

use hhc_core::{batch, disjoint, CacheConfig, CrossingOrder, Hhc, NodeId, PathBuilder, PathSet};
use obs::json;
use std::time::Instant;

fn min_time<F: FnMut()>(repeats: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Which cache modes the cache section should run.
#[derive(Clone, Copy, PartialEq)]
enum CacheMode {
    On,
    Off,
    Both,
}

/// One cache-comparison workload: a pair sequence plus its reuse label.
struct Workload {
    name: &'static str,
    distinct: usize,
    pairs: Vec<(NodeId, NodeId)>,
}

/// Measured cache-on/off row for one workload.
struct CacheRow {
    name: &'static str,
    distinct: usize,
    on_ns: Option<f64>,
    off_ns: Option<f64>,
    family_hit_rate: f64,
    fan_hit_rate: f64,
}

/// The three reuse profiles, all over HHC(5) with `total` pairs.
fn make_workloads(h: &Hhc, total: usize, pool: usize) -> Vec<Workload> {
    let uniform = workloads::sampling::random_pairs(h, total, 0x10_000);
    // Permutation traffic: a fixed pool of distinct pairs cycled — the
    // repeated-(src, dst) shape every traffic pattern produces.
    let perm_pool = workloads::sampling::random_pairs(h, pool, 0x22_222);
    let permutation: Vec<_> = perm_pool.iter().copied().cycle().take(total).collect();
    // Hotspot: many sources, one hot destination.
    let hot_pool = workloads::sampling::random_pairs(h, pool + 1, 0x33_333);
    let hot = hot_pool[0].0;
    let hot_pairs: Vec<_> = hot_pool[1..]
        .iter()
        .map(|&(s, _)| (s, hot))
        .filter(|&(s, _)| s != hot)
        .collect();
    let hotspot: Vec<_> = hot_pairs.iter().copied().cycle().take(total).collect();
    vec![
        Workload {
            name: "uniform",
            distinct: total,
            pairs: uniform,
        },
        Workload {
            name: "permutation",
            distinct: pool,
            pairs: permutation,
        },
        Workload {
            name: "hotspot",
            distinct: hot_pairs.len(),
            pairs: hotspot,
        },
    ]
}

fn run_cache_section(
    h: &Hhc,
    repeats: usize,
    total: usize,
    pool: usize,
    mode: CacheMode,
) -> Vec<CacheRow> {
    let mut rows = Vec::new();
    for w in make_workloads(h, total, pool) {
        let n = w.pairs.len() as f64;
        let measure = |cfg: CacheConfig, repeats: usize| {
            let (sets, report) = batch::construct_many_serial_metered_with(
                h,
                &w.pairs,
                CrossingOrder::Gray,
                false,
                cfg,
            )
            .unwrap();
            let secs = min_time(repeats, || {
                let out = batch::construct_many_serial_metered_with(
                    h,
                    &w.pairs,
                    CrossingOrder::Gray,
                    false,
                    cfg,
                )
                .unwrap();
                std::hint::black_box(&out);
            });
            (sets, report, secs * 1e9 / n)
        };
        let mut row = CacheRow {
            name: w.name,
            distinct: w.distinct,
            on_ns: None,
            off_ns: None,
            family_hit_rate: f64::NAN,
            fan_hit_rate: f64::NAN,
        };
        let on = (mode != CacheMode::Off).then(|| measure(CacheConfig::enabled(), repeats));
        let off = (mode != CacheMode::On).then(|| measure(CacheConfig::disabled(), repeats));
        if let Some((_, report, ns)) = &on {
            row.on_ns = Some(*ns);
            row.family_hit_rate = report.construction.family_hit_rate().unwrap_or(f64::NAN);
            row.fan_hit_rate = report.fan_cache_hit_rate().unwrap_or(f64::NAN);
        }
        if let Some((_, _, ns)) = &off {
            row.off_ns = Some(*ns);
        }
        // The caches memoise exact canonical solutions: byte-identical
        // families are a hard invariant, not a statistical one.
        if let (Some((a, _, _)), Some((b, _, _))) = (&on, &off) {
            assert_eq!(a, b, "cached output differs from uncached on {}", w.name);
        }
        rows.push(row);
    }
    rows
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut mode = CacheMode::Both;
    for (i, a) in args.iter().enumerate() {
        let v = match a.strip_prefix("--cache=") {
            Some(v) => Some(v.to_string()),
            None if a == "--cache" => args.get(i + 1).cloned(),
            None => None,
        };
        match v.as_deref() {
            Some("on") => mode = CacheMode::On,
            Some("off") => mode = CacheMode::Off,
            Some("both") => mode = CacheMode::Both,
            Some(other) => {
                eprintln!("unknown --cache value {other:?} (expected on|off|both)");
                std::process::exit(2);
            }
            None => {}
        }
    }
    let (repeats, pair_count, pool) = if quick {
        (1, 200, 32)
    } else {
        (5, 10_000, 512)
    };
    let h = Hhc::new(5).unwrap();
    let pairs = workloads::sampling::random_pairs(&h, pair_count.min(4000), 0x10_000);
    let n = pairs.len() as f64;

    // Warm-up both code paths once.
    let mut sc = PathBuilder::new();
    let mut set = PathSet::new();
    for &(u, v) in &pairs {
        disjoint::disjoint_paths_into(&h, u, v, CrossingOrder::Gray, &mut set, &mut sc).unwrap();
    }

    let per_pair = min_time(repeats, || {
        let mut out = Vec::with_capacity(pairs.len());
        for &(u, v) in &pairs {
            out.push(disjoint::disjoint_paths(&h, u, v, CrossingOrder::Gray).unwrap());
        }
        std::hint::black_box(&out);
    });
    let core = min_time(repeats, || {
        for &(u, v) in &pairs {
            disjoint::disjoint_paths_into(&h, u, v, CrossingOrder::Gray, &mut set, &mut sc)
                .unwrap();
            std::hint::black_box(&set);
        }
    });
    let serial = min_time(repeats, || {
        let out = batch::construct_many_serial(&h, &pairs, CrossingOrder::Gray).unwrap();
        std::hint::black_box(&out);
    });
    let rayon = min_time(repeats, || {
        let out = batch::construct_many(&h, &pairs, CrossingOrder::Gray).unwrap();
        std::hint::black_box(&out);
    });
    // Counters on, timing off: the claimed ~zero-cost metrics mode.
    let metered = min_time(repeats, || {
        let out =
            batch::construct_many_serial_metered(&h, &pairs, CrossingOrder::Gray, false).unwrap();
        std::hint::black_box(&out);
    });

    // Fan share: replay the real (source, targets) fan queries this
    // workload issues, via the construction trace.
    let cube = hypercube::Cube::new(5).unwrap();
    let mut queries: Vec<(u128, Vec<u128>)> = Vec::new();
    for &(u, v) in &pairs {
        if let Ok((_, tr)) = disjoint::disjoint_paths_traced(&h, u, v, CrossingOrder::Gray) {
            queries.push((
                h.node_field(u) as u128,
                tr.source_fan_targets.iter().map(|&t| t as u128).collect(),
            ));
            queries.push((
                h.node_field(v) as u128,
                tr.target_fan_targets.iter().map(|&t| t as u128).collect(),
            ));
        }
    }
    queries.retain(|(_, t)| !t.is_empty());
    let mut fs = hypercube::FanScratch::new();
    for (s, tg) in &queries {
        let _ = hypercube::fan_paths_into(&cube, *s, tg, &mut fs);
    }
    let fan = min_time(repeats, || {
        for (s, tg) in &queries {
            let _ = hypercube::fan_paths_into(&cube, *s, tg, &mut fs);
            std::hint::black_box(&fs);
        }
    });

    println!("per_pair        {:8.1} us/pair", per_pair * 1e6 / n);
    println!("core (no alloc) {:8.1} us/pair", core * 1e6 / n);
    println!(
        "batched_serial  {:8.1} us/pair  ({:.2}x)",
        serial * 1e6 / n,
        per_pair / serial
    );
    println!(
        "batched_rayon   {:8.1} us/pair  ({:.2}x)",
        rayon * 1e6 / n,
        per_pair / rayon
    );
    println!(
        "batched_metered {:8.1} us/pair  ({:+.1}% vs serial)",
        metered * 1e6 / n,
        (metered / serial - 1.0) * 100.0
    );
    println!(
        "fan replay      {:8.1} us/pair ({} queries, {:.1} us/call)",
        fan * 1e6 / n,
        queries.len(),
        fan * 1e6 / queries.len() as f64
    );

    // --- Symmetry-cache comparison -----------------------------------
    println!();
    println!(
        "cache section: {} pairs per workload (serial metered batch)",
        pair_count
    );
    let rows = run_cache_section(&h, repeats, pair_count, pool, mode);
    for r in &rows {
        let fmt = |v: Option<f64>| match v {
            Some(ns) => format!("{:9.0} ns/pair", ns),
            None => "        (skipped)".to_string(),
        };
        let speedup = match (r.on_ns, r.off_ns) {
            (Some(on), Some(off)) => format!("{:5.2}x", off / on),
            _ => "    —".to_string(),
        };
        println!(
            "{:11} ({:5} distinct)  on {}  off {}  speedup {}  family hits {:5.1}%  fan hits {:5.1}%",
            r.name,
            r.distinct,
            fmt(r.on_ns),
            fmt(r.off_ns),
            speedup,
            r.family_hit_rate * 100.0,
            r.fan_hit_rate * 100.0
        );
    }

    // Machine-readable sidecar for CI and the experiment notes.
    let mut o = json::Obj::new();
    o.str("bench", "profile_batch");
    o.u64("quick", quick as u64);
    o.u64("m", 5);
    o.u64("baseline_pairs", pairs.len() as u64);
    o.u64("cache_pairs", pair_count as u64);
    o.f64("per_pair_us", per_pair * 1e6 / n);
    o.f64("core_us", core * 1e6 / n);
    o.f64("batched_serial_us", serial * 1e6 / n);
    o.f64("batched_rayon_us", rayon * 1e6 / n);
    o.f64("batched_metered_us", metered * 1e6 / n);
    let row_objs: Vec<String> = rows
        .iter()
        .map(|r| {
            let mut ro = json::Obj::new();
            ro.str("workload", r.name);
            ro.u64("distinct_pairs", r.distinct as u64);
            ro.f64("cache_on_ns_per_pair", r.on_ns.unwrap_or(f64::NAN));
            ro.f64("cache_off_ns_per_pair", r.off_ns.unwrap_or(f64::NAN));
            ro.f64(
                "speedup",
                match (r.on_ns, r.off_ns) {
                    (Some(on), Some(off)) => off / on,
                    _ => f64::NAN,
                },
            );
            ro.f64("family_hit_rate", r.family_hit_rate);
            ro.f64("fan_hit_rate", r.fan_hit_rate);
            ro.finish()
        })
        .collect();
    o.raw("cache_workloads", &json::array(&row_objs));
    let payload = o.finish();
    // Quick runs feed the perf_gate regression check and must never
    // overwrite the committed full-run baseline.
    let path = if quick {
        "results/BENCH_batch.quick.json"
    } else {
        "results/BENCH_batch.json"
    };
    if let Err(e) =
        std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, payload.as_bytes()))
    {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("\nwrote {path}");
    }
}
