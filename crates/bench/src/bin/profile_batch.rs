//! Quick throughput profiler for the batch engine: measures the per-pair
//! loop, the scratch-reusing core, and both batch entry points on the
//! acceptance workload (random HHC(5) pairs), plus the metered batch
//! path (counters on, timing off — the zero-cost claim) and a replay of
//! the exact fan queries the construction issues. Uses a min-over-repeats
//! protocol so a noisy host does not swamp the numbers; `cargo bench -p
//! bench --bench batch_throughput` is the canonical measurement.
//!
//! `--quick` runs one iteration on a reduced workload: a CI smoke test
//! that the profiler itself works, not a measurement.

use hhc_core::{batch, disjoint, CrossingOrder, Hhc, PathBuilder, PathSet};
use std::time::Instant;

fn min_time<F: FnMut()>(repeats: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let quick = std::env::args().skip(1).any(|a| a == "--quick");
    let (repeats, pair_count) = if quick { (1, 200) } else { (5, 4000) };
    let h = Hhc::new(5).unwrap();
    let pairs = workloads::sampling::random_pairs(&h, pair_count, 0x10_000);
    let n = pairs.len() as f64;

    // Warm-up both code paths once.
    let mut sc = PathBuilder::new();
    let mut set = PathSet::new();
    for &(u, v) in &pairs {
        disjoint::disjoint_paths_into(&h, u, v, CrossingOrder::Gray, &mut set, &mut sc).unwrap();
    }

    let per_pair = min_time(repeats, || {
        let mut out = Vec::with_capacity(pairs.len());
        for &(u, v) in &pairs {
            out.push(disjoint::disjoint_paths(&h, u, v, CrossingOrder::Gray).unwrap());
        }
        std::hint::black_box(&out);
    });
    let core = min_time(repeats, || {
        for &(u, v) in &pairs {
            disjoint::disjoint_paths_into(&h, u, v, CrossingOrder::Gray, &mut set, &mut sc)
                .unwrap();
            std::hint::black_box(&set);
        }
    });
    let serial = min_time(repeats, || {
        let out = batch::construct_many_serial(&h, &pairs, CrossingOrder::Gray).unwrap();
        std::hint::black_box(&out);
    });
    let rayon = min_time(repeats, || {
        let out = batch::construct_many(&h, &pairs, CrossingOrder::Gray).unwrap();
        std::hint::black_box(&out);
    });
    // Counters on, timing off: the claimed ~zero-cost metrics mode.
    let metered = min_time(repeats, || {
        let out =
            batch::construct_many_serial_metered(&h, &pairs, CrossingOrder::Gray, false).unwrap();
        std::hint::black_box(&out);
    });

    // Fan share: replay the real (source, targets) fan queries this
    // workload issues, via the construction trace.
    let cube = hypercube::Cube::new(5).unwrap();
    let mut queries: Vec<(u128, Vec<u128>)> = Vec::new();
    for &(u, v) in &pairs {
        if let Ok((_, tr)) = disjoint::disjoint_paths_traced(&h, u, v, CrossingOrder::Gray) {
            queries.push((
                h.node_field(u) as u128,
                tr.source_fan_targets.iter().map(|&t| t as u128).collect(),
            ));
            queries.push((
                h.node_field(v) as u128,
                tr.target_fan_targets.iter().map(|&t| t as u128).collect(),
            ));
        }
    }
    queries.retain(|(_, t)| !t.is_empty());
    let mut fs = hypercube::FanScratch::new();
    for (s, tg) in &queries {
        let _ = hypercube::fan_paths_into(&cube, *s, tg, &mut fs);
    }
    let fan = min_time(repeats, || {
        for (s, tg) in &queries {
            let _ = hypercube::fan_paths_into(&cube, *s, tg, &mut fs);
            std::hint::black_box(&fs);
        }
    });

    println!("per_pair        {:8.1} us/pair", per_pair * 1e6 / n);
    println!("core (no alloc) {:8.1} us/pair", core * 1e6 / n);
    println!(
        "batched_serial  {:8.1} us/pair  ({:.2}x)",
        serial * 1e6 / n,
        per_pair / serial
    );
    println!(
        "batched_rayon   {:8.1} us/pair  ({:.2}x)",
        rayon * 1e6 / n,
        per_pair / rayon
    );
    println!(
        "batched_metered {:8.1} us/pair  ({:+.1}% vs serial)",
        metered * 1e6 / n,
        (metered / serial - 1.0) * 100.0
    );
    println!(
        "fan replay      {:8.1} us/pair ({} queries, {:.1} us/call)",
        fan * 1e6 / n,
        queries.len(),
        fan * 1e6 / queries.len() as f64
    );
}
