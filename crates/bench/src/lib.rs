//! Criterion micro-benchmarks for the HHC suite live in `benches/`;
//! `src/bin/` holds the profilers (`profile_batch`, `profile_sim`) and
//! the CI perf-regression gate (`perf_gate`) built on [`gate`].

pub mod gate {
    //! Perf-regression gating over the `results/BENCH_*.json` sidecars.
    //!
    //! The sidecars are written by our own `obs::json` emitter (flat
    //! objects, no string escapes in the keys we read), so a dependency-
    //! free scanner is enough — the workspace deliberately carries no
    //! JSON parser.
    //!
    //! The gate compares *machine-normalised* ratio metrics (each
    //! profiler's optimised-vs-reference speedup, measured within a
    //! single process on one machine) rather than raw wall-clock
    //! throughput: committed baselines and CI runners are different
    //! machines, so absolute packets/sec would gate on hardware, not on
    //! regressions. A speedup that sags below `1 - max_drop` of its
    //! committed value means the optimised path lost real ground.

    /// Finds the string value of `"key":"..."` at or after `from`,
    /// returning the value and the scan position just past it.
    fn string_value(json: &str, key: &str, from: usize) -> Option<(String, usize)> {
        let pat = format!("\"{key}\":\"");
        let start = json[from..].find(&pat)? + from + pat.len();
        let end = json[start..].find('"')? + start;
        Some((json[start..end].to_string(), end))
    }

    /// Finds the numeric value of `"key":<number>` at or after `from`.
    /// Non-numeric values (e.g. `null`) yield `None`.
    fn number_value(json: &str, key: &str, from: usize) -> Option<(f64, usize)> {
        let pat = format!("\"{key}\":");
        let start = json[from..].find(&pat)? + from + pat.len();
        let rel = json[start..]
            .find([',', '}', ']'])
            .unwrap_or(json.len() - start);
        let end = start + rel;
        json[start..end].trim().parse().ok().map(|v| (v, end))
    }

    /// Top-level scalar metric, e.g. `per_pair_us`.
    pub fn scalar(json: &str, key: &str) -> Option<f64> {
        number_value(json, key, 0).map(|(v, _)| v)
    }

    /// Extracts `(name, value)` pairs from an array of row objects: for
    /// each `"name_key":"<name>"`, the first `"value_key":<number>`
    /// before the next named row. Rows without the metric are skipped.
    pub fn workload_metric(json: &str, name_key: &str, value_key: &str) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        let mut pos = 0;
        while let Some((name, after)) = string_value(json, name_key, pos) {
            let next_row = string_value(json, name_key, after).map_or(json.len(), |(_, e)| {
                // Back up to the start of the next row's name key.
                json[..e].rfind(&format!("\"{name_key}\":\"")).unwrap_or(e)
            });
            if let Some((v, _)) = number_value(&json[..next_row], value_key, after) {
                out.push((name, v));
            }
            pos = after;
        }
        out
    }

    /// Geometric mean of the metric values (`None` when empty or any
    /// value is non-positive). Individual workload speedups are noisy —
    /// the memory-bound ones swing ±25% run to run — but their geomean
    /// is stable to a few percent, so it is the strictly gated figure.
    pub fn geomean(metrics: &[(String, f64)]) -> Option<f64> {
        if metrics.is_empty() || metrics.iter().any(|(_, v)| *v <= 0.0) {
            return None;
        }
        let ln_sum: f64 = metrics.iter().map(|(_, v)| v.ln()).sum();
        Some((ln_sum / metrics.len() as f64).exp())
    }

    /// One gated comparison.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Check {
        /// Metric name (workload or scalar key).
        pub name: String,
        /// Committed baseline value.
        pub baseline: f64,
        /// Freshly measured value.
        pub fresh: f64,
        /// `fresh / baseline` (higher is better for every gated metric).
        pub ratio: f64,
        /// Whether the metric held within the allowed drop.
        pub ok: bool,
    }

    /// Compares fresh higher-is-better metrics against their committed
    /// baselines: a metric fails when `fresh < baseline * (1 - max_drop)`.
    /// Metrics present on only one side are ignored (renaming or adding
    /// workloads must not break the gate); degenerate baselines (≤ 0)
    /// are skipped too.
    pub fn compare(
        baseline: &[(String, f64)],
        fresh: &[(String, f64)],
        max_drop: f64,
    ) -> Vec<Check> {
        let mut out = Vec::new();
        for (name, base) in baseline {
            if *base <= 0.0 {
                continue;
            }
            if let Some((_, f)) = fresh.iter().find(|(n, _)| n == name) {
                let ratio = f / base;
                out.push(Check {
                    name: name.clone(),
                    baseline: *base,
                    fresh: *f,
                    ratio,
                    ok: ratio >= 1.0 - max_drop,
                });
            }
        }
        out
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        const SIM: &str = r#"{"bench":"profile_sim","quick":0,"workloads":[
            {"workload":"a","nodes":64,"packets_per_sec":1000.5,"speedup":3.0},
            {"workload":"b","nodes":64,"packets_per_sec":null,"speedup":2.0},
            {"workload":"c","nodes":64,"speedup":1.5}],"run_many":{"scaling":1.9}}"#;

        #[test]
        fn scans_scalars_and_rows() {
            assert_eq!(scalar(SIM, "quick"), Some(0.0));
            assert_eq!(scalar(SIM, "missing"), None);
            let pps = workload_metric(SIM, "workload", "packets_per_sec");
            // b's null and c's absent metric are skipped.
            assert_eq!(pps, vec![("a".to_string(), 1000.5)]);
            let sp = workload_metric(SIM, "workload", "speedup");
            assert_eq!(
                sp,
                vec![
                    ("a".to_string(), 3.0),
                    ("b".to_string(), 2.0),
                    ("c".to_string(), 1.5)
                ]
            );
        }

        #[test]
        fn metric_does_not_leak_into_the_next_row() {
            // `speedup` only in the second row: the first row must not
            // steal it.
            let json = r#"[{"workload":"x","nodes":1},{"workload":"y","speedup":2.5}]"#;
            assert_eq!(
                workload_metric(json, "workload", "speedup"),
                vec![("y".to_string(), 2.5)]
            );
        }

        #[test]
        fn compare_gates_on_relative_drop() {
            let base = vec![("a".to_string(), 100.0), ("b".to_string(), 10.0)];
            let fresh = vec![
                ("a".to_string(), 86.0),  // -14%: holds at 15%
                ("b".to_string(), 8.0),   // -20%: fails
                ("c".to_string(), 999.0), // not in baseline: ignored
            ];
            let checks = compare(&base, &fresh, 0.15);
            assert_eq!(checks.len(), 2);
            assert!(checks[0].ok);
            assert!(!checks[1].ok);
            assert!((checks[1].ratio - 0.8).abs() < 1e-12);
        }

        #[test]
        fn geomean_averages_in_log_space() {
            let m = vec![("a".to_string(), 4.0), ("b".to_string(), 1.0)];
            assert!((geomean(&m).unwrap() - 2.0).abs() < 1e-12);
            assert_eq!(geomean(&[]), None);
            assert_eq!(geomean(&[("z".to_string(), 0.0)]), None);
        }

        #[test]
        fn compare_skips_degenerate_and_missing() {
            let base = vec![("z".to_string(), 0.0), ("only_base".to_string(), 5.0)];
            let fresh = vec![("z".to_string(), 1.0)];
            assert!(compare(&base, &fresh, 0.15).is_empty());
        }
    }
}
