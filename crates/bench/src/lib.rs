//! Criterion micro-benchmarks for the HHC suite live in `benches/`.
