//! Benchmark: the max-flow baseline vs the constructive algorithm on the
//! same pairs (the microbench behind Table T3's speedup column).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphs::vertex_disjoint::vertex_disjoint_paths;
use hhc_core::{disjoint, CrossingOrder, Hhc, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_flow_vs_constructive(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline");
    group.sample_size(20);
    for m in 1..=3u32 {
        let h = Hhc::new(m).unwrap();
        let g = h.materialize().unwrap();
        let mut rng = StdRng::seed_from_u64(0xF10 + m as u64);
        let n_nodes = 1u128 << h.n();
        let pairs: Vec<(u32, u32)> = (0..32)
            .map(|_| {
                (
                    (rng.gen::<u64>() as u128 % n_nodes) as u32,
                    (rng.gen::<u64>() as u128 % n_nodes) as u32,
                )
            })
            .filter(|(a, b)| a != b)
            .collect();
        group.bench_with_input(BenchmarkId::new("flow", m), &m, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let (a, z) = pairs[i % pairs.len()];
                i += 1;
                vertex_disjoint_paths(&g, a, z)
            });
        });
        group.bench_with_input(BenchmarkId::new("constructive", m), &m, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let (a, z) = pairs[i % pairs.len()];
                i += 1;
                disjoint::disjoint_paths(
                    &h,
                    NodeId::from_raw(a as u128),
                    NodeId::from_raw(z as u128),
                    CrossingOrder::Gray,
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_dinic_scaling(c: &mut Criterion) {
    // Raw Dinic on hypercubes of growing size (unit-capacity networks).
    let mut group = c.benchmark_group("dinic_qn");
    group.sample_size(20);
    for n in [6u32, 8, 10] {
        let cube = hypercube::Cube::new(n).unwrap();
        let g = cube.materialize().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| graphs::vertex_connectivity_between(&g, 0, (1u32 << n) - 1));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flow_vs_constructive, bench_dinic_scaling);
criterion_main!(benches);
