//! Benchmark: simulator cycle throughput (events/s) under both routing
//! strategies — the cost of the DES substrate itself (figure F4's engine).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hhc_core::Hhc;
use netsim::{SimConfig, Simulator, Strategy};
use workloads::Pattern;

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim");
    group.sample_size(10);
    let h = Hhc::new(2).unwrap();
    for (name, strategy) in [
        ("single", Strategy::SinglePath),
        ("multipath", Strategy::MultipathRandom),
    ] {
        group.bench_with_input(BenchmarkId::new(name, "m2"), &strategy, |b, &s| {
            b.iter(|| {
                Simulator::new(&h, Pattern::UniformRandom, s).run(SimConfig {
                    cycles: 200,
                    drain_cycles: 2000,
                    inject_rate: 0.1,
                    seed: 1,
                    ..SimConfig::default()
                })
            });
        });
    }
    group.finish();
}

fn bench_fault_analysis(c: &mut Criterion) {
    // Static per-pair analysis cost (figure F3's inner loop).
    use rand::SeedableRng;
    let h = Hhc::new(3).unwrap();
    let u = h.node(0x2B, 0b010).unwrap();
    let v = h.node(0xD4, 0b101).unwrap();
    let faults =
        workloads::random_fault_set(&h, 16, &[u, v], &mut rand::rngs::StdRng::seed_from_u64(3));
    c.bench_function("fault_analyze_m3", |b| {
        b.iter(|| netsim::fault::analyze(&h, u, v, &faults))
    });
}

criterion_group!(benches, bench_sim, bench_fault_analysis);
criterion_main!(benches);
