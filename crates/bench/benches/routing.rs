//! Benchmark: single-path routing and primitive substrate operations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hhc_core::{Hhc, NodeId};
use hypercube::{gray, routing as qrouting, Cube};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_hhc_route(c: &mut Criterion) {
    let mut group = c.benchmark_group("hhc_route");
    for m in [2u32, 4, 6] {
        let h = Hhc::new(m).unwrap();
        let mask = if h.n() >= 128 {
            u128::MAX
        } else {
            (1u128 << h.n()) - 1
        };
        let mut rng = StdRng::seed_from_u64(m as u64);
        let pairs: Vec<(NodeId, NodeId)> = (0..64)
            .map(|_| {
                (
                    NodeId::from_raw(
                        ((rng.gen::<u64>() as u128) << 64 | rng.gen::<u64>() as u128) & mask,
                    ),
                    NodeId::from_raw(
                        ((rng.gen::<u64>() as u128) << 64 | rng.gen::<u64>() as u128) & mask,
                    ),
                )
            })
            .filter(|(a, b)| a != b)
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let (u, v) = pairs[i % pairs.len()];
                i += 1;
                h.route(u, v).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_qn_shortest_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("qn_shortest_path");
    for n in [8u32, 32, 100] {
        let cube = Cube::new(n).unwrap();
        let mask = if n >= 128 {
            u128::MAX
        } else {
            (1u128 << n) - 1
        };
        let u = 0x5555_5555_5555_5555_5555_5555_5555_5555u128 & mask;
        let v = 0x3333_3333_3333_3333_3333_3333_3333_3333u128 & mask;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| qrouting::shortest_path(&cube, u, v));
        });
    }
    group.finish();
}

fn bench_gray_ordering(c: &mut Criterion) {
    let positions: Vec<u64> = (0..64).step_by(3).collect();
    c.bench_function("gray_sort_64pos", |b| {
        b.iter(|| gray::sort_along_gray_cycle(&positions, 6, 17))
    });
}

criterion_group!(
    benches,
    bench_hhc_route,
    bench_qn_shortest_path,
    bench_gray_ordering
);
criterion_main!(benches);
