//! Benchmark: many-pair disjoint-path construction — per-pair allocating
//! API vs the batch engine.
//!
//! Three contenders on the same random pair list:
//!
//! * `per_pair`  — a loop over `disjoint::disjoint_paths` (allocates its
//!   scratch and both fan networks on every call);
//! * `batched_serial` — `batch::construct_many_serial` (one reused
//!   `PathBuilder`, current thread; isolates the allocation-reuse win);
//! * `batched_rayon` — `batch::construct_many` (`map_init` fan-out; adds
//!   the parallelism win on multi-core hosts).
//!
//! Throughput is reported in pairs/second.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hhc_core::{batch, disjoint, CrossingOrder, Hhc};
use workloads::sampling::random_pairs;

fn bench_batch_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_throughput");
    for m in 3..=6u32 {
        let h = Hhc::new(m).unwrap();
        let pairs = random_pairs(&h, 512, 0xBA7C + m as u64);
        group.throughput(Throughput::Elements(pairs.len() as u64));
        group.bench_with_input(BenchmarkId::new("per_pair", m), &m, |b, _| {
            b.iter(|| {
                let mut out = Vec::with_capacity(pairs.len());
                for &(u, v) in &pairs {
                    out.push(disjoint::disjoint_paths(&h, u, v, CrossingOrder::Gray).unwrap());
                }
                out
            });
        });
        group.bench_with_input(BenchmarkId::new("batched_serial", m), &m, |b, _| {
            b.iter(|| batch::construct_many_serial(&h, &pairs, CrossingOrder::Gray).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("batched_rayon", m), &m, |b, _| {
            b.iter(|| batch::construct_many(&h, &pairs, CrossingOrder::Gray).unwrap());
        });
    }
    group.finish();
}

fn bench_acceptance_workload(c: &mut Criterion) {
    // The acceptance workload: 10k random HHC(5) pairs in one batch.
    let mut group = c.benchmark_group("batch_10k_hhc5");
    group.sample_size(10);
    let h = Hhc::new(5).unwrap();
    let pairs = random_pairs(&h, 10_000, 0x10_000);
    group.throughput(Throughput::Elements(pairs.len() as u64));
    group.bench_function("per_pair", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(pairs.len());
            for &(u, v) in &pairs {
                out.push(disjoint::disjoint_paths(&h, u, v, CrossingOrder::Gray).unwrap());
            }
            out
        });
    });
    group.bench_function("batched_serial", |b| {
        b.iter(|| batch::construct_many_serial(&h, &pairs, CrossingOrder::Gray).unwrap());
    });
    group.bench_function("batched_rayon", |b| {
        b.iter(|| batch::construct_many(&h, &pairs, CrossingOrder::Gray).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_batch_engines, bench_acceptance_workload);
criterion_main!(benches);
