//! Benchmark: constructing the m+1 node-disjoint paths (mirrors T3's
//! constructive column and F5's order ablation at the microbench level).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hhc_core::{disjoint, CrossingOrder, Hhc};
use workloads::sampling::random_pairs;

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("disjoint_paths");
    for m in 1..=6u32 {
        let h = Hhc::new(m).unwrap();
        let pairs = random_pairs(&h, 64, 0xB0B + m as u64);
        group.bench_with_input(BenchmarkId::new("gray", m), &m, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let (u, v) = pairs[i % pairs.len()];
                i += 1;
                disjoint::disjoint_paths(&h, u, v, CrossingOrder::Gray).unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("sorted", m), &m, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let (u, v) = pairs[i % pairs.len()];
                i += 1;
                disjoint::disjoint_paths(&h, u, v, CrossingOrder::Sorted).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_worst_case(c: &mut Criterion) {
    // Antipodal cube fields: every position crossed (largest families).
    let mut group = c.benchmark_group("disjoint_paths_antipodal");
    for m in [3u32, 6] {
        let h = Hhc::new(m).unwrap();
        let all_x = if h.positions() >= 128 {
            u128::MAX
        } else {
            (1u128 << h.positions()) - 1
        };
        let u = h.node(0, 0).unwrap();
        let v = h.node(all_x, h.positions() - 1).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| disjoint::disjoint_paths(&h, u, v, CrossingOrder::Gray).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_construction, bench_worst_case);
criterion_main!(benches);
