//! T5 — topology cost comparison: HHC(m) vs the hypercube Q_n with the
//! same node count (`n = 2^m + m`).
//!
//! The HHC's reason to exist: hypercube-like structure at degree `m + 1`
//! instead of `n`, i.e. exponentially fewer links per node as the system
//! scales. The price is a longer diameter (`2^(m+1)` vs `n`). The table
//! reports degree, total links, diameter, connectivity (= number of
//! disjoint paths available) and the classic degree×diameter cost metric.

use crate::table::Table;
use hhc_core::Hhc;
use netsim::{CubeNet, Network};
use workloads::AddressSpace;

pub fn run() {
    let mut t = Table::new(
        "T5: HHC(m) vs hypercube Q_n at equal node count",
        &[
            "topology",
            "nodes",
            "degree",
            "total links",
            "diameter",
            "disjoint paths",
            "degree×diameter",
        ],
    );
    for m in 1..=6u32 {
        let h = Hhc::new(m).unwrap();
        let q = CubeNet::matching_hhc(m);
        let n = h.n();
        // Links: |V| · degree / 2 (both are regular).
        let hhc_links = h.num_addresses() / 2 * (Network::degree(&h) as u128);
        let q_links = q.num_addresses() / 2 * (Network::degree(&q) as u128);
        t.row(vec![
            Network::name(&h),
            format!("2^{n}"),
            Network::degree(&h).to_string(),
            format!(
                "2^{n}·{}/2 = {}",
                Network::degree(&h),
                ratio_str(hhc_links, n)
            ),
            h.diameter().to_string(),
            Network::degree(&h).to_string(),
            (Network::degree(&h) * h.diameter()).to_string(),
        ]);
        t.row(vec![
            Network::name(&q),
            format!("2^{n}"),
            Network::degree(&q).to_string(),
            format!("2^{n}·{n}/2 = {}", ratio_str(q_links, n)),
            n.to_string(), // Q_n diameter = n
            Network::degree(&q).to_string(),
            (Network::degree(&q) * n).to_string(),
        ]);
    }
    t.emit("t5_topology_comparison");
    println!(
        "link savings at m=6: Q_70 needs 10x more links per node (70 vs 7)\n\
         while the HHC diameter costs 128 vs 70 hops — the paper's trade-off."
    );
}

fn ratio_str(links: u128, n: u32) -> String {
    if n <= 24 {
        links.to_string()
    } else {
        format!("≈10^{}", (links as f64).log10().round() as u32)
    }
}
