//! F1 — path length vs cube-field Hamming distance k.
//!
//! For m ∈ {3, 4}, samples pairs stratified by `k = H(Xu, Xv)` and plots
//! (as table rows) the average and maximum of the family's max path
//! length, next to the per-pair bound `3·2^m + 2m + k`. Shape to observe:
//! length grows gently (≈ linearly) in k and stays far below the bound.

use crate::table::Table;
use crate::util;
use hhc_core::{bounds, CrossingOrder, Hhc, Workspace};
use rayon::prelude::*;

pub fn run() {
    let mut t = Table::new(
        "F1: max disjoint-path length vs cube-field Hamming distance k",
        &["m", "k", "pairs", "avg max len", "max max len", "bound"],
    );
    for m in [3u32, 4] {
        let h = Hhc::new(m).unwrap();
        for k in 0..=h.positions() {
            let pairs: Vec<_> = {
                let mut rng = util::rng(((0xF1u64 << 8) + (m as u64)) << 16 | k as u64);
                (0..2000)
                    .map(|_| util::random_pair_with_k(&h, k, &mut rng))
                    .collect()
            };
            let maxima: Vec<u32> = pairs
                .par_iter()
                .map_init(Workspace::new, |ws, &(u, v)| {
                    ws.construct_and_verify(&h, u, v, CrossingOrder::Gray)
                        .expect("verified")
                })
                .collect();
            let max = *maxima.iter().max().unwrap();
            let avg = maxima.iter().map(|&x| x as f64).sum::<f64>() / maxima.len() as f64;
            let bound = pairs
                .iter()
                .map(|&(u, v)| bounds::length_bound(&h, u, v))
                .max()
                .unwrap();
            t.row(vec![
                m.to_string(),
                k.to_string(),
                pairs.len().to_string(),
                util::f2(avg),
                max.to_string(),
                bound.to_string(),
            ]);
        }
    }
    t.emit("f1_length_vs_k");
}
