//! F8 — switching discipline: store-and-forward vs virtual cut-through.
//!
//! For multi-flit packets the textbook result is SAF latency ≈ hops × len
//! vs VCT ≈ hops + len − 1 at low load, with identical sustainable
//! throughput (links serialise `len` cycles per packet either way). The
//! HHC's longer routes (hops ≈ 10 at m = 3) make cut-through especially
//! valuable — exactly the regime hierarchical networks live in.

use crate::table::Table;
use crate::util;
use hhc_core::Hhc;
use netsim::{SimConfig, Simulator, Strategy, Switching};
use workloads::Pattern;

pub fn run() {
    let mut t = Table::new(
        "F8: store-and-forward vs cut-through latency (uniform, low load)",
        &[
            "m",
            "packet len",
            "SAF lat",
            "VCT lat",
            "hops",
            "VCT floor (hops+len-1)",
            "speedup",
        ],
    );
    for m in [2u32, 3] {
        let h = Hhc::new(m).unwrap();
        for len in [1u64, 2, 4, 8, 16] {
            let mk = |switching| SimConfig {
                cycles: if m == 2 { 400 } else { 150 },
                drain_cycles: 60_000,
                inject_rate: 0.01,
                seed: 0xF8F8,
                packet_len: len,
                switching,
                queue_capacity: None,
                sample_every: 0,
            };
            let sim = Simulator::new(&h, Pattern::UniformRandom, Strategy::SinglePath);
            let saf = sim.run(mk(Switching::StoreAndForward));
            let vct = sim.run(mk(Switching::CutThrough));
            assert_eq!(saf.delivered, saf.injected);
            assert_eq!(vct.delivered, vct.injected);
            let hops = vct.mean_hops().unwrap_or(0.0);
            let (saf_lat, vct_lat) = (
                saf.mean_latency().unwrap_or(0.0),
                vct.mean_latency().unwrap_or(0.0),
            );
            let speedup = if vct_lat > 0.0 {
                saf_lat / vct_lat
            } else {
                1.0
            };
            t.row(vec![
                m.to_string(),
                len.to_string(),
                util::f2(saf_lat),
                util::f2(vct_lat),
                util::f2(hops),
                util::f2(hops + len as f64 - 1.0),
                format!("{speedup:.2}x"),
            ]);
        }
    }
    t.emit("f8_switching");
}
