//! F5 — ablation: Gray-ordered crossings vs sorted (naive) order.
//!
//! The construction's length bound rests on ordering external crossings
//! along the Gray cycle of Q_m. This ablation re-runs the construction
//! with naive ascending position order and compares the resulting max and
//! average path lengths. Shape: sorted order inflates lengths by up to
//! ~m× on crossing-heavy pairs; Gray keeps them near the diameter.

use crate::table::Table;
use crate::util;
use hhc_core::{verify, CrossingOrder, Hhc, Workspace};
use rayon::prelude::*;

pub fn run() {
    let mut t = Table::new(
        "F5: ablation — Gray vs sorted crossing order (same sampled pairs)",
        &[
            "m",
            "pairs",
            "gray avg max",
            "gray max",
            "sorted avg max",
            "sorted max",
            "inflation",
        ],
    );
    for m in 3..=6u32 {
        let h = Hhc::new(m).unwrap();
        let pairs: Vec<_> = {
            let mut rng = util::rng(0xF5F5 + m as u64);
            (0..3000).map(|_| util::random_pair(&h, &mut rng)).collect()
        };
        let run_order = |order: CrossingOrder| -> (f64, u32) {
            let maxima: Vec<u32> = pairs
                .par_iter()
                .map_init(Workspace::new, |ws, &(u, v)| {
                    // Not construct_and_verify: the sorted ablation may
                    // exceed the Gray-order length bound it checks.
                    hhc_core::disjoint_paths_into(&h, u, v, order, &mut ws.set, &mut ws.builder)
                        .expect("construct");
                    verify::verify_disjoint_paths_into(&h, u, v, &ws.set, &mut ws.verify)
                        .expect("verify");
                    ws.set.max_len() as u32
                })
                .collect();
            let avg = maxima.iter().map(|&x| x as f64).sum::<f64>() / maxima.len() as f64;
            (avg, *maxima.iter().max().unwrap())
        };
        let (gray_avg, gray_max) = run_order(CrossingOrder::Gray);
        let (sorted_avg, sorted_max) = run_order(CrossingOrder::Sorted);
        t.row(vec![
            m.to_string(),
            pairs.len().to_string(),
            util::f2(gray_avg),
            gray_max.to_string(),
            util::f2(sorted_avg),
            sorted_max.to_string(),
            format!("{:.2}x", sorted_avg / gray_avg),
        ]);
    }
    t.emit("f5_ablation_order");
}
