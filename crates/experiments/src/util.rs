//! Shared sampling helpers for the experiments.

use hhc_core::{Hhc, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG for an experiment section.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A uniformly random node of `hhc`.
pub fn random_node(hhc: &Hhc, rng: &mut StdRng) -> NodeId {
    let n = hhc.n();
    let mask: u128 = if n >= 128 { u128::MAX } else { (1u128 << n) - 1 };
    let raw = ((rng.gen::<u64>() as u128) << 64 | rng.gen::<u64>() as u128) & mask;
    NodeId::from_raw(raw)
}

/// A random ordered pair of distinct nodes.
pub fn random_pair(hhc: &Hhc, rng: &mut StdRng) -> (NodeId, NodeId) {
    loop {
        let u = random_node(hhc, rng);
        let v = random_node(hhc, rng);
        if u != v {
            return (u, v);
        }
    }
}

/// A random pair whose cube fields differ in exactly `k` positions
/// (`0 ≤ k ≤ 2^m`); node fields are uniform.
pub fn random_pair_with_k(hhc: &Hhc, k: u32, rng: &mut StdRng) -> (NodeId, NodeId) {
    let positions = hhc.positions();
    assert!(k <= positions);
    loop {
        // Choose k distinct positions to flip.
        let mut mask = 0u128;
        let mut chosen = 0;
        while chosen < k {
            let p = rng.gen_range(0..positions);
            if mask >> p & 1 == 0 {
                mask |= 1u128 << p;
                chosen += 1;
            }
        }
        let xu_mask: u128 = if positions >= 128 {
            u128::MAX
        } else {
            (1u128 << positions) - 1
        };
        let xu = ((rng.gen::<u64>() as u128) << 64 | rng.gen::<u64>() as u128) & xu_mask;
        let yu = rng.gen_range(0..hhc.positions());
        let yv = rng.gen_range(0..hhc.positions());
        let u = hhc.node(xu, yu).expect("in range");
        let v = hhc.node(xu ^ mask, yv).expect("in range");
        if u != v {
            return (u, v);
        }
    }
}

/// All ordered pairs of a small network (`m ≤ 2`).
pub fn all_pairs(hhc: &Hhc) -> Vec<(NodeId, NodeId)> {
    assert!(hhc.m() <= 2);
    let nodes: Vec<NodeId> = hhc.iter_nodes().collect();
    let mut out = Vec::with_capacity(nodes.len() * (nodes.len() - 1));
    for &u in &nodes {
        for &v in &nodes {
            if u != v {
                out.push((u, v));
            }
        }
    }
    out
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 4 decimals.
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_pair_distinct_and_in_range() {
        let h = Hhc::new(3).unwrap();
        let mut r = rng(1);
        for _ in 0..200 {
            let (u, v) = random_pair(&h, &mut r);
            assert_ne!(u, v);
            h.check(u).unwrap();
            h.check(v).unwrap();
        }
    }

    #[test]
    fn random_pair_with_k_has_exact_crossing_count() {
        let h = Hhc::new(3).unwrap();
        let mut r = rng(2);
        for k in 0..=8 {
            for _ in 0..50 {
                let (u, v) = random_pair_with_k(&h, k, &mut r);
                assert_eq!(
                    (h.cube_field(u) ^ h.cube_field(v)).count_ones(),
                    k,
                    "wrong k"
                );
            }
        }
    }

    #[test]
    fn all_pairs_counts() {
        let h = Hhc::new(1).unwrap();
        assert_eq!(all_pairs(&h).len(), 8 * 7);
    }

    #[test]
    fn formatting() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f4(0.12345), "0.1235");
    }
}
