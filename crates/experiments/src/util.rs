//! Shared helpers for the experiments. The sampling logic itself lives
//! in [`workloads::sampling`] (one copy for experiments, benches and
//! stress tests); this module re-exports it and adds formatting.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub use workloads::sampling::{all_pairs, random_pair, random_pair_with_k};

/// Deterministic RNG for an experiment section.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 4 decimals.
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Writes a metrics sidecar next to the CSVs:
/// `results/<name>.metrics.json`. Like [`crate::table::Table::emit`],
/// failure to write is a warning, not an abort — the table on stdout is
/// the primary artifact.
pub fn write_metrics_sidecar(name: &str, json: &str) {
    let write = || -> std::io::Result<()> {
        std::fs::create_dir_all("results")?;
        std::fs::write(format!("results/{name}.metrics.json"), json)
    };
    if let Err(e) = write() {
        eprintln!("warning: could not write results/{name}.metrics.json: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhc_core::Hhc;

    #[test]
    fn reexported_sampling_works_with_experiment_rngs() {
        let h = Hhc::new(3).unwrap();
        let mut r = rng(1);
        let (u, v) = random_pair(&h, &mut r);
        assert_ne!(u, v);
        let (u, v) = random_pair_with_k(&h, 2, &mut r);
        assert_eq!((h.cube_field(u) ^ h.cube_field(v)).count_ones(), 2);
    }

    #[test]
    fn formatting() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f4(0.12345), "0.1235");
    }
}
