//! T1 — topology properties: measured vs formula.
//!
//! Materialises HHC(m) for m ≤ 3 and confirms node/edge counts, regularity,
//! bipartiteness and the BFS diameter against the closed forms
//! (`|V| = 2^(2^m+m)`, `|E| = |V|·(m+1)/2`, diameter `2^(m+1)`);
//! reports the formulas alone for m = 4..6 where the graph is too large
//! to build or sweep.

use crate::table::Table;
use graphs::{bfs, props};
use hhc_core::Hhc;

pub fn run() {
    let mut t = Table::new(
        "T1: HHC(m) topology properties (measured vs formula)",
        &[
            "m",
            "n",
            "|V|",
            "|E|",
            "degree",
            "regular",
            "bipartite",
            "diam(BFS)",
            "diam(formula)",
        ],
    );
    for m in 1..=6u32 {
        let h = Hhc::new(m).unwrap();
        let v = h.num_nodes();
        let e = v * h.degree() as u128 / 2;
        if m <= 3 {
            let g = h.materialize().unwrap();
            assert_eq!(g.num_nodes() as u128, v);
            assert_eq!(g.num_edges() as u128, e);
            let diam = bfs::diameter(&g).expect("connected");
            t.row(vec![
                m.to_string(),
                h.n().to_string(),
                v.to_string(),
                e.to_string(),
                h.degree().to_string(),
                props::is_regular(&g, h.degree()).to_string(),
                props::is_bipartite(&g).to_string(),
                diam.to_string(),
                h.diameter().to_string(),
            ]);
            assert_eq!(diam, h.diameter(), "diameter formula must match BFS");
        } else {
            t.row(vec![
                m.to_string(),
                h.n().to_string(),
                format!("2^{}", h.n()),
                format!("2^{}·{}/2", h.n(), h.degree()),
                h.degree().to_string(),
                "(by construction)".into(),
                "(by construction)".into(),
                "—".into(),
                h.diameter().to_string(),
            ]);
        }
    }
    t.emit("t1_topology");
}
