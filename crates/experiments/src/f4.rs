//! F4 — simulator: latency/throughput vs offered load.
//!
//! Slotted store-and-forward simulation of HHC(2) and HHC(3) under
//! uniform traffic, sweeping the injection rate, for the single Gray
//! route vs random-of-(m+1)-disjoint-paths. Shape: multipath pays a
//! small constant latency premium at low load (its families include
//! detour paths) and tracks single-path into saturation; its real value
//! is the F3 fault guarantee — this figure quantifies the premium.
//!
//! Each cell is a replication sweep: [`Simulator::run_many`] fans `REPS`
//! independently-seeded runs across rayon workers and merges their
//! [`netsim::SimStats`], so every reported mean/percentile aggregates
//! `REPS` runs instead of one (the flat DES core makes the sweep cheaper
//! than a single legacy-core run was).

use crate::table::Table;
use crate::util;
use hhc_core::Hhc;
use netsim::{SimConfig, Simulator, Strategy};
use workloads::Pattern;

/// Replications per (m, rate, strategy) cell; seeds are consecutive from
/// the base seed (see `Simulator::run_many`).
const REPS: usize = 20;

pub fn run() {
    let mut t = Table::new(
        "F4: mean latency & throughput vs offered load (uniform traffic, 20 replications/cell)",
        &[
            "m",
            "rate",
            "single lat",
            "multi lat",
            "single p99",
            "multi p99",
            "single thr",
            "multi thr",
            "single hops",
            "multi hops",
        ],
    );
    // One sidecar entry per table cell: merged SimStats JSON including
    // the latency histogram and the concatenated queue-depth/utilisation
    // time series of all replications.
    let mut sidecar: Vec<String> = Vec::new();
    for m in [2u32, 3] {
        let h = Hhc::new(m).unwrap();
        let links = (h.num_nodes() as u64) * (m as u64 + 1);
        let rates: &[f64] = if m == 2 {
            &[0.02, 0.05, 0.10, 0.20, 0.30, 0.40]
        } else {
            // HHC(3) has 2048 nodes; keep the sweep affordable.
            &[0.02, 0.05, 0.10, 0.20]
        };
        for &rate in rates {
            let cfg = SimConfig {
                cycles: if m == 2 { 600 } else { 200 },
                drain_cycles: 20_000,
                inject_rate: rate,
                seed: 0xF4F4,
                sample_every: 100,
                ..SimConfig::default()
            };
            let s = Simulator::new(&h, Pattern::UniformRandom, Strategy::SinglePath)
                .run_many(cfg, REPS);
            let mu = Simulator::new(&h, Pattern::UniformRandom, Strategy::MultipathRandom)
                .run_many(cfg, REPS);
            assert_eq!(s.delivered, s.injected, "single-path runs did not drain");
            assert_eq!(mu.delivered, mu.injected, "multipath runs did not drain");
            for (strategy, st) in [("single", &s), ("multi", &mu)] {
                let mut o = obs::json::Obj::new();
                o.u64("m", m as u64);
                o.f64("rate", rate);
                o.str("strategy", strategy);
                o.u64("replications", REPS as u64);
                o.raw("stats", &st.to_json(links));
                sidecar.push(o.finish());
            }
            t.row(vec![
                m.to_string(),
                util::f2(rate),
                util::f2(s.mean_latency().unwrap_or(0.0)),
                util::f2(mu.mean_latency().unwrap_or(0.0)),
                s.latency_p99().unwrap_or(0).to_string(),
                mu.latency_p99().unwrap_or(0).to_string(),
                util::f4(s.throughput()),
                util::f4(mu.throughput()),
                util::f2(s.mean_hops().unwrap_or(0.0)),
                util::f2(mu.mean_hops().unwrap_or(0.0)),
            ]);
        }
    }
    t.emit("f4_load_sweep");
    util::write_metrics_sidecar("f4_load_sweep", &obs::json::array(&sidecar));
}
