//! Experiment driver: regenerates every table and figure of the
//! evaluation (see DESIGN.md §3 for the index).
//!
//! ```text
//! cargo run -p experiments --release -- <t1|…|t7|f1|…|f9|all>
//! ```
//!
//! Each experiment prints its table to stdout and writes a CSV copy under
//! `results/`.

mod f1;
mod f2;
mod f3;
mod f4;
mod f5;
mod f6;
mod f7;
mod f8;
mod f9;
mod t1;
mod t2;
mod t3;
mod t4;
mod t5;
mod t6;
mod t7;
mod table;
mod util;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let known: &[(&str, fn())] = &[
        ("t1", t1::run),
        ("t2", t2::run),
        ("t3", t3::run),
        ("t4", t4::run),
        ("t5", t5::run),
        ("t6", t6::run),
        ("t7", t7::run),
        ("f1", f1::run),
        ("f2", f2::run),
        ("f3", f3::run),
        ("f3c", f3::run_constructive),
        ("f4", f4::run),
        ("f5", f5::run),
        ("f6", f6::run),
        ("f7", f7::run),
        ("f8", f8::run),
        ("f9", f9::run),
    ];
    match which {
        "all" => {
            for (name, f) in known {
                eprintln!("== running {name} ==");
                f();
            }
        }
        _ => match known.iter().find(|(n, _)| *n == which) {
            Some((_, f)) => f(),
            None => {
                eprintln!(
                    "unknown experiment {which:?}; expected one of \
                     t1 t2 t3 t4 t5 t6 t7 f1 f2 f3 f3c f4 f5 f6 f7 f8 f9 all"
                );
                std::process::exit(2);
            }
        },
    }
}
