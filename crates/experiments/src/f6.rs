//! F6 — simulated performance: HHC vs hypercube at equal node count.
//!
//! Runs the same uniform workload through both topologies (64 nodes:
//! HHC(2) vs Q_6; 2048 nodes: HHC(3) vs Q_11; 2^20 ≈ 1M nodes: HHC(4)
//! vs Q_20) and reports mean latency, mean hops and link utilisation.
//! Shape: the hypercube is faster (its routes are ~2–3× shorter) but
//! pays for it with `n / (m+1)` times the links; per-link utilisation
//! on the HHC is accordingly higher at the same offered load.
//!
//! The million-node tier exists because the lazy link store makes it
//! affordable: the simulator only materialises queue state for links
//! traffic actually crosses, so the sidecar's
//! `peak_links_materialised` sits far below `links_total` and
//! `bytes_per_node` stays in the hundreds. See `EXPERIMENTS.md` §B5.

use crate::table::Table;
use crate::util;
use hhc_core::Hhc;
use netsim::{CubeNet, Network, SimConfig, Simulator, Strategy};
use workloads::Pattern;

pub fn run() {
    let mut t = Table::new(
        "F6: simulated latency at equal node count (uniform traffic, single-path)",
        &[
            "topology",
            "nodes",
            "degree",
            "rate",
            "mean lat",
            "mean hops",
            "link util",
        ],
    );
    // One sidecar entry per table row: full SimStats JSON including the
    // latency histogram and the memory-footprint counters
    // (peak_links_materialised / links_total / bytes_per_node).
    let mut sidecar: Vec<String> = Vec::new();
    for m in [2u32, 3, 4] {
        let h = Hhc::new(m).unwrap();
        let q = CubeNet::matching_hhc(m);
        // At 2^20 nodes even a tiny per-node rate is ~10^5 packets per
        // cycle-window; one low rate keeps the tier affordable.
        let rates: &[f64] = match m {
            2 => &[0.05, 0.20],
            3 => &[0.02, 0.10],
            _ => &[0.01],
        };
        for &rate in rates {
            let cfg = SimConfig {
                cycles: match m {
                    2 => 600,
                    3 => 200,
                    _ => 20,
                },
                drain_cycles: 20_000,
                inject_rate: rate,
                seed: 0xF6F6,
                ..SimConfig::default()
            };
            row(&mut t, &mut sidecar, &h, rate, cfg);
            row(&mut t, &mut sidecar, &q, rate, cfg);
        }
    }
    t.emit("f6_topology_sim");
    util::write_metrics_sidecar("f6_topology_sim", &obs::json::array(&sidecar));
}

fn row<N: Network>(t: &mut Table, sidecar: &mut Vec<String>, net: &N, rate: f64, cfg: SimConfig) {
    let stats = Simulator::new(net, Pattern::UniformRandom, Strategy::SinglePath).run(cfg);
    assert_eq!(
        stats.delivered,
        stats.injected,
        "{} did not drain",
        net.name()
    );
    let links = stats.nodes * net.degree() as u64;
    let mut o = obs::json::Obj::new();
    o.str("topology", &net.name());
    o.f64("rate", rate);
    o.raw("stats", &stats.to_json(links));
    sidecar.push(o.finish());
    t.row(vec![
        net.name(),
        net.num_addresses().to_string(),
        net.degree().to_string(),
        util::f2(rate),
        util::f2(stats.mean_latency().unwrap_or(0.0)),
        util::f2(stats.mean_hops().unwrap_or(0.0)),
        util::f4(stats.link_utilization()),
    ]);
}
