//! F6 — simulated performance: HHC vs hypercube at equal node count.
//!
//! Runs the same uniform workload through both topologies (64 nodes:
//! HHC(2) vs Q_6; 2048 nodes: HHC(3) vs Q_11) and reports mean latency,
//! mean hops and link utilisation. Shape: the hypercube is faster (its
//! routes are ~2–3× shorter) but pays for it with `n / (m+1)` times the
//! links; per-link utilisation on the HHC is accordingly higher at the
//! same offered load.

use crate::table::Table;
use crate::util;
use hhc_core::Hhc;
use netsim::{CubeNet, Network, SimConfig, Simulator, Strategy};
use workloads::Pattern;

pub fn run() {
    let mut t = Table::new(
        "F6: simulated latency at equal node count (uniform traffic, single-path)",
        &[
            "topology",
            "nodes",
            "degree",
            "rate",
            "mean lat",
            "mean hops",
            "link util",
        ],
    );
    for m in [2u32, 3] {
        let h = Hhc::new(m).unwrap();
        let q = CubeNet::matching_hhc(m);
        let rates: &[f64] = if m == 2 { &[0.05, 0.20] } else { &[0.02, 0.10] };
        for &rate in rates {
            let cfg = SimConfig {
                cycles: if m == 2 { 600 } else { 200 },
                drain_cycles: 20_000,
                inject_rate: rate,
                seed: 0xF6F6,
                ..SimConfig::default()
            };
            row(&mut t, &h, rate, cfg);
            row(&mut t, &q, rate, cfg);
        }
    }
    t.emit("f6_topology_sim");
}

fn row<N: Network>(t: &mut Table, net: &N, rate: f64, cfg: SimConfig) {
    let stats = Simulator::new(net, Pattern::UniformRandom, Strategy::SinglePath).run(cfg);
    assert_eq!(
        stats.delivered,
        stats.injected,
        "{} did not drain",
        net.name()
    );
    let links = stats.nodes * net.degree() as u64;
    t.row(vec![
        net.name(),
        net.num_addresses().to_string(),
        net.degree().to_string(),
        util::f2(rate),
        util::f2(stats.mean_latency().unwrap_or(0.0)),
        util::f2(stats.mean_hops().unwrap_or(0.0)),
        util::f4(stats.link_utilization(links)),
    ]);
}
