//! T7 — one-port broadcast rounds vs the doubling lower bound.
//!
//! The greedy one-port broadcast (each informed node forwards to its
//! lowest uninformed neighbour per round) is measured against the
//! information-theoretic bound ⌈log₂ N⌉ = n. Measured: the overhead
//! factor grows slowly with m (1.33 → 1.91 for m = 1..3) — the price of
//! degree m+1 ≪ n when doubling wants n independent channels (shape
//! mirrors the T5 degree/diameter trade-off in the collective regime;
//! the low degree limits round-parallelism in the early doubling phase
//! of the schedule over the son-cubes).
//! costs a constant-factor overhead that shrinks as m grows (richer
//! son-cubes give the schedule more parallel edges to use).

use crate::table::Table;
use crate::util;
use hhc_core::{collectives, Hhc, NodeId};

pub fn run() {
    let mut t = Table::new(
        "T7: one-port broadcast rounds (greedy schedule vs ⌈log₂N⌉ bound)",
        &[
            "m",
            "nodes",
            "rounds",
            "lower bound",
            "overhead",
            "total sends",
        ],
    );
    for m in 1..=3u32 {
        let h = Hhc::new(m).unwrap();
        let schedule = collectives::one_port_broadcast(&h, NodeId::from_raw(0)).unwrap();
        let rounds = schedule.len() as u32;
        let lb = collectives::broadcast_round_lower_bound(&h);
        let sends: usize = schedule.iter().map(|r| r.len()).sum();
        assert_eq!(sends as u128, h.num_nodes() - 1, "everyone informed once");
        t.row(vec![
            m.to_string(),
            h.num_nodes().to_string(),
            rounds.to_string(),
            lb.to_string(),
            util::f2(rounds as f64 / lb as f64),
            sends.to_string(),
        ]);
    }
    t.emit("t7_broadcast");
}
