//! T4 — wide-diameter estimates.
//!
//! The `(m+1)`-wide diameter is the min-max length over disjoint-path
//! families; the construction upper-bounds it. Reported per m: the largest
//! maximum path length the construction produces (exhaustive for m ≤ 2,
//! adversarial + sampled otherwise), the provable bound and the diameter.

use crate::table::Table;
use hhc_core::{wide, Hhc};

pub fn run() {
    let mut t = Table::new(
        "T4: wide-diameter estimates (construction max length)",
        &[
            "m",
            "mode",
            "pairs",
            "observed max",
            "upper bound",
            "diameter",
        ],
    );
    for m in 1..=6u32 {
        let h = Hhc::new(m).unwrap();
        let (est, mode) = if m <= 2 {
            (wide::exhaustive(&h), "exhaustive")
        } else {
            let adv = wide::adversarial(&h);
            let sam = wide::sampled(&h, if m <= 4 { 4000 } else { 1000 }, 0xD1CE + m as u64);
            (
                wide::WideDiameterEstimate {
                    observed_max: adv.observed_max.max(sam.observed_max),
                    pairs: adv.pairs + sam.pairs,
                    upper_bound: adv.upper_bound,
                },
                "adversarial+sampled",
            )
        };
        t.row(vec![
            m.to_string(),
            mode.into(),
            est.pairs.to_string(),
            est.observed_max.to_string(),
            est.upper_bound.to_string(),
            h.diameter().to_string(),
        ]);
    }
    t.emit("t4_wide_diameter");
}
