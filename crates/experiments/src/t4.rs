//! T4 — wide-diameter estimates.
//!
//! The `(m+1)`-wide diameter is the min-max length over disjoint-path
//! families; the construction upper-bounds it. Reported per m: the largest
//! maximum path length the construction produces (exhaustive for m ≤ 2,
//! adversarial + sampled otherwise), the provable bound and the diameter.

use crate::table::Table;
use crate::util;
use hhc_core::{wide, Hhc, Workspace};

pub fn run() {
    let mut t = Table::new(
        "T4: wide-diameter estimates (construction max length)",
        &[
            "m",
            "mode",
            "pairs",
            "observed max",
            "upper bound",
            "diameter",
            "family hit%",
        ],
    );
    // One workspace across the whole sweep: scratch reuse plus one
    // accumulated construction-metrics sidecar for every pair examined.
    let mut ws = Workspace::new();
    ws.enable_timing(true);
    for m in 1..=6u32 {
        let h = Hhc::new(m).unwrap();
        // Per-m cache effectiveness from metric deltas: the workspace
        // counters are cumulative across the sweep, so subtract the
        // snapshot taken before this m's constructions.
        let before = ws.metrics().construction;
        let (est, mode) = if m <= wide::EXHAUSTIVE_MAX_M {
            let est = wide::exhaustive_with(&h, &mut ws).expect("m within the exhaustive guard");
            (est, "exhaustive")
        } else {
            let adv =
                wide::adversarial_with(&h, &mut ws).expect("adversarial pairs use valid fields");
            let sam = wide::sampled_with(
                &h,
                if m <= 4 { 4000 } else { 1000 },
                0xD1CE + m as u64,
                &mut ws,
            )
            .expect("sampled pairs use masked fields");
            (
                wide::WideDiameterEstimate {
                    observed_max: adv.observed_max.max(sam.observed_max),
                    pairs: adv.pairs + sam.pairs,
                    upper_bound: adv.upper_bound,
                },
                "adversarial+sampled",
            )
        };
        let after = ws.metrics().construction;
        let queries = after.queries - before.queries;
        let hits = after.family_hits - before.family_hits;
        let hit_pct = if queries > 0 {
            util::f2(100.0 * hits as f64 / queries as f64)
        } else {
            "—".into()
        };
        t.row(vec![
            m.to_string(),
            mode.into(),
            est.pairs.to_string(),
            est.observed_max.to_string(),
            est.upper_bound.to_string(),
            h.diameter().to_string(),
            hit_pct,
        ]);
    }
    t.emit("t4_wide_diameter");
    util::write_metrics_sidecar("t4_wide_diameter", &ws.metrics().to_json());
}
