//! F2 — scaling of max path length with m.
//!
//! Curves (as table columns) per m: the observed maximum path length over
//! adversarial + sampled pairs, the provable bound `4·2^m + 2m`, and the
//! diameter `2^(m+1)`. Shape: observed tracks the diameter within a small
//! additive term; the bound holds with slack.

use crate::table::Table;
use hhc_core::{bounds, wide, Hhc};

pub fn run() {
    let mut t = Table::new(
        "F2: max disjoint-path length vs m (observed / bound / diameter)",
        &[
            "m",
            "pairs",
            "observed max",
            "bound",
            "diameter",
            "obs/diam",
        ],
    );
    for m in 1..=6u32 {
        let h = Hhc::new(m).unwrap();
        let adv = wide::adversarial(&h).expect("adversarial pairs use valid fields");
        let sam = wide::sampled(&h, if m <= 4 { 3000 } else { 800 }, 0xF2F2 + m as u64)
            .expect("sampled pairs use masked fields");
        let observed = adv.observed_max.max(sam.observed_max);
        t.row(vec![
            m.to_string(),
            (adv.pairs + sam.pairs).to_string(),
            observed.to_string(),
            bounds::wide_diameter_upper_bound(&h).to_string(),
            h.diameter().to_string(),
            format!("{:.2}", observed as f64 / h.diameter() as f64),
        ]);
    }
    t.emit("f2_scaling");
}
