//! T2 — disjointness validation at scale.
//!
//! For each m, constructs the `m + 1` disjoint paths for many pairs
//! (exhaustive when feasible) and re-verifies every family independently:
//! path validity, simplicity, pairwise internal disjointness, and the
//! provable length bound. The table reports the verified pair count and
//! the observed length statistics next to the bound.

use crate::table::Table;
use crate::util;
use hhc_core::{bounds, CrossingOrder, Hhc, Workspace};
use rayon::prelude::*;

pub fn run() {
    let mut t = Table::new(
        "T2: m+1 node-disjoint paths — verification and length statistics",
        &[
            "m",
            "pairs",
            "mode",
            "verified",
            "max len",
            "avg max len",
            "bound(max)",
            "diameter",
        ],
    );
    for m in 1..=6u32 {
        let h = Hhc::new(m).unwrap();
        let (pairs, mode): (Vec<_>, &str) = if m <= 2 {
            (util::all_pairs(&h), "exhaustive")
        } else {
            let count = if m <= 4 { 20_000 } else { 4_000 };
            let mut rng = util::rng(0xBEEF + m as u64);
            (
                (0..count)
                    .map(|_| util::random_pair(&h, &mut rng))
                    .collect(),
                "sampled",
            )
        };
        let maxima: Vec<u32> = pairs
            .par_iter()
            .map_init(Workspace::new, |ws, &(u, v)| {
                ws.construct_and_verify(&h, u, v, CrossingOrder::Gray)
                    .expect("verification failed")
            })
            .collect();
        let max = *maxima.iter().max().unwrap();
        let avg = maxima.iter().map(|&x| x as f64).sum::<f64>() / maxima.len() as f64;
        t.row(vec![
            m.to_string(),
            pairs.len().to_string(),
            mode.into(),
            "all".into(),
            max.to_string(),
            util::f2(avg),
            bounds::wide_diameter_upper_bound(&h).to_string(),
            h.diameter().to_string(),
        ]);
    }
    t.emit("t2_verification");
}
