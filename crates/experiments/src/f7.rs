//! F7 — permutation traffic: deterministic vs randomised routing.
//!
//! Bit-complement is the classic adversarial permutation. The measured
//! outcome on the HHC is a (worth reporting) *negative* result for
//! randomisation: every complement pair is diametral, so the
//! deterministic Gray route is already exactly diameter-length and — by
//! the permutation's symmetry — perfectly load-balanced. The congestion
//! knee (~rate 0.3 on HHC(2)) is the network's *capacity* limit
//! (8 hops/packet × rate vs 3 links/node), which no routing policy can
//! move; Valiant's ~1.25× hop padding only brings the knee closer. The
//! figure documents that HHC + Gray routing needs no Valiant-style
//! randomisation for symmetric permutations.

use crate::table::Table;
use crate::util;
use hhc_core::Hhc;
use netsim::{SimConfig, Simulator, Strategy};
use workloads::Pattern;

pub fn run() {
    let mut t = Table::new(
        "F7: bit-complement permutation — deterministic vs Valiant vs multipath (HHC(2))",
        &[
            "rate",
            "single lat",
            "valiant lat",
            "multi lat",
            "single hops",
            "valiant hops",
        ],
    );
    let h = Hhc::new(2).unwrap();
    for rate in [0.05, 0.10, 0.20, 0.30, 0.40, 0.50] {
        let cfg = SimConfig {
            cycles: 600,
            drain_cycles: 40_000,
            inject_rate: rate,
            seed: 0xF7F7,
            ..SimConfig::default()
        };
        let s = Simulator::new(&h, Pattern::BitComplement, Strategy::SinglePath).run(cfg);
        let va = Simulator::new(&h, Pattern::BitComplement, Strategy::Valiant).run(cfg);
        let mu = Simulator::new(&h, Pattern::BitComplement, Strategy::MultipathRandom).run(cfg);
        for (name, st) in [("single", &s), ("valiant", &va), ("multi", &mu)] {
            assert_eq!(st.delivered, st.injected, "{name} did not drain at {rate}");
        }
        t.row(vec![
            util::f2(rate),
            util::f2(s.mean_latency().unwrap_or(0.0)),
            util::f2(va.mean_latency().unwrap_or(0.0)),
            util::f2(mu.mean_latency().unwrap_or(0.0)),
            util::f2(s.mean_hops().unwrap_or(0.0)),
            util::f2(va.mean_hops().unwrap_or(0.0)),
        ]);
    }
    t.emit("f7_permutation");
}
