//! F3 — fault tolerance: delivery success vs number of node faults.
//!
//! For HHC(3) (m = 3, so 4 disjoint paths), sweeps the fault count f from
//! 0 to 3m and measures, over random pairs × random fault sets, the
//! probability that (a) the deterministic single route survives and
//! (b) at least one of the m+1 disjoint paths survives. Shape: multipath
//! is exactly 1.0 for f ≤ m (the paper's guarantee) and degrades slowly
//! after; single-path decays immediately.
//!
//! Trials fan across rayon workers: inputs (pair + fault set) are drawn
//! serially so the RNG stream — and therefore every reported number — is
//! identical to the sequential version; only the deterministic analysis
//! runs in parallel, each worker holding its own `RouteScratch`.

use crate::table::Table;
use crate::util;
use hhc_core::{Hhc, NodeId};
use netsim::fault::analyze_with;
use netsim::{FaultSet, RouteScratch};
use rayon::prelude::*;
use workloads::random_fault_set;

/// (single ok, multipath ok, surviving paths) tallies over one batch of
/// pre-drawn trials, analysed in parallel.
fn analyze_trials(h: &Hhc, inputs: &[(NodeId, NodeId, FaultSet)]) -> (u32, u32, u64) {
    let per_trial: Vec<(u32, u32, u64)> = inputs
        .par_iter()
        .map_init(RouteScratch::new, |scratch, (u, v, faults)| {
            let out = analyze_with(h, *u, *v, faults, scratch);
            (
                out.single_path_ok as u32,
                out.multipath_ok as u32,
                out.surviving_paths as u64,
            )
        })
        .collect();
    per_trial
        .into_iter()
        .fold((0, 0, 0), |(s, m, p), (ds, dm, dp)| {
            (s + ds, m + dm, p + dp)
        })
}

pub fn run() {
    let m = 3u32;
    let h = Hhc::new(m).unwrap();
    let trials = 2000u32;
    let mut t = Table::new(
        "F3: delivery success probability vs node faults f (HHC(3), 2000 trials/row)",
        &[
            "f",
            "single-path ok",
            "multipath ok",
            "avg surviving paths",
            "guarantee",
        ],
    );
    let mut rng = util::rng(0xF3F3);
    // Small f shows the guarantee region; the tail shows where random
    // faults finally start hitting all m+1 paths at once.
    let sweep: &[usize] = &[0, 1, 2, 3, 4, 6, 9, 16, 32, 64, 128, 256, 512];
    for &f in sweep {
        let inputs: Vec<(NodeId, NodeId, FaultSet)> = (0..trials)
            .map(|_| {
                let (u, v) = util::random_pair(&h, &mut rng);
                // Sorted-slice representation: the analysis probes the
                // set once per path node, so membership is binary search.
                let faults = FaultSet::from_set(&random_fault_set(&h, f, &[u, v], &mut rng));
                (u, v, faults)
            })
            .collect();
        let (single_ok, multi_ok, surviving_sum) = analyze_trials(&h, &inputs);
        let guarantee = if f as u32 <= m { "f ≤ m ⇒ 1.0" } else { "" };
        if f as u32 <= m {
            assert_eq!(multi_ok, trials, "guarantee violated at f={f}");
        }
        t.row(vec![
            f.to_string(),
            util::f4(single_ok as f64 / trials as f64),
            util::f4(multi_ok as f64 / trials as f64),
            util::f2(surviving_sum as f64 / trials as f64),
            guarantee.into(),
        ]);
    }
    t.emit("f3_fault_tolerance");
    run_adversarial();
}

/// F3b — the adversarial companion: faults placed *on* the pair's
/// disjoint paths (one interior node per path, round-robin). Shows the
/// theorem's threshold is tight: f ≤ m adversarial faults still leave a
/// live path, f = m + 1 kills every blockable path.
pub fn run_adversarial() {
    use workloads::adversarial_fault_set;
    let m = 3u32;
    let h = Hhc::new(m).unwrap();
    let trials = 500u32;
    let mut t = Table::new(
        "F3b: adversarial fault placement on the disjoint family (HHC(3))",
        &["f", "multipath ok", "avg surviving paths", "note"],
    );
    let mut rng = util::rng(0xF3B0);
    for f in 0..=(m as usize + 2) {
        let inputs: Vec<(NodeId, NodeId, FaultSet)> = (0..trials)
            .map(|_| {
                let (u, v) = util::random_pair(&h, &mut rng);
                let paths = h.disjoint_paths(u, v).unwrap();
                let faults = FaultSet::from_set(&adversarial_fault_set(&paths, f, &mut rng));
                (u, v, faults)
            })
            .collect();
        let (_, multi_ok, surviving_sum) = analyze_trials(&h, &inputs);
        let note = if f as u32 <= m {
            "theorem: survives"
        } else {
            "beyond threshold"
        };
        if f as u32 <= m {
            assert_eq!(multi_ok, trials, "adversary beat the theorem at f={f}");
        }
        t.row(vec![
            f.to_string(),
            util::f4(multi_ok as f64 / trials as f64),
            util::f2(surviving_sum as f64 / trials as f64),
            note.into(),
        ]);
    }
    t.emit("f3b_adversarial");
}

/// F3c — constructive fault avoidance vs selection-time filtering.
///
/// F3's "multipath ok" is exactly what `Strategy::FaultAdaptive`
/// achieves: build the family fault-blind, keep the survivors. This
/// sweep puts `Strategy::FaultFree`'s engine — the fault-aware
/// construction `disjoint_paths_avoiding` — next to it at every fault
/// count: delivery is possible iff the avoiding family is non-empty.
/// The avoiding family always contains at least the plain survivors
/// (the constructor falls back to them), so its curve dominates the
/// filtered curve pointwise; the gap is the delivery the reroute
/// machinery buys once faults blanket the fault-blind family. The last
/// columns track the achieved fault diameter — the longest path any
/// avoiding family used — against the `wide.rs`/`bounds.rs` wide-
/// diameter upper bound.
///
/// Honours `EXPERIMENT_QUICK=1` (CI smoke): fewer trials, sparser sweep.
///
/// Both halves run on [`netsim::scenario::analysis::constructive_sweep`]
/// — the engine scenario files with `kind = "fault-analysis"` use — so
/// the driver and the scenario layer agree by construction. Note the
/// engine's determinism contract: each row draws from its own
/// `seed + row_index` stream (not one stream threaded across rows), so
/// rows are positionally reproducible in shrunk sweeps.
pub fn run_constructive() {
    use netsim::scenario::{constructive_sweep, Placement};
    let m = 3u32;
    let h = Hhc::new(m).unwrap();
    let quick = std::env::var("EXPERIMENT_QUICK").is_ok();
    let trials: u32 = if quick { 150 } else { 1000 };
    let sweep: &[usize] = if quick {
        &[0, 2, 4, 9, 32, 128, 512]
    } else {
        &[0, 1, 2, 3, 4, 6, 9, 16, 32, 64, 128, 256, 512]
    };
    let bound = hhc_core::bounds::wide_diameter_upper_bound(&h) as usize;
    let mut t = Table::new(
        &format!(
            "F3c: fault-aware construction vs selection-time filtering \
             (HHC(3), {trials} trials/row, wide-diameter bound {bound})"
        ),
        &[
            "f",
            "filtered ok",
            "constructive ok",
            "reroute rate",
            "avg avoiding paths",
            "max len",
        ],
    );
    let mut worst_len = 0usize;
    for row in constructive_sweep(&h, Placement::Random, sweep, trials, 0xF3C0) {
        worst_len = worst_len.max(row.max_len);
        if row.fault_count as u32 <= m {
            assert_eq!(
                row.constructive, trials,
                "guarantee violated at f={}",
                row.fault_count
            );
        }
        t.row(row_cells(&row));
    }
    assert!(
        worst_len <= bound,
        "avoiding path of length {worst_len} exceeds the wide-diameter bound {bound}"
    );
    t.emit("f3c_constructive");

    // The adversarial companion: faults placed *on* the pair's plain
    // family (one interior node per path, round-robin), the placement
    // that defeats selection-time filtering by design. At f = m + 1
    // filtering delivers 0; the fault-aware construction reroutes
    // around the blanket, because the adversary only knows the
    // fault-blind family.
    let adv_trials: u32 = if quick { 150 } else { 500 };
    let mut t = Table::new(
        &format!(
            "F3c-adv: constructive delivery under adversarial placement \
             on the fault-blind family (HHC(3), {adv_trials} trials/row)"
        ),
        &[
            "f",
            "filtered ok",
            "constructive ok",
            "reroute rate",
            "avg avoiding paths",
            "max len",
        ],
    );
    let adv_sweep: Vec<usize> = (0..=(m as usize + 2)).collect();
    for row in constructive_sweep(&h, Placement::Adversarial, &adv_sweep, adv_trials, 0xF3C1) {
        assert!(
            row.max_len <= bound,
            "avoiding path of length {} exceeds the wide-diameter bound {bound}",
            row.max_len
        );
        t.row(row_cells(&row));
    }
    t.emit("f3c_adversarial");
}

/// Formats one [`netsim::scenario::AnalysisRow`] as an F3c table row.
fn row_cells(row: &netsim::scenario::AnalysisRow) -> Vec<String> {
    let trials = row.trials as f64;
    vec![
        row.fault_count.to_string(),
        util::f4(row.filtered as f64 / trials),
        util::f4(row.constructive as f64 / trials),
        util::f4(row.rerouted as f64 / trials),
        util::f2(row.paths_sum as f64 / trials),
        row.max_len.to_string(),
    ]
}
