//! F3 — fault tolerance: delivery success vs number of node faults.
//!
//! For HHC(3) (m = 3, so 4 disjoint paths), sweeps the fault count f from
//! 0 to 3m and measures, over random pairs × random fault sets, the
//! probability that (a) the deterministic single route survives and
//! (b) at least one of the m+1 disjoint paths survives. Shape: multipath
//! is exactly 1.0 for f ≤ m (the paper's guarantee) and degrades slowly
//! after; single-path decays immediately.

use crate::table::Table;
use crate::util;
use hhc_core::Hhc;
use netsim::fault::analyze_with;
use netsim::{FaultSet, RouteScratch};
use workloads::random_fault_set;

pub fn run() {
    let m = 3u32;
    let h = Hhc::new(m).unwrap();
    let trials = 2000u32;
    let mut t = Table::new(
        "F3: delivery success probability vs node faults f (HHC(3), 2000 trials/row)",
        &[
            "f",
            "single-path ok",
            "multipath ok",
            "avg surviving paths",
            "guarantee",
        ],
    );
    let mut rng = util::rng(0xF3F3);
    let mut scratch = RouteScratch::new();
    // Small f shows the guarantee region; the tail shows where random
    // faults finally start hitting all m+1 paths at once.
    let sweep: &[usize] = &[0, 1, 2, 3, 4, 6, 9, 16, 32, 64, 128, 256, 512];
    for &f in sweep {
        let mut single_ok = 0u32;
        let mut multi_ok = 0u32;
        let mut surviving_sum = 0u64;
        for _ in 0..trials {
            let (u, v) = util::random_pair(&h, &mut rng);
            // Sorted-slice representation: the analysis probes the set
            // once per path node, so membership should be binary search.
            let faults = FaultSet::from_set(&random_fault_set(&h, f, &[u, v], &mut rng));
            let out = analyze_with(&h, u, v, &faults, &mut scratch);
            single_ok += out.single_path_ok as u32;
            multi_ok += out.multipath_ok as u32;
            surviving_sum += out.surviving_paths as u64;
        }
        let guarantee = if f as u32 <= m { "f ≤ m ⇒ 1.0" } else { "" };
        if f as u32 <= m {
            assert_eq!(multi_ok, trials, "guarantee violated at f={f}");
        }
        t.row(vec![
            f.to_string(),
            util::f4(single_ok as f64 / trials as f64),
            util::f4(multi_ok as f64 / trials as f64),
            util::f2(surviving_sum as f64 / trials as f64),
            guarantee.into(),
        ]);
    }
    t.emit("f3_fault_tolerance");
    run_adversarial();
}

/// F3b — the adversarial companion: faults placed *on* the pair's
/// disjoint paths (one interior node per path, round-robin). Shows the
/// theorem's threshold is tight: f ≤ m adversarial faults still leave a
/// live path, f = m + 1 kills every blockable path.
pub fn run_adversarial() {
    use workloads::adversarial_fault_set;
    let m = 3u32;
    let h = Hhc::new(m).unwrap();
    let trials = 500u32;
    let mut t = Table::new(
        "F3b: adversarial fault placement on the disjoint family (HHC(3))",
        &["f", "multipath ok", "avg surviving paths", "note"],
    );
    let mut rng = util::rng(0xF3B0);
    let mut scratch = RouteScratch::new();
    for f in 0..=(m as usize + 2) {
        let mut multi_ok = 0u32;
        let mut surviving_sum = 0u64;
        for _ in 0..trials {
            let (u, v) = util::random_pair(&h, &mut rng);
            let paths = h.disjoint_paths(u, v).unwrap();
            let faults = adversarial_fault_set(&paths, f, &mut rng);
            let out = analyze_with(&h, u, v, &faults, &mut scratch);
            multi_ok += out.multipath_ok as u32;
            surviving_sum += out.surviving_paths as u64;
        }
        let note = if f as u32 <= m {
            "theorem: survives"
        } else {
            "beyond threshold"
        };
        if f as u32 <= m {
            assert_eq!(multi_ok, trials, "adversary beat the theorem at f={f}");
        }
        t.row(vec![
            f.to_string(),
            util::f4(multi_ok as f64 / trials as f64),
            util::f2(surviving_sum as f64 / trials as f64),
            note.into(),
        ]);
    }
    t.emit("f3b_adversarial");
}
