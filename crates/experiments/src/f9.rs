//! F9 — finite buffers: throughput, loss and deadlock vs queue capacity.
//!
//! Open-loop simulators usually assume unbounded queues; real routers do
//! not. The measured result is stark: under sustained bit-complement
//! load, *every* finite capacity eventually wedges into the classic
//! store-and-forward buffer-cycle deadlock — the wedged count is exactly
//! the full buffer ring (2·|links|·cap... the whole network), and larger
//! buffers only deliver more packets before locking up. Unrestricted
//! Gray routing has cyclic channel dependencies, so this is expected:
//! the figure quantifies why real routers need deadlock-free routing
//! (turn restrictions, escape channels) or credit-based end-to-end
//! control, both out of scope for this suite.

use crate::table::Table;
use crate::util;
use hhc_core::Hhc;
use netsim::{SimConfig, Simulator, Strategy};
use workloads::Pattern;

pub fn run() {
    let mut t = Table::new(
        "F9: finite link buffers at load 0.3 (bit-complement, HHC(2))",
        &[
            "capacity",
            "injected",
            "delivered",
            "inj. drops",
            "HOL stalls",
            "wedged",
            "mean lat",
        ],
    );
    let h = Hhc::new(2).unwrap();
    for cap in [Some(1u64), Some(2), Some(4), Some(8), None] {
        let cfg = SimConfig {
            cycles: 600,
            drain_cycles: 20_000,
            inject_rate: 0.3,
            seed: 0xF9F9,
            queue_capacity: cap,
            ..SimConfig::default()
        };
        let s = Simulator::new(&h, Pattern::BitComplement, Strategy::SinglePath).run(cfg);
        assert_eq!(s.delivered + s.in_flight_at_end, s.injected, "conservation");
        t.row(vec![
            cap.map_or("∞".into(), |c| c.to_string()),
            s.injected.to_string(),
            s.delivered.to_string(),
            s.dropped_backpressure.to_string(),
            s.backpressure_stalls.to_string(),
            s.in_flight_at_end.to_string(),
            util::f2(s.mean_latency().unwrap_or(0.0)),
        ]);
    }
    t.emit("f9_finite_buffers");
}
