//! Minimal table rendering + CSV export (no external dependencies).

use std::fmt::Write as _;
use std::io::Write as _;

/// An in-memory table: header plus string rows, printable and CSV-dumpable.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "ragged table row");
        self.rows.push(cells);
    }

    /// Renders with padded columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "### {}", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for r in &self.rows {
            let _ = writeln!(out, "{}", line(r, &widths));
        }
        out
    }

    /// Prints to stdout and writes `results/<name>.csv`.
    pub fn emit(&self, name: &str) {
        println!("{}", self.render());
        if let Err(e) = self.write_csv(name) {
            eprintln!("warning: could not write results/{name}.csv: {e}");
        }
    }

    fn write_csv(&self, name: &str) -> std::io::Result<()> {
        std::fs::create_dir_all("results")?;
        let mut f = std::fs::File::create(format!("results/{name}.csv"))?;
        writeln!(f, "{}", self.header.join(","))?;
        for r in &self.rows {
            writeln!(f, "{}", r.join(","))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_pads_columns() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let out = t.render();
        assert!(out.contains("### demo"));
        assert!(out.contains("a  long-header"));
        let lines: Vec<&str> = out.lines().collect();
        // Header, rule, two rows (plus title).
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
