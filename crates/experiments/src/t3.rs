//! T3 — construction cost: constructive (symbolic) vs max-flow baseline.
//!
//! The baseline computes a Menger-optimal disjoint path set by vertex-split
//! Dinic on the *materialised* graph; it is exact but needs `O(2^n)` memory
//! and time per pair. The paper-style construction is symbolic and
//! output-sensitive. The table reports per-pair wall time for both (where
//! the baseline is feasible) and the resulting speedup, plus the path
//! counts as a cross-check (both must equal `m + 1`).

use crate::table::Table;
use crate::util;
use graphs::vertex_disjoint::vertex_disjoint_paths;
use hhc_core::{CrossingOrder, Hhc, NodeId, Workspace};
use std::time::Instant;

pub fn run() {
    let mut t = Table::new(
        "T3: construction cost per pair — constructive (per-pair / batched) vs max-flow baseline",
        &[
            "m",
            "nodes",
            "pairs",
            "per-pair µs",
            "batched µs",
            "flow µs",
            "speedup",
            "paths==m+1",
        ],
    );
    for m in 1..=6u32 {
        let h = Hhc::new(m).unwrap();
        let pairs: Vec<(NodeId, NodeId)> = {
            let mut rng = util::rng(0xACE + m as u64);
            let count = if m <= 3 { 64 } else { 256 };
            (0..count)
                .map(|_| util::random_pair(&h, &mut rng))
                .collect()
        };

        // Constructive timing, allocating per pair (the legacy API).
        let start = Instant::now();
        let mut ok = true;
        for &(u, v) in &pairs {
            let paths = hhc_core::disjoint::disjoint_paths(&h, u, v, CrossingOrder::Gray)
                .expect("construction");
            ok &= paths.len() as u32 == h.degree();
        }
        let cons_us = start.elapsed().as_secs_f64() * 1e6 / pairs.len() as f64;

        // Constructive timing through one reused workspace (batch engine).
        let mut ws = Workspace::new();
        let start = Instant::now();
        for &(u, v) in &pairs {
            let set = ws
                .construct(&h, u, v, CrossingOrder::Gray)
                .expect("construction");
            ok &= set.len() as u32 == h.degree();
        }
        let batch_us = start.elapsed().as_secs_f64() * 1e6 / pairs.len() as f64;

        // Baseline timing (materialisable sizes only).
        let (flow_cell, speedup_cell) = if m <= 3 {
            let g = h.materialize().unwrap();
            let start = Instant::now();
            for &(u, v) in &pairs {
                let ps = vertex_disjoint_paths(&g, u.raw() as u32, v.raw() as u32);
                ok &= ps.len() as u32 == h.degree();
            }
            let flow_us = start.elapsed().as_secs_f64() * 1e6 / pairs.len() as f64;
            (util::f2(flow_us), util::f2(flow_us / batch_us))
        } else {
            (
                "— (2^{n} nodes)".replace("{n}", &h.n().to_string()),
                "—".into(),
            )
        };

        t.row(vec![
            m.to_string(),
            format!("2^{}", h.n()),
            pairs.len().to_string(),
            util::f2(cons_us),
            util::f2(batch_us),
            flow_cell,
            speedup_cell,
            ok.to_string(),
        ]);
    }
    t.emit("t3_cost");
}
