//! T6 — fault diameter: worst-case routed distance under m faults.
//!
//! With at most `m` node faults (alive endpoints), the disjoint family
//! always contains a surviving path, so the *fault diameter* is bounded
//! by the construction's wide-diameter bound. This experiment measures,
//! over random pairs × random m-fault sets on materialisable instances:
//!
//! * the best *surviving constructed* path length (what fault-adaptive
//!   routing actually uses), and
//! * the true shortest fault-avoiding distance (BFS ground truth),
//!
//! and confirms constructed ≥ truth, constructed ≤ bound. The gap is the
//! price of obliviousness (the construction never searches the graph).

use crate::table::Table;
use crate::util;
use graphs::Bfs;
use hhc_core::{bounds, CrossingOrder, Hhc, Workspace};
use netsim::strategy::path_blocked;
use std::collections::HashSet;
use workloads::random_fault_set;

pub fn run() {
    let mut t = Table::new(
        "T6: fault diameter under f = m random faults (surviving path vs BFS truth)",
        &[
            "m",
            "trials",
            "max surviving len",
            "max BFS dist",
            "avg gap",
            "bound",
            "fault-free diameter",
        ],
    );
    for m in [2u32, 3] {
        let h = Hhc::new(m).unwrap();
        let g = h.materialize().unwrap();
        let mut rng = util::rng(0x76 + m as u64);
        let mut ws = Workspace::new();
        let trials = 800;
        let mut max_surv = 0u32;
        let mut max_bfs = 0u32;
        let mut gap_sum = 0f64;
        for _ in 0..trials {
            let (u, v) = util::random_pair(&h, &mut rng);
            let faults = random_fault_set(&h, m as usize, &[u, v], &mut rng);
            let paths = ws.construct(&h, u, v, CrossingOrder::Gray).unwrap();
            let best_surviving = paths
                .iter()
                .filter(|p| !path_blocked(p, &faults))
                .map(|p| (p.len() - 1) as u32)
                .min()
                .expect("theorem: at least one path survives f ≤ m");
            let fault_ids: HashSet<u32> = faults.iter().map(|x| x.raw() as u32).collect();
            let bfs = Bfs::run_avoiding(&g, u.raw() as u32, |x| fault_ids.contains(&x));
            let truth = bfs.dist(v.raw() as u32).expect("reachable per theorem");
            assert!(best_surviving >= truth);
            assert!(best_surviving <= bounds::length_bound(&h, u, v));
            max_surv = max_surv.max(best_surviving);
            max_bfs = max_bfs.max(truth);
            gap_sum += (best_surviving - truth) as f64;
        }
        t.row(vec![
            m.to_string(),
            trials.to_string(),
            max_surv.to_string(),
            max_bfs.to_string(),
            util::f2(gap_sum / trials as f64),
            bounds::wide_diameter_upper_bound(&h).to_string(),
            h.diameter().to_string(),
        ]);
    }
    t.emit("t6_fault_diameter");
}
