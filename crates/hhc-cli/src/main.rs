//! `hhc` — command-line interface to the HHC suite.
//!
//! See [`hhc_cli::USAGE`] or run without arguments.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match hhc_cli::parse(&args).and_then(|cmd| hhc_cli::execute(&cmd)) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}
