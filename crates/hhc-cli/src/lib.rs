//! Command parsing and execution for the `hhc` binary.
//!
//! Kept in a library so the dispatch logic is unit-testable; `main.rs`
//! only forwards `std::env::args` and sets the exit code.
//!
//! ```text
//! hhc info <m>
//! hhc route <m> <X:Y> <X:Y>
//! hhc disjoint <m> <X:Y> <X:Y> [--sorted]
//! hhc wide <m> [--samples N]
//! hhc broadcast <m> <X:Y>
//! hhc trace <m> <X:Y> <X:Y>
//! ```
//!
//! Node syntax: `X:Y` where both fields are hexadecimal (`0x` optional),
//! e.g. `a5:3` = cube field 0xA5, node field 3.

use hhc_core::disjoint::ConstructionCase;
use hhc_core::{bounds, collectives, disjoint, verify, wide, CrossingOrder, Hhc, NodeId};
use std::fmt::Write as _;

/// A parsed command, ready to execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    Info {
        m: u32,
    },
    Route {
        m: u32,
        u: (u128, u32),
        v: (u128, u32),
    },
    Disjoint {
        m: u32,
        u: (u128, u32),
        v: (u128, u32),
        sorted: bool,
    },
    Wide {
        m: u32,
        samples: u64,
    },
    Broadcast {
        m: u32,
        root: (u128, u32),
    },
    Trace {
        m: u32,
        u: (u128, u32),
        v: (u128, u32),
    },
}

/// A CLI error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Usage text.
pub const USAGE: &str = "usage:
  hhc info <m>                         topology facts for HHC(m)
  hhc route <m> <X:Y> <X:Y>            single Gray route between two nodes
  hhc disjoint <m> <X:Y> <X:Y> [--sorted]
                                       the m+1 node-disjoint paths (verified)
  hhc wide <m> [--samples N]           wide-diameter estimate
  hhc broadcast <m> <X:Y>              one-port broadcast schedule (m ≤ 3)
  hhc trace <m> <X:Y> <X:Y>            dissect the construction (plans, fans)
node syntax: X:Y, both fields hexadecimal (e.g. a5:3)";

/// Parses a node literal `X:Y` (hex fields, optional `0x` prefixes).
pub fn parse_node(s: &str) -> Result<(u128, u32), CliError> {
    let (x, y) = s
        .split_once(':')
        .ok_or_else(|| CliError(format!("node {s:?} is not of the form X:Y")))?;
    let strip = |t: &str| {
        t.trim()
            .trim_start_matches("0x")
            .trim_start_matches("0X")
            .to_string()
    };
    let xv = u128::from_str_radix(&strip(x), 16)
        .map_err(|e| CliError(format!("cube field {x:?}: {e}")))?;
    let yv = u32::from_str_radix(&strip(y), 16)
        .map_err(|e| CliError(format!("node field {y:?}: {e}")))?;
    Ok((xv, yv))
}

/// Parses an argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let cmd = args.first().ok_or_else(|| CliError(USAGE.into()))?;
    let m = |i: usize| -> Result<u32, CliError> {
        args.get(i)
            .ok_or_else(|| CliError("missing <m>".into()))?
            .parse::<u32>()
            .map_err(|e| CliError(format!("bad m: {e}")))
    };
    let node = |i: usize| -> Result<(u128, u32), CliError> {
        parse_node(args.get(i).ok_or_else(|| CliError("missing node".into()))?)
    };
    match cmd.as_str() {
        "info" => Ok(Command::Info { m: m(1)? }),
        "route" => Ok(Command::Route {
            m: m(1)?,
            u: node(2)?,
            v: node(3)?,
        }),
        "disjoint" => Ok(Command::Disjoint {
            m: m(1)?,
            u: node(2)?,
            v: node(3)?,
            sorted: args.get(4).map(|s| s == "--sorted").unwrap_or(false),
        }),
        "wide" => {
            let samples = match (args.get(2).map(String::as_str), args.get(3)) {
                (Some("--samples"), Some(n)) => n
                    .parse()
                    .map_err(|e| CliError(format!("bad sample count: {e}")))?,
                (None, _) => 1000,
                _ => return Err(CliError(USAGE.into())),
            };
            Ok(Command::Wide { m: m(1)?, samples })
        }
        "broadcast" => Ok(Command::Broadcast {
            m: m(1)?,
            root: node(2)?,
        }),
        "trace" => Ok(Command::Trace {
            m: m(1)?,
            u: node(2)?,
            v: node(3)?,
        }),
        other => Err(CliError(format!("unknown command {other:?}\n{USAGE}"))),
    }
}

/// Executes a command, returning the text to print.
pub fn execute(cmd: &Command) -> Result<String, CliError> {
    let mut out = String::new();
    let net = |m: u32| Hhc::new(m).map_err(|e| CliError(e.to_string()));
    let mk = |h: &Hhc, (x, y): (u128, u32)| -> Result<NodeId, CliError> {
        h.node(x, y).map_err(|e| CliError(e.to_string()))
    };
    match *cmd {
        Command::Info { m } => {
            let h = net(m)?;
            let _ = writeln!(out, "HHC({m}): n = {} address bits", h.n());
            let _ = writeln!(out, "  nodes         : 2^{} = {}", h.n(), h.num_nodes());
            let _ = writeln!(out, "  degree        : {} (= connectivity)", h.degree());
            let _ = writeln!(out, "  son-cube      : Q_{m} ({} nodes)", h.positions());
            let _ = writeln!(out, "  diameter      : {}", h.diameter());
            let _ = writeln!(
                out,
                "  wide-diameter ≤ {}",
                bounds::wide_diameter_upper_bound(&h)
            );
        }
        Command::Route { m, u, v } => {
            let h = net(m)?;
            let (u, v) = (mk(&h, u)?, mk(&h, v)?);
            let p = h.route(u, v).map_err(|e| CliError(e.to_string()))?;
            let _ = writeln!(out, "route length {}:", p.len() - 1);
            for x in &p {
                let _ = writeln!(out, "  {}", h.format_node(*x));
            }
        }
        Command::Disjoint { m, u, v, sorted } => {
            let h = net(m)?;
            let (u, v) = (mk(&h, u)?, mk(&h, v)?);
            let order = if sorted {
                CrossingOrder::Sorted
            } else {
                CrossingOrder::Gray
            };
            let paths =
                disjoint::disjoint_paths(&h, u, v, order).map_err(|e| CliError(e.to_string()))?;
            verify::verify_disjoint_paths(&h, u, v, &paths).map_err(CliError)?;
            let bound = bounds::length_bound(&h, u, v);
            let _ = writeln!(
                out,
                "{} node-disjoint paths (verified; bound {bound}):",
                paths.len()
            );
            for (i, p) in paths.iter().enumerate() {
                let hops: Vec<String> = p.iter().map(|x| h.format_node(*x)).collect();
                let _ = writeln!(out, "  P{i} len {:2}: {}", p.len() - 1, hops.join(" -> "));
            }
        }
        Command::Wide { m, samples } => {
            let h = net(m)?;
            let est = if m <= 2 {
                wide::exhaustive(&h)
            } else {
                wide::sampled(&h, samples, 0xC11)
            };
            let _ = writeln!(
                out,
                "wide diameter estimate over {} pairs: observed max {}, bound {}, diameter {}",
                est.pairs,
                est.observed_max,
                est.upper_bound,
                h.diameter()
            );
        }
        Command::Broadcast { m, root } => {
            let h = net(m)?;
            let root = mk(&h, root)?;
            let schedule =
                collectives::one_port_broadcast(&h, root).map_err(|e| CliError(e.to_string()))?;
            let _ = writeln!(
                out,
                "one-port broadcast from {}: {} rounds (lower bound {})",
                h.format_node(root),
                schedule.len(),
                collectives::broadcast_round_lower_bound(&h)
            );
            for (r, round) in schedule.iter().enumerate() {
                let _ = writeln!(out, "  round {r:2}: {} sends", round.len());
            }
        }
        Command::Trace { m, u, v } => {
            let h = net(m)?;
            let (u, v) = (mk(&h, u)?, mk(&h, v)?);
            let (paths, trace) = disjoint::disjoint_paths_traced(&h, u, v, CrossingOrder::Gray)
                .map_err(|e| CliError(e.to_string()))?;
            verify::verify_disjoint_paths(&h, u, v, &paths).map_err(CliError)?;
            let _ = writeln!(
                out,
                "case {:?}: {} rotations + {} detours",
                trace.case, trace.rotations, trace.detours
            );
            if trace.case == ConstructionCase::CrossCube {
                let _ = writeln!(out, "source fan → {:?}", trace.source_fan_targets);
                let _ = writeln!(out, "target fan → {:?}", trace.target_fan_targets);
            }
            for (i, (path, plan)) in paths.iter().zip(&trace.plans).enumerate() {
                match plan {
                    Some(p) => {
                        let _ = writeln!(
                            out,
                            "  P{i}: len {:2}, crossings {:?}",
                            path.len() - 1,
                            p.positions
                        );
                    }
                    None => {
                        let _ = writeln!(out, "  P{i}: len {:2}, in-cube", path.len() - 1);
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_nodes() {
        assert_eq!(parse_node("a5:3"), Ok((0xA5, 3)));
        assert_eq!(parse_node("0xFF:0x7"), Ok((0xFF, 7)));
        assert!(parse_node("zz:1").is_err());
        assert!(parse_node("12").is_err());
    }

    #[test]
    fn parse_commands() {
        assert_eq!(parse(&argv("info 3")), Ok(Command::Info { m: 3 }));
        assert_eq!(
            parse(&argv("route 2 0:1 f:2")),
            Ok(Command::Route {
                m: 2,
                u: (0, 1),
                v: (0xF, 2)
            })
        );
        assert_eq!(
            parse(&argv("disjoint 2 0:1 f:2 --sorted")),
            Ok(Command::Disjoint {
                m: 2,
                u: (0, 1),
                v: (0xF, 2),
                sorted: true
            })
        );
        assert_eq!(
            parse(&argv("wide 4 --samples 50")),
            Ok(Command::Wide { m: 4, samples: 50 })
        );
        assert_eq!(
            parse(&argv("wide 4")),
            Ok(Command::Wide {
                m: 4,
                samples: 1000
            })
        );
        assert_eq!(
            parse(&argv("trace 3 0:1 2b:4")),
            Ok(Command::Trace {
                m: 3,
                u: (0, 1),
                v: (0x2B, 4)
            })
        );
        assert!(parse(&argv("bogus")).is_err());
        assert!(parse(&argv("")).is_err());
    }

    #[test]
    fn execute_info() {
        let out = execute(&Command::Info { m: 3 }).unwrap();
        assert!(out.contains("2^11"));
        assert!(out.contains("diameter      : 16"));
    }

    #[test]
    fn execute_route_and_disjoint() {
        let out = execute(&Command::Route {
            m: 2,
            u: (0, 0),
            v: (0xA, 3),
        })
        .unwrap();
        assert!(out.contains("route length"));
        let out = execute(&Command::Disjoint {
            m: 2,
            u: (0, 0),
            v: (0xA, 3),
            sorted: false,
        })
        .unwrap();
        assert!(out.contains("3 node-disjoint paths (verified"));
    }

    #[test]
    fn execute_wide_and_broadcast() {
        let out = execute(&Command::Wide { m: 1, samples: 10 }).unwrap();
        assert!(out.contains("observed max"));
        let out = execute(&Command::Broadcast { m: 1, root: (0, 0) }).unwrap();
        assert!(out.contains("rounds"));
    }

    #[test]
    fn execute_trace() {
        let out = execute(&Command::Trace {
            m: 3,
            u: (0, 1),
            v: (0x2B, 4),
        })
        .unwrap();
        assert!(out.contains("rotations"));
        assert!(out.contains("P3"));
        let same = execute(&Command::Trace {
            m: 3,
            u: (5, 0),
            v: (5, 7),
        })
        .unwrap();
        assert!(same.contains("SameCube"));
        assert!(same.contains("in-cube"));
    }

    #[test]
    fn errors_are_user_facing() {
        assert!(execute(&Command::Info { m: 9 }).is_err());
        let err = execute(&Command::Route {
            m: 2,
            u: (0, 0),
            v: (0x1F, 0),
        })
        .unwrap_err();
        assert!(err.0.contains("out of range"));
        // Equal nodes for disjoint is an error.
        assert!(execute(&Command::Disjoint {
            m: 2,
            u: (0, 0),
            v: (0, 0),
            sorted: false
        })
        .is_err());
    }
}
