//! Command parsing and execution for the `hhc` binary.
//!
//! Kept in a library so the dispatch logic is unit-testable; `main.rs`
//! only forwards `std::env::args` and sets the exit code.
//!
//! ```text
//! hhc info <m>
//! hhc route <m> <X:Y> <X:Y>
//! hhc disjoint <m> <X:Y> <X:Y> [--sorted] [--metrics]
//! hhc wide <m> [--samples N] [--metrics]
//! hhc stats <m> [--pairs N] [--seed S]
//! hhc broadcast <m> <X:Y>
//! hhc trace <m> <X:Y> <X:Y>
//! ```
//!
//! Node syntax: `X:Y` where both fields are hexadecimal (`0x` optional),
//! e.g. `a5:3` = cube field 0xA5, node field 3.
//!
//! No subcommand panics on a syntactically valid invocation: every
//! failure — bad parameters, out-of-range nodes, unsupported scales —
//! comes back as a [`CliError`] (exit code 2).

use hhc_core::disjoint::ConstructionCase;
use hhc_core::{
    batch, bounds, collectives, disjoint, verify, wide, CrossingOrder, Hhc, NodeId, Workspace,
};
use std::fmt::Write as _;

/// A parsed command, ready to execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    Info {
        m: u32,
    },
    Route {
        m: u32,
        u: (u128, u32),
        v: (u128, u32),
    },
    Disjoint {
        m: u32,
        u: (u128, u32),
        v: (u128, u32),
        sorted: bool,
        metrics: bool,
        /// Faulty nodes the family must avoid (empty = plain construction).
        avoid: Vec<(u128, u32)>,
    },
    Wide {
        m: u32,
        samples: u64,
        metrics: bool,
    },
    Stats {
        m: u32,
        pairs: usize,
        seed: u64,
    },
    Broadcast {
        m: u32,
        root: (u128, u32),
    },
    Trace {
        m: u32,
        u: (u128, u32),
        v: (u128, u32),
    },
    Sim {
        /// Path of the scenario TOML file.
        scenario: String,
        /// What to do with it (run, record, replay, shrink).
        mode: SimMode,
        /// Golden trace path override (default:
        /// `results/scenarios/<name>.trace`).
        golden: Option<String>,
    },
    Serve {
        m: u32,
        /// Query file path, or `-` for stdin: one `X:Y X:Y` pair per
        /// line, `#` comments and blank lines skipped.
        queries: String,
        /// Optional fault schedule path: `<at> <+|-> <X:Y>` per line,
        /// applied at the window boundary before query number `<at>`.
        faults: Option<String>,
        /// Worker threads (`None` = the router's default).
        threads: Option<usize>,
        /// Queries per reporting window.
        window: usize,
        metrics: bool,
    },
}

/// What `hhc sim` does with a parsed scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimMode {
    /// Execute and print the report; expectation violations are errors.
    #[default]
    Run,
    /// Execute and (over)write the golden trace file.
    Record,
    /// Execute and byte-compare against the golden trace file.
    Replay,
    /// Delta-debug a failing scenario to a minimal reproducer and
    /// print its canonical TOML.
    Shrink,
}

/// A CLI error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Usage text.
pub const USAGE: &str = "usage:
  hhc info <m>                         topology facts for HHC(m)
  hhc route <m> <X:Y> <X:Y>            single Gray route between two nodes
  hhc disjoint <m> <X:Y> <X:Y> [--sorted] [--metrics] [--avoid X:Y,X:Y,...]
                                       the m+1 node-disjoint paths (verified);
                                       --avoid builds a family around faults
  hhc wide <m> [--samples N] [--metrics]
                                       wide-diameter estimate
  hhc stats <m> [--pairs N] [--seed S] construction metrics over random pairs
  hhc broadcast <m> <X:Y>              one-port broadcast schedule (m ≤ 3)
  hhc trace <m> <X:Y> <X:Y>            dissect the construction (plans, fans)
  hhc sim --scenario <file> [--record|--replay|--shrink] [--golden <path>]
                                       run a declarative scenario (see
                                       SCENARIOS.md); --record writes the
                                       golden trace, --replay byte-compares
                                       against it, --shrink minimises a
                                       failing scenario
  hhc serve <m> --queries <file|-> [--faults <file>] [--threads N]
                [--window N] [--metrics]
                                       answer a query stream through the
                                       concurrent tiered-cache router;
                                       queries are `X:Y X:Y` lines, the
                                       fault schedule is `<at> <+|-> <X:Y>`
                                       lines applied at window boundaries;
                                       reports per-window qps and p50/p99
                                       service time
node syntax: X:Y, both fields hexadecimal (e.g. a5:3)
--metrics appends a JSON line with solver/fan/timing counters";

/// Parses a node literal `X:Y` (hex fields, optional `0x` prefixes).
pub fn parse_node(s: &str) -> Result<(u128, u32), CliError> {
    let (x, y) = s
        .split_once(':')
        .ok_or_else(|| CliError(format!("node {s:?} is not of the form X:Y")))?;
    let strip = |t: &str| {
        t.trim()
            .trim_start_matches("0x")
            .trim_start_matches("0X")
            .to_string()
    };
    let xv = u128::from_str_radix(&strip(x), 16)
        .map_err(|e| CliError(format!("cube field {x:?}: {e}")))?;
    let yv = u32::from_str_radix(&strip(y), 16)
        .map_err(|e| CliError(format!("node field {y:?}: {e}")))?;
    Ok((xv, yv))
}

/// Parses an argument vector (without the program name).
///
/// Parsing is strict: unknown flags, repeated flags and stray positional
/// arguments are errors, never silently ignored.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let cmd = args.first().ok_or_else(|| CliError(USAGE.into()))?;
    let m = |i: usize| -> Result<u32, CliError> {
        args.get(i)
            .ok_or_else(|| CliError("missing <m>".into()))?
            .parse::<u32>()
            .map_err(|e| CliError(format!("bad m: {e}")))
    };
    let node = |i: usize| -> Result<(u128, u32), CliError> {
        parse_node(args.get(i).ok_or_else(|| CliError("missing node".into()))?)
    };
    // Rejects anything beyond the expected positional arguments (for
    // commands without flags).
    let exact = |n: usize| -> Result<(), CliError> {
        match args.get(n) {
            Some(extra) => Err(CliError(format!("unexpected argument {extra:?}\n{USAGE}"))),
            None => Ok(()),
        }
    };
    match cmd.as_str() {
        "info" => {
            exact(2)?;
            Ok(Command::Info { m: m(1)? })
        }
        "route" => {
            exact(4)?;
            Ok(Command::Route {
                m: m(1)?,
                u: node(2)?,
                v: node(3)?,
            })
        }
        "disjoint" => {
            let (mut sorted, mut metrics) = (false, false);
            let mut avoid: Option<Vec<(u128, u32)>> = None;
            let mut i = 4.min(args.len());
            while i < args.len() {
                match args[i].as_str() {
                    "--sorted" if !sorted => {
                        sorted = true;
                        i += 1;
                    }
                    "--metrics" if !metrics => {
                        metrics = true;
                        i += 1;
                    }
                    "--avoid" if avoid.is_none() => {
                        let list = args
                            .get(i + 1)
                            .ok_or_else(|| CliError("--avoid needs a node list".into()))?;
                        avoid = Some(
                            list.split(',')
                                .map(parse_node)
                                .collect::<Result<Vec<_>, _>>()?,
                        );
                        i += 2;
                    }
                    other => return Err(CliError(format!("unexpected argument {other:?}"))),
                }
            }
            Ok(Command::Disjoint {
                m: m(1)?,
                u: node(2)?,
                v: node(3)?,
                sorted,
                metrics,
                avoid: avoid.unwrap_or_default(),
            })
        }
        "wide" => {
            let (mut samples, mut metrics) = (None, false);
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--samples" if samples.is_none() => {
                        let n = args
                            .get(i + 1)
                            .ok_or_else(|| CliError("--samples needs a count".into()))?;
                        samples = Some(
                            n.parse()
                                .map_err(|e| CliError(format!("bad sample count: {e}")))?,
                        );
                        i += 2;
                    }
                    "--metrics" if !metrics => {
                        metrics = true;
                        i += 1;
                    }
                    other => return Err(CliError(format!("unexpected argument {other:?}"))),
                }
            }
            Ok(Command::Wide {
                m: m(1)?,
                samples: samples.unwrap_or(1000),
                metrics,
            })
        }
        "stats" => {
            let (mut pairs, mut seed) = (None, None);
            let mut i = 2;
            while i < args.len() {
                let val = |name: &str| -> Result<&String, CliError> {
                    args.get(i + 1)
                        .ok_or_else(|| CliError(format!("{name} needs a value")))
                };
                match args[i].as_str() {
                    "--pairs" if pairs.is_none() => {
                        pairs = Some(
                            val("--pairs")?
                                .parse()
                                .map_err(|e| CliError(format!("bad pair count: {e}")))?,
                        );
                        i += 2;
                    }
                    "--seed" if seed.is_none() => {
                        seed = Some(
                            val("--seed")?
                                .parse()
                                .map_err(|e| CliError(format!("bad seed: {e}")))?,
                        );
                        i += 2;
                    }
                    other => return Err(CliError(format!("unexpected argument {other:?}"))),
                }
            }
            Ok(Command::Stats {
                m: m(1)?,
                pairs: pairs.unwrap_or(1000),
                seed: seed.unwrap_or(0xC11),
            })
        }
        "broadcast" => {
            exact(3)?;
            Ok(Command::Broadcast {
                m: m(1)?,
                root: node(2)?,
            })
        }
        "trace" => {
            exact(4)?;
            Ok(Command::Trace {
                m: m(1)?,
                u: node(2)?,
                v: node(3)?,
            })
        }
        "sim" => {
            let mut scenario: Option<String> = None;
            let mut mode: Option<SimMode> = None;
            let mut golden: Option<String> = None;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--scenario" if scenario.is_none() => {
                        scenario = Some(
                            args.get(i + 1)
                                .ok_or_else(|| CliError("--scenario needs a file path".into()))?
                                .clone(),
                        );
                        i += 2;
                    }
                    "--golden" if golden.is_none() => {
                        golden = Some(
                            args.get(i + 1)
                                .ok_or_else(|| CliError("--golden needs a file path".into()))?
                                .clone(),
                        );
                        i += 2;
                    }
                    flag @ ("--record" | "--replay" | "--shrink") if mode.is_none() => {
                        mode = Some(match flag {
                            "--record" => SimMode::Record,
                            "--replay" => SimMode::Replay,
                            _ => SimMode::Shrink,
                        });
                        i += 1;
                    }
                    other => return Err(CliError(format!("unexpected argument {other:?}"))),
                }
            }
            Ok(Command::Sim {
                scenario: scenario.ok_or_else(|| CliError("sim needs --scenario <file>".into()))?,
                mode: mode.unwrap_or_default(),
                golden,
            })
        }
        "serve" => {
            let mut queries: Option<String> = None;
            let mut faults: Option<String> = None;
            let mut threads: Option<usize> = None;
            let mut window: Option<usize> = None;
            let mut metrics = false;
            let mut i = 2.min(args.len());
            while i < args.len() {
                let val = |name: &str| -> Result<&String, CliError> {
                    args.get(i + 1)
                        .ok_or_else(|| CliError(format!("{name} needs a value")))
                };
                match args[i].as_str() {
                    "--queries" if queries.is_none() => {
                        queries = Some(val("--queries")?.clone());
                        i += 2;
                    }
                    "--faults" if faults.is_none() => {
                        faults = Some(val("--faults")?.clone());
                        i += 2;
                    }
                    "--threads" if threads.is_none() => {
                        let n: usize = val("--threads")?
                            .parse()
                            .map_err(|e| CliError(format!("bad thread count: {e}")))?;
                        if n == 0 {
                            return Err(CliError("--threads must be at least 1".into()));
                        }
                        threads = Some(n);
                        i += 2;
                    }
                    "--window" if window.is_none() => {
                        let n: usize = val("--window")?
                            .parse()
                            .map_err(|e| CliError(format!("bad window size: {e}")))?;
                        if n == 0 {
                            return Err(CliError("--window must be at least 1".into()));
                        }
                        window = Some(n);
                        i += 2;
                    }
                    "--metrics" if !metrics => {
                        metrics = true;
                        i += 1;
                    }
                    other => return Err(CliError(format!("unexpected argument {other:?}"))),
                }
            }
            Ok(Command::Serve {
                m: m(1)?,
                queries: queries
                    .ok_or_else(|| CliError("serve needs --queries <file|->".into()))?,
                faults,
                threads,
                window: window.unwrap_or(256),
                metrics,
            })
        }
        other => Err(CliError(format!("unknown command {other:?}\n{USAGE}"))),
    }
}

/// One fault-schedule event: before query `at`, add (`true`) or clear
/// (`false`) the node.
type FaultEvent = (usize, bool, (u128, u32));

/// Parses a fault schedule: one `<at> <+|-> <X:Y>` per line, `#`
/// comments and blank lines skipped. Events keep file order within the
/// same `at` (a stable sort happens at execution time).
fn parse_fault_schedule(src: &str) -> Result<Vec<FaultEvent>, CliError> {
    let mut events = Vec::new();
    for (ln, line) in src.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let err = |what: &str| CliError(format!("fault schedule line {}: {what}", ln + 1));
        let at: usize = parts
            .next()
            .ok_or_else(|| err("missing query index"))?
            .parse()
            .map_err(|e| err(&format!("bad query index: {e}")))?;
        let add = match parts.next() {
            Some("+") => true,
            Some("-") => false,
            _ => return Err(err("expected `+` or `-` after the query index")),
        };
        let node = parse_node(parts.next().ok_or_else(|| err("missing node"))?)?;
        if parts.next().is_some() {
            return Err(err("trailing tokens"));
        }
        events.push((at, add, node));
    }
    Ok(events)
}

/// An `(X, Y)` address pair as parsed from text, before validation
/// against a concrete `Hhc`.
type RawPair = ((u128, u32), (u128, u32));

/// Parses a query stream: one `X:Y X:Y` pair per line, `#` comments and
/// blank lines skipped.
fn parse_query_stream(src: &str) -> Result<Vec<RawPair>, CliError> {
    let mut pairs = Vec::new();
    for (ln, line) in src.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let err = |what: &str| CliError(format!("query line {}: {what}", ln + 1));
        let u = parse_node(parts.next().ok_or_else(|| err("missing source node"))?)?;
        let v = parse_node(parts.next().ok_or_else(|| err("missing target node"))?)?;
        if parts.next().is_some() {
            return Err(err("trailing tokens"));
        }
        pairs.push((u, v));
    }
    Ok(pairs)
}

/// Executes a command, returning the text to print.
pub fn execute(cmd: &Command) -> Result<String, CliError> {
    let mut out = String::new();
    let net = |m: u32| Hhc::new(m).map_err(|e| CliError(e.to_string()));
    let mk = |h: &Hhc, (x, y): (u128, u32)| -> Result<NodeId, CliError> {
        h.node(x, y).map_err(|e| CliError(e.to_string()))
    };
    match *cmd {
        Command::Info { m } => {
            let h = net(m)?;
            let _ = writeln!(out, "HHC({m}): n = {} address bits", h.n());
            let _ = writeln!(out, "  nodes         : 2^{} = {}", h.n(), h.num_nodes());
            let _ = writeln!(out, "  degree        : {} (= connectivity)", h.degree());
            let _ = writeln!(out, "  son-cube      : Q_{m} ({} nodes)", h.positions());
            let _ = writeln!(out, "  diameter      : {}", h.diameter());
            let _ = writeln!(
                out,
                "  wide-diameter ≤ {}",
                bounds::wide_diameter_upper_bound(&h)
            );
        }
        Command::Route { m, u, v } => {
            let h = net(m)?;
            let (u, v) = (mk(&h, u)?, mk(&h, v)?);
            let p = h.route(u, v).map_err(|e| CliError(e.to_string()))?;
            let _ = writeln!(out, "route length {}:", p.len() - 1);
            for x in &p {
                let _ = writeln!(out, "  {}", h.format_node(*x));
            }
        }
        Command::Disjoint {
            m,
            u,
            v,
            sorted,
            metrics,
            ref avoid,
        } => {
            let h = net(m)?;
            let (u, v) = (mk(&h, u)?, mk(&h, v)?);
            let order = if sorted {
                CrossingOrder::Sorted
            } else {
                CrossingOrder::Gray
            };
            let mut ws = Workspace::new();
            ws.enable_timing(metrics);
            let paths = if avoid.is_empty() {
                let paths = ws
                    .construct(&h, u, v, order)
                    .map_err(|e| CliError(e.to_string()))?
                    .to_paths();
                let bound = bounds::length_bound(&h, u, v);
                let _ = writeln!(
                    out,
                    "{} node-disjoint paths (verified; bound {bound}):",
                    paths.len()
                );
                paths
            } else {
                let faults = avoid
                    .iter()
                    .map(|&a| mk(&h, a))
                    .collect::<Result<std::collections::HashSet<NodeId>, _>>()?;
                let (outcome, set) = ws
                    .construct_avoiding(&h, u, v, order, &faults)
                    .map_err(|e| CliError(e.to_string()))?;
                let paths = set.to_paths();
                for p in &paths {
                    if let Some(w) = p.iter().find(|w| faults.contains(w)) {
                        return Err(CliError(format!(
                            "internal error: path visits avoided node {}",
                            h.format_node(*w)
                        )));
                    }
                }
                let _ = writeln!(
                    out,
                    "{} node-disjoint paths avoiding {} faults (verified; {}):",
                    paths.len(),
                    faults.len(),
                    if outcome.rerouted {
                        "rerouted around faults"
                    } else {
                        "plain family already fault-free"
                    }
                );
                paths
            };
            verify::verify_disjoint_paths(&h, u, v, &paths).map_err(CliError)?;
            for (i, p) in paths.iter().enumerate() {
                let hops: Vec<String> = p.iter().map(|x| h.format_node(*x)).collect();
                let _ = writeln!(out, "  P{i} len {:2}: {}", p.len() - 1, hops.join(" -> "));
            }
            if metrics {
                let _ = writeln!(out, "metrics: {}", ws.metrics().to_json());
            }
        }
        Command::Wide {
            m,
            samples,
            metrics,
        } => {
            let h = net(m)?;
            let mut ws = Workspace::new();
            ws.enable_timing(metrics);
            let est = if m <= wide::EXHAUSTIVE_MAX_M {
                wide::exhaustive_with(&h, &mut ws)
            } else {
                wide::sampled_with(&h, samples, 0xC11, &mut ws)
            }
            .map_err(|e| CliError(e.to_string()))?;
            let _ = writeln!(
                out,
                "wide diameter estimate over {} pairs: observed max {}, bound {}, diameter {}",
                est.pairs,
                est.observed_max,
                est.upper_bound,
                h.diameter()
            );
            if metrics {
                let _ = writeln!(out, "metrics: {}", ws.metrics().to_json());
            }
        }
        Command::Stats { m, pairs, seed } => {
            let h = net(m)?;
            let pair_list = workloads::sampling::random_pairs(&h, pairs, seed);
            let (_, report) =
                batch::construct_many_serial_metered(&h, &pair_list, CrossingOrder::Gray, true)
                    .map_err(|e| CliError(e.to_string()))?;
            let c = &report.construction;
            let _ = writeln!(
                out,
                "constructed {} pair families on HHC({m}) (seed {seed:#x}):",
                c.queries
            );
            let _ = writeln!(
                out,
                "  cases         : {} same-cube, {} cross-cube",
                c.same_cube, c.cross_cube
            );
            let _ = writeln!(
                out,
                "  plans         : {} rotations, {} detours",
                c.rotation_plans, c.detour_plans
            );
            let _ = writeln!(
                out,
                "  fan queries   : {} ({} targets, {} direct-seeded)",
                report.fan_queries(),
                report.src_fan.targets_requested + report.tgt_fan.targets_requested,
                report.src_fan.seeded_direct + report.tgt_fan.seeded_direct
            );
            let _ = writeln!(
                out,
                "  flow solver   : {} BFS passes, {} augmentations, {} arcs touched",
                report.solver.bfs_passes, report.solver.augmentations, report.solver.arcs_touched
            );
            if let (Some(mn), Some(mean), Some(p99), Some(mx)) = (
                c.timing.min_ns(),
                c.timing.mean_ns(),
                c.timing.p99_ns(),
                c.timing.max_ns(),
            ) {
                let _ = writeln!(
                    out,
                    "  per-query ns  : min {mn}, mean {mean:.0}, p99 ≤ {p99}, max {mx}"
                );
            }
            let des_bits = (1u32 << m) + m;
            let des_cap = netsim::Simulator::<hhc_core::Hhc>::MAX_ADDRESS_BITS;
            let des_max_m = (1..)
                .take_while(|&mm| (1u32 << mm) + mm <= des_cap)
                .last()
                .unwrap_or(0);
            let _ = writeln!(
                out,
                "  DES range     : {des_bits}-bit addresses vs the simulator's {des_cap}-bit cap \
                 — {} (largest simulatable HHC: m = {des_max_m})",
                if des_bits <= des_cap {
                    "packet-level simulation available"
                } else {
                    "construction and verification only"
                }
            );
            let _ = writeln!(out, "metrics: {}", report.to_json());
        }
        Command::Broadcast { m, root } => {
            let h = net(m)?;
            let root = mk(&h, root)?;
            let schedule =
                collectives::one_port_broadcast(&h, root).map_err(|e| CliError(e.to_string()))?;
            let _ = writeln!(
                out,
                "one-port broadcast from {}: {} rounds (lower bound {})",
                h.format_node(root),
                schedule.len(),
                collectives::broadcast_round_lower_bound(&h)
            );
            for (r, round) in schedule.iter().enumerate() {
                let _ = writeln!(out, "  round {r:2}: {} sends", round.len());
            }
        }
        Command::Trace { m, u, v } => {
            let h = net(m)?;
            let (u, v) = (mk(&h, u)?, mk(&h, v)?);
            let (paths, trace) = disjoint::disjoint_paths_traced(&h, u, v, CrossingOrder::Gray)
                .map_err(|e| CliError(e.to_string()))?;
            verify::verify_disjoint_paths(&h, u, v, &paths).map_err(CliError)?;
            let _ = writeln!(
                out,
                "case {:?}: {} rotations + {} detours",
                trace.case, trace.rotations, trace.detours
            );
            if trace.case == ConstructionCase::CrossCube {
                let _ = writeln!(out, "source fan → {:?}", trace.source_fan_targets);
                let _ = writeln!(out, "target fan → {:?}", trace.target_fan_targets);
            }
            for (i, (path, plan)) in paths.iter().zip(&trace.plans).enumerate() {
                match plan {
                    Some(p) => {
                        let _ = writeln!(
                            out,
                            "  P{i}: len {:2}, crossings {:?}",
                            path.len() - 1,
                            p.positions
                        );
                    }
                    None => {
                        let _ = writeln!(out, "  P{i}: len {:2}, in-cube", path.len() - 1);
                    }
                }
            }
        }
        Command::Sim {
            ref scenario,
            mode,
            ref golden,
        } => {
            use netsim::scenario as sc;
            let src = std::fs::read_to_string(scenario)
                .map_err(|e| CliError(format!("cannot read {scenario}: {e}")))?;
            let spec = sc::Scenario::from_toml(&src).map_err(|e| CliError(e.to_string()))?;
            let golden_path = golden
                .clone()
                .unwrap_or_else(|| format!("results/scenarios/{}.trace", spec.name));
            match mode {
                SimMode::Run => {
                    let report = sc::execute(&spec);
                    let _ = write!(out, "{report}");
                    if !report.passes() {
                        return Err(CliError(format!(
                            "scenario {} violated {} expectation(s):\n  {}",
                            spec.name,
                            report.violations.len(),
                            report.violations.join("\n  ")
                        )));
                    }
                }
                SimMode::Record => {
                    let trace = sc::render(&spec, &sc::execute(&spec));
                    if let Some(dir) = std::path::Path::new(&golden_path).parent() {
                        std::fs::create_dir_all(dir)
                            .map_err(|e| CliError(format!("cannot create {dir:?}: {e}")))?;
                    }
                    std::fs::write(&golden_path, &trace)
                        .map_err(|e| CliError(format!("cannot write {golden_path}: {e}")))?;
                    let _ = writeln!(
                        out,
                        "recorded scenario {} -> {golden_path} ({} lines)",
                        spec.name,
                        trace.lines().count()
                    );
                }
                SimMode::Replay => {
                    let recorded = std::fs::read_to_string(&golden_path)
                        .map_err(|e| CliError(format!("cannot read {golden_path}: {e}")))?;
                    let current = sc::render(&spec, &sc::execute(&spec));
                    match sc::diff_lines(&current, &recorded) {
                        None => {
                            let _ = writeln!(
                                out,
                                "replay OK: scenario {} matches {golden_path} byte for byte",
                                spec.name
                            );
                        }
                        Some(diff) => {
                            return Err(CliError(format!(
                                "replay of scenario {} diverged from {golden_path}:\n{diff}",
                                spec.name
                            )))
                        }
                    }
                }
                SimMode::Shrink => {
                    let mut failing = |s: &sc::Scenario| !sc::execute(s).passes();
                    if !failing(&spec) {
                        return Err(CliError(format!(
                            "scenario {} passes all expectations; nothing to shrink",
                            spec.name
                        )));
                    }
                    let minimal = sc::shrink(&spec, &mut failing);
                    let _ = writeln!(
                        out,
                        "shrunk scenario {} (size {} -> {}); minimal reproducer:\n",
                        spec.name,
                        sc::shrink::size(&spec),
                        sc::shrink::size(&minimal)
                    );
                    let _ = write!(out, "{}", minimal.to_toml());
                }
            }
        }
        Command::Serve {
            m,
            ref queries,
            ref faults,
            threads,
            window,
            metrics,
        } => {
            let h = net(m)?;
            let src = if queries.as_str() == "-" {
                std::io::read_to_string(std::io::stdin())
                    .map_err(|e| CliError(format!("cannot read stdin: {e}")))?
            } else {
                std::fs::read_to_string(queries)
                    .map_err(|e| CliError(format!("cannot read {queries}: {e}")))?
            };
            let pairs = parse_query_stream(&src)?
                .into_iter()
                .map(|(u, v)| Ok((mk(&h, u)?, mk(&h, v)?)))
                .collect::<Result<Vec<_>, CliError>>()?;
            if pairs.is_empty() {
                return Err(CliError(format!("{queries}: no queries")));
            }
            let mut schedule = match faults {
                Some(path) => {
                    let src = std::fs::read_to_string(path)
                        .map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
                    parse_fault_schedule(&src)?
                        .into_iter()
                        .map(|(at, add, w)| Ok((at, add, mk(&h, w)?)))
                        .collect::<Result<Vec<_>, CliError>>()?
                }
                None => Vec::new(),
            };
            schedule.sort_by_key(|&(at, _, _)| at);
            let mut cfg = hhc_core::RouterConfig::default();
            if let Some(t) = threads {
                cfg.threads = t;
            }
            let mut router = hhc_core::Router::new(m, cfg).map_err(|e| CliError(e.to_string()))?;
            let _ = writeln!(
                out,
                "serving {} queries on HHC({m}): {} workers, windows of {window}, {} fault events",
                pairs.len(),
                router.threads(),
                schedule.len()
            );
            // Per-query service time, batch-amortised: each query in a
            // window is charged the window's wall-clock share. Windowing
            // is a reporting grain, not a semantic one — answers depend
            // only on the pair and the fault set in force.
            let mut hist = obs::Histogram::new();
            let mut next_event = 0;
            let (mut ok, mut errors) = (0u64, 0u64);
            let mut first_error: Option<String> = None;
            // One arena buffer reused across windows: the serve loop
            // inherits the router's zero-per-query-allocation pipeline.
            let mut answers = hhc_core::QueryBatchResult::new();
            let started = std::time::Instant::now();
            for (wi, chunk) in pairs.chunks(window).enumerate() {
                let base = wi * window;
                // Events scheduled at or before the window's first query
                // take effect now: window boundaries are the
                // linearisation points of the fault feed.
                while let Some(&(at, add, w)) = schedule.get(next_event) {
                    if at > base {
                        break;
                    }
                    if add {
                        router.add_fault(w);
                    } else {
                        router.clear_fault(w);
                    }
                    next_event += 1;
                }
                let t = std::time::Instant::now();
                router.query_many_into(chunk, &mut answers);
                let elapsed = t.elapsed();
                let per_query_ns = (elapsed.as_nanos() / chunk.len() as u128) as u64;
                for _ in 0..chunk.len() {
                    hist.record(per_query_ns);
                }
                for (j, a) in answers.iter().enumerate() {
                    match a {
                        Ok(_) => ok += 1,
                        Err(e) => {
                            errors += 1;
                            if first_error.is_none() {
                                first_error = Some(format!("query {}: {e}", base + j));
                            }
                        }
                    }
                }
                let _ = writeln!(
                    out,
                    "  window {wi:3}: queries {base}..{}, {:8.0} qps, {} faults active",
                    base + chunk.len(),
                    chunk.len() as f64 / elapsed.as_secs_f64(),
                    router.fault_count()
                );
            }
            // Events addressed past the last query still move the fault
            // set (they are part of the schedule, just unobserved).
            for &(_, add, w) in &schedule[next_event..] {
                if add {
                    router.add_fault(w);
                } else {
                    router.clear_fault(w);
                }
            }
            let total = started.elapsed().as_secs_f64();
            let _ = writeln!(
                out,
                "served {} queries in {total:.3}s ({:.0} qps): {ok} ok, {errors} errors",
                pairs.len(),
                pairs.len() as f64 / total
            );
            if let Some(e) = first_error {
                let _ = writeln!(out, "  first error: {e}");
            }
            if let (Some(p50), Some(p99)) = (hist.quantile(0.5), hist.quantile(0.99)) {
                let _ = writeln!(
                    out,
                    "  service time p50 {p50} ns, p99 {p99} ns (batch-amortised per query)"
                );
            }
            let report = router.metrics();
            let c = &report.construction;
            let l2_probes = c.l2_hits + c.l2_misses;
            let _ = writeln!(
                out,
                "  cache tiers   : {} L1 hits, {} L2 hits ({:.1}% of L2 probes), \
                 {} invalidations, fault generation {}",
                c.family_hits,
                c.l2_hits,
                if l2_probes > 0 {
                    100.0 * c.l2_hits as f64 / l2_probes as f64
                } else {
                    0.0
                },
                c.l2_invalidations,
                c.fault_generation
            );
            if metrics {
                let _ = writeln!(out, "metrics: {}", report.to_json());
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_nodes() {
        assert_eq!(parse_node("a5:3"), Ok((0xA5, 3)));
        assert_eq!(parse_node("0xFF:0x7"), Ok((0xFF, 7)));
        assert!(parse_node("zz:1").is_err());
        assert!(parse_node("12").is_err());
    }

    #[test]
    fn parse_commands() {
        assert_eq!(parse(&argv("info 3")), Ok(Command::Info { m: 3 }));
        assert_eq!(
            parse(&argv("route 2 0:1 f:2")),
            Ok(Command::Route {
                m: 2,
                u: (0, 1),
                v: (0xF, 2)
            })
        );
        assert_eq!(
            parse(&argv("disjoint 2 0:1 f:2 --sorted")),
            Ok(Command::Disjoint {
                m: 2,
                u: (0, 1),
                v: (0xF, 2),
                sorted: true,
                metrics: false,
                avoid: vec![]
            })
        );
        assert_eq!(
            parse(&argv("disjoint 2 0:1 f:2 --metrics --sorted")),
            Ok(Command::Disjoint {
                m: 2,
                u: (0, 1),
                v: (0xF, 2),
                sorted: true,
                metrics: true,
                avoid: vec![]
            })
        );
        assert_eq!(
            parse(&argv("wide 4 --samples 50")),
            Ok(Command::Wide {
                m: 4,
                samples: 50,
                metrics: false
            })
        );
        assert_eq!(
            parse(&argv("wide 4 --metrics")),
            Ok(Command::Wide {
                m: 4,
                samples: 1000,
                metrics: true
            })
        );
        assert_eq!(
            parse(&argv("stats 3 --pairs 10 --seed 7")),
            Ok(Command::Stats {
                m: 3,
                pairs: 10,
                seed: 7
            })
        );
        assert_eq!(
            parse(&argv("trace 3 0:1 2b:4")),
            Ok(Command::Trace {
                m: 3,
                u: (0, 1),
                v: (0x2B, 4)
            })
        );
        assert_eq!(
            parse(&argv("disjoint 2 0:1 f:2 --avoid a:0,b:1 --sorted")),
            Ok(Command::Disjoint {
                m: 2,
                u: (0, 1),
                v: (0xF, 2),
                sorted: true,
                metrics: false,
                avoid: vec![(0xA, 0), (0xB, 1)]
            })
        );
        assert!(parse(&argv("bogus")).is_err());
        assert!(parse(&argv("")).is_err());
    }

    #[test]
    fn execute_info() {
        let out = execute(&Command::Info { m: 3 }).unwrap();
        assert!(out.contains("2^11"));
        assert!(out.contains("diameter      : 16"));
    }

    #[test]
    fn execute_route_and_disjoint() {
        let out = execute(&Command::Route {
            m: 2,
            u: (0, 0),
            v: (0xA, 3),
        })
        .unwrap();
        assert!(out.contains("route length"));
        let out = execute(&Command::Disjoint {
            m: 2,
            u: (0, 0),
            v: (0xA, 3),
            sorted: false,
            metrics: false,
            avoid: vec![],
        })
        .unwrap();
        assert!(out.contains("3 node-disjoint paths (verified"));
        assert!(!out.contains("metrics:"));
    }

    #[test]
    fn execute_wide_and_broadcast() {
        let out = execute(&Command::Wide {
            m: 1,
            samples: 10,
            metrics: false,
        })
        .unwrap();
        assert!(out.contains("observed max"));
        let out = execute(&Command::Broadcast { m: 1, root: (0, 0) }).unwrap();
        assert!(out.contains("rounds"));
    }

    #[test]
    fn metrics_flag_appends_json() {
        let out = execute(&Command::Disjoint {
            m: 3,
            u: (0, 0),
            v: (0x2B, 5),
            sorted: false,
            metrics: true,
            avoid: vec![],
        })
        .unwrap();
        assert!(out.contains("metrics: {\"queries\":1"));
        assert!(out.contains("\"cross_cube\":1"));
        assert!(out.contains("timing_ns"));
        let out = execute(&Command::Wide {
            m: 1,
            samples: 10,
            metrics: true,
        })
        .unwrap();
        assert!(out.contains("metrics: {\"queries\":56"));
    }

    #[test]
    fn execute_stats() {
        let out = execute(&Command::Stats {
            m: 3,
            pairs: 25,
            seed: 7,
        })
        .unwrap();
        assert!(out.contains("constructed 25 pair families"));
        assert!(out.contains("fan queries"));
        assert!(out.contains("per-query ns"));
        // HHC(3) is 11-bit: inside the simulator's address range.
        assert!(out.contains("11-bit addresses"));
        assert!(out.contains("packet-level simulation available"));
        assert!(out.contains("largest simulatable HHC: m = 4"));
        assert!(out.contains("metrics: {\"queries\":25"));
        // Identical seeds give identical counters (timing aside, which
        // lives under a separate key).
        let again = execute(&Command::Stats {
            m: 3,
            pairs: 25,
            seed: 7,
        })
        .unwrap();
        assert_eq!(
            out.lines().find(|l| l.contains("cases")),
            again.lines().find(|l| l.contains("cases"))
        );
    }

    /// `--avoid` routes the construction through the fault-aware entry
    /// point: the printed family must dodge the avoided nodes, and an
    /// avoided endpoint is a user-facing error.
    #[test]
    fn execute_disjoint_avoiding() {
        // 0:1 is an interior node of one plain path for this pair.
        let h = Hhc::new(2).unwrap();
        let u = h.node(0, 0).unwrap();
        let v = h.node(0xA, 3).unwrap();
        let plain = h.disjoint_paths(u, v).unwrap();
        let fault = plain[0][plain[0].len() / 2];
        let (fx, fy) = (h.cube_field(fault), h.node_field(fault));
        let out = execute(&Command::Disjoint {
            m: 2,
            u: (0, 0),
            v: (0xA, 3),
            sorted: false,
            metrics: false,
            avoid: vec![(fx, fy)],
        })
        .unwrap();
        assert!(out.contains("avoiding 1 faults"));
        assert!(out.contains("rerouted around faults"));
        assert!(!out.contains(&h.format_node(fault)));
        // A fault missing the family reports the plain-family fast path.
        let out = execute(&Command::Disjoint {
            m: 2,
            u: (0, 0),
            v: (0xA, 3),
            sorted: false,
            metrics: false,
            avoid: vec![(0x5, 0)],
        })
        .unwrap();
        assert!(out.contains("plain family already fault-free"));
        // Avoiding an endpoint is an error, not a panic.
        let err = execute(&Command::Disjoint {
            m: 2,
            u: (0, 0),
            v: (0xA, 3),
            sorted: false,
            metrics: false,
            avoid: vec![(0, 0)],
        })
        .unwrap_err();
        assert!(err.0.contains("faulty"));
    }

    #[test]
    fn parse_sim() {
        assert_eq!(
            parse(&argv("sim --scenario a.toml")),
            Ok(Command::Sim {
                scenario: "a.toml".into(),
                mode: SimMode::Run,
                golden: None
            })
        );
        assert_eq!(
            parse(&argv("sim --scenario a.toml --replay --golden g.trace")),
            Ok(Command::Sim {
                scenario: "a.toml".into(),
                mode: SimMode::Replay,
                golden: Some("g.trace".into())
            })
        );
        assert_eq!(
            parse(&argv("sim --shrink --scenario a.toml")),
            Ok(Command::Sim {
                scenario: "a.toml".into(),
                mode: SimMode::Shrink,
                golden: None
            })
        );
    }

    /// End-to-end through the CLI surface: record a golden, replay it
    /// byte-identically, detect drift, and shrink a failing scenario.
    #[test]
    fn execute_sim_lifecycle() {
        let dir = std::env::temp_dir().join(format!("hhc_cli_sim_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let scn = dir.join("tiny.toml");
        std::fs::write(
            &scn,
            "name = \"tiny\"\nseed = 0x5EED\n[topology]\nkind = \"hhc\"\nm = 2\n\
             [traffic]\nrate = 0.03\n[sim]\ncycles = 40\ndrain_cycles = 2000\n\
             [expect]\ndelivered_all = true\n",
        )
        .unwrap();
        let golden = dir.join("tiny.trace").to_string_lossy().into_owned();
        let sim = |mode: SimMode| Command::Sim {
            scenario: scn.to_string_lossy().into_owned(),
            mode,
            golden: Some(golden.clone()),
        };
        // Run: passes, prints the report.
        let out = execute(&sim(SimMode::Run)).unwrap();
        assert!(out.contains("scenario tiny"));
        // Replay before recording: user-facing error.
        assert!(execute(&sim(SimMode::Replay)).is_err());
        // Record, then replay byte-identically.
        let out = execute(&sim(SimMode::Record)).unwrap();
        assert!(out.contains("recorded scenario tiny"));
        let out = execute(&sim(SimMode::Replay)).unwrap();
        assert!(out.contains("replay OK"));
        // Drift (a different seed) is caught with a line-level diff.
        std::fs::write(
            &scn,
            "name = \"tiny\"\nseed = 1\n[topology]\nkind = \"hhc\"\nm = 2\n\
             [traffic]\nrate = 0.03\n[sim]\ncycles = 40\ndrain_cycles = 2000\n",
        )
        .unwrap();
        let err = execute(&sim(SimMode::Replay)).unwrap_err();
        assert!(err.0.contains("diverged"), "{err}");
        // Shrinking a passing scenario is refused; a wedged one shrinks.
        std::fs::write(
            &scn,
            "name = \"wedge\"\nseed = 1212\n[topology]\nkind = \"hhc\"\nm = 2\n\
             [traffic]\npattern = \"bit-complement\"\nrate = 0.4\n\
             [sim]\ncycles = 300\ndrain_cycles = 4000\nqueue_capacity = 1\n\
             [expect]\ndelivered_all = true\n",
        )
        .unwrap();
        let out = execute(&sim(SimMode::Shrink)).unwrap();
        assert!(out.contains("minimal reproducer"), "{out}");
        assert!(out.contains("name = \"wedge\""));
        // A run with violations exits with an error naming them.
        let err = execute(&sim(SimMode::Run)).unwrap_err();
        assert!(err.0.contains("violated"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_serve() {
        assert_eq!(
            parse(&argv("serve 3 --queries q.txt")),
            Ok(Command::Serve {
                m: 3,
                queries: "q.txt".into(),
                faults: None,
                threads: None,
                window: 256,
                metrics: false
            })
        );
        assert_eq!(
            parse(&argv(
                "serve 3 --queries - --faults f.txt --threads 2 --window 64 --metrics"
            )),
            Ok(Command::Serve {
                m: 3,
                queries: "-".into(),
                faults: Some("f.txt".into()),
                threads: Some(2),
                window: 64,
                metrics: true
            })
        );
        for bad in [
            "serve 3",
            "serve 3 --queries",
            "serve 3 --queries a --queries b",
            "serve 3 --queries a --threads 0",
            "serve 3 --queries a --window 0",
            "serve 3 --queries a --window",
            "serve 3 --queries a stray",
            "serve --queries a",
        ] {
            assert!(parse(&argv(bad)).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn fault_schedule_and_query_stream_parse_strictly() {
        let events = parse_fault_schedule("# comment\n\n0 + a5:3\n10 - a5:3  # inline\n").unwrap();
        assert_eq!(events, vec![(0, true, (0xA5, 3)), (10, false, (0xA5, 3))]);
        for bad in [
            "+ a5:3",
            "3 * a5:3",
            "3 + zz:1",
            "3 + a5:3 extra",
            "x + a5:3",
        ] {
            assert!(
                parse_fault_schedule(bad).is_err(),
                "{bad:?} should not parse"
            );
        }
        let pairs = parse_query_stream("0:0 a:3\n# skip\n\n1:1 2:2\n").unwrap();
        assert_eq!(pairs, vec![((0, 0), (0xA, 3)), ((1, 1), (2, 2))]);
        for bad in ["0:0", "0:0 a:3 b:1", "zz:0 a:3"] {
            assert!(parse_query_stream(bad).is_err(), "{bad:?} should not parse");
        }
    }

    /// End-to-end serve: a query file with repeats (so the cache tiers
    /// engage), a fault schedule that blocks an interior node mid-stream,
    /// windowed progress lines and the summary with quantiles.
    #[test]
    fn execute_serve_lifecycle() {
        let dir = std::env::temp_dir().join(format!("hhc_cli_serve_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // An interior node of the plain family for (0:0, a:3) on HHC(2).
        let h = Hhc::new(2).unwrap();
        let u = h.node(0, 0).unwrap();
        let v = h.node(0xA, 3).unwrap();
        let plain = h.disjoint_paths(u, v).unwrap();
        let fault = plain[0][plain[0].len() / 2];
        let (fx, fy) = (h.cube_field(fault), h.node_field(fault));
        let qpath = dir.join("queries.txt");
        let mut qsrc = String::from("# hot pair, repeated across windows\n");
        for _ in 0..10 {
            qsrc.push_str("0:0 a:3\n5:1 b:2\n");
        }
        qsrc.push_str("7:0 7:0\n"); // equal endpoints: a per-query error
        std::fs::write(&qpath, &qsrc).unwrap();
        let fpath = dir.join("faults.txt");
        std::fs::write(&fpath, format!("8 + {fx:x}:{fy:x}\n16 - {fx:x}:{fy:x}\n")).unwrap();
        let cmd = Command::Serve {
            m: 2,
            queries: qpath.to_string_lossy().into_owned(),
            faults: Some(fpath.to_string_lossy().into_owned()),
            threads: Some(2),
            window: 8,
            metrics: true,
        };
        let out = execute(&cmd).unwrap();
        assert!(out.contains("serving 21 queries"), "{out}");
        assert!(out.contains("window   0"), "{out}");
        assert!(out.contains("20 ok, 1 errors"), "{out}");
        assert!(out.contains("query 20: "), "first error is surfaced: {out}");
        assert!(out.contains("service time p50"), "{out}");
        assert!(out.contains("fault generation 2"), "{out}");
        assert!(out.contains("metrics: {\"queries\":"), "{out}");
        // The schedule reached the stream: some window served with the
        // fault active, and the final fault set is empty again.
        assert!(out.contains("1 faults active"), "{out}");
        assert!(out.contains("0 faults active"), "{out}");
        // Missing files and empty streams are user-facing errors.
        let missing = Command::Serve {
            m: 2,
            queries: dir.join("absent.txt").to_string_lossy().into_owned(),
            faults: None,
            threads: None,
            window: 8,
            metrics: false,
        };
        assert!(execute(&missing).is_err());
        let empty = dir.join("empty.txt");
        std::fs::write(&empty, "# nothing\n").unwrap();
        let cmd = Command::Serve {
            m: 2,
            queries: empty.to_string_lossy().into_owned(),
            faults: None,
            threads: None,
            window: 8,
            metrics: false,
        };
        assert!(execute(&cmd).unwrap_err().0.contains("no queries"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn strict_parsing_rejects_stray_arguments() {
        for bad in [
            "sim",
            "sim --scenario",
            "sim --scenario a --scenario b",
            "sim --scenario a --record --replay",
            "sim --scenario a --golden",
            "sim stray",
        ] {
            assert!(parse(&argv(bad)).is_err(), "{bad:?} should not parse");
        }
        for bad in [
            "info 3 extra",
            "route 2 0:1 f:2 junk",
            "disjoint 2 0:1 f:2 --bogus",
            "disjoint 2 0:1 f:2 --sorted --sorted",
            "disjoint 2 0:1 f:2 --avoid",
            "disjoint 2 0:1 f:2 --avoid zz:1",
            "disjoint 2 0:1 f:2 --avoid 1:0 --avoid 2:0",
            "wide 4 --samples",
            "wide 4 --samples 10 trailing",
            "stats 3 --pairs",
            "stats 3 --seed x",
            "broadcast 2 0:0 0:1",
            "trace 3 0:1 2b:4 --metrics",
        ] {
            assert!(parse(&argv(bad)).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn no_valid_invocation_panics() {
        // Every syntactically valid command either prints or errors —
        // including scales the library refuses (wide m>2 exhaustive is
        // internal, broadcast m>3, materialisation guards).
        for line in [
            "info 0",
            "info 9",
            "wide 6 --samples 1",
            "stats 6 --pairs 1",
            "stats 2 --pairs 0",
            "broadcast 6 0:0",
            "disjoint 6 0:0 1:1",
            "trace 6 0:0 1:1",
            "route 6 0:0 0:1",
        ] {
            if let Ok(cmd) = parse(&argv(line)) {
                let _ = execute(&cmd); // must return, not panic
            }
        }
        // Known error cases keep their messages user-facing.
        let err = execute(&parse(&argv("broadcast 6 0:0")).unwrap()).unwrap_err();
        assert!(!err.0.is_empty());
    }

    #[test]
    fn execute_trace() {
        let out = execute(&Command::Trace {
            m: 3,
            u: (0, 1),
            v: (0x2B, 4),
        })
        .unwrap();
        assert!(out.contains("rotations"));
        assert!(out.contains("P3"));
        let same = execute(&Command::Trace {
            m: 3,
            u: (5, 0),
            v: (5, 7),
        })
        .unwrap();
        assert!(same.contains("SameCube"));
        assert!(same.contains("in-cube"));
    }

    #[test]
    fn errors_are_user_facing() {
        assert!(execute(&Command::Info { m: 9 }).is_err());
        let err = execute(&Command::Route {
            m: 2,
            u: (0, 0),
            v: (0x1F, 0),
        })
        .unwrap_err();
        assert!(err.0.contains("out of range"));
        // Equal nodes for disjoint is an error.
        assert!(execute(&Command::Disjoint {
            m: 2,
            u: (0, 0),
            v: (0, 0),
            sorted: false,
            metrics: false,
            avoid: vec![]
        })
        .is_err());
    }
}
