//! Concurrency stress for the routing service: the full worker pool
//! hammered with `query_many_into` batches while a dedicated fault-feed
//! thread churns `add_fault`/`clear_fault` at high rate — exercising
//! the lock-free L2 snapshot reads, concurrent shard publishes, the
//! epoch-based fault re-snapshot, and the pooled batch recycling all at
//! once, racing for the whole run.
//!
//! During the churn the exact fault set a given query sees is a race by
//! design, so answers are checked *structurally*: every family must be
//! simple, internally vertex-disjoint `u → v` paths (that property
//! holds under every fault set). Determinism is then recovered at
//! quiescence: the churn thread heals every fault it planted, the run
//! re-queries the whole pool, and those answers must be byte-identical
//! to the serial cold-cache oracle — the equivalence argument of
//! `router_equivalence.rs`, re-proven after a genuinely racy warm-up.
//! Finally the router must shut down cleanly (drop joins the pool).
//!
//! Seeded and bounded: the schedule derives from fixed xorshift seeds,
//! the run is a fixed number of bursts (no time-based loops), and the
//! whole test stays a few seconds even in debug builds.

use hhc_core::disjoint::disjoint_paths;
use hhc_core::verify::verify_disjoint_paths;
use hhc_core::{CrossingOrder, Hhc, NodeId, QueryBatchResult, Router, RouterConfig};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Deterministic query pool mixing same-cube and cross-cube pairs.
fn pool_pairs(h: &Hhc, n: usize, mut state: u64) -> Vec<(NodeId, NodeId)> {
    let xmask = (1u128 << h.positions()) - 1;
    let mut pairs = Vec::with_capacity(n);
    while pairs.len() < n {
        let u = h
            .node(
                xorshift(&mut state) as u128 & xmask,
                (xorshift(&mut state) % (1 << h.m()) as u64) as u32,
            )
            .unwrap();
        let v = h
            .node(
                xorshift(&mut state) as u128 & xmask,
                (xorshift(&mut state) % (1 << h.m()) as u64) as u32,
            )
            .unwrap();
        if u != v {
            pairs.push((u, v));
        }
    }
    pairs
}

#[test]
fn churning_faults_under_concurrent_queries() {
    let h = Hhc::new(3).unwrap();
    let pairs = pool_pairs(&h, 12, 0xfeed_f00d_dead_beef);

    // Fault targets: interior nodes of the pool's plain families, never
    // an endpoint of any pool pair — so every answer stays `Ok` and the
    // structural check below applies uniformly.
    let endpoints: HashSet<NodeId> = pairs.iter().flat_map(|&(u, v)| [u, v]).collect();
    let mut targets = Vec::new();
    for &(u, v) in &pairs {
        for p in disjoint_paths(&h, u, v, CrossingOrder::Gray).unwrap() {
            let w = p[p.len() / 2];
            if p.len() > 2 && !endpoints.contains(&w) && !targets.contains(&w) {
                targets.push(w);
            }
        }
    }
    assert!(targets.len() >= 4, "need a real fault pool to churn");

    let mut router = Router::new(
        3,
        RouterConfig {
            threads: 4,
            order: CrossingOrder::Gray,
            ..RouterConfig::default()
        },
    )
    .unwrap();

    // The fault feed races against the queries below, toggling planted
    // faults as fast as it can until told to stop, then heals
    // everything it planted before exiting.
    let stop = Arc::new(AtomicBool::new(false));
    let feed = {
        let shared = Arc::clone(router.shared_cache());
        let stop = Arc::clone(&stop);
        let targets = targets.clone();
        std::thread::spawn(move || {
            let mut state = 0x0dd_ba11u64;
            let mut planted: HashSet<NodeId> = HashSet::new();
            let mut events = 0u64;
            while !stop.load(Ordering::Acquire) {
                let w = targets[xorshift(&mut state) as usize % targets.len()];
                if planted.insert(w) {
                    shared.add_fault(w);
                } else {
                    shared.clear_fault(w);
                    planted.remove(&w);
                }
                events += 1;
            }
            for w in planted {
                shared.clear_fault(w);
            }
            events
        })
    };

    // Phase 1 (racy): hammer the pool through the arena pipeline while
    // the feed churns. Answers are structurally valid whatever fault
    // snapshot each worker happened to act on.
    let mut out = QueryBatchResult::new();
    let mut state = 0x5eed_cafe_u64;
    let mut burst = Vec::new();
    for _ in 0..60 {
        burst.clear();
        burst.extend((0..32).map(|_| pairs[xorshift(&mut state) as usize % pairs.len()]));
        router.query_many_into(&burst, &mut out);
        assert_eq!(out.len(), burst.len());
        for (i, r) in out.iter().enumerate() {
            let fam =
                r.unwrap_or_else(|e| panic!("interior-fault churn must never fail a query: {e:?}"));
            let (u, v) = burst[i];
            verify_disjoint_paths(&h, u, v, &fam.to_paths())
                .unwrap_or_else(|e| panic!("invalid family for pair {i} under churn: {e}"));
        }
    }

    stop.store(true, Ordering::Release);
    let events = feed.join().expect("fault feed panicked");
    assert!(events > 0, "feed never got to run");
    assert_eq!(router.fault_count(), 0, "feed heals everything it planted");

    // Phase 2 (quiescent): with the fault set empty and stable, the
    // warmed-up racy caches must answer byte-identically to a serial
    // cold-cache oracle.
    router.query_many_into(&pairs, &mut out);
    for (i, r) in out.iter().enumerate() {
        let (u, v) = pairs[i];
        let want = disjoint_paths(&h, u, v, CrossingOrder::Gray).unwrap();
        assert_eq!(
            r.unwrap().to_paths(),
            want,
            "quiescent answer {i} diverged from the cold oracle"
        );
    }

    let c = router.metrics().construction;
    assert_eq!(
        c.family_hits + c.l2_hits + c.l2_misses,
        c.queries,
        "tiered-probe conservation law survives the churn"
    );
    assert!(c.l2_hits > 0, "the hot pool must hit the shared tier");
    assert_eq!(c.fault_generation, router.generation());

    // Clean shutdown: drop disconnects the channels and joins the pool.
    drop(router);
}
