//! Property tests for the batch path engine: batched construction must
//! be node-for-node identical to the per-pair API, and the flat
//! [`PathSet`] arena must round-trip losslessly through `Vec<Path>`.

use hhc_core::{batch, disjoint, CrossingOrder, Hhc, NodeId, PathBuilder, PathSet};
use proptest::prelude::*;

/// Builds a valid HHC node from arbitrary bits.
fn node(h: &Hhc, x: u64, y: u64) -> NodeId {
    let xmask = (1u128 << h.positions()) - 1;
    h.node(x as u128 & xmask, (y % h.positions() as u64) as u32)
        .expect("masked into range")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `construct_many` (rayon) and `construct_many_serial` (one scratch)
    /// produce exactly the per-pair `disjoint_paths` families, in input
    /// order, for every m ∈ 1..=4 and both crossing orders.
    #[test]
    fn batch_identical_to_per_pair(
        m in 1u32..=4,
        raw in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()), 1..12),
        gray in any::<bool>(),
    ) {
        let h = Hhc::new(m).unwrap();
        let order = if gray { CrossingOrder::Gray } else { CrossingOrder::Sorted };
        let pairs: Vec<(NodeId, NodeId)> = raw
            .into_iter()
            .map(|(xa, ya, xb, yb)| (node(&h, xa, ya), node(&h, xb, yb)))
            .filter(|(u, v)| u != v)
            .collect();
        prop_assume!(!pairs.is_empty());

        let batched = batch::construct_many(&h, &pairs, order).unwrap();
        let serial = batch::construct_many_serial(&h, &pairs, order).unwrap();
        prop_assert_eq!(batched.len(), pairs.len());
        for (i, &(u, v)) in pairs.iter().enumerate() {
            let single = disjoint::disjoint_paths(&h, u, v, order).unwrap();
            prop_assert_eq!(&batched[i].to_paths(), &single, "rayon batch, pair {}", i);
            prop_assert_eq!(&serial[i], &batched[i], "serial batch, pair {}", i);
        }
    }

    /// A reused `PathBuilder` never leaks state between queries: an
    /// interleaved sequence of different pairs through one scratch gives
    /// the same families as fresh per-pair calls.
    #[test]
    fn scratch_reuse_is_stateless(
        m in 1u32..=4,
        raw in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()), 2..8),
    ) {
        let h = Hhc::new(m).unwrap();
        let pairs: Vec<(NodeId, NodeId)> = raw
            .into_iter()
            .map(|(xa, ya, xb, yb)| (node(&h, xa, ya), node(&h, xb, yb)))
            .filter(|(u, v)| u != v)
            .collect();
        prop_assume!(pairs.len() >= 2);
        let mut scratch = PathBuilder::new();
        let mut out = PathSet::new();
        // Run the list twice through the same scratch, checking both runs.
        for _ in 0..2 {
            for &(u, v) in &pairs {
                disjoint::disjoint_paths_into(&h, u, v, CrossingOrder::Gray, &mut out, &mut scratch)
                    .unwrap();
                let fresh = disjoint::disjoint_paths(&h, u, v, CrossingOrder::Gray).unwrap();
                prop_assert_eq!(out.to_paths(), fresh);
            }
        }
    }

    /// `PathSet` ↔ `Vec<Path>` round-trips losslessly, and the accessors
    /// (`len`, `path`, `iter`, `total_nodes`, `max_len`) agree with the
    /// nested representation.
    #[test]
    fn pathset_round_trips(
        paths in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 1..10),
            0..8,
        ),
    ) {
        let paths: Vec<Vec<NodeId>> = paths
            .into_iter()
            .map(|p| p.into_iter().map(|x| NodeId::from_raw(x as u128)).collect())
            .collect();
        let set = PathSet::from_paths(&paths);
        prop_assert_eq!(set.len(), paths.len());
        prop_assert_eq!(set.total_nodes(), paths.iter().map(Vec::len).sum::<usize>());
        let expect_max = paths.iter().map(|p| p.len().saturating_sub(1)).max().unwrap_or(0);
        prop_assert_eq!(set.max_len(), expect_max);
        for (i, p) in paths.iter().enumerate() {
            prop_assert_eq!(set.path(i), p.as_slice());
        }
        let collected: Vec<&[NodeId]> = set.iter().collect();
        prop_assert_eq!(collected.len(), paths.len());
        prop_assert_eq!(&set.to_paths(), &paths);
        prop_assert_eq!(PathSet::from_paths(&set.to_paths()), set);
    }
}
