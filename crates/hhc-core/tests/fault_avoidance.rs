//! Property tests for the fault-avoiding construction
//! (`disjoint_paths_avoiding`): families must stay internally disjoint,
//! never touch a given fault, degrade gracefully (never panic) as faults
//! exceed the connectivity, match the plain construction exactly when
//! the fault set is empty or misses the family, and be byte-identical
//! with symmetry caches on or off.

use hhc_core::disjoint::disjoint_paths;
use hhc_core::verify::verify_disjoint_paths;
use hhc_core::{
    disjoint_paths_avoiding, CacheConfig, CrossingOrder, Hhc, HhcError, NoFaults, NodeId, Workspace,
};
use proptest::prelude::*;
use std::collections::HashSet;

/// Builds a valid HHC node from arbitrary bits.
fn node(h: &Hhc, x: u64, y: u64) -> NodeId {
    let xmask = (1u128 << h.positions()) - 1;
    h.node(x as u128 & xmask, (y % h.positions() as u64) as u32)
        .expect("masked into range")
}

/// Draws `f` faulty nodes from arbitrary bits, skipping the endpoints.
fn fault_set(h: &Hhc, raw: &[(u64, u64)], f: usize, u: NodeId, v: NodeId) -> HashSet<NodeId> {
    let mut faults = HashSet::new();
    for &(x, y) in raw {
        if faults.len() == f {
            break;
        }
        let w = node(h, x, y);
        if w != u && w != v {
            faults.insert(w);
        }
    }
    faults
}

/// Full validity check for an avoiding family: endpoints, simplicity,
/// internal disjointness, and fault avoidance.
fn check_family(h: &Hhc, u: NodeId, v: NodeId, paths: &[Vec<NodeId>], faults: &HashSet<NodeId>) {
    verify_disjoint_paths(h, u, v, paths).unwrap_or_else(|e| {
        panic!(
            "m={} {} -> {}: {e}",
            h.m(),
            h.format_node(u),
            h.format_node(v)
        )
    });
    for (i, p) in paths.iter().enumerate() {
        for w in p {
            assert!(
                !faults.contains(w),
                "path {i} visits faulty node {}",
                h.format_node(*w)
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// f ≤ m - 1 faults (the paper's fault-tolerance regime): the family
    /// must be valid, fault-free, and at least (m + 1) - f paths strong —
    /// the survivor fallback alone guarantees that floor, and the case-B
    /// rebuild usually recovers all m + 1.
    #[test]
    fn small_fault_sets_leave_strong_families(
        m in 2u32..=3,
        uv in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        fraw in proptest::collection::vec((any::<u64>(), any::<u64>()), 8),
        f in 0usize..=2,
    ) {
        let h = Hhc::new(m).unwrap();
        let (u, v) = (node(&h, uv.0, uv.1), node(&h, uv.2, uv.3));
        prop_assume!(u != v);
        let f = f.min(m as usize - 1);
        let faults = fault_set(&h, &fraw, f, u, v);

        let (paths, outcome) =
            disjoint_paths_avoiding(&h, u, v, CrossingOrder::Gray, &faults).unwrap();
        check_family(&h, u, v, &paths, &faults);
        prop_assert_eq!(outcome.paths, paths.len());
        prop_assert!(
            paths.len() >= (m as usize + 1) - faults.len(),
            "{} paths with {} faults (floor {})",
            paths.len(), faults.len(), (m as usize + 1) - faults.len()
        );
        if !outcome.rerouted {
            prop_assert_eq!(&paths, &disjoint_paths(&h, u, v, CrossingOrder::Gray).unwrap());
        }
    }

    /// Empty fault set: byte-identical to the plain construction, both
    /// through `NoFaults` and through an empty `HashSet`.
    #[test]
    fn empty_faults_equals_plain(
        m in 1u32..=3,
        uv in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        gray in any::<bool>(),
    ) {
        let h = Hhc::new(m).unwrap();
        let (u, v) = (node(&h, uv.0, uv.1), node(&h, uv.2, uv.3));
        prop_assume!(u != v);
        let order = if gray { CrossingOrder::Gray } else { CrossingOrder::Sorted };
        let plain = disjoint_paths(&h, u, v, order).unwrap();
        let (a, oa) = disjoint_paths_avoiding(&h, u, v, order, &NoFaults).unwrap();
        let (b, ob) = disjoint_paths_avoiding(&h, u, v, order, &HashSet::new()).unwrap();
        prop_assert_eq!(&a, &plain);
        prop_assert_eq!(&b, &plain);
        prop_assert!(!oa.rerouted && !ob.rerouted);
        prop_assert_eq!(oa.paths, plain.len());
    }

    /// f ≥ m faults (beyond the guaranteed regime): construction must
    /// still return Ok with a valid — possibly empty — fault-free
    /// family, never panic.
    #[test]
    fn heavy_fault_sets_degrade_gracefully(
        m in 2u32..=3,
        uv in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        fraw in proptest::collection::vec((any::<u64>(), any::<u64>()), 24),
        extra in 0usize..=8,
    ) {
        let h = Hhc::new(m).unwrap();
        let (u, v) = (node(&h, uv.0, uv.1), node(&h, uv.2, uv.3));
        prop_assume!(u != v);
        let faults = fault_set(&h, &fraw, m as usize + extra, u, v);

        let (paths, outcome) =
            disjoint_paths_avoiding(&h, u, v, CrossingOrder::Gray, &faults).unwrap();
        check_family(&h, u, v, &paths, &faults);
        prop_assert_eq!(outcome.paths, paths.len());
    }

    /// Cache-on ≡ cache-off, with faults active: warm workspaces with
    /// enabled, disabled and thrashing cache configurations must emit
    /// byte-identical families over a repeated pair/fault sequence.
    #[test]
    fn cache_on_equals_cache_off_with_faults(
        m in 2u32..=3,
        raw in proptest::collection::vec(
            (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()), 2..6),
        fraw in proptest::collection::vec((any::<u64>(), any::<u64>()), 8),
        f in 1usize..=2,
        reps in 2usize..4,
    ) {
        let h = Hhc::new(m).unwrap();
        let pool: Vec<(NodeId, NodeId)> = raw
            .into_iter()
            .map(|(xa, ya, xb, yb)| (node(&h, xa, ya), node(&h, xb, yb)))
            .filter(|(u, v)| u != v)
            .collect();
        prop_assume!(!pool.is_empty());

        let configs = [
            CacheConfig::disabled(),
            CacheConfig::enabled(),
            CacheConfig { fan_capacity: 2, family_capacity: 2 },
        ];
        let mut workspaces: Vec<Workspace> =
            configs.iter().map(|&c| Workspace::with_caches(c)).collect();
        for rep in 0..reps {
            for (i, &(u, v)) in pool.iter().enumerate() {
                let faults = fault_set(&h, &fraw, f.min(m as usize - 1), u, v);
                let (fresh, _) =
                    disjoint_paths_avoiding(&h, u, v, CrossingOrder::Gray, &faults).unwrap();
                for (w, ws) in workspaces.iter_mut().enumerate() {
                    let (_, set) = ws
                        .construct_avoiding(&h, u, v, CrossingOrder::Gray, &faults)
                        .unwrap();
                    prop_assert_eq!(
                        &set.to_paths(), &fresh,
                        "config {} differs from fresh on rep {} pair {}", w, rep, i
                    );
                }
            }
        }
    }
}

#[test]
fn faulty_endpoint_is_an_error() {
    let h = Hhc::new(2).unwrap();
    let u = h.node(0b0000, 0b00).unwrap();
    let v = h.node(0b1010, 0b11).unwrap();
    let faults: HashSet<NodeId> = [u].into_iter().collect();
    assert_eq!(
        disjoint_paths_avoiding(&h, u, v, CrossingOrder::Gray, &faults),
        Err(HhcError::FaultyEndpoint(u))
    );
    let faults: HashSet<NodeId> = [v].into_iter().collect();
    assert_eq!(
        disjoint_paths_avoiding(&h, u, v, CrossingOrder::Gray, &faults),
        Err(HhcError::FaultyEndpoint(v))
    );
    assert_eq!(
        disjoint_paths_avoiding(&h, u, u, CrossingOrder::Gray, &NoFaults),
        Err(HhcError::EqualNodes)
    );
}

/// Adversarial single fault on a cross-cube family: the rebuild must
/// recover a family at least as large as the survivor fallback, the
/// reroute metric must tick, and repeated queries through one workspace
/// must be deterministic.
#[test]
fn adversarial_fault_triggers_reroute_and_recovers() {
    let h = Hhc::new(3).unwrap();
    let u = h.node(0x00, 0b000).unwrap();
    let v = h.node(0xA5, 0b110).unwrap();
    let plain = disjoint_paths(&h, u, v, CrossingOrder::Gray).unwrap();
    let mut ws = Workspace::new();
    for path in &plain {
        // One fault on each plain path's interior in turn.
        let fault = path[path.len() / 2];
        if fault == u || fault == v {
            continue;
        }
        let faults: HashSet<NodeId> = [fault].into_iter().collect();
        let before = ws.metrics().construction.fault_reroutes;
        let (outcome, set) = ws
            .construct_avoiding(&h, u, v, CrossingOrder::Gray, &faults)
            .unwrap();
        let got = set.to_paths();
        assert!(outcome.rerouted, "family through {fault:?} must reroute");
        assert_eq!(ws.metrics().construction.fault_reroutes, before + 1);
        // One fault can block at most one plain path, so the survivor
        // floor is m; the rebuild may recover all m + 1.
        assert!(got.len() >= h.m() as usize, "{} paths", got.len());
        check_family(&h, u, v, &got, &faults);
        // Determinism: a second identical query returns identical bytes.
        let (_, set2) = ws
            .construct_avoiding(&h, u, v, CrossingOrder::Gray, &faults)
            .unwrap();
        assert_eq!(set2.to_paths(), got);
    }
}

/// Exhaustive m = 2: every ordered pair, every single interior fault on
/// the plain family — the avoiding family must always be valid and
/// fault-free with at least m paths.
#[test]
fn exhaustive_m2_single_faults() {
    let h = Hhc::new(2).unwrap();
    for u in h.iter_nodes() {
        for v in h.iter_nodes() {
            if u == v {
                continue;
            }
            let plain = disjoint_paths(&h, u, v, CrossingOrder::Gray).unwrap();
            for path in &plain {
                if path.len() < 3 {
                    continue;
                }
                let fault = path[1];
                let faults: HashSet<NodeId> = [fault].into_iter().collect();
                let (got, outcome) =
                    disjoint_paths_avoiding(&h, u, v, CrossingOrder::Gray, &faults).unwrap();
                assert!(outcome.rerouted);
                assert!(
                    got.len() >= h.m() as usize,
                    "{} -> {} fault {}: {} paths",
                    h.format_node(u),
                    h.format_node(v),
                    h.format_node(fault),
                    got.len()
                );
                check_family(&h, u, v, &got, &faults);
            }
        }
    }
}
