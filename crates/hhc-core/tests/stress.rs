//! Stress suite: dense verification sweeps over HHC(3) and structured
//! adversarial families for every supported m, parallelised with rayon.

use hhc_core::verify::construct_and_verify;
use hhc_core::{CrossingOrder, Hhc, NodeId};
use rayon::prelude::*;

/// Every pair (u, v) where u ranges over a full son-cube and v over a
/// structured grid of cube fields — ~16k pairs on HHC(3), all verified.
#[test]
fn dense_structured_sweep_m3() {
    let h = Hhc::new(3).unwrap();
    let sources: Vec<NodeId> = (0..8u32).map(|y| h.node(0x00, y).unwrap()).collect();
    let cube_fields: Vec<u128> = (0..=255u128).step_by(5).collect();
    let pairs: Vec<(NodeId, NodeId)> = sources
        .iter()
        .flat_map(|&u| {
            cube_fields
                .iter()
                .flat_map(move |&x| (0..8u32).map(move |y| (u, x, y)))
        })
        .filter_map(|(u, x, y)| {
            let v = h.node(x, y).unwrap();
            (u != v).then_some((u, v))
        })
        .collect();
    assert!(pairs.len() > 3000);
    let worst = pairs
        .par_iter()
        .map(|&(u, v)| construct_and_verify(&h, u, v).expect("must verify"))
        .max()
        .unwrap();
    assert!(worst <= hhc_core::bounds::wide_diameter_upper_bound(&h));
}

/// For every m, every pair with a single differing cube-field position p,
/// swept over all p and a grid of (Yu, Yv) — the k = 1 family hits the
/// detour-selection edge cases (yu/yv in or out of D).
#[test]
fn all_single_crossing_families() {
    for m in 1..=5u32 {
        let h = Hhc::new(m).unwrap();
        let cases: Vec<(NodeId, NodeId)> = (0..h.positions())
            .flat_map(|p| {
                (0..h.positions()).flat_map(move |yu| (0..h.positions()).map(move |yv| (p, yu, yv)))
            })
            .map(|(p, yu, yv)| {
                let u = h.node(0, yu).unwrap();
                let v = h.node(1u128 << p, yv).unwrap();
                (u, v)
            })
            .collect();
        cases.par_iter().for_each(|&(u, v)| {
            construct_and_verify(&h, u, v).unwrap_or_else(|e| panic!("m={m} {u:?}→{v:?}: {e}"));
        });
    }
}

/// Pairs inside one son-cube (case A) for every m and every (Yu, Yv).
#[test]
fn all_same_cube_families() {
    for m in 1..=6u32 {
        let h = Hhc::new(m).unwrap();
        let x = if h.positions() >= 128 {
            0x5555_5555_5555_5555u128
        } else {
            0x55u128 & ((1u128 << h.positions()) - 1)
        };
        for yu in 0..h.positions() {
            for yv in 0..h.positions() {
                if yu == yv {
                    continue;
                }
                let u = h.node(x, yu).unwrap();
                let v = h.node(x, yv).unwrap();
                construct_and_verify(&h, u, v)
                    .unwrap_or_else(|e| panic!("m={m} yu={yu} yv={yv}: {e}"));
            }
        }
    }
}

/// k = 2^m (all positions differ) with every (Yu, Yv) — the pure-rotation
/// regime where detours only appear for the endpoint coordinates.
#[test]
fn all_antipodal_cube_field_families() {
    for m in 1..=4u32 {
        let h = Hhc::new(m).unwrap();
        let all_x = (1u128 << h.positions()) - 1;
        let pairs: Vec<(NodeId, NodeId)> = (0..h.positions())
            .flat_map(|yu| (0..h.positions()).map(move |yv| (yu, yv)))
            .map(|(yu, yv)| (h.node(0, yu).unwrap(), h.node(all_x, yv).unwrap()))
            .collect();
        pairs.par_iter().for_each(|&(u, v)| {
            construct_and_verify(&h, u, v).unwrap_or_else(|e| panic!("m={m} {u:?}→{v:?}: {e}"));
        });
    }
}

/// Both crossing orders on a random m = 4..6 sample (the big symbolic
/// networks), verifying and comparing lengths: Gray must never be worse
/// on the per-pair *bound*, and both must verify.
#[test]
fn orders_verify_on_large_networks() {
    for m in 4..=6u32 {
        let h = Hhc::new(m).unwrap();
        let pairs = workloads::sampling::random_pairs(&h, 60, 0xD00D_F00D + m as u64);
        pairs.par_iter().for_each(|&(u, v)| {
            for order in [CrossingOrder::Gray, CrossingOrder::Sorted] {
                let paths = hhc_core::disjoint::disjoint_paths(&h, u, v, order).unwrap();
                hhc_core::verify::verify_disjoint_paths(&h, u, v, &paths)
                    .unwrap_or_else(|e| panic!("m={m} {order:?}: {e}"));
            }
        });
    }
}
