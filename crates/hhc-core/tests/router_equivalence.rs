//! Concurrency equivalence for the routing service: under any seeded
//! interleaving of query bursts and fault events, [`Router`] answers —
//! served from per-worker L1s over the shared L2, with lazy fault
//! invalidation — must be byte-identical to a serial cold-cache oracle
//! that solves every query from scratch against the same fault set.
//!
//! This extends the PR 4 (cache-on ≡ cache-off) and PR 7 (avoiding
//! layer never consults caches under faults) equivalence suites to the
//! concurrent tiers, and covers **both** query pipelines: the
//! allocation-free arena path ([`Router::query_many_into`] answering
//! into a reused [`QueryBatchResult`]) and the owned-result
//! compatibility shim ([`Router::query_many`]). Concurrency note:
//! queries inside one burst run in parallel across workers, fault
//! events are applied at burst boundaries — that linearisation is what
//! "the same fault set" means for the oracle. The loom/shuttle crates
//! are not vendored in-tree, so interleavings are exercised by seeded
//! schedules and thread-count sweeps rather than exhaustive model
//! checking; the shard tier publishes immutable snapshots (readers
//! probe a locally held `Arc`, writers serialise on a per-shard mutex —
//! no lock-free retry loops), which keeps the schedule space benign.

use hhc_core::{
    disjoint_paths_avoiding, CacheConfig, CrossingOrder, Hhc, HhcError, L2Config, NodeId, PathSet,
    QueryBatchResult, Router, RouterConfig,
};
use proptest::prelude::*;
use std::collections::HashSet;

/// Builds a valid HHC node from arbitrary bits.
fn node(h: &Hhc, x: u64, y: u64) -> NodeId {
    let xmask = (1u128 << h.positions()) - 1;
    h.node(x as u128 & xmask, (y % h.positions() as u64) as u32)
        .expect("masked into range")
}

/// One step of an interleaved schedule.
#[derive(Debug, Clone)]
enum Op {
    /// Toggle a node's fault state (add if healthy, clear if faulty).
    Toggle(NodeId),
    /// A burst of queries answered concurrently under one fault set.
    Burst(Vec<(NodeId, NodeId)>),
}

/// The serial cold-cache oracle: every query is solved by a fresh
/// builder (no cache carries over) against the fault set at its
/// linearisation point.
fn oracle_run(h: &Hhc, script: &[Op]) -> Vec<Result<Vec<Vec<NodeId>>, HhcError>> {
    let mut faults: HashSet<NodeId> = HashSet::new();
    let mut answers = Vec::new();
    for op in script {
        match op {
            Op::Toggle(w) => {
                if !faults.insert(*w) {
                    faults.remove(w);
                }
            }
            Op::Burst(pairs) => {
                for &(u, v) in pairs {
                    answers.push(
                        disjoint_paths_avoiding(h, u, v, CrossingOrder::Gray, &faults)
                            .map(|(paths, _)| paths),
                    );
                }
            }
        }
    }
    answers
}

/// Runs the same schedule through a router, bursts via the owned-result
/// shim `query_many`.
fn router_run(router: &mut Router, script: &[Op]) -> Vec<Result<Vec<Vec<NodeId>>, HhcError>> {
    let mut answers = Vec::new();
    for op in script {
        match op {
            Op::Toggle(w) => {
                if !router.add_fault(*w) {
                    router.clear_fault(*w);
                }
            }
            Op::Burst(pairs) => answers.extend(router.query_many(pairs)),
        }
    }
    answers
}

/// Runs the same schedule through the allocation-free pipeline: bursts
/// via `query_many_into` into one reused arena buffer, answers read out
/// through `FamilyRef` borrows.
fn router_run_arena(router: &mut Router, script: &[Op]) -> Vec<Result<Vec<Vec<NodeId>>, HhcError>> {
    let mut answers = Vec::new();
    let mut out = QueryBatchResult::new();
    for op in script {
        match op {
            Op::Toggle(w) => {
                if !router.add_fault(*w) {
                    router.clear_fault(*w);
                }
            }
            Op::Burst(pairs) => {
                router.query_many_into(pairs, &mut out);
                assert_eq!(out.len(), pairs.len());
                answers.extend(
                    out.iter()
                        .map(|r| r.map(|f| f.to_paths()).map_err(Clone::clone)),
                );
            }
        }
    }
    answers
}

/// Decodes a proptest-drawn raw script over a pair pool: tag 0 toggles
/// a fault, other tags append to the current query burst (pool pairs
/// repeat, so cache tiers actually serve).
fn build_script(h: &Hhc, pool: &[(NodeId, NodeId)], raw: &[(u8, u64, u64, u8)]) -> Vec<Op> {
    let mut script = Vec::new();
    let mut burst: Vec<(NodeId, NodeId)> = Vec::new();
    for &(tag, x, y, pick) in raw {
        if tag % 4 == 0 {
            if !burst.is_empty() {
                script.push(Op::Burst(std::mem::take(&mut burst)));
            }
            script.push(Op::Toggle(node(h, x, y)));
        } else {
            burst.push(pool[pick as usize % pool.len()]);
        }
    }
    if !burst.is_empty() {
        script.push(Op::Burst(burst));
    }
    script
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any interleaving of queries and fault events, across thread
    /// counts and cache-tier configurations: router answers (values and
    /// errors) are byte-identical to the serial cold-cache oracle.
    #[test]
    fn router_matches_serial_cold_oracle(
        m in 2u32..=3,
        pool_raw in proptest::collection::vec(
            (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()), 2..5),
        raw in proptest::collection::vec(
            (any::<u8>(), any::<u64>(), any::<u64>(), any::<u8>()), 4..24),
    ) {
        let h = Hhc::new(m).unwrap();
        let pool: Vec<(NodeId, NodeId)> = pool_raw
            .into_iter()
            .map(|(xa, ya, xb, yb)| (node(&h, xa, ya), node(&h, xb, yb)))
            .filter(|(u, v)| u != v)
            .collect();
        prop_assume!(!pool.is_empty());
        let script = build_script(&h, &pool, &raw);
        let want = oracle_run(&h, &script);

        let configs = [
            RouterConfig { threads: 1, order: CrossingOrder::Gray,
                           l1: CacheConfig::enabled(), l2: L2Config::enabled() },
            RouterConfig { threads: 3, order: CrossingOrder::Gray,
                           l1: CacheConfig::enabled(), l2: L2Config::enabled() },
            RouterConfig { threads: 3, order: CrossingOrder::Gray,
                           l1: CacheConfig::enabled(), l2: L2Config::disabled() },
            RouterConfig { threads: 2, order: CrossingOrder::Gray,
                           l1: CacheConfig { fan_capacity: 2, family_capacity: 2 },
                           l2: L2Config { shards: 2, shard_capacity: 2 } },
        ];
        for (i, cfg) in configs.into_iter().enumerate() {
            let mut router = Router::new(m, cfg).unwrap();
            let got = router_run(&mut router, &script);
            prop_assert_eq!(&got, &want, "router config {} (shim) diverged from the oracle", i);
            // Fresh router per pipeline: fault toggles are stateful, and
            // a cold start keeps both runs against the same cold oracle.
            let mut router = Router::new(m, cfg).unwrap();
            let got = router_run_arena(&mut router, &script);
            prop_assert_eq!(&got, &want, "router config {} (arena) diverged from the oracle", i);
        }
    }
}

/// Deterministic long seeded schedule on HHC(3) at 4 workers, with the
/// fault feed aimed at interior nodes of answered families so the lazy
/// invalidation path (L2 hit → fault scan → repair) actually fires.
/// Checks answers against the oracle *and* the tiered-cache metric
/// conservation laws.
#[test]
fn seeded_fault_churn_hits_invalidation_path() {
    let h = Hhc::new(3).unwrap();
    let mut state = 0x0123_4567_89ab_cdefu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    // A small hot pool: repeats guarantee both tiers serve replays.
    let pool: Vec<(NodeId, NodeId)> = (0..6)
        .map(|_| (node(&h, next(), next()), node(&h, next(), next())))
        .filter(|(u, v)| u != v)
        .collect();
    assert!(!pool.is_empty());

    // Aim fault toggles at interior nodes of the pool's plain families.
    let mut interiors = Vec::new();
    for &(u, v) in &pool {
        let (paths, _) =
            disjoint_paths_avoiding(&h, u, v, CrossingOrder::Gray, &HashSet::new()).unwrap();
        for p in &paths {
            if p.len() > 2 {
                interiors.push(p[p.len() / 2]);
            }
        }
    }

    let mut script = Vec::new();
    for round in 0..30 {
        let burst: Vec<_> = (0..8).map(|_| pool[next() as usize % pool.len()]).collect();
        script.push(Op::Burst(burst));
        if round % 2 == 0 {
            script.push(Op::Toggle(interiors[next() as usize % interiors.len()]));
        }
    }

    let want = oracle_run(&h, &script);
    let mut router = Router::new(
        3,
        RouterConfig {
            threads: 4,
            order: CrossingOrder::Gray,
            l1: CacheConfig::enabled(),
            l2: L2Config::enabled(),
        },
    )
    .unwrap();
    let got = router_run(&mut router, &script);
    assert_eq!(got, want, "churn schedule diverged from the oracle");

    let c = router.metrics().construction;
    // Tiered-probe conservation: every untraced query is an L1 hit, an
    // L2 hit, or an L2 miss (the tier analogue of the fan-query law).
    assert_eq!(
        c.family_hits + c.l2_hits + c.l2_misses,
        c.queries,
        "tiered-probe conservation law"
    );
    assert!(c.l2_hits > 0, "hot pool must hit the shared tier");
    assert!(
        c.fault_reroutes > 0,
        "interior faults must force repairs ({} reroutes)",
        c.fault_reroutes
    );
    assert!(
        c.l2_invalidations <= c.l2_hits && c.l2_invalidations <= c.fault_reroutes,
        "invalidations ({}) bounded by l2 hits ({}) and reroutes ({})",
        c.l2_invalidations,
        c.l2_hits,
        c.fault_reroutes
    );
    assert_eq!(c.fault_generation, router.generation());
    // Plan conservation survives the tiers: the plain stage (replayed
    // or fresh) selects exactly degree plans per query, and the
    // fault-rebuild path never touches the plan counters.
    assert_eq!(
        c.rotation_plans + c.detour_plans,
        (h.m() as u64 + 1) * c.cross_cube + c.same_cube,
        "plan conservation across cache tiers"
    );
}

/// The serial single-query paths (round-robin across workers, both the
/// owned shim `query` and the pooled `query_into`) agree with
/// `query_many` and with the oracle.
#[test]
fn single_query_round_robin_matches_batch() {
    let h = Hhc::new(2).unwrap();
    let mut router = Router::new(2, RouterConfig::default()).unwrap();
    let pairs: Vec<(NodeId, NodeId)> = vec![
        (node(&h, 3, 1), node(&h, 200, 2)),
        (node(&h, 7, 0), node(&h, 7, 3)),
        (node(&h, 0, 0), node(&h, u64::MAX, 1)),
    ];
    let batch = router.query_many(&pairs);
    let mut single = PathSet::new();
    for (i, &(u, v)) in pairs.iter().enumerate() {
        assert_eq!(router.query(u, v), batch[i]);
        match router.query_into(u, v, &mut single) {
            Ok(n) => {
                let want = batch[i].as_ref().unwrap();
                assert_eq!(n, want.len());
                assert_eq!(&single.to_paths(), want);
            }
            Err(e) => assert_eq!(&Err(e), &batch[i]),
        }
        let want =
            disjoint_paths_avoiding(&h, u, v, CrossingOrder::Gray, &HashSet::new()).map(|(p, _)| p);
        assert_eq!(batch[i], want);
    }
    // Equal endpoints error through the service like the library.
    let w = node(&h, 5, 1);
    assert_eq!(router.query(w, w), Err(HhcError::EqualNodes));
    assert_eq!(
        router.query_into(w, w, &mut single),
        Err(HhcError::EqualNodes)
    );
}
