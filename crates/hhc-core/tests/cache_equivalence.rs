//! Property tests for the symmetry caches: construction output must be
//! byte-identical with caching on, off, or thrashing.
//!
//! The caches (canonical fan cache in `hypercube`, canonical family
//! cache in `hhc-core`) memoise exact translation-canonical solutions,
//! so they must never change a single node of any family — across random
//! pairs, every supported `m`, both crossing orders, and under eviction
//! pressure from deliberately tiny capacities. Pairs are drawn from a
//! small pool and repeated so hit paths are actually exercised.

use hhc_core::{batch, disjoint, CacheConfig, CrossingOrder, Hhc, NodeId, PathSet, Workspace};
use proptest::prelude::*;

/// Builds a valid HHC node from arbitrary bits.
fn node(h: &Hhc, x: u64, y: u64) -> NodeId {
    let xmask = (1u128 << h.positions()) - 1;
    h.node(x as u128 & xmask, (y % h.positions() as u64) as u32)
        .expect("masked into range")
}

/// The cache configurations under test: reference (off), defaults, and
/// tiny capacities that sweep constantly.
fn configs() -> [CacheConfig; 3] {
    [
        CacheConfig::disabled(),
        CacheConfig::enabled(),
        CacheConfig {
            fan_capacity: 2,
            family_capacity: 2,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// One warm builder per cache configuration, fed the same repeated
    /// pair sequence: every configuration must emit byte-identical
    /// `PathSet`s, equal to the fresh per-pair reference.
    #[test]
    fn cache_on_equals_cache_off(
        m in 1u32..=4,
        raw in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()), 2..8),
        reps in 2usize..4,
        gray in any::<bool>(),
    ) {
        let h = Hhc::new(m).unwrap();
        let order = if gray { CrossingOrder::Gray } else { CrossingOrder::Sorted };
        let pool: Vec<(NodeId, NodeId)> = raw
            .into_iter()
            .map(|(xa, ya, xb, yb)| (node(&h, xa, ya), node(&h, xb, yb)))
            .filter(|(u, v)| u != v)
            .collect();
        prop_assume!(!pool.is_empty());

        let mut workspaces: Vec<Workspace> =
            configs().iter().map(|&c| Workspace::with_caches(c)).collect();
        // Cycle the pool so later iterations replay warm cache entries.
        for rep in 0..reps {
            for (i, &(u, v)) in pool.iter().enumerate() {
                let fresh = disjoint::disjoint_paths(&h, u, v, order).unwrap();
                for (w, ws) in workspaces.iter_mut().enumerate() {
                    let set = ws.construct(&h, u, v, order).unwrap();
                    prop_assert_eq!(
                        &set.to_paths(), &fresh,
                        "config {} differs from fresh on rep {} pair {}", w, rep, i
                    );
                }
            }
        }
        // The warm default-config workspace replayed later reps from its
        // family cache; the disabled one never did.
        let hits = |i: usize| workspaces[i].metrics().construction.family_hits;
        prop_assert_eq!(hits(0), 0, "disabled cache must never hit");
        prop_assert!(hits(1) >= ((reps - 1) * pool.len()) as u64, "warm cache must replay repeats");
    }

    /// Batch entry points with explicit configs agree with each other
    /// and with the unconfigured defaults.
    #[test]
    fn batch_configs_agree(
        m in 1u32..=3,
        raw in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()), 1..6),
    ) {
        let h = Hhc::new(m).unwrap();
        let pool: Vec<(NodeId, NodeId)> = raw
            .into_iter()
            .map(|(xa, ya, xb, yb)| (node(&h, xa, ya), node(&h, xb, yb)))
            .filter(|(u, v)| u != v)
            .collect();
        prop_assume!(!pool.is_empty());
        // Repeat the pool to create cache hits inside one batch call.
        let pairs: Vec<(NodeId, NodeId)> = pool.iter().copied().cycle().take(pool.len() * 3).collect();

        let default = batch::construct_many(&h, &pairs, CrossingOrder::Gray).unwrap();
        for cfg in configs() {
            let got = batch::construct_many_with(&h, &pairs, CrossingOrder::Gray, cfg).unwrap();
            prop_assert_eq!(&got, &default);
            let (metered, report) =
                batch::construct_many_metered_with(&h, &pairs, CrossingOrder::Gray, false, cfg)
                    .unwrap();
            prop_assert_eq!(&metered, &default);
            let c = &report.construction;
            prop_assert_eq!(c.queries, pairs.len() as u64);
            // Conservation laws hold with or without cache replays.
            prop_assert_eq!(
                c.rotation_plans + c.detour_plans,
                c.cross_cube * h.degree() as u64 + c.same_cube
            );
            prop_assert_eq!(
                report.fan_queries(),
                2 * (c.cross_cube - c.family_hits_cross)
            );
            if cfg == CacheConfig::disabled() {
                prop_assert_eq!(c.family_hits, 0);
            }
        }
    }
}

/// Deterministic (non-prop) sweep of the larger networks the proptest
/// skips: m = 5 and 6, repeated pairs, warm-vs-disabled byte equality.
#[test]
fn large_m_repeated_pairs_identical() {
    let mut state = 0x0123_4567_89ab_cdefu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for m in 5u32..=6 {
        let h = Hhc::new(m).unwrap();
        let xmask = (1u128 << h.positions()) - 1;
        let mut pool = Vec::new();
        while pool.len() < 6 {
            let xu = ((next() as u128) << 64 | next() as u128) & xmask;
            let xv = ((next() as u128) << 64 | next() as u128) & xmask;
            let u = h.node(xu, (next() % (1 << m) as u64) as u32).unwrap();
            let v = h.node(xv, (next() % (1 << m) as u64) as u32).unwrap();
            if u != v {
                pool.push((u, v));
            }
        }
        let mut warm = Workspace::with_caches(CacheConfig::enabled());
        let mut off = Workspace::with_caches(CacheConfig::disabled());
        let mut expect = PathSet::new();
        for _ in 0..3 {
            for &(u, v) in &pool {
                let a = warm.construct(&h, u, v, CrossingOrder::Gray).unwrap();
                expect.clone_from(a);
                let b = off.construct(&h, u, v, CrossingOrder::Gray).unwrap();
                assert_eq!(&expect, b, "m={m} pair {u:?}->{v:?}");
            }
        }
        assert_eq!(
            warm.metrics().construction.family_hits,
            2 * pool.len() as u64,
            "reps 2 and 3 must replay"
        );
        assert_eq!(off.metrics().construction.family_hits, 0);
    }
}
