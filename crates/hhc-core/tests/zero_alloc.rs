//! Allocation accounting for the serving hot paths: once warm, a
//! cache-hit query must touch the heap **zero** times.
//!
//! A counting `#[global_allocator]` wraps the system allocator; the
//! test warms a builder (scratch buffers, cache entries, the published
//! L2 snapshot) and then asserts that repeated hit-path queries perform
//! no `alloc`/`realloc` at all. Three tiers are pinned:
//!
//! * **L1 hit** — replay from the per-builder family cache;
//! * **L2 hit** — the builder's L1 is configured away
//!   (`family_capacity: 0`), so every query probes the shared tier's
//!   lock-free snapshot and copies the slab into the caller's scratch;
//! * **L2 hit under non-intersecting faults** — same, plus a live
//!   fault set the replayed family doesn't touch, so the avoiding
//!   layer's fault scan runs (and passes) on the hot path.
//!
//! This is the core of the router's per-query work; the worker loop
//! around it adds only pooled buffers and an atomic fault-generation
//! check. Everything runs in ONE test function: Rust runs tests on
//! multiple threads by default, and a second thread's incidental
//! allocations would poison the counter.

use hhc_core::{
    disjoint_paths_avoiding_into, CacheConfig, CrossingOrder, Hhc, L2Config, NodeId, PathBuilder,
    PathSet, SharedFamilyCache,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` and returns how many allocator calls it made.
fn allocations<F: FnMut()>(mut f: F) -> u64 {
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    f();
    ALLOC_CALLS.load(Ordering::Relaxed) - before
}

#[test]
fn hit_paths_do_not_allocate() {
    let h = Hhc::new(3).unwrap();
    let empty: HashSet<NodeId> = HashSet::new();
    // One cross-cube and one same-cube pair: the two construction cases
    // have different replay shapes (m+1 long paths vs m+1 short ones).
    let queries = [
        (h.node(0x01, 0b001).unwrap(), h.node(0x9C, 0b110).unwrap()),
        (h.node(0x42, 0b000).unwrap(), h.node(0x42, 0b111).unwrap()),
    ];

    // --- L1 hit path: per-builder family cache replay. ---
    let mut builder = PathBuilder::with_caches(CacheConfig::enabled());
    let mut out = PathSet::new();
    for &(u, v) in &queries {
        for _ in 0..3 {
            disjoint_paths_avoiding_into(
                &h,
                u,
                v,
                CrossingOrder::Gray,
                &empty,
                &mut out,
                &mut builder,
            )
            .unwrap();
        }
    }
    for &(u, v) in &queries {
        let n = allocations(|| {
            for _ in 0..64 {
                disjoint_paths_avoiding_into(
                    &h,
                    u,
                    v,
                    CrossingOrder::Gray,
                    &empty,
                    &mut out,
                    &mut builder,
                )
                .unwrap();
            }
        });
        assert_eq!(n, 0, "L1-hit path allocated {n} times for {u:?}→{v:?}");
    }

    // --- L2 hit path: L1 disabled, every query probes the shared
    // snapshot and copies straight out of the slab. ---
    let l2 = Arc::new(SharedFamilyCache::new(L2Config::enabled()));
    let mut warmer = PathBuilder::with_caches(CacheConfig::enabled());
    warmer.attach_shared_cache(Arc::clone(&l2));
    for &(u, v) in &queries {
        disjoint_paths_avoiding_into(&h, u, v, CrossingOrder::Gray, &empty, &mut out, &mut warmer)
            .unwrap();
    }
    let no_l1 = CacheConfig {
        fan_capacity: 0,
        family_capacity: 0,
    };
    let mut reader = PathBuilder::with_caches(no_l1);
    reader.attach_shared_cache(Arc::clone(&l2));
    for &(u, v) in &queries {
        // Warm the reader's snapshot handles and scratch capacity.
        for _ in 0..3 {
            disjoint_paths_avoiding_into(
                &h,
                u,
                v,
                CrossingOrder::Gray,
                &empty,
                &mut out,
                &mut reader,
            )
            .unwrap();
        }
    }
    for &(u, v) in &queries {
        let n = allocations(|| {
            for _ in 0..64 {
                disjoint_paths_avoiding_into(
                    &h,
                    u,
                    v,
                    CrossingOrder::Gray,
                    &empty,
                    &mut out,
                    &mut reader,
                )
                .unwrap();
            }
        });
        assert_eq!(n, 0, "L2-hit path allocated {n} times for {u:?}→{v:?}");
    }
    let c = reader.metrics().construction;
    assert_eq!(c.family_hits, 0, "L1 is off: every hit must be an L2 hit");
    assert_eq!(c.l2_hits, c.queries, "measurement really ran on L2 hits");

    // --- L2 hit with a live, non-intersecting fault set: the avoiding
    // layer scans the replayed family against the faults and keeps it. ---
    let (u, v) = queries[0];
    disjoint_paths_avoiding_into(&h, u, v, CrossingOrder::Gray, &empty, &mut out, &mut reader)
        .unwrap();
    let family_nodes: HashSet<NodeId> = out.iter().flatten().copied().collect();
    let fault = (0..)
        .find_map(|x| {
            let w = h.node(x, 0).ok()?;
            (!family_nodes.contains(&w)).then_some(w)
        })
        .expect("some node is outside one family");
    let faults: HashSet<NodeId> = [fault].into();
    for _ in 0..3 {
        disjoint_paths_avoiding_into(
            &h,
            u,
            v,
            CrossingOrder::Gray,
            &faults,
            &mut out,
            &mut reader,
        )
        .unwrap();
    }
    let n = allocations(|| {
        for _ in 0..64 {
            disjoint_paths_avoiding_into(
                &h,
                u,
                v,
                CrossingOrder::Gray,
                &faults,
                &mut out,
                &mut reader,
            )
            .unwrap();
        }
    });
    assert_eq!(n, 0, "faulted L2-hit path allocated {n} times");
    assert_eq!(
        reader.metrics().construction.fault_reroutes,
        0,
        "the fault must not intersect the family (hit path, not repair)"
    );
}
