//! Fault oracles: the construction-facing view of a fault set.
//!
//! The fault-avoiding construction ([`crate::disjoint_paths_avoiding`])
//! only needs two questions answered — *is this node faulty?* and *are
//! there any faults at all?* — so the oracle trait is deliberately
//! minimal and object-safe: callers hand the engine a `&dyn FaultOracle`
//! and keep whatever representation suits their hot path (hash set,
//! sorted slice, dense bitmap). `netsim` re-exports this trait as its
//! `FaultLookup` so one fault set serves both the simulator's selection
//! layer and the construction engine without conversion.

use crate::node::NodeId;
use std::collections::HashSet;

/// Membership oracle for faulty nodes.
pub trait FaultOracle {
    /// Whether `v` is faulty.
    fn is_faulty(&self, v: NodeId) -> bool;

    /// Number of faulty nodes. `0` lets fault-aware entry points skip
    /// fault handling entirely (and is required to mean "no node is
    /// faulty" — [`is_faulty`](Self::is_faulty) must then be `false`
    /// everywhere).
    fn fault_count(&self) -> usize;
}

impl FaultOracle for HashSet<NodeId> {
    fn is_faulty(&self, v: NodeId) -> bool {
        self.contains(&v)
    }

    fn fault_count(&self) -> usize {
        self.len()
    }
}

impl<T: FaultOracle + ?Sized> FaultOracle for &T {
    fn is_faulty(&self, v: NodeId) -> bool {
        (**self).is_faulty(v)
    }

    fn fault_count(&self) -> usize {
        (**self).fault_count()
    }
}

/// The empty fault set (useful as a default argument).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoFaults;

impl FaultOracle for NoFaults {
    fn is_faulty(&self, _v: NodeId) -> bool {
        false
    }

    fn fault_count(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashset_oracle() {
        let set: HashSet<NodeId> = [NodeId::from_raw(3), NodeId::from_raw(9)]
            .into_iter()
            .collect();
        assert!(set.is_faulty(NodeId::from_raw(3)));
        assert!(!set.is_faulty(NodeId::from_raw(4)));
        assert_eq!(set.fault_count(), 2);
        // Through a reference and a trait object.
        let by_ref: &HashSet<NodeId> = &set;
        assert_eq!(by_ref.fault_count(), 2);
        let dyn_oracle: &dyn FaultOracle = &set;
        assert!(dyn_oracle.is_faulty(NodeId::from_raw(9)));
    }

    #[test]
    fn no_faults_is_empty() {
        assert_eq!(NoFaults.fault_count(), 0);
        assert!(!NoFaults.is_faulty(NodeId::from_raw(0)));
    }
}
