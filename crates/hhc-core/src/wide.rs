//! Wide-diameter estimation.
//!
//! The `(m+1)`-wide diameter `D_{m+1}(HHC(m))` is the smallest `L` such
//! that every pair of distinct nodes is joined by `m + 1` internally
//! disjoint paths of length ≤ `L`. The construction gives the upper bound
//! [`crate::bounds::wide_diameter_upper_bound`]; this module measures the
//! largest maximum-path-length the construction actually produces —
//! exhaustively for tiny networks, over samples otherwise (experiment T4).
//!
//! Every sweep comes in two forms: a convenience entry point that owns
//! its [`Workspace`], and a `_with` variant taking a caller-owned one so
//! batch drivers can reuse scratch across sweeps and read the
//! accumulated [construction metrics](crate::batch::Workspace::metrics)
//! afterwards. Infeasible requests (an exhaustive sweep on a network too
//! large to enumerate) are reported as [`HhcError::Unsupported`], never
//! panics.
//!
//! # Panics
//!
//! All sweeps verify each constructed family as they go; a verification
//! failure means the construction itself is buggy (the test suite proves
//! it exhaustively for `m ≤ 2`) and panics rather than mislabelling the
//! estimate. No input reachable through the validated parameters can
//! trigger this.

use crate::batch::Workspace;
use crate::disjoint::CrossingOrder;
use crate::error::HhcError;
use crate::topology::Hhc;

/// Largest `m` for which the exhaustive all-pairs sweep is feasible:
/// HHC(2) has 64 nodes ⇒ 4032 ordered pairs; HHC(3) already has 2048
/// nodes ⇒ over 4 million pairs.
pub const EXHAUSTIVE_MAX_M: u32 = 2;

/// Result of a wide-diameter sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WideDiameterEstimate {
    /// Largest max-path-length observed over the examined pairs.
    pub observed_max: u32,
    /// Number of (ordered) pairs examined.
    pub pairs: u64,
    /// Provable upper bound for this network.
    pub upper_bound: u32,
}

/// Exhaustive sweep over all ordered pairs. Only feasible for
/// `m ≤` [`EXHAUSTIVE_MAX_M`]; larger networks return
/// [`HhcError::Unsupported`] (use [`sampled`] there).
pub fn exhaustive(hhc: &Hhc) -> Result<WideDiameterEstimate, HhcError> {
    exhaustive_with(hhc, &mut Workspace::new())
}

/// [`exhaustive`] reusing a caller-owned [`Workspace`].
pub fn exhaustive_with(hhc: &Hhc, ws: &mut Workspace) -> Result<WideDiameterEstimate, HhcError> {
    if hhc.m() > EXHAUSTIVE_MAX_M {
        return Err(HhcError::Unsupported(format!(
            "exhaustive wide-diameter sweep enumerates all ordered pairs; \
             m={} exceeds the m ≤ {EXHAUSTIVE_MAX_M} guard (use a sampled sweep)",
            hhc.m()
        )));
    }
    let mut observed = 0;
    let mut pairs = 0;
    for u in hhc.iter_nodes() {
        for v in hhc.iter_nodes() {
            if u == v {
                continue;
            }
            let max = ws
                .construct_and_verify(hhc, u, v, CrossingOrder::Gray)
                .expect("construction must verify (internal invariant)");
            observed = observed.max(max);
            pairs += 1;
        }
    }
    Ok(WideDiameterEstimate {
        observed_max: observed,
        pairs,
        upper_bound: crate::bounds::wide_diameter_upper_bound(hhc),
    })
}

/// Sampled sweep over `count` pseudo-random ordered pairs drawn from the
/// given seed (deterministic; independent of platform).
pub fn sampled(hhc: &Hhc, count: u64, seed: u64) -> Result<WideDiameterEstimate, HhcError> {
    sampled_with(hhc, count, seed, &mut Workspace::new())
}

/// [`sampled`] reusing a caller-owned [`Workspace`].
pub fn sampled_with(
    hhc: &Hhc,
    count: u64,
    seed: u64,
    ws: &mut Workspace,
) -> Result<WideDiameterEstimate, HhcError> {
    let mut rng = SplitMix64::new(seed);
    let xmask = if hhc.positions() >= 128 {
        u128::MAX
    } else {
        (1u128 << hhc.positions()) - 1
    };
    let ymod = 1u64 << hhc.m();
    let mut observed = 0;
    let mut pairs = 0;
    while pairs < count {
        let u = hhc.node(rng.next_u128() & xmask, (rng.next() % ymod) as u32)?;
        let v = hhc.node(rng.next_u128() & xmask, (rng.next() % ymod) as u32)?;
        if u == v {
            continue;
        }
        let max = ws
            .construct_and_verify(hhc, u, v, CrossingOrder::Gray)
            .expect("construction must verify (internal invariant)");
        observed = observed.max(max);
        pairs += 1;
    }
    Ok(WideDiameterEstimate {
        observed_max: observed,
        pairs,
        upper_bound: crate::bounds::wide_diameter_upper_bound(hhc),
    })
}

/// Pairs stressing the worst case: antipodal cube fields and node fields.
/// Returns the observed max over a structured family of `hard` pairs
/// (all-ones cube-field difference with every `(Yu, Yv)` combination).
pub fn adversarial(hhc: &Hhc) -> Result<WideDiameterEstimate, HhcError> {
    adversarial_with(hhc, &mut Workspace::new())
}

/// [`adversarial`] reusing a caller-owned [`Workspace`].
pub fn adversarial_with(hhc: &Hhc, ws: &mut Workspace) -> Result<WideDiameterEstimate, HhcError> {
    let all_x = if hhc.positions() >= 128 {
        u128::MAX
    } else {
        (1u128 << hhc.positions()) - 1
    };
    let mut observed = 0;
    let mut pairs = 0;
    for yu in 0..hhc.positions() {
        for yv in 0..hhc.positions() {
            let u = hhc.node(0, yu)?;
            let v = hhc.node(all_x, yv)?;
            let max = ws
                .construct_and_verify(hhc, u, v, CrossingOrder::Gray)
                .expect("construction must verify (internal invariant)");
            observed = observed.max(max);
            pairs += 1;
        }
    }
    Ok(WideDiameterEstimate {
        observed_max: observed,
        pairs,
        upper_bound: crate::bounds::wide_diameter_upper_bound(hhc),
    })
}

/// Minimal deterministic PRNG (SplitMix64) so the crate needs no RNG
/// dependency; experiment-facing randomness lives in `workloads`.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn next_u128(&mut self) -> u128 {
        (self.next() as u128) << 64 | self.next() as u128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_m1() {
        let h = Hhc::new(1).unwrap();
        let est = exhaustive(&h).unwrap();
        assert_eq!(est.pairs, 8 * 7);
        assert!(est.observed_max <= est.upper_bound);
        // HHC(1) is the 8-cycle: two disjoint paths between any pair, the
        // longer of which has length ≥ 4 for antipodal pairs.
        assert!(est.observed_max >= 4);
    }

    #[test]
    fn exhaustive_m2() {
        let h = Hhc::new(2).unwrap();
        let est = exhaustive(&h).unwrap();
        assert_eq!(est.pairs, 64 * 63);
        assert!(est.observed_max <= est.upper_bound);
        assert!(est.observed_max >= h.diameter());
    }

    #[test]
    fn exhaustive_above_guard_is_an_error_not_a_panic() {
        for m in (EXHAUSTIVE_MAX_M + 1)..=6 {
            let h = Hhc::new(m).unwrap();
            match exhaustive(&h) {
                Err(HhcError::Unsupported(msg)) => {
                    assert!(msg.contains("exhaustive"), "m={m}: {msg}")
                }
                other => panic!("m={m}: expected Unsupported, got {other:?}"),
            }
        }
    }

    #[test]
    fn sampled_is_deterministic() {
        let h = Hhc::new(4).unwrap();
        let a = sampled(&h, 50, 42).unwrap();
        let b = sampled(&h, 50, 42).unwrap();
        assert_eq!(a, b);
        assert!(a.observed_max <= a.upper_bound);
    }

    #[test]
    fn adversarial_pairs_verify() {
        let h = Hhc::new(3).unwrap();
        let est = adversarial(&h).unwrap();
        assert_eq!(est.pairs, 64);
        assert!(est.observed_max <= est.upper_bound);
    }

    #[test]
    fn with_variants_share_a_workspace_and_accumulate_metrics() {
        let h = Hhc::new(1).unwrap();
        let mut ws = Workspace::new();
        let a = exhaustive_with(&h, &mut ws).unwrap();
        let b = adversarial_with(&h, &mut ws).unwrap();
        assert_eq!(a, exhaustive(&h).unwrap());
        assert_eq!(b, adversarial(&h).unwrap());
        let m = ws.metrics();
        assert_eq!(m.construction.queries, a.pairs + b.pairs);
    }
}
