//! Wide-diameter estimation.
//!
//! The `(m+1)`-wide diameter `D_{m+1}(HHC(m))` is the smallest `L` such
//! that every pair of distinct nodes is joined by `m + 1` internally
//! disjoint paths of length ≤ `L`. The construction gives the upper bound
//! [`crate::bounds::wide_diameter_upper_bound`]; this module measures the
//! largest maximum-path-length the construction actually produces —
//! exhaustively for tiny networks, over samples otherwise (experiment T4).

use crate::batch::Workspace;
use crate::disjoint::CrossingOrder;
use crate::topology::Hhc;

/// Result of a wide-diameter sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WideDiameterEstimate {
    /// Largest max-path-length observed over the examined pairs.
    pub observed_max: u32,
    /// Number of (ordered) pairs examined.
    pub pairs: u64,
    /// Provable upper bound for this network.
    pub upper_bound: u32,
}

/// Exhaustive sweep over all ordered pairs. Only feasible for `m ≤ 2`
/// (HHC(2) has 64 nodes ⇒ 4032 ordered pairs); panics above.
pub fn exhaustive(hhc: &Hhc) -> WideDiameterEstimate {
    assert!(hhc.m() <= 2, "exhaustive wide-diameter sweep needs m ≤ 2");
    let mut ws = Workspace::new();
    let mut observed = 0;
    let mut pairs = 0;
    for u in hhc.iter_nodes() {
        for v in hhc.iter_nodes() {
            if u == v {
                continue;
            }
            let max = ws
                .construct_and_verify(hhc, u, v, CrossingOrder::Gray)
                .expect("construction must verify");
            observed = observed.max(max);
            pairs += 1;
        }
    }
    WideDiameterEstimate {
        observed_max: observed,
        pairs,
        upper_bound: crate::bounds::wide_diameter_upper_bound(hhc),
    }
}

/// Sampled sweep over `count` pseudo-random ordered pairs drawn from the
/// given seed (deterministic; independent of platform).
pub fn sampled(hhc: &Hhc, count: u64, seed: u64) -> WideDiameterEstimate {
    let mut rng = SplitMix64::new(seed);
    let xmask = if hhc.positions() >= 128 {
        u128::MAX
    } else {
        (1u128 << hhc.positions()) - 1
    };
    let ymod = 1u64 << hhc.m();
    let mut ws = Workspace::new();
    let mut observed = 0;
    let mut pairs = 0;
    while pairs < count {
        let u = hhc
            .node(rng.next_u128() & xmask, (rng.next() % ymod) as u32)
            .expect("in range");
        let v = hhc
            .node(rng.next_u128() & xmask, (rng.next() % ymod) as u32)
            .expect("in range");
        if u == v {
            continue;
        }
        let max = ws
            .construct_and_verify(hhc, u, v, CrossingOrder::Gray)
            .expect("construction must verify");
        observed = observed.max(max);
        pairs += 1;
    }
    WideDiameterEstimate {
        observed_max: observed,
        pairs,
        upper_bound: crate::bounds::wide_diameter_upper_bound(hhc),
    }
}

/// Pairs stressing the worst case: antipodal cube fields and node fields.
/// Returns the observed max over a structured family of `hard` pairs
/// (all-ones cube-field difference with every `(Yu, Yv)` combination).
pub fn adversarial(hhc: &Hhc) -> WideDiameterEstimate {
    let all_x = if hhc.positions() >= 128 {
        u128::MAX
    } else {
        (1u128 << hhc.positions()) - 1
    };
    let mut ws = Workspace::new();
    let mut observed = 0;
    let mut pairs = 0;
    for yu in 0..hhc.positions() {
        for yv in 0..hhc.positions() {
            let u = hhc.node(0, yu).expect("in range");
            let v = hhc.node(all_x, yv).expect("in range");
            let max = ws
                .construct_and_verify(hhc, u, v, CrossingOrder::Gray)
                .expect("construction must verify");
            observed = observed.max(max);
            pairs += 1;
        }
    }
    WideDiameterEstimate {
        observed_max: observed,
        pairs,
        upper_bound: crate::bounds::wide_diameter_upper_bound(hhc),
    }
}

/// Minimal deterministic PRNG (SplitMix64) so the crate needs no RNG
/// dependency; experiment-facing randomness lives in `workloads`.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn next_u128(&mut self) -> u128 {
        (self.next() as u128) << 64 | self.next() as u128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_m1() {
        let h = Hhc::new(1).unwrap();
        let est = exhaustive(&h);
        assert_eq!(est.pairs, 8 * 7);
        assert!(est.observed_max <= est.upper_bound);
        // HHC(1) is the 8-cycle: two disjoint paths between any pair, the
        // longer of which has length ≥ 4 for antipodal pairs.
        assert!(est.observed_max >= 4);
    }

    #[test]
    fn exhaustive_m2() {
        let h = Hhc::new(2).unwrap();
        let est = exhaustive(&h);
        assert_eq!(est.pairs, 64 * 63);
        assert!(est.observed_max <= est.upper_bound);
        assert!(est.observed_max >= h.diameter());
    }

    #[test]
    fn sampled_is_deterministic() {
        let h = Hhc::new(4).unwrap();
        let a = sampled(&h, 50, 42);
        let b = sampled(&h, 50, 42);
        assert_eq!(a, b);
        assert!(a.observed_max <= a.upper_bound);
    }

    #[test]
    fn adversarial_pairs_verify() {
        let h = Hhc::new(3).unwrap();
        let est = adversarial(&h);
        assert_eq!(est.pairs, 64);
        assert!(est.observed_max <= est.upper_bound);
    }
}
