//! The `HHC(m)` network: addressing, adjacency, materialisation.

use crate::error::HhcError;
use crate::node::NodeId;
use graphs::CsrGraph;
use hypercube::Cube;

/// A hierarchical hypercube network `HHC(m)`, `1 ≤ m ≤ 6`.
///
/// All operations are symbolic: memory use is independent of the
/// `2^(2^m + m)` node count (over 10^21 nodes at m = 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hhc {
    m: u32,
    /// Total address bits, `n = 2^m + m`.
    n: u32,
}

impl Hhc {
    /// Creates `HHC(m)`.
    pub fn new(m: u32) -> Result<Self, HhcError> {
        if (1..=6).contains(&m) {
            Ok(Hhc { m, n: (1 << m) + m })
        } else {
            Err(HhcError::BadParameter(m))
        }
    }

    /// The hierarchy parameter `m` (son-cube dimension).
    #[inline]
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Total address bits `n = 2^m + m`.
    #[inline]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Node degree (= connectivity), `m + 1`.
    #[inline]
    pub fn degree(&self) -> u32 {
        self.m + 1
    }

    /// Number of nodes, `2^n`.
    #[inline]
    pub fn num_nodes(&self) -> u128 {
        1u128 << self.n
    }

    /// Number of positions in the cube field, `2^m` (also the number of
    /// nodes per son-cube).
    #[inline]
    pub fn positions(&self) -> u32 {
        1 << self.m
    }

    /// The son-cube `Q_m` all intra-cluster algorithms run in.
    #[inline]
    pub fn son_cube(&self) -> Cube {
        Cube::new(self.m).expect("m validated at construction")
    }

    /// Diameter of the network, `2^(m+1)`.
    ///
    /// Verified by exhaustive BFS for m ≤ 3 in this crate's tests and in
    /// experiment T1 (the diametral pairs must cross every cube-field
    /// position, which forces a full tour of the son-cube's coordinates).
    #[inline]
    pub fn diameter(&self) -> u32 {
        1 << (self.m + 1)
    }

    /// Builds the node `(X = cube_field, Y = node_field)`.
    pub fn node(&self, cube_field: u128, node_field: u32) -> Result<NodeId, HhcError> {
        if cube_field >> self.positions() != 0 {
            return Err(HhcError::CubeFieldOutOfRange(cube_field));
        }
        if node_field >> self.m != 0 {
            return Err(HhcError::NodeFieldOutOfRange(node_field));
        }
        Ok(NodeId(cube_field << self.m | node_field as u128))
    }

    /// The cube field `X` of `v`.
    #[inline]
    pub fn cube_field(&self, v: NodeId) -> u128 {
        v.0 >> self.m
    }

    /// The node field `Y` of `v` (its coordinate within the son-cube).
    #[inline]
    pub fn node_field(&self, v: NodeId) -> u32 {
        (v.0 & ((1 << self.m) - 1)) as u32
    }

    /// Validates that `v` is an address of this network.
    pub fn check(&self, v: NodeId) -> Result<(), HhcError> {
        if v.0 >> self.n == 0 {
            Ok(())
        } else {
            Err(HhcError::NodeOutOfRange(v))
        }
    }

    /// Human-readable `(X, Y)` rendering of a node.
    pub fn format_node(&self, v: NodeId) -> String {
        format!(
            "(X={:0>width$b}, Y={:0>m$b})",
            self.cube_field(v),
            self.node_field(v),
            width = self.positions() as usize,
            m = self.m as usize,
        )
    }

    /// The internal neighbour across son-cube dimension `i < m`.
    #[inline]
    pub fn internal_neighbor(&self, v: NodeId, i: u32) -> NodeId {
        debug_assert!(i < self.m, "internal dimension {i} out of range");
        NodeId(v.0 ^ (1u128 << i))
    }

    /// The unique external neighbour: flips cube-field bit `int(Y)`.
    #[inline]
    pub fn external_neighbor(&self, v: NodeId) -> NodeId {
        let y = self.node_field(v);
        NodeId(v.0 ^ (1u128 << (self.m + y)))
    }

    /// All `m + 1` neighbours: internal (dimension order), then external.
    pub fn neighbors(&self, v: NodeId) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.m as usize + 1);
        for i in 0..self.m {
            out.push(self.internal_neighbor(v, i));
        }
        out.push(self.external_neighbor(v));
        out
    }

    /// Whether `{a, b}` is an edge of the network.
    pub fn is_edge(&self, a: NodeId, b: NodeId) -> bool {
        let xa = self.cube_field(a);
        let xb = self.cube_field(b);
        let ya = self.node_field(a);
        let yb = self.node_field(b);
        if xa == xb {
            (ya ^ yb).count_ones() == 1
        } else {
            ya == yb && (xa ^ xb) == 1u128 << ya
        }
    }

    /// Graph distance lower bound: every edge fixes exactly one differing
    /// bit of either field, so at least `H(Xa, Xb) + H(Ya, Yb)` hops are
    /// needed. Exact distance requires search; this bound is used by tests
    /// and by the simulator's statistics.
    pub fn distance_lower_bound(&self, a: NodeId, b: NodeId) -> u32 {
        let dx = (self.cube_field(a) ^ self.cube_field(b)).count_ones();
        let dy = (self.node_field(a) ^ self.node_field(b)).count_ones();
        dx + dy
    }

    /// Materialises the network as an explicit [`CsrGraph`] with node ids
    /// equal to raw packed addresses (which are dense in `[0, 2^n)`).
    /// Guarded to `m ≤ 4` (`2^20` nodes).
    pub fn materialize(&self) -> Result<CsrGraph, HhcError> {
        if self.m > 4 {
            return Err(HhcError::TooLargeToMaterialize(self.m));
        }
        let n_nodes = 1u32 << self.n;
        Ok(CsrGraph::from_fn(n_nodes, |raw| {
            self.neighbors(NodeId(raw as u128))
                .into_iter()
                .map(|w| w.0 as u32)
                .collect::<Vec<_>>()
        }))
    }

    /// Iterator over every node (small m only: `2^n` items).
    ///
    /// # Panics
    ///
    /// Panics when `n > 24` (m ≥ 5): enumerating `2^n` nodes is a
    /// programming error at that scale, not a recoverable condition.
    /// Symbolic operations (routing, disjoint paths) work at any `m`.
    pub fn iter_nodes(&self) -> impl Iterator<Item = NodeId> {
        assert!(self.n <= 24, "iter_nodes on a network too large");
        (0..1u128 << self.n).map(NodeId)
    }

    /// Constructs the `m + 1` node-disjoint paths between `u` and `v`
    /// (the paper's construction, Gray crossing order). Convenience for
    /// [`crate::disjoint::disjoint_paths`].
    pub fn disjoint_paths(&self, u: NodeId, v: NodeId) -> Result<Vec<crate::Path>, HhcError> {
        crate::disjoint::disjoint_paths(self, u, v, crate::disjoint::CrossingOrder::Gray)
    }

    /// Single-path route between `u` and `v` (Gray-ordered crossings).
    /// Convenience for [`crate::routing::route`].
    pub fn route(&self, u: NodeId, v: NodeId) -> Result<crate::Path, HhcError> {
        crate::routing::route(self, u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::{bfs, props};

    #[test]
    fn parameter_validation() {
        assert!(Hhc::new(0).is_err());
        assert!(Hhc::new(1).is_ok());
        assert!(Hhc::new(6).is_ok());
        assert!(Hhc::new(7).is_err());
    }

    #[test]
    fn address_arithmetic() {
        let h = Hhc::new(3).unwrap();
        assert_eq!(h.n(), 11);
        assert_eq!(h.num_nodes(), 2048);
        assert_eq!(h.degree(), 4);
        assert_eq!(h.positions(), 8);
        let v = h.node(0b1010_0110, 0b101).unwrap();
        assert_eq!(h.cube_field(v), 0b1010_0110);
        assert_eq!(h.node_field(v), 0b101);
        h.check(v).unwrap();
    }

    #[test]
    fn field_range_checks() {
        let h = Hhc::new(2).unwrap();
        assert!(h.node(0b10000, 0).is_err()); // X needs ≤ 4 bits
        assert!(h.node(0, 0b100).is_err()); // Y needs ≤ 2 bits
        assert!(h.check(NodeId::from_raw(1 << 6)).is_err()); // n = 6
    }

    #[test]
    fn external_neighbor_flips_indexed_bit() {
        let h = Hhc::new(3).unwrap();
        let v = h.node(0b0000_0000, 0b101).unwrap(); // Y = 5
        let w = h.external_neighbor(v);
        assert_eq!(h.cube_field(w), 1 << 5);
        assert_eq!(h.node_field(w), 0b101);
        // Involution: crossing back returns home.
        assert_eq!(h.external_neighbor(w), v);
    }

    #[test]
    fn neighbor_lists_are_involutive_and_regular() {
        let h = Hhc::new(2).unwrap();
        for v in h.iter_nodes() {
            let nbrs = h.neighbors(v);
            assert_eq!(nbrs.len(), 3);
            for w in nbrs {
                assert!(h.is_edge(v, w));
                assert!(h.is_edge(w, v));
                assert!(h.neighbors(w).contains(&v));
                assert_ne!(v, w);
            }
        }
    }

    #[test]
    fn m1_is_the_eight_cycle() {
        let h = Hhc::new(1).unwrap();
        let g = h.materialize().unwrap();
        assert_eq!(g.num_nodes(), 8);
        assert!(props::is_regular(&g, 2));
        assert_eq!(bfs::diameter(&g), Some(4));
        assert_eq!(props::girth(&g), Some(8));
        assert_eq!(h.diameter(), 4);
    }

    #[test]
    fn materialized_m2_matches_theory() {
        let h = Hhc::new(2).unwrap();
        let g = h.materialize().unwrap();
        assert_eq!(g.num_nodes(), 64);
        assert_eq!(g.num_edges() as u32, 64 * 3 / 2);
        assert!(props::is_regular(&g, 3));
        assert!(props::is_bipartite(&g));
        assert!(bfs::is_connected(&g));
        assert_eq!(bfs::diameter(&g), Some(h.diameter()));
    }

    #[test]
    fn materialized_m3_diameter_matches_formula() {
        let h = Hhc::new(3).unwrap();
        let g = h.materialize().unwrap();
        assert_eq!(g.num_nodes(), 2048);
        assert!(props::is_regular(&g, 4));
        assert_eq!(bfs::diameter(&g), Some(h.diameter())); // 2^3 + 3 + 1 = 12
    }

    #[test]
    fn materialize_guard() {
        assert!(matches!(
            Hhc::new(5).unwrap().materialize(),
            Err(HhcError::TooLargeToMaterialize(5))
        ));
    }

    #[test]
    fn connectivity_equals_degree_on_small_instances() {
        for m in 1..=2 {
            let h = Hhc::new(m).unwrap();
            let g = h.materialize().unwrap();
            assert_eq!(
                graphs::vertex_disjoint::vertex_connectivity(&g),
                h.degree(),
                "κ(HHC({m})) should be m+1"
            );
        }
    }

    #[test]
    fn distance_lower_bound_is_a_lower_bound() {
        let h = Hhc::new(2).unwrap();
        let g = h.materialize().unwrap();
        for u in h.iter_nodes() {
            let bfs = graphs::Bfs::run(&g, u.raw() as u32);
            for v in h.iter_nodes() {
                let d = bfs.dist(v.raw() as u32).unwrap();
                assert!(
                    h.distance_lower_bound(u, v) <= d,
                    "lb violated for {} → {}",
                    h.format_node(u),
                    h.format_node(v)
                );
            }
        }
    }

    #[test]
    fn format_node_is_padded_binary() {
        let h = Hhc::new(2).unwrap();
        let v = h.node(0b0110, 0b01).unwrap();
        assert_eq!(h.format_node(v), "(X=0110, Y=01)");
    }

    #[test]
    fn symbolic_m6_operations() {
        let h = Hhc::new(6).unwrap();
        assert_eq!(h.n(), 70);
        let x = (1u128 << 64) - 1;
        let v = h.node(x, 0b111111).unwrap();
        let w = h.external_neighbor(v);
        assert_eq!(h.cube_field(w), x ^ (1u128 << 63));
        assert_eq!(h.neighbors(v).len(), 7);
    }
}
