//! Single-path unicast routing in `HHC(m)`.
//!
//! To travel from `(Xu, Yu)` to `(Xv, Yv)` a route must take one external
//! hop *per differing cube-field position* (an external edge at `(X, Y)`
//! flips exactly bit `int(Y)` of `X`, so position `p` can only be crossed
//! while standing at son-cube coordinate `p`). The route therefore visits
//! the differing positions `D` in some order, walking inside son-cubes
//! between them, and finally walks to `Yv`.
//!
//! Ordering `D` along the Gray cycle of `Q_m` (anchored at `Yu`) keeps the
//! total intra-cube walking to at most one lap of the cycle (`2^m` hops),
//! giving route length ≤ `2^m + |D| + m` — within `m` of the network
//! diameter `2^(m+1)`. This is the classic Malluhi–Bayoumi
//! routing scheme; it is also `P_0` of the disjoint-path family in spirit.

use crate::error::HhcError;
use crate::node::NodeId;
use crate::topology::Hhc;
use crate::Path;
use hypercube::gray::sort_along_gray_cycle;
use hypercube::routing::shortest_path;

/// Computes a route from `u` to `v` with Gray-ordered crossings.
///
/// The result starts at `u`, ends at `v`, is simple, and has length at
/// most `2^m + H(Xu, Xv) + m` (see module docs). `u == v` yields `[u]`.
///
/// # Examples
/// ```
/// use hhc_core::Hhc;
/// let net = Hhc::new(2).unwrap();
/// let u = net.node(0b0000, 0b00).unwrap();
/// let v = net.node(0b1001, 0b11).unwrap();
/// let route = hhc_core::routing::route(&net, u, v).unwrap();
/// assert_eq!(route.first(), Some(&u));
/// assert_eq!(route.last(), Some(&v));
/// assert!(route.windows(2).all(|w| net.is_edge(w[0], w[1])));
/// ```
pub fn route(hhc: &Hhc, u: NodeId, v: NodeId) -> Result<Path, HhcError> {
    hhc.check(u)?;
    hhc.check(v)?;
    let cube = hhc.son_cube();
    let yu = hhc.node_field(u);
    let yv = hhc.node_field(v);
    let dx = hhc.cube_field(u) ^ hhc.cube_field(v);

    // Differing cube-field positions, ordered along the Gray cycle from Yu.
    let positions: Vec<u64> = (0..hhc.positions() as u64)
        .filter(|&p| dx >> p & 1 == 1)
        .collect();
    let ordered = sort_along_gray_cycle(&positions, hhc.m(), yu as u64);

    let mut path = vec![u];
    let mut cur = u;
    for &p in &ordered {
        // Walk inside the current son-cube to coordinate p…
        let seg = shortest_path(&cube, hhc.node_field(cur) as u128, p as u128);
        for &y in &seg[1..] {
            cur = hhc.node(hhc.cube_field(cur), y as u32)?;
            path.push(cur);
        }
        // …and take the external edge there.
        cur = hhc.external_neighbor(cur);
        path.push(cur);
    }
    // Final intra-cube walk to Yv.
    let seg = shortest_path(&cube, hhc.node_field(cur) as u128, yv as u128);
    for &y in &seg[1..] {
        cur = hhc.node(hhc.cube_field(cur), y as u32)?;
        path.push(cur);
    }
    debug_assert_eq!(cur, v);
    Ok(path)
}

/// Upper bound on the length of [`route`]'s result:
/// one Gray lap of intra-cube walking, one crossing per differing
/// position, plus the final walk to `Yv`.
pub fn route_length_bound(hhc: &Hhc, u: NodeId, v: NodeId) -> u32 {
    let k = (hhc.cube_field(u) ^ hhc.cube_field(v)).count_ones();
    if k == 0 {
        (hhc.node_field(u) ^ hhc.node_field(v)).count_ones()
    } else {
        hhc.positions() + k + hhc.m()
    }
}

/// Stateless next-hop for the same route, used by the simulator: given the
/// current node and the destination, returns the next node [`route`] would
/// take, or `None` at the destination.
///
/// Recomputing the Gray order at every hop keeps routers memoryless; the
/// hop sequence matches `route(cur, v)` because the route function only
/// depends on (cur, v).
pub fn next_hop(hhc: &Hhc, cur: NodeId, dst: NodeId) -> Option<NodeId> {
    if cur == dst {
        return None;
    }
    // First hop of the recomputed route.
    let path = route(hhc, cur, dst).expect("validated nodes");
    Some(path[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_route(hhc: &Hhc, p: &[NodeId], u: NodeId, v: NodeId) {
        assert_eq!(*p.first().unwrap(), u);
        assert_eq!(*p.last().unwrap(), v);
        for w in p.windows(2) {
            assert!(hhc.is_edge(w[0], w[1]), "non-edge in route");
        }
        let set: std::collections::HashSet<_> = p.iter().collect();
        assert_eq!(set.len(), p.len(), "route revisits a node");
        assert!(
            (p.len() - 1) as u32 <= route_length_bound(hhc, u, v),
            "route exceeds its bound"
        );
        assert!((p.len() - 1) as u32 >= hhc.distance_lower_bound(u, v));
    }

    #[test]
    fn same_cube_route_is_hamming() {
        let h = Hhc::new(3).unwrap();
        let u = h.node(0x5A, 0b000).unwrap();
        let v = h.node(0x5A, 0b110).unwrap();
        let p = route(&h, u, v).unwrap();
        check_route(&h, &p, u, v);
        assert_eq!(p.len() - 1, 2);
    }

    #[test]
    fn self_route_is_trivial() {
        let h = Hhc::new(2).unwrap();
        let u = h.node(0b1001, 0b01).unwrap();
        assert_eq!(route(&h, u, u).unwrap(), vec![u]);
    }

    #[test]
    fn exhaustive_m1_and_m2_routes_valid() {
        for m in 1..=2 {
            let h = Hhc::new(m).unwrap();
            for u in h.iter_nodes() {
                for v in h.iter_nodes() {
                    let p = route(&h, u, v).unwrap();
                    check_route(&h, &p, u, v);
                }
            }
        }
    }

    #[test]
    fn routes_close_to_bfs_distance_on_m2() {
        // Route length is within the documented bound of the true distance;
        // measure the worst stretch for the record.
        let h = Hhc::new(2).unwrap();
        let g = h.materialize().unwrap();
        let mut worst = 0.0f64;
        for u in h.iter_nodes() {
            let bfs = graphs::Bfs::run(&g, u.raw() as u32);
            for v in h.iter_nodes() {
                if u == v {
                    continue;
                }
                let d = bfs.dist(v.raw() as u32).unwrap() as f64;
                let r = (route(&h, u, v).unwrap().len() - 1) as f64;
                worst = worst.max(r / d);
            }
        }
        // Gray-ordered crossings keep stretch modest on HHC(2).
        assert!(worst <= 3.0, "unexpectedly poor stretch {worst}");
    }

    #[test]
    fn next_hop_follows_route_to_destination() {
        let h = Hhc::new(2).unwrap();
        let u = h.node(0b0000, 0b00).unwrap();
        let v = h.node(0b1011, 0b10).unwrap();
        let p = route(&h, u, v).unwrap();
        let mut cur = u;
        let mut walked = vec![cur];
        while let Some(nxt) = next_hop(&h, cur, v) {
            walked.push(nxt);
            cur = nxt;
            assert!(walked.len() <= p.len(), "next_hop diverged from route");
        }
        assert_eq!(walked, p);
    }

    #[test]
    fn route_crosses_once_per_differing_position() {
        let h = Hhc::new(3).unwrap();
        let u = h.node(0b0000_0000, 0b010).unwrap();
        let v = h.node(0b1001_0010, 0b010).unwrap(); // k = 3
        let p = route(&h, u, v).unwrap();
        check_route(&h, &p, u, v);
        let crossings = p.windows(2).filter(|w| hhc_cross(&h, w[0], w[1])).count();
        assert_eq!(crossings, 3);
    }

    fn hhc_cross(h: &Hhc, a: NodeId, b: NodeId) -> bool {
        h.cube_field(a) != h.cube_field(b)
    }

    #[test]
    fn symbolic_route_m6() {
        let h = Hhc::new(6).unwrap();
        let u = h.node(0, 0).unwrap();
        let v = h.node(u128::MAX >> 64, 0b101010).unwrap();
        let p = route(&h, u, v).unwrap();
        assert_eq!(*p.last().unwrap(), v);
        assert!((p.len() - 1) as u32 <= route_length_bound(&h, u, v));
        for w in p.windows(2) {
            assert!(h.is_edge(w[0], w[1]));
        }
    }
}
