//! # hhc-core — hierarchical hypercube networks and node-disjoint paths
//!
//! This crate implements the contribution of *"Node-disjoint paths in
//! hierarchical hypercube networks"* (IPPS/IPDPS 2006): a constructive,
//! symbolic algorithm that produces `m + 1` internally vertex-disjoint
//! paths between any two distinct nodes of the hierarchical hypercube
//! `HHC(m)` — matching the network's connectivity `m + 1`, with an explicit
//! worst-case length bound — plus everything needed to validate it
//! (topology, routing, verification, wide-diameter tooling).
//!
//! ## The network
//!
//! `HHC(m)` (Malluhi & Bayoumi, IEEE TPDS 1994) has `n = 2^m + m` address
//! bits and `2^n` nodes. A node `(X, Y)` carries an `m`-bit *node field*
//! `Y` locating it inside an `m`-dimensional *son-cube*, and a `2^m`-bit
//! *cube field* `X` identifying the son-cube. Each node has `m` internal
//! edges (flip one bit of `Y`) and exactly one external edge (flip bit
//! number `int(Y)` of `X`), so the degree is `m + 1`: the HHC keeps the
//! hypercube's recursive routing structure while growing the node count
//! doubly exponentially in `m` at constant-ish degree.
//!
//! ## Layout
//!
//! * [`topology`] — the [`Hhc`] network type: addressing, adjacency,
//!   materialisation for cross-validation;
//! * [`routing`] — single shortest-ish path routing (Gray-ordered
//!   crossings), the unicast substrate;
//! * [`disjoint`] — **the paper's construction**: `m + 1` node-disjoint
//!   paths via rotation/detour crossing plans and son-cube fans;
//! * [`bounds`] — the provable worst-case length bound and derived
//!   wide-diameter bound;
//! * [`verify`] — an independent checker used by every test and
//!   experiment (nothing in this crate is trusted unverified);
//! * [`wide`] — empirical wide-diameter search over node pairs;
//! * [`collectives`] — one-port broadcast schedules (extension feature);
//! * [`service`] — the concurrent routing service: a [`Router`] worker
//!   pool over a tiered (per-worker L1 / shared sharded L2) family
//!   cache with a live fault feed.
//!
//! ## Example
//!
//! ```
//! use hhc_core::{Hhc, CrossingOrder};
//!
//! let net = Hhc::new(3).unwrap();          // m = 3 ⇒ n = 11, 2048 nodes
//! let u = net.node(0x00, 0b000).unwrap();
//! let v = net.node(0xA5, 0b110).unwrap();
//! let paths = net.disjoint_paths(u, v).unwrap();
//! assert_eq!(paths.len(), 4);              // m + 1
//! hhc_core::verify::verify_disjoint_paths(&net, u, v, &paths).unwrap();
//! let bound = hhc_core::bounds::length_bound(&net, u, v);
//! assert!(paths.iter().all(|p| (p.len() - 1) as u32 <= bound));
//! # let _ = CrossingOrder::Gray;
//! ```

pub mod batch;
pub mod bounds;
pub mod collectives;
pub mod disjoint;
pub mod error;
pub mod fault;
pub mod metrics;
pub mod node;
pub mod pathset;
pub mod routing;
pub mod service;
pub mod topology;
pub mod verify;
pub mod wide;

pub use batch::{
    construct_many, construct_many_avoiding, construct_many_metered, construct_many_metered_with,
    construct_many_serial, construct_many_serial_metered, construct_many_serial_metered_with,
    construct_many_with, Workspace,
};
pub use disjoint::family_cache::{
    CacheConfig, FamilyCache, BYPASS_CONSEC_MISSES, BYPASS_HIT_FLOOR, BYPASS_MIN_PROBES,
    DEFAULT_FAMILY_CACHE_CAPACITY,
};
pub use disjoint::{
    disjoint_paths_avoiding, disjoint_paths_avoiding_into, disjoint_paths_into, AvoidOutcome,
    CrossingOrder, PathBuilder,
};
pub use error::HhcError;
pub use fault::{FaultOracle, NoFaults};
pub use metrics::{ConstructionMetrics, MetricsReport};
pub use node::NodeId;
pub use pathset::PathSet;
pub use service::{
    FamilyRef, L2Config, QueryBatchResult, QueryResult, Router, RouterConfig, SharedFamilyCache,
};
pub use topology::Hhc;

/// A path through the network as the sequence of visited nodes,
/// endpoints inclusive.
pub type Path = Vec<NodeId>;
