//! Packed node addresses.
//!
//! A node of `HHC(m)` is the pair `(X, Y)` with `Y ∈ {0,1}^m` (node field)
//! and `X ∈ {0,1}^(2^m)` (cube field). Both pack into one `u128`:
//! bits `[0, m)` hold `Y`, bits `[m, m + 2^m)` hold `X`. For the supported
//! range `m ≤ 6` the address needs at most `70` bits.
//!
//! The packing is an implementation detail: all field access goes through
//! [`crate::Hhc`], which knows `m`. `NodeId` itself is deliberately opaque
//! (plus `raw`/`from_raw` escape hatches for serialisation and indexing).

/// An opaque packed HHC node address.
///
/// Ordering and hashing follow the raw packed value, so `NodeId` works as
/// a key in maps/sets and sorts deterministically.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u128);

impl NodeId {
    /// The raw packed address (low `m` bits `Y`, then `2^m` bits `X`).
    #[inline]
    pub fn raw(self) -> u128 {
        self.0
    }

    /// Reconstructs a node from a raw packed address.
    ///
    /// The value is *not* validated here; pass it through
    /// [`crate::Hhc::check`] when it comes from outside.
    #[inline]
    pub fn from_raw(raw: u128) -> Self {
        NodeId(raw)
    }
}

impl std::fmt::Debug for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // m is unknown here; show the raw value. `Hhc::format_node` gives
        // the (X, Y) split.
        write!(f, "NodeId({:#x})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_roundtrip() {
        let v = NodeId::from_raw(0xdead_beef);
        assert_eq!(v.raw(), 0xdead_beef);
        assert_eq!(v, NodeId::from_raw(0xdead_beef));
    }

    #[test]
    fn ordering_follows_raw() {
        assert!(NodeId::from_raw(1) < NodeId::from_raw(2));
    }

    #[test]
    fn debug_shows_hex() {
        assert_eq!(format!("{:?}", NodeId::from_raw(255)), "NodeId(0xff)");
    }

    #[test]
    fn usable_in_hash_set() {
        let mut s = std::collections::HashSet::new();
        assert!(s.insert(NodeId::from_raw(7)));
        assert!(!s.insert(NodeId::from_raw(7)));
    }
}
