//! Flat, arena-backed path families.
//!
//! A [`PathSet`] stores a family of paths CSR-style: one contiguous
//! node buffer plus an offsets table. This is the primary output type
//! of the construction engine — a full HHC(m) family is `m + 1` paths
//! of bounded length, so the per-`Vec` allocation overhead of the
//! legacy `Vec<Path>` shape dominated construction cost in batch
//! workloads. A `PathSet` is reused across queries ([`PathSet::clear`]
//! keeps capacity), and converts cheaply to the legacy shape via
//! [`PathSet::to_paths`] where callers still want owned `Vec`s.

use crate::node::NodeId;

/// The legacy owned-path shape: one `Vec` of nodes per path.
pub type Path = Vec<NodeId>;

/// A family of node-disjoint paths in flat CSR form: path `i` occupies
/// `nodes[offsets[i] .. offsets[i + 1]]`. `offsets` always starts with
/// `0` and has `len() + 1` entries.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PathSet {
    nodes: Vec<NodeId>,
    offsets: Vec<u32>,
}

impl PathSet {
    /// An empty family.
    pub fn new() -> Self {
        PathSet {
            nodes: Vec::new(),
            offsets: vec![0],
        }
    }

    /// An empty family with room for `paths` paths of `nodes` total nodes.
    pub fn with_capacity(paths: usize, nodes: usize) -> Self {
        let mut offsets = Vec::with_capacity(paths + 1);
        offsets.push(0);
        PathSet {
            nodes: Vec::with_capacity(nodes),
            offsets,
        }
    }

    /// Number of paths.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total node count across all paths (shared endpoints counted once
    /// per path).
    pub fn total_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Path `i` as a node slice, endpoints inclusive.
    pub fn path(&self, i: usize) -> &[NodeId] {
        let (a, b) = (self.offsets[i] as usize, self.offsets[i + 1] as usize);
        &self.nodes[a..b]
    }

    /// Iterates over the paths as slices.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[NodeId]> + '_ {
        (0..self.len()).map(move |i| self.path(i))
    }

    /// Longest path, in edges. Zero for an empty family.
    pub fn max_len(&self) -> usize {
        self.iter()
            .map(|p| p.len().saturating_sub(1))
            .max()
            .unwrap_or(0)
    }

    /// Removes all paths, keeping allocated capacity.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.offsets.clear();
        self.offsets.push(0);
    }

    /// Appends one node to the path currently under construction.
    pub fn push_node(&mut self, v: NodeId) {
        self.nodes.push(v);
    }

    /// Seals the path under construction: everything pushed since the
    /// previous `finish_path` (or construction/`clear`) becomes path
    /// `len() - 1`.
    pub fn finish_path(&mut self) {
        self.offsets.push(self.nodes.len() as u32);
    }

    /// Last node pushed so far, if any (endpoint of the open path, or of
    /// the last sealed path when nothing is pending).
    pub fn last_node(&self) -> Option<NodeId> {
        self.nodes.last().copied()
    }

    /// Appends a whole path from a slice.
    pub fn push_path(&mut self, path: &[NodeId]) {
        self.nodes.extend_from_slice(path);
        self.finish_path();
    }

    /// Appends a whole CSR block (raw node words plus a full offsets
    /// table with its leading `0`), XOR-translating every node by
    /// `mask`. One capacity check per buffer instead of one per node —
    /// this is the L2 snapshot replay path, where the block is a cached
    /// canonical family and `mask` is the cube-field translation.
    pub(crate) fn extend_csr_xor(&mut self, nodes: &[u128], offsets: &[u32], mask: u128) {
        let base = self.nodes.len() as u32;
        self.nodes
            .extend(nodes.iter().map(|&raw| NodeId::from_raw(raw ^ mask)));
        self.offsets.extend(offsets[1..].iter().map(|&o| base + o));
    }

    /// Converts to the legacy `Vec<Path>` shape (allocates per path).
    pub fn to_paths(&self) -> Vec<Path> {
        self.iter().map(|p| p.to_vec()).collect()
    }

    /// Builds a `PathSet` from legacy owned paths.
    pub fn from_paths<P: AsRef<[NodeId]>>(paths: &[P]) -> Self {
        let total = paths.iter().map(|p| p.as_ref().len()).sum();
        let mut set = PathSet::with_capacity(paths.len(), total);
        for p in paths {
            set.push_path(p.as_ref());
        }
        set
    }
}

impl<'a> IntoIterator for &'a PathSet {
    type Item = &'a [NodeId];
    type IntoIter = Box<dyn ExactSizeIterator<Item = &'a [NodeId]> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(v: u128) -> NodeId {
        NodeId(v)
    }

    #[test]
    fn builder_round_trip() {
        let mut set = PathSet::new();
        assert!(set.is_empty());
        set.push_node(id(1));
        set.push_node(id(2));
        set.finish_path();
        set.push_path(&[id(3), id(4), id(5)]);
        assert_eq!(set.len(), 2);
        assert_eq!(set.total_nodes(), 5);
        assert_eq!(set.path(0), &[id(1), id(2)]);
        assert_eq!(set.path(1), &[id(3), id(4), id(5)]);
        assert_eq!(set.max_len(), 2);

        let legacy = set.to_paths();
        assert_eq!(legacy, vec![vec![id(1), id(2)], vec![id(3), id(4), id(5)]]);
        assert_eq!(PathSet::from_paths(&legacy), set);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut set = PathSet::new();
        set.push_path(&[id(1), id(2), id(3)]);
        let cap = set.nodes.capacity();
        set.clear();
        assert!(set.is_empty());
        assert_eq!(set.total_nodes(), 0);
        assert_eq!(set.nodes.capacity(), cap);
    }

    #[test]
    fn empty_paths_are_representable() {
        let mut set = PathSet::new();
        set.finish_path();
        set.push_path(&[id(9)]);
        assert_eq!(set.len(), 2);
        assert_eq!(set.path(0), &[] as &[NodeId]);
        assert_eq!(set.path(1), &[id(9)]);
        assert_eq!(set.max_len(), 0);
    }

    #[test]
    fn iter_yields_in_order() {
        let set = PathSet::from_paths(&[vec![id(7)], vec![id(8), id(9)]]);
        let got: Vec<_> = set.iter().map(|p| p.len()).collect();
        assert_eq!(got, vec![1, 2]);
        assert_eq!((&set).into_iter().len(), 2);
    }
}
