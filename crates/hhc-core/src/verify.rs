//! Independent verification of path families.
//!
//! Nothing produced by the construction is trusted: every test and every
//! experiment re-checks results through this module, which knows only the
//! adjacency predicate — not how the paths were built.

use crate::node::NodeId;
use crate::pathset::PathSet;
use crate::topology::Hhc;
use crate::Path;

/// Reusable buffers for [`verify_disjoint_paths_into`]: one scratch per
/// verifying thread makes batched verification allocation-free. Interior
/// collision detection is sort-based (collect, sort, scan for adjacent
/// duplicates) rather than hash-based — the families here are tiny
/// (`(m + 1)` paths of bounded length), where sorting a flat `Vec` beats
/// `HashSet` on both time and allocation.
#[derive(Default)]
pub struct VerifyScratch {
    /// Per-path node buffer for the simplicity check.
    seen: Vec<NodeId>,
    /// `(interior node, path index)` across the whole family.
    interiors: Vec<(NodeId, u32)>,
}

impl VerifyScratch {
    pub fn new() -> Self {
        VerifyScratch::default()
    }
}

/// Checks that `path` is a simple `u → v` walk along edges of `hhc`.
pub fn verify_path(hhc: &Hhc, u: NodeId, v: NodeId, path: &[NodeId]) -> Result<(), String> {
    verify_path_with(hhc, u, v, path, &mut Vec::new())
}

/// [`verify_path`] with a caller-owned sort buffer (allocation-free once
/// warm).
fn verify_path_with(
    hhc: &Hhc,
    u: NodeId,
    v: NodeId,
    path: &[NodeId],
    seen: &mut Vec<NodeId>,
) -> Result<(), String> {
    if path.first() != Some(&u) {
        return Err(format!("path does not start at {}", hhc.format_node(u)));
    }
    if path.last() != Some(&v) {
        return Err(format!("path does not end at {}", hhc.format_node(v)));
    }
    for (i, w) in path.windows(2).enumerate() {
        if !hhc.is_edge(w[0], w[1]) {
            return Err(format!(
                "hop {i} is not an edge: {} → {}",
                hhc.format_node(w[0]),
                hhc.format_node(w[1])
            ));
        }
    }
    seen.clear();
    seen.extend_from_slice(path);
    seen.sort_unstable();
    if seen.windows(2).any(|w| w[0] == w[1]) {
        return Err("path revisits a node".into());
    }
    Ok(())
}

/// Checks that `paths` is a family of simple `u → v` paths, pairwise
/// internally vertex-disjoint (sharing only `u` and `v`).
///
/// Does **not** require the family to have `m + 1` members, so it can
/// also check baseline (max-flow) path sets of any size.
pub fn verify_disjoint_paths(
    hhc: &Hhc,
    u: NodeId,
    v: NodeId,
    paths: &[Path],
) -> Result<(), String> {
    let mut scratch = VerifyScratch::new();
    verify_family(hhc, u, v, paths.iter().map(|p| p.as_slice()), &mut scratch)
}

/// [`verify_disjoint_paths`] over a [`PathSet`], with caller-owned
/// scratch. This is the batch engine's verification entry point.
pub fn verify_disjoint_paths_into(
    hhc: &Hhc,
    u: NodeId,
    v: NodeId,
    set: &PathSet,
    scratch: &mut VerifyScratch,
) -> Result<(), String> {
    verify_family(hhc, u, v, set.iter(), scratch)
}

/// Shared core: per-path simplicity plus cross-path interior disjointness
/// via a sorted `(node, path)` sweep.
fn verify_family<'a>(
    hhc: &Hhc,
    u: NodeId,
    v: NodeId,
    paths: impl Iterator<Item = &'a [NodeId]>,
    scratch: &mut VerifyScratch,
) -> Result<(), String> {
    scratch.interiors.clear();
    for (i, p) in paths.enumerate() {
        verify_path_with(hhc, u, v, p, &mut scratch.seen).map_err(|e| format!("path {i}: {e}"))?;
        scratch
            .interiors
            .extend(p[1..p.len() - 1].iter().map(|&x| (x, i as u32)));
    }
    scratch.interiors.sort_unstable();
    if let Some(w) = scratch.interiors.windows(2).find(|w| w[0].0 == w[1].0) {
        return Err(format!(
            "path {} shares interior node {} with an earlier path",
            w[1].1,
            hhc.format_node(w[1].0)
        ));
    }
    Ok(())
}

/// Convenience: constructs, verifies, and returns the maximum path length
/// of the `m + 1` disjoint paths for a pair. Used by experiments and
/// stress tests.
pub fn construct_and_verify(hhc: &Hhc, u: NodeId, v: NodeId) -> Result<u32, String> {
    let paths = hhc.disjoint_paths(u, v).map_err(|e| e.to_string())?;
    if paths.len() as u32 != hhc.degree() {
        return Err(format!(
            "expected {} paths, got {}",
            hhc.degree(),
            paths.len()
        ));
    }
    verify_disjoint_paths(hhc, u, v, &paths)?;
    let bound = crate::bounds::length_bound(hhc, u, v);
    let max = paths.iter().map(|p| (p.len() - 1) as u32).max().unwrap();
    if max > bound {
        return Err(format!("max length {max} exceeds bound {bound}"));
    }
    Ok(max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_family() {
        let h = Hhc::new(2).unwrap();
        let u = h.node(0b0000, 0b00).unwrap();
        let v = h.node(0b0110, 0b11).unwrap();
        let paths = h.disjoint_paths(u, v).unwrap();
        verify_disjoint_paths(&h, u, v, &paths).unwrap();
    }

    #[test]
    fn rejects_wrong_endpoints() {
        let h = Hhc::new(2).unwrap();
        let u = h.node(0, 0).unwrap();
        let v = h.node(0, 1).unwrap();
        let w = h.node(0, 2).unwrap();
        let p = vec![u, w];
        assert!(verify_path(&h, u, v, &p).is_err());
    }

    #[test]
    fn rejects_non_edges() {
        let h = Hhc::new(2).unwrap();
        let u = h.node(0, 0).unwrap();
        let v = h.node(0b1111, 0b11).unwrap();
        assert!(verify_path(&h, u, v, &[u, v]).is_err());
    }

    #[test]
    fn rejects_revisits() {
        let h = Hhc::new(2).unwrap();
        let u = h.node(0, 0).unwrap();
        let a = h.node(0, 1).unwrap();
        let p = vec![u, a, u, a];
        assert!(verify_path(&h, u, a, &p).is_err());
    }

    #[test]
    fn rejects_shared_interiors() {
        let h = Hhc::new(2).unwrap();
        let u = h.node(0, 0b00).unwrap();
        let v = h.node(0, 0b11).unwrap();
        let a = h.node(0, 0b01).unwrap();
        let p = vec![u, a, v];
        assert!(verify_disjoint_paths(&h, u, v, &[p.clone(), p]).is_err());
    }

    #[test]
    fn construct_and_verify_reports_max_length() {
        let h = Hhc::new(3).unwrap();
        let u = h.node(0x0F, 0b001).unwrap();
        let v = h.node(0xF0, 0b110).unwrap();
        let max = construct_and_verify(&h, u, v).unwrap();
        assert!(max >= 1);
        assert!(max <= crate::bounds::length_bound(&h, u, v));
    }
}
