//! Error type shared across the crate.

use crate::node::NodeId;

/// Errors raised by HHC construction, addressing and path algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HhcError {
    /// `m` outside the supported range `1..=6` (node labels pack into a
    /// `u128`: `n = 2^m + m ≤ 70` bits).
    BadParameter(u32),
    /// Cube field has bits above `2^m`.
    CubeFieldOutOfRange(u128),
    /// Node field has bits above `m`.
    NodeFieldOutOfRange(u32),
    /// A node label does not belong to this network.
    NodeOutOfRange(NodeId),
    /// Operation requires two distinct nodes.
    EqualNodes,
    /// A fault-avoiding query named a faulty node as an endpoint — no
    /// fault-free path can start or end there.
    FaultyEndpoint(NodeId),
    /// Materialisation requested above the explicit-graph guard (`m ≤ 4`).
    TooLargeToMaterialize(u32),
    /// The operation is valid in principle but not supported at this
    /// parameter scale (e.g. an exhaustive sweep over a network too large
    /// to enumerate). The message names the operation and its limit.
    Unsupported(String),
}

impl std::fmt::Display for HhcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HhcError::BadParameter(m) => write!(f, "HHC parameter m={m} not in 1..=6"),
            HhcError::CubeFieldOutOfRange(x) => write!(f, "cube field {x:#x} out of range"),
            HhcError::NodeFieldOutOfRange(y) => write!(f, "node field {y:#x} out of range"),
            HhcError::NodeOutOfRange(v) => write!(f, "node {v:?} outside this network"),
            HhcError::EqualNodes => write!(f, "operation requires distinct nodes"),
            HhcError::FaultyEndpoint(v) => write!(f, "endpoint {v:?} is itself faulty"),
            HhcError::TooLargeToMaterialize(m) => {
                write!(f, "refusing to materialise HHC(m={m}) (> 2^20 nodes)")
            }
            HhcError::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for HhcError {}
