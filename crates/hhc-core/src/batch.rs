//! Batch construction engine: many-pair disjoint-path construction with
//! reused scratch.
//!
//! A single `disjoint_paths` query allocates its working buffers and two
//! max-flow fan networks from scratch. Batch workloads — experiments,
//! the simulator, wide-diameter sweeps, benchmarks — issue thousands to
//! millions of queries against one network, where that per-query setup
//! dominates. This module amortises it:
//!
//! * [`construct_many_serial`] runs a pair list through one
//!   [`PathBuilder`] on the current thread;
//! * [`construct_many`] fans the list out over rayon with one
//!   `PathBuilder` per worker (`map_init`), preserving input order;
//! * [`Workspace`] bundles a [`PathSet`], a [`PathBuilder`] and a
//!   [`VerifyScratch`] for callers with their own loop structure.
//!
//! All entry points are thin wrappers over the same construction core as
//! `disjoint::disjoint_paths`, so batched results are node-for-node
//! identical to per-pair results (property-tested in
//! `tests/batch_equivalence.rs`).

use crate::disjoint::family_cache::CacheConfig;
use crate::disjoint::{
    disjoint_paths_avoiding_into, disjoint_paths_into, AvoidOutcome, CrossingOrder, PathBuilder,
};
use crate::error::HhcError;
use crate::fault::FaultOracle;
use crate::metrics::MetricsReport;
use crate::node::NodeId;
use crate::pathset::PathSet;
use crate::topology::Hhc;
use crate::verify::{verify_disjoint_paths_into, VerifyScratch};
use rayon::prelude::*;

/// Everything one querying thread needs: output arena, construction
/// scratch, verification scratch. Reusing a `Workspace` across queries
/// makes construct-and-verify loops allocation-free after warm-up.
#[derive(Default)]
pub struct Workspace {
    pub set: PathSet,
    pub builder: PathBuilder,
    pub verify: VerifyScratch,
}

impl Workspace {
    pub fn new() -> Self {
        Workspace::default()
    }

    /// A workspace whose builder uses the given symmetry-cache
    /// capacities; see [`PathBuilder::with_caches`].
    pub fn with_caches(cfg: CacheConfig) -> Self {
        Workspace {
            builder: PathBuilder::with_caches(cfg),
            ..Workspace::default()
        }
    }

    /// Replaces the builder's symmetry caches; see
    /// [`PathBuilder::set_cache_config`].
    pub fn set_cache_config(&mut self, cfg: CacheConfig) {
        self.builder.set_cache_config(cfg);
    }

    /// Constructs the `m + 1` disjoint paths for one pair into the owned
    /// [`PathSet`] and returns a view of it.
    pub fn construct(
        &mut self,
        hhc: &Hhc,
        u: NodeId,
        v: NodeId,
        order: CrossingOrder,
    ) -> Result<&PathSet, HhcError> {
        disjoint_paths_into(hhc, u, v, order, &mut self.set, &mut self.builder)?;
        Ok(&self.set)
    }

    /// Constructs a fault-avoiding family for one pair into the owned
    /// [`PathSet`]; see [`crate::disjoint_paths_avoiding`]. With an
    /// empty fault set this is exactly [`Workspace::construct`].
    pub fn construct_avoiding(
        &mut self,
        hhc: &Hhc,
        u: NodeId,
        v: NodeId,
        order: CrossingOrder,
        faults: &dyn FaultOracle,
    ) -> Result<(AvoidOutcome, &PathSet), HhcError> {
        let outcome = disjoint_paths_avoiding_into(
            hhc,
            u,
            v,
            order,
            faults,
            &mut self.set,
            &mut self.builder,
        )?;
        Ok((outcome, &self.set))
    }

    /// Constructs, verifies (count, disjointness, length bound) and
    /// returns the maximum path length. Scratch-reusing equivalent of
    /// [`crate::verify::construct_and_verify`].
    pub fn construct_and_verify(
        &mut self,
        hhc: &Hhc,
        u: NodeId,
        v: NodeId,
        order: CrossingOrder,
    ) -> Result<u32, String> {
        disjoint_paths_into(hhc, u, v, order, &mut self.set, &mut self.builder)
            .map_err(|e| e.to_string())?;
        if self.set.len() as u32 != hhc.degree() {
            return Err(format!(
                "expected {} paths, got {}",
                hhc.degree(),
                self.set.len()
            ));
        }
        verify_disjoint_paths_into(hhc, u, v, &self.set, &mut self.verify)?;
        let bound = crate::bounds::length_bound(hhc, u, v);
        let max = self.set.max_len() as u32;
        if max > bound {
            return Err(format!("max length {max} exceeds bound {bound}"));
        }
        Ok(max)
    }

    /// Turns per-query wall-clock timing on or off for this workspace's
    /// builder; see [`PathBuilder::enable_timing`].
    pub fn enable_timing(&mut self, on: bool) {
        self.builder.enable_timing(on);
    }

    /// Effort snapshot of this workspace's builder; see
    /// [`PathBuilder::metrics`].
    pub fn metrics(&self) -> MetricsReport {
        self.builder.metrics()
    }

    /// Zeroes the builder's counters; see [`PathBuilder::reset_metrics`].
    pub fn reset_metrics(&mut self) {
        self.builder.reset_metrics();
    }
}

/// Constructs the disjoint-path family for every pair, in input order,
/// fanning out over rayon with one [`PathBuilder`] per worker thread.
///
/// Node-for-node identical to calling
/// [`disjoint_paths`](crate::disjoint::disjoint_paths) per pair; the
/// first error (e.g. an equal-nodes pair) aborts the batch.
pub fn construct_many(
    hhc: &Hhc,
    pairs: &[(NodeId, NodeId)],
    order: CrossingOrder,
) -> Result<Vec<PathSet>, HhcError> {
    construct_many_with(hhc, pairs, order, CacheConfig::default())
}

/// [`construct_many`] with explicit per-worker symmetry-cache capacities
/// (each rayon worker owns its caches — no locks on the hot path).
/// Results are byte-identical for every `cfg`, including
/// [`CacheConfig::disabled`].
pub fn construct_many_with(
    hhc: &Hhc,
    pairs: &[(NodeId, NodeId)],
    order: CrossingOrder,
    cfg: CacheConfig,
) -> Result<Vec<PathSet>, HhcError> {
    pairs
        .par_iter()
        .map_init(
            || (PathBuilder::with_caches(cfg), PathSet::new()),
            |(scratch, tmp), &(u, v)| {
                disjoint_paths_into(hhc, u, v, order, tmp, scratch)?;
                // Cloning the warm arena sizes the output exactly; building
                // into a cold PathSet would pay growth reallocations per pair.
                Ok(tmp.clone())
            },
        )
        .collect()
}

/// Constructs a fault-avoiding family for every pair against one shared
/// fault oracle, fanning out over rayon like [`construct_many`].
/// Per-pair results (paths and outcome) are identical to calling
/// [`crate::disjoint_paths_avoiding`] per pair.
pub fn construct_many_avoiding(
    hhc: &Hhc,
    pairs: &[(NodeId, NodeId)],
    order: CrossingOrder,
    faults: &(dyn FaultOracle + Sync),
) -> Result<Vec<(PathSet, AvoidOutcome)>, HhcError> {
    pairs
        .par_iter()
        .map_init(
            || (PathBuilder::new(), PathSet::new()),
            |(scratch, tmp), &(u, v)| {
                let outcome = disjoint_paths_avoiding_into(hhc, u, v, order, faults, tmp, scratch)?;
                Ok((tmp.clone(), outcome))
            },
        )
        .collect()
}

/// [`construct_many`] on the current thread only: one scratch, no
/// thread fan-out. This isolates the allocation-reuse win from the
/// parallelism win (and is what single-threaded callers should use).
pub fn construct_many_serial(
    hhc: &Hhc,
    pairs: &[(NodeId, NodeId)],
    order: CrossingOrder,
) -> Result<Vec<PathSet>, HhcError> {
    let mut scratch = PathBuilder::new();
    let mut tmp = PathSet::new();
    pairs
        .iter()
        .map(|&(u, v)| {
            disjoint_paths_into(hhc, u, v, order, &mut tmp, &mut scratch)?;
            Ok(tmp.clone())
        })
        .collect()
}

/// [`construct_many`] additionally returning the [`MetricsReport`]
/// accumulated across every worker. Results are node-for-node identical
/// to [`construct_many`]; `timed` enables per-query wall-clock timing
/// (see [`PathBuilder::enable_timing`] for its cost).
///
/// The pair list is split into one contiguous chunk per rayon worker so
/// each chunk's builder — and its counters — can be recovered after the
/// parallel section and merged (plain `map_init` scratch is unrecoverable
/// once the iterator finishes).
pub fn construct_many_metered(
    hhc: &Hhc,
    pairs: &[(NodeId, NodeId)],
    order: CrossingOrder,
    timed: bool,
) -> Result<(Vec<PathSet>, MetricsReport), HhcError> {
    construct_many_metered_with(hhc, pairs, order, timed, CacheConfig::default())
}

/// [`construct_many_metered`] with explicit per-worker symmetry-cache
/// capacities; the merged report's `family_hits` / fan `cache_hits`
/// counters expose the aggregate hit rates.
pub fn construct_many_metered_with(
    hhc: &Hhc,
    pairs: &[(NodeId, NodeId)],
    order: CrossingOrder,
    timed: bool,
    cfg: CacheConfig,
) -> Result<(Vec<PathSet>, MetricsReport), HhcError> {
    if pairs.is_empty() {
        return Ok((Vec::new(), MetricsReport::default()));
    }
    let workers = rayon::current_num_threads().max(1);
    let chunk_len = pairs.len().div_ceil(workers);
    let chunks: Vec<&[(NodeId, NodeId)]> = pairs.chunks(chunk_len).collect();
    let per_chunk: Vec<Result<(Vec<PathSet>, MetricsReport), HhcError>> = chunks
        .par_iter()
        .map(|chunk| {
            let mut scratch = PathBuilder::with_caches(cfg);
            scratch.enable_timing(timed);
            let mut tmp = PathSet::new();
            let sets = chunk
                .iter()
                .map(|&(u, v)| {
                    disjoint_paths_into(hhc, u, v, order, &mut tmp, &mut scratch)?;
                    Ok(tmp.clone())
                })
                .collect::<Result<Vec<PathSet>, HhcError>>()?;
            Ok((sets, scratch.metrics()))
        })
        .collect();
    let mut out = Vec::with_capacity(pairs.len());
    let mut report = MetricsReport::default();
    for res in per_chunk {
        let (sets, m) = res?;
        out.extend(sets);
        report.merge(&m);
    }
    Ok((out, report))
}

/// [`construct_many_serial`] additionally returning the single builder's
/// [`MetricsReport`].
pub fn construct_many_serial_metered(
    hhc: &Hhc,
    pairs: &[(NodeId, NodeId)],
    order: CrossingOrder,
    timed: bool,
) -> Result<(Vec<PathSet>, MetricsReport), HhcError> {
    construct_many_serial_metered_with(hhc, pairs, order, timed, CacheConfig::default())
}

/// [`construct_many_serial_metered`] with explicit symmetry-cache
/// capacities.
pub fn construct_many_serial_metered_with(
    hhc: &Hhc,
    pairs: &[(NodeId, NodeId)],
    order: CrossingOrder,
    timed: bool,
    cfg: CacheConfig,
) -> Result<(Vec<PathSet>, MetricsReport), HhcError> {
    let mut scratch = PathBuilder::with_caches(cfg);
    scratch.enable_timing(timed);
    let mut tmp = PathSet::new();
    let sets = pairs
        .iter()
        .map(|&(u, v)| {
            disjoint_paths_into(hhc, u, v, order, &mut tmp, &mut scratch)?;
            Ok(tmp.clone())
        })
        .collect::<Result<Vec<PathSet>, HhcError>>()?;
    Ok((sets, scratch.metrics()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disjoint::disjoint_paths;

    fn pairs_m3() -> (Hhc, Vec<(NodeId, NodeId)>) {
        let h = Hhc::new(3).unwrap();
        let mut pairs = Vec::new();
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        while pairs.len() < 50 {
            let x1 = (next() % 256) as u128;
            let x2 = (next() % 256) as u128;
            let u = h.node(x1, (next() % 8) as u32).unwrap();
            let v = h.node(x2, (next() % 8) as u32).unwrap();
            if u != v {
                pairs.push((u, v));
            }
        }
        (h, pairs)
    }

    #[test]
    fn batch_matches_per_pair() {
        let (h, pairs) = pairs_m3();
        for order in [CrossingOrder::Gray, CrossingOrder::Sorted] {
            let batched = construct_many(&h, &pairs, order).unwrap();
            let serial = construct_many_serial(&h, &pairs, order).unwrap();
            assert_eq!(batched.len(), pairs.len());
            for (i, &(u, v)) in pairs.iter().enumerate() {
                let single = disjoint_paths(&h, u, v, order).unwrap();
                assert_eq!(batched[i].to_paths(), single, "pair {i} ({order:?})");
                assert_eq!(serial[i], batched[i], "pair {i} ({order:?})");
            }
        }
    }

    #[test]
    fn batch_propagates_errors() {
        let h = Hhc::new(2).unwrap();
        let u = h.node(1, 1).unwrap();
        let v = h.node(2, 0).unwrap();
        let err = construct_many(&h, &[(u, v), (v, v)], CrossingOrder::Gray);
        assert_eq!(err, Err(HhcError::EqualNodes));
    }

    #[test]
    fn workspace_construct_and_verify() {
        let (h, pairs) = pairs_m3();
        let mut ws = Workspace::new();
        for &(u, v) in &pairs {
            let max = ws
                .construct_and_verify(&h, u, v, CrossingOrder::Gray)
                .unwrap();
            let legacy = crate::verify::construct_and_verify(&h, u, v).unwrap();
            assert_eq!(max, legacy);
        }
        // Workspaces survive a change of network size.
        let h6 = Hhc::new(6).unwrap();
        let u = h6.node(5, 0).unwrap();
        let v = h6.node(0xABCDEF, 63).unwrap();
        ws.construct_and_verify(&h6, u, v, CrossingOrder::Gray)
            .unwrap();
    }

    #[test]
    fn empty_batch_is_fine() {
        let h = Hhc::new(2).unwrap();
        assert_eq!(construct_many(&h, &[], CrossingOrder::Gray), Ok(Vec::new()));
    }

    #[test]
    fn metered_matches_unmetered_and_conserves_counters() {
        let (h, pairs) = pairs_m3();
        let plain = construct_many(&h, &pairs, CrossingOrder::Gray).unwrap();
        let (metered, report) =
            construct_many_metered(&h, &pairs, CrossingOrder::Gray, false).unwrap();
        assert_eq!(metered, plain);
        let c = &report.construction;
        assert_eq!(c.queries, pairs.len() as u64);
        assert_eq!(c.same_cube + c.cross_cube, c.queries);
        // Case B issues exactly one fan per side per query, except when
        // the whole family replayed from the cache; case A none.
        assert_eq!(
            report.fan_queries(),
            2 * (c.cross_cube - c.family_hits_cross)
        );
        // Every query selects exactly m + 1 = degree crossing plans.
        assert_eq!(
            c.rotation_plans + c.detour_plans,
            c.cross_cube * h.degree() as u64 + c.same_cube
        );
        // Timing disabled: no samples recorded.
        assert_eq!(c.timing.count(), 0);

        let (serial, sreport) =
            construct_many_serial_metered(&h, &pairs, CrossingOrder::Gray, true).unwrap();
        assert_eq!(serial, plain);
        assert_eq!(sreport.construction.queries, c.queries);
        assert_eq!(sreport.construction.cross_cube, c.cross_cube);
        // Timing enabled: one sample per query.
        assert_eq!(sreport.construction.timing.count(), pairs.len() as u64);
    }

    #[test]
    fn metered_empty_and_error_paths() {
        let h = Hhc::new(2).unwrap();
        let (sets, report) = construct_many_metered(&h, &[], CrossingOrder::Gray, false).unwrap();
        assert!(sets.is_empty());
        assert_eq!(report, MetricsReport::default());
        let u = h.node(1, 1).unwrap();
        let err = construct_many_metered(&h, &[(u, u)], CrossingOrder::Gray, false);
        assert!(matches!(err, Err(HhcError::EqualNodes)));
    }

    #[test]
    fn workspace_surfaces_metrics() {
        let h = Hhc::new(3).unwrap();
        let mut ws = Workspace::new();
        ws.enable_timing(true);
        let u = h.node(0x00, 0b000).unwrap();
        let v = h.node(0x2B, 0b101).unwrap(); // cross-cube
        let w = h.node(0x00, 0b111).unwrap(); // same cube as u
        ws.construct(&h, u, v, CrossingOrder::Gray).unwrap();
        ws.construct_and_verify(&h, u, w, CrossingOrder::Gray)
            .unwrap();
        let m = ws.metrics();
        assert_eq!(m.construction.queries, 2);
        assert_eq!(m.construction.cross_cube, 1);
        assert_eq!(m.construction.same_cube, 1);
        assert_eq!(m.fan_queries(), 2);
        assert_eq!(m.construction.timing.count(), 2);
        assert!(m.solver.bfs_passes > 0);
        // Failed queries leave the counters untouched.
        assert!(ws.construct(&h, u, u, CrossingOrder::Gray).is_err());
        assert_eq!(ws.metrics().construction.queries, 2);
        ws.reset_metrics();
        assert_eq!(ws.metrics(), MetricsReport::default());
    }

    #[test]
    fn million_node_hhc4_constructs_and_verifies() {
        // HHC(4) addresses are 20-bit (2^20 nodes): the scale the DES
        // core simulates end-to-end. Construction must handle it too —
        // a handful of pairs covering same-cube, cross-cube and
        // complementary-address cases, each fully verified.
        let h = Hhc::new(4).unwrap();
        let pairs = vec![
            (h.node(0x0000, 0).unwrap(), h.node(0x0000, 13).unwrap()),
            (h.node(0x0000, 0).unwrap(), h.node(0xFFFF, 15).unwrap()),
            (h.node(0x1234, 7).unwrap(), h.node(0x8765, 2).unwrap()),
            (h.node(0xBEEF, 9).unwrap(), h.node(0xBEF0, 9).unwrap()),
        ];
        let sets = construct_many_serial(&h, &pairs, CrossingOrder::Gray).unwrap();
        let mut scratch = VerifyScratch::default();
        for (set, &(u, v)) in sets.iter().zip(&pairs) {
            verify_disjoint_paths_into(&h, u, v, set, &mut scratch).unwrap();
            // Fan-out equals the connectivity: m + 1 = 5 paths per pair.
            assert_eq!(set.to_paths().len() as u32, h.degree());
        }
    }
}
