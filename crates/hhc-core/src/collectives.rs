//! Collective operations on materialisable HHC instances.
//!
//! One-port broadcast: in each round every informed node may forward the
//! message to at most one uninformed neighbour. The greedy schedule here
//! (lowest-address uninformed neighbour first, ties broken by sender
//! address) is within a small factor of the `⌈log₂ N⌉` doubling lower
//! bound on the HHC despite its low degree — one of the properties that
//! make the topology attractive for collectives. Enumerating a schedule
//! requires visiting every node, so this is guarded to `n ≤ 16`
//! (m ≤ 3); the experiments use it for protocol-level sanity checks.

use crate::error::HhcError;
use crate::node::NodeId;
use crate::topology::Hhc;
use std::collections::BTreeSet;

/// A broadcast schedule: per round, the `(sender, receiver)` pairs.
pub type Schedule = Vec<Vec<(NodeId, NodeId)>>;

/// Computes a one-port broadcast schedule from `root`.
///
/// Every node appears as a receiver exactly once; every sender is
/// informed before it sends; each node sends at most once per round.
///
/// Oversized networks (`n > 16`) and invalid roots return errors.
///
/// # Panics
///
/// Panics only if a round informs no new node, which cannot happen on a
/// connected network (internal invariant — every HHC is connected).
///
/// # Examples
/// ```
/// use hhc_core::{collectives, Hhc, NodeId};
/// let net = Hhc::new(2).unwrap();
/// let schedule = collectives::one_port_broadcast(&net, NodeId::from_raw(0)).unwrap();
/// let informed: usize = schedule.iter().map(|round| round.len()).sum();
/// assert_eq!(informed as u128, net.num_nodes() - 1);
/// ```
pub fn one_port_broadcast(hhc: &Hhc, root: NodeId) -> Result<Schedule, HhcError> {
    if hhc.n() > 16 {
        return Err(HhcError::TooLargeToMaterialize(hhc.m()));
    }
    hhc.check(root)?;
    let mut informed: BTreeSet<NodeId> = BTreeSet::from([root]);
    let total = hhc.num_nodes();
    let mut schedule = Vec::new();
    while (informed.len() as u128) < total {
        let mut round = Vec::new();
        let mut newly: Vec<NodeId> = Vec::new();
        let mut claimed: BTreeSet<NodeId> = BTreeSet::new();
        for &sender in informed.iter() {
            // Lowest uninformed, unclaimed neighbour.
            let choice = hhc
                .neighbors(sender)
                .into_iter()
                .filter(|w| !informed.contains(w) && !claimed.contains(w))
                .min();
            if let Some(receiver) = choice {
                claimed.insert(receiver);
                round.push((sender, receiver));
                newly.push(receiver);
            }
        }
        assert!(!round.is_empty(), "broadcast stalled (disconnected?)");
        informed.extend(newly);
        schedule.push(round);
    }
    Ok(schedule)
}

/// The doubling lower bound on one-port broadcast rounds: `⌈log₂ N⌉`.
pub fn broadcast_round_lower_bound(hhc: &Hhc) -> u32 {
    hhc.n() // N = 2^n, so ⌈log₂ N⌉ = n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_schedule(hhc: &Hhc, root: NodeId, schedule: &Schedule) {
        let mut informed = std::collections::HashSet::from([root]);
        for (r, round) in schedule.iter().enumerate() {
            let mut senders_this_round = std::collections::HashSet::new();
            for &(s, t) in round {
                assert!(informed.contains(&s), "round {r}: uninformed sender");
                assert!(hhc.is_edge(s, t), "round {r}: non-edge send");
                assert!(
                    senders_this_round.insert(s),
                    "round {r}: two sends by one node"
                );
                assert!(informed.insert(t), "round {r}: duplicate delivery");
            }
        }
        assert_eq!(
            informed.len() as u128,
            hhc.num_nodes(),
            "incomplete broadcast"
        );
    }

    #[test]
    fn broadcast_on_the_eight_cycle() {
        let h = Hhc::new(1).unwrap();
        let root = NodeId::from_raw(0);
        let s = one_port_broadcast(&h, root).unwrap();
        check_schedule(&h, root, &s);
        // A cycle informs at most 2 new nodes per round after the first.
        assert!(
            s.len() >= 4,
            "8-cycle broadcast needs ≥ 4 rounds, got {}",
            s.len()
        );
    }

    #[test]
    fn broadcast_m2_near_lower_bound() {
        let h = Hhc::new(2).unwrap();
        let root = NodeId::from_raw(17);
        let s = one_port_broadcast(&h, root).unwrap();
        check_schedule(&h, root, &s);
        let lb = broadcast_round_lower_bound(&h) as usize;
        assert!(s.len() >= lb);
        assert!(
            s.len() <= 3 * lb,
            "greedy schedule unexpectedly slow: {} rounds vs lb {lb}",
            s.len()
        );
    }

    #[test]
    fn broadcast_m3_completes() {
        let h = Hhc::new(3).unwrap();
        let root = NodeId::from_raw(2047);
        let s = one_port_broadcast(&h, root).unwrap();
        check_schedule(&h, root, &s);
        assert!(s.len() >= h.n() as usize);
    }

    #[test]
    fn every_root_equivalent_on_m1() {
        // Vertex-transitivity: same round count from every root.
        let h = Hhc::new(1).unwrap();
        let counts: std::collections::HashSet<usize> = h
            .iter_nodes()
            .map(|root| one_port_broadcast(&h, root).unwrap().len())
            .collect();
        assert_eq!(
            counts.len(),
            1,
            "round counts differ across roots: {counts:?}"
        );
    }

    #[test]
    fn guard_on_large_m() {
        let h = Hhc::new(5).unwrap();
        assert!(one_port_broadcast(&h, NodeId::from_raw(0)).is_err());
    }
}
