//! Worst-case length bounds for the construction.
//!
//! These are the *provable* bounds the implementation guarantees (and the
//! test suite asserts); the measured maxima reported by experiment F2 are
//! substantially smaller. All bounds assume [`crate::CrossingOrder::Gray`].
//!
//! Derivation (case B, `k = H(Xu, Xv) ≥ 1` differing positions):
//!
//! * terminal segments come from fans inside the two terminal son-cubes —
//!   a simple path in `Q_m` has at most `2^m − 1` edges, so each segment
//!   contributes at most `2^m − 1`;
//! * each path crosses at most `k + 2` times (rotations cross `k` times,
//!   detours `k + 2`);
//! * intra-cube walks between crossings follow the Gray cycle: the gaps
//!   telescope to at most one lap, `2^m`, plus at most `m` to enter and
//!   `m` to leave the lap for detour plans.
//!
//! Total: `(2^m − 1)·2 + (k + 2) + 2^m + 2m = 3·2^m + 2m + k`.
//!
//! Case A (`k = 0`, same son-cube, `d = H(Yu, Yv) ≥ 1`): the in-cube paths
//! have length ≤ `d + 2`; the external path has length `3d + 4`, which
//! dominates.

use crate::node::NodeId;
use crate::topology::Hhc;

/// Provable upper bound on the length of every path produced by
/// [`crate::disjoint::disjoint_paths`] with Gray crossing order, for this
/// specific pair.
///
/// # Examples
/// ```
/// use hhc_core::{bounds, Hhc};
/// let net = Hhc::new(3).unwrap();
/// let u = net.node(0x00, 0).unwrap();
/// let v = net.node(0x07, 0).unwrap();            // k = 3 crossings
/// assert_eq!(bounds::length_bound(&net, u, v), 3 * 8 + 2 * 3 + 3);
/// ```
pub fn length_bound(hhc: &Hhc, u: NodeId, v: NodeId) -> u32 {
    let k = (hhc.cube_field(u) ^ hhc.cube_field(v)).count_ones();
    let d = (hhc.node_field(u) ^ hhc.node_field(v)).count_ones();
    if k == 0 {
        3 * d + 4
    } else {
        3 * hhc.positions() + 2 * hhc.m() + k
    }
}

/// Pair-independent bound: the maximum of [`length_bound`] over all pairs,
/// i.e. an upper bound on the `(m+1)`-wide diameter of `HHC(m)`.
///
/// `k ≤ 2^m` gives `4·2^m + 2m` for cross-cube pairs; same-cube pairs are
/// bounded by `3m + 4`, which is always smaller for `m ≥ 1`.
pub fn wide_diameter_upper_bound(hhc: &Hhc) -> u32 {
    4 * hhc.positions() + 2 * hhc.m()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_cube_bound() {
        let h = Hhc::new(3).unwrap();
        let u = h.node(0x11, 0b000).unwrap();
        let v = h.node(0x11, 0b011).unwrap(); // d = 2
        assert_eq!(length_bound(&h, u, v), 10);
    }

    #[test]
    fn cross_cube_bound() {
        let h = Hhc::new(3).unwrap();
        let u = h.node(0x00, 0b000).unwrap();
        let v = h.node(0x07, 0b000).unwrap(); // k = 3
        assert_eq!(length_bound(&h, u, v), 3 * 8 + 6 + 3);
    }

    #[test]
    fn wide_bound_dominates_every_pair_bound() {
        for m in 1..=6 {
            let h = Hhc::new(m).unwrap();
            let wb = wide_diameter_upper_bound(&h);
            // Max k = 2^m, max d = m.
            let u = h.node(0, 0).unwrap();
            let all_x = if h.positions() >= 128 {
                u128::MAX
            } else {
                (1u128 << h.positions()) - 1
            };
            let v = h.node(all_x, (1 << m) - 1).unwrap();
            assert!(length_bound(&h, u, v) <= wb);
            let w = h.node(0, (1 << m) - 1).unwrap();
            assert!(length_bound(&h, u, w) <= wb, "same-cube case m={m}");
        }
    }

    #[test]
    fn bound_exceeds_diameter() {
        // The wide diameter can't be below the diameter; sanity-check the
        // bound is on the right side.
        for m in 1..=6 {
            let h = Hhc::new(m).unwrap();
            assert!(wide_diameter_upper_bound(&h) >= h.diameter());
        }
    }
}
