//! Construction-level metrics: what the disjoint-path engine did and how
//! long it took.
//!
//! Counters live inside [`PathBuilder`](crate::PathBuilder) and are
//! plain `u64` increments on queries that already run fans and max-flows
//! — they stay unconditionally enabled. Per-query wall-clock timing costs
//! two `Instant` reads per query and is therefore opt-in
//! ([`PathBuilder::enable_timing`](crate::PathBuilder::enable_timing));
//! a disabled builder never touches the clock. See `DESIGN.md` §8 for
//! the measured overhead of both modes.
//!
//! [`MetricsReport`] is the full snapshot: construction counters plus
//! the fan-engine and flow-solver counters accumulated underneath, with
//! a JSON export used by the experiment sidecars and `hhc stats`.
//!
//! The concurrent [`Router`](crate::Router) does not share one of these
//! behind a lock: each worker keeps its own `MetricsReport` and publishes
//! per-batch deltas into a per-worker `AtomicReport`
//! (`service::metrics`), which [`Router::metrics`](crate::Router::metrics)
//! folds back into a plain `MetricsReport` on demand. The timing
//! histogram is deliberately excluded from that aggregation — timing
//! stays a single-builder, opt-in concern off the serving path.

use graphs::DinicStats;
use hypercube::FanMetrics;
use obs::{json, TimingStats};

/// Counters owned directly by one `PathBuilder`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConstructionMetrics {
    /// Successful constructions (validated pairs built to completion).
    pub queries: u64,
    /// Queries that took case A (`Xu = Xv`).
    pub same_cube: u64,
    /// Queries that took case B (`Xu ≠ Xv`).
    pub cross_cube: u64,
    /// Rotation crossing plans selected (case B only).
    pub rotation_plans: u64,
    /// Detour crossing plans selected (case B plus case A's single
    /// external loop, mirroring `ConstructionTrace`). Replayed family
    /// hits contribute the plan counts of the cached construction, so
    /// `rotation_plans + detour_plans = degree·cross_cube + same_cube`
    /// holds with or without caching.
    pub detour_plans: u64,
    /// Queries answered by replaying a translation-canonical cached
    /// family (no fans, no flow solves).
    pub family_hits: u64,
    /// Cross-cube queries answered from *any* family-cache tier — the
    /// per-builder L1 or an attached shared L2 — i.e. the ones that
    /// would otherwise have issued two fan queries each. This is what
    /// keeps the `fan_queries` conservation law tier-agnostic; the
    /// L1-only subset is `family_hits` minus same-cube hits.
    pub family_hits_cross: u64,
    /// Family caches that latched adaptive probe-only mode (stopped
    /// inserting after a sustained near-zero hit rate); 0 or 1 per
    /// builder, summed across workers by [`merge`](Self::merge).
    /// Lifetime-of-cache: unlike the counters above it survives
    /// [`PathBuilder::reset_metrics`](crate::PathBuilder::reset_metrics)
    /// and resets only when the cache itself is replaced.
    pub family_bypass_events: u64,
    /// Fault-avoiding constructions that had to deviate from the plain
    /// family (at least one plain path intersected the fault set).
    pub fault_reroutes: u64,
    /// Candidate crossing plans rejected during fault-avoiding rebuilds
    /// because a fault blocked their trajectory or terminal stub.
    pub fault_avoided_plans: u64,
    /// Queries answered by replaying a family from an attached shared L2
    /// tier ([`SharedFamilyCache`](crate::service::SharedFamilyCache))
    /// after the per-builder L1 missed. Zero unless a shared cache is
    /// attached.
    pub l2_hits: u64,
    /// L1-miss queries that also missed the attached shared L2 tier and
    /// fell through to a fresh construction. For untraced queries on a
    /// builder with an attached L2,
    /// `queries == family_hits + l2_hits + l2_misses`.
    pub l2_misses: u64,
    /// L2-replayed families that the fault-avoiding layer then found
    /// blocked by the live fault set and repaired via the rebuild path —
    /// the lazy invalidation events of the tiered cache. Always
    /// `≤ min(l2_hits, fault_reroutes)`.
    pub l2_invalidations: u64,
    /// Fault-set generation the serving layer last stamped on this
    /// report (bumped once per `add_fault`/`clear_fault`). A gauge, not
    /// a counter: [`merge`](Self::merge) takes the maximum.
    pub fault_generation: u64,
    /// Per-query wall-clock nanoseconds; empty unless timing was enabled.
    pub timing: TimingStats,
}

impl ConstructionMetrics {
    pub fn merge(&mut self, other: &ConstructionMetrics) {
        self.queries += other.queries;
        self.same_cube += other.same_cube;
        self.cross_cube += other.cross_cube;
        self.rotation_plans += other.rotation_plans;
        self.detour_plans += other.detour_plans;
        self.family_hits += other.family_hits;
        self.family_hits_cross += other.family_hits_cross;
        self.family_bypass_events += other.family_bypass_events;
        self.fault_reroutes += other.fault_reroutes;
        self.fault_avoided_plans += other.fault_avoided_plans;
        self.l2_hits += other.l2_hits;
        self.l2_misses += other.l2_misses;
        self.l2_invalidations += other.l2_invalidations;
        self.fault_generation = self.fault_generation.max(other.fault_generation);
        self.timing.merge(&other.timing);
    }

    pub fn reset(&mut self) {
        *self = ConstructionMetrics::default();
    }

    /// Family-cache hit rate over all queries; `None` before any query.
    pub fn family_hit_rate(&self) -> Option<f64> {
        (self.queries > 0).then(|| self.family_hits as f64 / self.queries as f64)
    }
}

/// Full effort snapshot of a `PathBuilder` (or of a whole batch run):
/// construction counters plus the two terminal-fan engines and their
/// combined max-flow solver counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsReport {
    pub construction: ConstructionMetrics,
    /// Fan engine serving the source cube (`Yu` → plan entry coordinates).
    pub src_fan: FanMetrics,
    /// Fan engine serving the target cube (`Yv` → plan exit coordinates).
    pub tgt_fan: FanMetrics,
    /// Max-flow solver counters summed over both fan networks.
    pub solver: DinicStats,
}

impl MetricsReport {
    /// Total fan queries across both terminal engines. Case B issues
    /// exactly two (one per side) unless the whole family was replayed
    /// from the family cache, case A none, so this always equals
    /// `2 * (construction.cross_cube - construction.family_hits_cross)`
    /// for plain constructions. Fault-avoiding rebuilds issue additional
    /// (uncached) fan queries, so the law holds only while
    /// `construction.fault_reroutes == 0`.
    pub fn fan_queries(&self) -> u64 {
        self.src_fan.queries + self.tgt_fan.queries
    }

    /// Canonical-fan-cache hit rate across both terminal engines;
    /// `None` before any cache-eligible fan query.
    pub fn fan_cache_hit_rate(&self) -> Option<f64> {
        let hits = self.src_fan.cache_hits + self.tgt_fan.cache_hits;
        let probes = hits + self.src_fan.cache_misses + self.tgt_fan.cache_misses;
        (probes > 0).then(|| hits as f64 / probes as f64)
    }

    /// Element-wise accumulation (for combining per-thread reports).
    pub fn merge(&mut self, other: &MetricsReport) {
        self.construction.merge(&other.construction);
        self.src_fan.merge(&other.src_fan);
        self.tgt_fan.merge(&other.tgt_fan);
        self.solver.merge(&other.solver);
    }

    /// Compact JSON object with every counter; `timing_ns` is present
    /// only when timing was enabled and at least one query ran.
    pub fn to_json(&self) -> String {
        let c = &self.construction;
        let mut o = json::Obj::new();
        o.u64("queries", c.queries);
        o.u64("same_cube", c.same_cube);
        o.u64("cross_cube", c.cross_cube);
        o.u64("rotation_plans", c.rotation_plans);
        o.u64("detour_plans", c.detour_plans);
        o.u64("family_hits", c.family_hits);
        o.u64("family_hits_cross", c.family_hits_cross);
        o.u64("family_bypass_events", c.family_bypass_events);
        o.u64("fault_reroutes", c.fault_reroutes);
        o.u64("fault_avoided_plans", c.fault_avoided_plans);
        o.u64("l2_hits", c.l2_hits);
        o.u64("l2_misses", c.l2_misses);
        o.u64("l2_invalidations", c.l2_invalidations);
        o.u64("fault_generation", c.fault_generation);
        if c.timing.count() > 0 {
            o.raw("timing_ns", &c.timing.to_json());
        }
        let fan_obj = |f: &FanMetrics| {
            let mut fo = json::Obj::new();
            fo.u64("queries", f.queries);
            fo.u64("targets_requested", f.targets_requested);
            fo.u64("seeded_direct", f.seeded_direct);
            fo.u64("network_builds", f.network_builds);
            fo.u64("fast_path", f.fast_path);
            fo.u64("cache_hits", f.cache_hits);
            fo.u64("cache_misses", f.cache_misses);
            fo.finish()
        };
        o.raw("src_fan", &fan_obj(&self.src_fan));
        o.raw("tgt_fan", &fan_obj(&self.tgt_fan));
        let mut so = json::Obj::new();
        so.u64("bfs_passes", self.solver.bfs_passes);
        so.u64("augmentations", self.solver.augmentations);
        so.u64("arcs_touched", self.solver.arcs_touched);
        so.u64("slots_rewound", self.solver.slots_rewound);
        so.u64("csr_rebuilds", self.solver.csr_rebuilds);
        o.raw("solver", &so.finish());
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters() {
        let mut a = MetricsReport::default();
        a.construction.queries = 3;
        a.construction.cross_cube = 2;
        a.src_fan.queries = 2;
        a.tgt_fan.queries = 2;
        a.solver.bfs_passes = 7;
        let mut b = MetricsReport::default();
        b.construction.queries = 1;
        b.construction.same_cube = 1;
        b.solver.bfs_passes = 1;
        a.merge(&b);
        assert_eq!(a.construction.queries, 4);
        assert_eq!(a.construction.same_cube, 1);
        assert_eq!(a.fan_queries(), 4);
        assert_eq!(a.solver.bfs_passes, 8);
    }

    #[test]
    fn merge_sums_l2_counters_but_maxes_generation() {
        let mut a = ConstructionMetrics {
            l2_hits: 5,
            l2_misses: 2,
            l2_invalidations: 1,
            fault_generation: 7,
            ..ConstructionMetrics::default()
        };
        let b = ConstructionMetrics {
            l2_hits: 3,
            l2_misses: 4,
            l2_invalidations: 2,
            fault_generation: 3,
            ..ConstructionMetrics::default()
        };
        a.merge(&b);
        assert_eq!(
            (a.l2_hits, a.l2_misses, a.l2_invalidations),
            (8, 6, 3),
            "l2 counters sum"
        );
        assert_eq!(a.fault_generation, 7, "generation is a gauge: max wins");
    }

    #[test]
    fn json_omits_timing_when_empty() {
        let mut r = MetricsReport::default();
        r.construction.queries = 1;
        let j = r.to_json();
        assert!(j.contains("\"queries\":1"));
        assert!(!j.contains("timing_ns"));
        r.construction.timing.record_ns(500);
        assert!(r.to_json().contains("\"timing_ns\":{"));
    }
}
