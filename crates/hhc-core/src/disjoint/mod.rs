//! The paper's construction: `m + 1` internally vertex-disjoint paths
//! between any two distinct nodes of `HHC(m)`.
//!
//! The connectivity of `HHC(m)` is `m + 1` (its minimum degree), so no
//! algorithm can do better than `m + 1` internally disjoint paths; this
//! module constructs exactly that many, symbolically (without touching
//! the `2^(2^m + m)`-node graph), in output-sensitive time, with the
//! worst-case length bound of [`crate::bounds::length_bound`].
//!
//! Two cases:
//!
//! * **Case A** (`Xu = Xv`, same son-cube): the classical hypercube
//!   construction supplies `m` disjoint paths inside the shared son-cube;
//!   the `(m+1)`-th path leaves through `u`'s external edge, traverses
//!   three neighbouring cubes, and re-enters through `v`'s external edge.
//! * **Case B** (`Xu ≠ Xv`): rotation/detour crossing plans with disjoint
//!   intermediate cube sets, glued to disjoint fans inside the terminal
//!   cubes. See the `case_b` module source for the full argument.
//!
//! Every public result can be re-checked with
//! [`crate::verify::verify_disjoint_paths`]; the test suite does so
//! exhaustively for m ∈ {1, 2} and on large samples for m ∈ {3..6}.

mod avoid;
mod case_b;
pub mod family_cache;
pub mod plan;

pub use avoid::AvoidOutcome;

use crate::error::HhcError;
use crate::fault::FaultOracle;
use crate::metrics::{ConstructionMetrics, MetricsReport};
use crate::node::NodeId;
use crate::pathset::PathSet;
use crate::topology::Hhc;
use crate::Path;
use family_cache::{CacheConfig, FamilyCache};
use hypercube::{FanCache, FanScratch};
use plan::{assemble_into, CrossingPlan};

/// The order in which a path crosses the differing cube-field positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossingOrder {
    /// Order positions along the Gray cycle of `Q_m` (anchored at the
    /// entry coordinate). Total intra-cube walking per path telescopes to
    /// at most one lap (`2^m` hops). This is the default and what the
    /// length bound assumes.
    Gray,
    /// Ascending numeric order — the naive choice, kept for the ablation
    /// experiment (F5). Correct but up to `m×` longer intra-cube walks.
    Sorted,
}

/// Which branch of the construction a pair took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstructionCase {
    /// `Xu = Xv`: in-cube Saad–Schultz family plus one external loop.
    SameCube,
    /// `Xu ≠ Xv`: rotation/detour crossing plans with terminal fans.
    CrossCube,
}

/// Introspection record for one construction: how the `m + 1` paths were
/// put together. Returned by [`disjoint_paths_traced`]; useful for
/// teaching, debugging, and the `construction_anatomy` example.
#[derive(Debug, Clone)]
pub struct ConstructionTrace {
    /// Which case applied.
    pub case: ConstructionCase,
    /// Rotation-plan count (cross-cube case).
    pub rotations: usize,
    /// Detour-plan count (cross-cube case; same-cube counts its single
    /// external loop here).
    pub detours: usize,
    /// Per path (same order as the returned paths): its crossing plan,
    /// or `None` for paths confined to the shared son-cube.
    pub plans: Vec<Option<plan::CrossingPlan>>,
    /// Son-cube coordinates the source fan connects `Yu` to.
    pub source_fan_targets: Vec<u32>,
    /// Son-cube coordinates the target fan connects `Yv` to.
    pub target_fan_targets: Vec<u32>,
}

/// Reusable scratch for the construction engine: every intermediate
/// buffer a single `disjoint_paths` query needs, including the two
/// max-flow fan networks inside the terminal son-cubes. Constructing a
/// `PathBuilder` is cheap; feeding the same one to many queries (see
/// [`crate::batch`]) makes each query allocation-free after warm-up,
/// which is where the batch engine's throughput comes from.
///
/// A `PathBuilder` carries no query state between calls — results are
/// only ever written to the caller's [`PathSet`] — so one scratch may
/// serve pairs of different `m` interleaved (the fan networks rebuild
/// lazily when `m` changes).
#[derive(Default)]
pub struct PathBuilder {
    // Case A: son-cube family in CSR form, pre-lift.
    qdims: Vec<u32>,
    qnodes: Vec<u128>,
    qoffsets: Vec<u32>,
    // Case B: selection and plan arena.
    d_positions: Vec<u32>,
    gd: Vec<u32>,
    keyed: Vec<(u64, u32)>,
    rot_sel: Vec<usize>,
    det_sel: Vec<u32>,
    plan_pos: Vec<u32>,
    plan_off: Vec<u32>,
    // Case B: fan bookkeeping (targets, per-plan segment indices, flow
    // networks).
    src_targets: Vec<u128>,
    tgt_targets: Vec<u128>,
    seg_src: Vec<u32>,
    seg_tgt: Vec<u32>,
    src_fan: FanScratch,
    tgt_fan: FanScratch,
    // Fault-avoiding rebuild scratch (see `avoid`): survivor snapshot,
    // per-path blocked flags, the full candidate-plan arena with its
    // selection state, priority order and current selection.
    avoid_tmp: PathSet,
    avoid_blocked: Vec<bool>,
    avoid_cand_pos: Vec<u32>,
    avoid_cand_off: Vec<u32>,
    avoid_priority: Vec<u32>,
    avoid_state: Vec<u8>,
    avoid_sel: Vec<u32>,
    // Symmetry caches (see `family_cache` and `hypercube::fancache`):
    // canonical fan solutions shared by both terminal engines, and whole
    // canonical families. Owned per builder — batch workers never lock.
    fan_cache: FanCache,
    family_cache: FamilyCache,
    // Optional shared L2 family tier (see `crate::service`), probed
    // between an L1 miss and a fresh construction, through a per-builder
    // snapshot reader (lock-free probes). `None` (the default) keeps the
    // builder fully self-contained.
    shared_cache: Option<crate::service::L2Reader>,
    // Observability: monotone counters plus opt-in per-query timing.
    metrics: ConstructionMetrics,
    timing_enabled: bool,
}

impl PathBuilder {
    pub fn new() -> Self {
        PathBuilder::default()
    }

    /// A builder whose symmetry caches use the given capacities
    /// ([`CacheConfig::disabled`] reproduces pre-cache behaviour:
    /// byte-identical output, no memoisation).
    pub fn with_caches(cfg: CacheConfig) -> Self {
        let mut b = PathBuilder::default();
        b.set_cache_config(cfg);
        b
    }

    /// Replaces both symmetry caches with empty ones of the given
    /// capacities. Results are unaffected (caching is exact); only
    /// memoisation behaviour and memory use change.
    pub fn set_cache_config(&mut self, cfg: CacheConfig) {
        self.fan_cache = FanCache::new(cfg.fan_capacity);
        self.family_cache = FamilyCache::new(cfg.family_capacity);
    }

    /// The family cache, for capacity/occupancy introspection.
    pub fn family_cache(&self) -> &FamilyCache {
        &self.family_cache
    }

    /// Attaches a shared L2 family tier: after the per-builder L1
    /// misses, queries probe `l2` through a per-builder snapshot reader
    /// (one atomic load, no lock — see `crate::service::shared`) before
    /// constructing, and fresh constructions are promoted into both
    /// tiers. Caching stays exact — replays are byte-identical to fresh
    /// constructions — so results are unaffected. `l2_hits`/`l2_misses`
    /// in [`ConstructionMetrics`] account the new tier.
    pub fn attach_shared_cache(&mut self, l2: std::sync::Arc<crate::service::SharedFamilyCache>) {
        self.shared_cache = Some(crate::service::L2Reader::new(l2));
    }

    /// Detaches the shared L2 tier (the builder keeps its L1).
    pub fn detach_shared_cache(&mut self) {
        self.shared_cache = None;
    }

    /// The attached shared L2 tier, if any.
    pub fn shared_cache(&self) -> Option<&std::sync::Arc<crate::service::SharedFamilyCache>> {
        self.shared_cache.as_ref().map(|r| r.cache())
    }

    /// The shared canonical fan cache, for capacity/occupancy
    /// introspection.
    pub fn fan_cache(&self) -> &FanCache {
        &self.fan_cache
    }

    /// Turns per-query wall-clock timing on or off (off by default).
    /// When enabled, every successful construction records its duration
    /// into [`ConstructionMetrics::timing`] — two `Instant` reads per
    /// query; a disabled builder never touches the clock.
    pub fn enable_timing(&mut self, on: bool) {
        self.timing_enabled = on;
    }

    /// Full effort snapshot: construction counters plus the fan engines
    /// and their combined max-flow solver counters, accumulated since
    /// construction or the last [`PathBuilder::reset_metrics`].
    pub fn metrics(&self) -> MetricsReport {
        let mut solver = self.src_fan.solver_stats();
        solver.merge(&self.tgt_fan.solver_stats());
        let mut construction = self.metrics.clone();
        // Read live from the cache rather than a counter: the bypass
        // latch outlives `reset_metrics` (it describes cache state, not
        // a window of queries).
        construction.family_bypass_events = self.family_cache.bypass_events();
        MetricsReport {
            construction,
            src_fan: self.src_fan.metrics(),
            tgt_fan: self.tgt_fan.metrics(),
            solver,
        }
    }

    /// Zeroes every counter (scratch buffers and fan networks untouched).
    pub fn reset_metrics(&mut self) {
        self.metrics.reset();
        self.src_fan.reset_metrics();
        self.tgt_fan.reset_metrics();
    }
}

/// Constructs `m + 1` internally vertex-disjoint paths from `u` to `v`.
///
/// Every returned path starts at `u`, ends at `v` and is simple; any two
/// share only the endpoints. Lengths respect
/// [`crate::bounds::length_bound`] when `order` is [`CrossingOrder::Gray`].
///
/// Allocates fresh scratch and output per call; batch workloads should
/// hold a [`PathBuilder`] and a [`PathSet`] and call
/// [`disjoint_paths_into`] (or use [`crate::batch`]) instead.
///
/// # Errors
/// [`HhcError::EqualNodes`] if `u == v`; address validation errors if a
/// node does not belong to `hhc`.
pub fn disjoint_paths(
    hhc: &Hhc,
    u: NodeId,
    v: NodeId,
    order: CrossingOrder,
) -> Result<Vec<Path>, HhcError> {
    let mut out = PathSet::new();
    let mut scratch = PathBuilder::new();
    construct_into(hhc, u, v, order, &mut out, &mut scratch, false)?;
    Ok(out.to_paths())
}

/// Like [`disjoint_paths`], additionally returning the
/// [`ConstructionTrace`] describing how the family was assembled.
pub fn disjoint_paths_traced(
    hhc: &Hhc,
    u: NodeId,
    v: NodeId,
    order: CrossingOrder,
) -> Result<(Vec<Path>, ConstructionTrace), HhcError> {
    let mut out = PathSet::new();
    let mut scratch = PathBuilder::new();
    let trace =
        construct_into(hhc, u, v, order, &mut out, &mut scratch, true)?.expect("trace requested");
    Ok((out.to_paths(), trace))
}

/// [`disjoint_paths`] writing into caller-owned buffers: `out` is cleared
/// and receives the `m + 1` paths; `scratch` holds every intermediate
/// buffer and is reusable across queries (and across networks). After a
/// warm-up query at a given `m`, a call performs no allocation beyond
/// what `out` needs to grow.
///
/// Produces node-for-node the same paths as [`disjoint_paths`] — both are
/// thin wrappers over one construction core.
pub fn disjoint_paths_into(
    hhc: &Hhc,
    u: NodeId,
    v: NodeId,
    order: CrossingOrder,
    out: &mut PathSet,
    scratch: &mut PathBuilder,
) -> Result<(), HhcError> {
    construct_into(hhc, u, v, order, out, scratch, false).map(|_| ())
}

/// Constructs internally vertex-disjoint paths from `u` to `v` that
/// avoid every node the oracle reports faulty.
///
/// With an empty fault set (or one that misses the plain family) the
/// result is byte-identical to [`disjoint_paths`] and `rerouted` is
/// `false`. Otherwise the family is rebuilt from the spare crossing
/// plans of the candidate pool (see the `avoid` module docs); with
/// `f ≤ m - 1` faults a non-empty fault-free family always exists and
/// the rebuild usually recovers all `m + 1` paths. As faults grow the
/// family degrades gracefully — fewer paths, eventually zero — but
/// never panics and never returns a path through a faulty node.
///
/// # Errors
/// [`HhcError::EqualNodes`] if `u == v`; [`HhcError::FaultyEndpoint`] if
/// either endpoint is itself faulty; address validation errors if a node
/// does not belong to `hhc`.
pub fn disjoint_paths_avoiding(
    hhc: &Hhc,
    u: NodeId,
    v: NodeId,
    order: CrossingOrder,
    faults: &dyn FaultOracle,
) -> Result<(Vec<Path>, AvoidOutcome), HhcError> {
    let mut out = PathSet::new();
    let mut scratch = PathBuilder::new();
    let outcome = avoid::avoid_into(hhc, u, v, order, faults, &mut out, &mut scratch)?;
    Ok((out.to_paths(), outcome))
}

/// [`disjoint_paths_avoiding`] writing into caller-owned buffers, the
/// scratch-reusing twin of [`disjoint_paths_into`]. `out` is cleared and
/// receives the fault-free family; the returned [`AvoidOutcome`] reports
/// its size and whether construction had to deviate from the plain
/// family.
pub fn disjoint_paths_avoiding_into(
    hhc: &Hhc,
    u: NodeId,
    v: NodeId,
    order: CrossingOrder,
    faults: &dyn FaultOracle,
    out: &mut PathSet,
    scratch: &mut PathBuilder,
) -> Result<AvoidOutcome, HhcError> {
    avoid::avoid_into(hhc, u, v, order, faults, out, scratch)
}

/// The single construction core behind every public entry point.
fn construct_into(
    hhc: &Hhc,
    u: NodeId,
    v: NodeId,
    order: CrossingOrder,
    out: &mut PathSet,
    scratch: &mut PathBuilder,
    want_trace: bool,
) -> Result<Option<ConstructionTrace>, HhcError> {
    let t0 = scratch.timing_enabled.then(std::time::Instant::now);
    hhc.check(u)?;
    hhc.check(v)?;
    if u == v {
        return Err(HhcError::EqualNodes);
    }
    out.clear();
    let same = hhc.cube_field(u) == hhc.cube_field(v);

    // Family cache: the construction is equivariant under cube-field
    // translation (plan selection reads only dx/Yu/Yv/m/order; assembly
    // threads cube fields through XORs), so families are cached for the
    // canonical source cube X = 0 and replayed translated by Xu. Traced
    // queries bypass the cache — a replay has no plan internals to report.
    let dx = hhc.cube_field(u) ^ hhc.cube_field(v);
    let key = family_cache::family_key(hhc.m(), dx, hhc.node_field(u), hhc.node_field(v), order);
    let mask = hhc.cube_field(u) << hhc.m();
    if !want_trace {
        if let Some((nr, nd)) = scratch.family_cache.replay(key, mask, out) {
            let m = &mut scratch.metrics;
            m.queries += 1;
            m.family_hits += 1;
            if same {
                m.same_cube += 1;
            } else {
                m.cross_cube += 1;
                m.family_hits_cross += 1;
            }
            m.rotation_plans += nr;
            m.detour_plans += nd;
            if let Some(t0) = t0 {
                m.timing.record_ns(t0.elapsed().as_nanos() as u64);
            }
            return Ok(None);
        }
        // L1 missed: probe the shared L2 tier (if attached) and promote
        // a hit into the L1 so the next repeat stays local. Entries are
        // canonical families stored by some worker's exact construction,
        // so the replay is byte-identical to constructing here.
        if let Some(reader) = scratch.shared_cache.as_mut() {
            let replayed = reader.replay(key, mask, out);
            if let Some((nr, nd)) = replayed {
                scratch.family_cache.store(key, mask, out, nr, nd);
                let m = &mut scratch.metrics;
                m.queries += 1;
                m.l2_hits += 1;
                if same {
                    m.same_cube += 1;
                } else {
                    m.cross_cube += 1;
                    m.family_hits_cross += 1;
                }
                m.rotation_plans += nr;
                m.detour_plans += nd;
                if let Some(t0) = t0 {
                    m.timing.record_ns(t0.elapsed().as_nanos() as u64);
                }
                return Ok(None);
            }
            scratch.metrics.l2_misses += 1;
        }
    }

    let result = if same {
        same_cube_into(hhc, u, v, out, scratch, want_trace)
    } else {
        case_b::cross_cube_into(hhc, u, v, order, out, scratch, want_trace)
    };
    if result.is_ok() {
        // Plan selections are read back from the scratch the case-B core
        // just filled; case A always uses exactly one external loop.
        let (nr, nd) = if same {
            (0, 1)
        } else {
            (scratch.rot_sel.len() as u64, scratch.det_sel.len() as u64)
        };
        scratch.family_cache.store(key, mask, out, nr, nd);
        if let Some(l2) = &scratch.shared_cache {
            l2.store(key, mask, out, nr, nd);
        }
        let m = &mut scratch.metrics;
        m.queries += 1;
        if same {
            m.same_cube += 1;
        } else {
            m.cross_cube += 1;
        }
        m.rotation_plans += nr;
        m.detour_plans += nd;
        if let Some(t0) = t0 {
            m.timing.record_ns(t0.elapsed().as_nanos() as u64);
        }
    }
    result
}

/// Case A: both nodes in the same son-cube.
fn same_cube_into(
    hhc: &Hhc,
    u: NodeId,
    v: NodeId,
    out: &mut PathSet,
    sc: &mut PathBuilder,
    want_trace: bool,
) -> Result<Option<ConstructionTrace>, HhcError> {
    let cube = hhc.son_cube();
    let x = hhc.cube_field(u);
    let (yu, yv) = (hhc.node_field(u), hhc.node_field(v));

    // m disjoint paths inside the shared son-cube (Saad–Schultz), built
    // into the CSR scratch and lifted into the network.
    sc.qnodes.clear();
    sc.qoffsets.clear();
    sc.qoffsets.push(0);
    hypercube::paths::disjoint_paths_buf(
        &cube,
        yu as u128,
        yv as u128,
        hhc.m() as usize,
        &mut sc.qdims,
        &mut sc.qnodes,
        &mut sc.qoffsets,
    )
    .expect("distinct coordinates in a valid cube");
    for i in 0..sc.qoffsets.len() - 1 {
        let (a, b) = (sc.qoffsets[i] as usize, sc.qoffsets[i + 1] as usize);
        for &y in &sc.qnodes[a..b] {
            out.push_node(hhc.node(x, y as u32)?);
        }
        out.finish_path();
    }

    // The (m+1)-th path: out at u, around three neighbouring cubes, in at
    // v. Crossing plan [Yu, Yv, Yu, Yv]: the prefix cubes are
    // X⊕e_Yu, X⊕e_Yu⊕e_Yv, X⊕e_Yv — all distinct from X since Yu ≠ Yv.
    let loop_plan = [yu, yv, yu, yv];
    assemble_into(
        hhc,
        u,
        std::iter::empty(),
        &loop_plan,
        std::iter::empty(),
        out,
    )?;
    if !want_trace {
        return Ok(None);
    }
    Ok(Some(ConstructionTrace {
        case: ConstructionCase::SameCube,
        rotations: 0,
        detours: 1,
        plans: (0..hhc.m())
            .map(|_| None)
            .chain([Some(CrossingPlan {
                positions: loop_plan.to_vec(),
            })])
            .collect(),
        source_fan_targets: Vec::new(),
        target_fan_targets: Vec::new(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_disjoint_paths;

    fn all_checks(hhc: &Hhc, u: NodeId, v: NodeId, order: CrossingOrder) {
        let paths = disjoint_paths(hhc, u, v, order).unwrap();
        assert_eq!(paths.len() as u32, hhc.degree(), "must produce m+1 paths");
        verify_disjoint_paths(hhc, u, v, &paths).unwrap_or_else(|e| {
            panic!(
                "m={} u={} v={} ({order:?}): {e}",
                hhc.m(),
                hhc.format_node(u),
                hhc.format_node(v)
            )
        });
    }

    #[test]
    fn rejects_equal_nodes() {
        let h = Hhc::new(2).unwrap();
        let u = h.node(3, 1).unwrap();
        assert_eq!(
            disjoint_paths(&h, u, u, CrossingOrder::Gray),
            Err(HhcError::EqualNodes)
        );
    }

    #[test]
    fn same_cube_pair() {
        let h = Hhc::new(3).unwrap();
        let u = h.node(0x3C, 0b000).unwrap();
        let v = h.node(0x3C, 0b101).unwrap();
        all_checks(&h, u, v, CrossingOrder::Gray);
    }

    #[test]
    fn adjacent_via_external_edge() {
        let h = Hhc::new(3).unwrap();
        let u = h.node(0, 0b011).unwrap();
        let v = h.external_neighbor(u);
        all_checks(&h, u, v, CrossingOrder::Gray);
    }

    #[test]
    fn adjacent_via_internal_edge() {
        let h = Hhc::new(3).unwrap();
        let u = h.node(0x55, 0b010).unwrap();
        let v = h.internal_neighbor(u, 2);
        all_checks(&h, u, v, CrossingOrder::Gray);
    }

    #[test]
    fn exhaustive_m1_all_ordered_pairs() {
        let h = Hhc::new(1).unwrap();
        for u in h.iter_nodes() {
            for v in h.iter_nodes() {
                if u != v {
                    all_checks(&h, u, v, CrossingOrder::Gray);
                    all_checks(&h, u, v, CrossingOrder::Sorted);
                }
            }
        }
    }

    #[test]
    fn exhaustive_m2_all_ordered_pairs() {
        let h = Hhc::new(2).unwrap();
        for u in h.iter_nodes() {
            for v in h.iter_nodes() {
                if u != v {
                    all_checks(&h, u, v, CrossingOrder::Gray);
                }
            }
        }
    }

    #[test]
    fn m2_sorted_order_also_valid_everywhere() {
        let h = Hhc::new(2).unwrap();
        for u in h.iter_nodes() {
            for v in h.iter_nodes() {
                if u != v {
                    all_checks(&h, u, v, CrossingOrder::Sorted);
                }
            }
        }
    }

    #[test]
    fn antipodal_cross_cube_pair_m3() {
        let h = Hhc::new(3).unwrap();
        let u = h.node(0x00, 0b000).unwrap();
        let v = h.node(0xFF, 0b111).unwrap(); // k = 8 = 2^m (all positions)
        all_checks(&h, u, v, CrossingOrder::Gray);
        all_checks(&h, u, v, CrossingOrder::Sorted);
    }

    #[test]
    fn single_differing_position_far_coordinates_m3() {
        let h = Hhc::new(3).unwrap();
        // k = 1 with crossing position far from both Yu and Yv.
        let u = h.node(0x00, 0b000).unwrap();
        let v = h.node(1 << 6, 0b111).unwrap();
        all_checks(&h, u, v, CrossingOrder::Gray);
    }

    #[test]
    fn path_count_matches_flow_optimum_m2() {
        // Constructive count equals the Menger optimum on the explicit
        // graph for a spread of pairs.
        let h = Hhc::new(2).unwrap();
        let g = h.materialize().unwrap();
        for (a, b) in [(0u32, 63u32), (1, 47), (5, 58), (0, 1), (9, 33)] {
            let u = NodeId::from_raw(a as u128);
            let v = NodeId::from_raw(b as u128);
            let flow = graphs::vertex_connectivity_between(&g, a, b);
            let built = disjoint_paths(&h, u, v, CrossingOrder::Gray).unwrap();
            assert_eq!(built.len() as u32, flow, "pair ({a},{b})");
        }
    }

    #[test]
    fn random_sample_m3_through_m6() {
        // Deterministic xorshift sampling across all supported sizes.
        let mut state = 0x243f_6a88_85a3_08d3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for m in 3..=6u32 {
            let h = Hhc::new(m).unwrap();
            let xmask = if h.positions() >= 128 {
                u128::MAX
            } else {
                (1u128 << h.positions()) - 1
            };
            for _ in 0..40 {
                let xu = (next() as u128) << 64 | next() as u128;
                let xv = (next() as u128) << 64 | next() as u128;
                let u = h
                    .node(xu & xmask, (next() % (1 << m) as u64) as u32)
                    .unwrap();
                let v = h
                    .node(xv & xmask, (next() % (1 << m) as u64) as u32)
                    .unwrap();
                if u == v {
                    continue;
                }
                all_checks(&h, u, v, CrossingOrder::Gray);
            }
        }
    }

    #[test]
    fn selection_edge_cases_m3() {
        // Named scenarios exercising each branch of the plan-selection
        // logic (beyond what the exhaustive m ≤ 2 sweeps reach).
        let h = Hhc::new(3).unwrap();
        let cases: Vec<(&str, NodeId, NodeId)> = vec![
            (
                "k=1, Yu=Yv outside D: one detour serves both ends",
                h.node(0b0000_0000, 0b010).unwrap(),
                h.node(0b1000_0000, 0b010).unwrap(), // D={7}, yu=yv=2∉D
            ),
            (
                "k=1, Yu=Yv = the crossing position",
                h.node(0b0000_0000, 0b101).unwrap(),
                h.node(0b0010_0000, 0b101).unwrap(), // D={5}=yu=yv
            ),
            (
                "k=2, both endpoints' coordinates inside D, same rotation",
                h.node(0b0000_0000, 0b011).unwrap(), // yu=3
                h.node(0b0001_0100, 0b010).unwrap(), // D={2,4}, yv=2
            ),
            (
                "k=2, both coordinates in D, distinct required rotations",
                h.node(0b0000_0000, 0b010).unwrap(), // yu=2 ∈ D
                h.node(0b0001_0100, 0b100).unwrap(), // D={2,4}, yv=4 ∈ D
            ),
            (
                "k=m+1: pure-rotation budget",
                h.node(0b0000_0000, 0b000).unwrap(), // yu=0 ∈ D
                h.node(0b0000_1011, 0b001).unwrap(), // D={0,1,3}, yv=1 ∈ D
            ),
            (
                "k=2^m-1: only one clean position left",
                h.node(0b0000_0000, 0b111).unwrap(), // yu=7; D = all but 7
                h.node(0b0111_1111, 0b000).unwrap(), // yv=0 ∈ D
            ),
            (
                "k>m+1 with both coordinates outside D",
                h.node(0b0000_0000, 0b110).unwrap(), // yu=6 ∉ D
                h.node(0b0010_1111, 0b110).unwrap(), // D={0,1,2,3,5}, yv=6 ∉ D
            ),
        ];
        for (name, u, v) in cases {
            let paths = disjoint_paths(&h, u, v, CrossingOrder::Gray)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(paths.len(), 4, "{name}");
            verify_disjoint_paths(&h, u, v, &paths).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn traced_metadata_is_consistent() {
        let h = Hhc::new(3).unwrap();
        let u = h.node(0x00, 0b001).unwrap();
        let v = h.node(0x2B, 0b100).unwrap();
        let (paths, trace) = disjoint_paths_traced(&h, u, v, CrossingOrder::Gray).unwrap();
        assert_eq!(trace.plans.len(), paths.len());
        assert_eq!(trace.rotations + trace.detours, paths.len());
        assert_eq!(trace.case, ConstructionCase::CrossCube);
        let dx = h.cube_field(u) ^ h.cube_field(v);
        for (plan, path) in trace.plans.iter().zip(&paths) {
            let plan = plan.as_ref().expect("cross-cube plans present");
            assert_eq!(plan.total_mask(), dx, "plan must cross exactly D");
            // The path's crossing count equals the plan length.
            let crossings = path
                .windows(2)
                .filter(|w| h.cube_field(w[0]) != h.cube_field(w[1]))
                .count();
            assert_eq!(crossings, plan.positions.len());
        }
        // Fans cover m coordinates per side.
        assert_eq!(trace.source_fan_targets.len(), h.m() as usize);
        assert_eq!(trace.target_fan_targets.len(), h.m() as usize);
    }

    #[test]
    fn lengths_respect_bound_on_m2_exhaustive() {
        let h = Hhc::new(2).unwrap();
        for u in h.iter_nodes() {
            for v in h.iter_nodes() {
                if u == v {
                    continue;
                }
                let bound = crate::bounds::length_bound(&h, u, v);
                let paths = disjoint_paths(&h, u, v, CrossingOrder::Gray).unwrap();
                for p in &paths {
                    assert!(
                        (p.len() - 1) as u32 <= bound,
                        "len {} > bound {bound} for {} → {}",
                        p.len() - 1,
                        h.format_node(u),
                        h.format_node(v)
                    );
                }
            }
        }
    }
}
