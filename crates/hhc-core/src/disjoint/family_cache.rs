//! Bounded cache of canonical disjoint-path families.
//!
//! `HHC(m)` is vertex-transitive under cube-field translation: for any
//! mask `A`, the map `(X, Y) ↦ (X ⊕ A, Y)` is an automorphism (internal
//! edges ignore the cube field; the external edge at `(X, Y)` flips cube
//! bit `Y` on both sides). The whole construction is equivariant under
//! it — plan selection reads only `dx = Xu ⊕ Xv`, `Yu`, `Yv`, `m` and the
//! crossing order; fans run in son-cube coordinates; assembly threads the
//! cube field through XORs only. So the family for `(u, v)` is the family
//! for the canonical pair `((0, Yu), (dx, Yv))` with every node
//! translated by `Xu`, and one cached solve serves all `2^{2^m}`
//! translated instances of its signature.
//!
//! Eviction mirrors [`hypercube::FanCache`]: two generations ("hot" and
//! "cold"); lookups probe hot then cold (promoting on a cold hit); a full
//! hot map becomes the new cold map and the previous cold generation is
//! dropped. Bounded memory (≤ 2 × capacity entries), amortised O(1),
//! approximately LRU.
//!
//! Entries also carry the rotation/detour plan counts of the cached
//! family so metric conservation laws (`rotation_plans + detour_plans =
//! degree × cross_cube + same_cube`) survive cache replays.

use super::CrossingOrder;
use crate::node::NodeId;
use crate::pathset::PathSet;
use std::collections::HashMap;

/// Default hot-generation capacity. An HHC(5) family entry is a few
/// kilobytes, so the default bounds a per-worker cache at single-digit
/// megabytes while covering typical repeated-pattern workloads.
pub const DEFAULT_FAMILY_CACHE_CAPACITY: usize = 1024;

/// Adaptive-bypass warm-up: the cache never latches probe-only before it
/// has seen this many probes (a cold cache always starts at a 0% hit
/// rate; that is not evidence the workload lacks reuse).
pub const BYPASS_MIN_PROBES: u64 = 512;

/// Adaptive-bypass hit-rate floor: below this lifetime hit rate the
/// cache is judged useless for the running workload (uniform-random
/// pairs on a large address space re-key almost every query).
pub const BYPASS_HIT_FLOOR: f64 = 0.05;

/// Adaptive-bypass streak: probe-only additionally requires this many
/// consecutive misses, so a workload that alternates phases of reuse
/// and churn is not punished for one cold burst.
pub const BYPASS_CONSEC_MISSES: u64 = 256;

/// Capacities of the two construction caches carried by a
/// [`PathBuilder`](crate::PathBuilder). Capacity 0 disables the
/// corresponding cache (identical results, no memoisation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Hot-generation capacity of the canonical fan cache.
    pub fan_capacity: usize,
    /// Hot-generation capacity of the canonical family cache.
    pub family_capacity: usize,
}

impl CacheConfig {
    /// Both caches at their default capacities (the `PathBuilder`
    /// default).
    pub fn enabled() -> Self {
        CacheConfig {
            fan_capacity: hypercube::DEFAULT_FAN_CACHE_CAPACITY,
            family_capacity: DEFAULT_FAMILY_CACHE_CAPACITY,
        }
    }

    /// Both caches disabled: every query is solved from scratch. The
    /// reference mode for equivalence testing and ablation benchmarks.
    pub fn disabled() -> Self {
        CacheConfig {
            fan_capacity: 0,
            family_capacity: 0,
        }
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::enabled()
    }
}

/// Cache key: everything the construction output depends on besides the
/// translation mask. `dx` occupies the low 64 bits (positions `2^m ≤ 64`),
/// then `Yu`, `Yv`, `m` and the crossing order in separate bytes.
pub(crate) fn family_key(m: u32, dx: u128, yu: u32, yv: u32, order: CrossingOrder) -> u128 {
    debug_assert!(dx < 1u128 << 64 && yu < 64 && yv < 64 && m <= 6);
    let order_bit = match order {
        CrossingOrder::Gray => 0u128,
        CrossingOrder::Sorted => 1,
    };
    dx | (yu as u128) << 64 | (yv as u128) << 72 | (m as u128) << 80 | order_bit << 88
}

/// One cached canonical family: the CSR path set for `Xu = 0`, plus the
/// plan counts it was built from.
#[derive(Debug, Clone)]
struct FamilyEntry {
    nodes: Box<[u128]>,
    offsets: Box<[u32]>,
    rotations: u64,
    detours: u64,
}

/// Bounded, generation-swept cache of canonical disjoint-path families;
/// see the module docs. Owned per [`PathBuilder`](crate::PathBuilder),
/// so batch workers never contend on it.
#[derive(Debug)]
pub struct FamilyCache {
    capacity: usize,
    hot: HashMap<u128, FamilyEntry>,
    cold: HashMap<u128, FamilyEntry>,
    sweeps: u64,
    // Adaptive bypass: lifetime probe/hit accounting. When the hit rate
    // stays under `BYPASS_HIT_FLOOR` after `BYPASS_MIN_PROBES` probes
    // and the cache has just missed `BYPASS_CONSEC_MISSES` times in a
    // row, it latches `probe_only`: stored entries keep replaying but
    // no new ones are inserted, so a churn workload (uniform-random
    // pairs over a huge key space) stops paying the canonicalise-and-
    // copy cost of `store` on every query. The transition is one-way
    // for the cache's lifetime — `clear` drops entries, not the latch.
    probes: u64,
    hits: u64,
    consec_misses: u64,
    probe_only: bool,
    bypass_events: u64,
}

impl FamilyCache {
    pub fn new(capacity: usize) -> Self {
        FamilyCache {
            capacity,
            hot: HashMap::new(),
            cold: HashMap::new(),
            sweeps: 0,
            probes: 0,
            hits: 0,
            consec_misses: 0,
            probe_only: false,
            bypass_events: 0,
        }
    }

    /// Hot-generation capacity this cache was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently retained (both generations).
    pub fn len(&self) -> usize {
        self.hot.len() + self.cold.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.hot.is_empty() && self.cold.is_empty()
    }

    /// Generation sweeps performed so far.
    pub fn sweeps(&self) -> u64 {
        self.sweeps
    }

    /// Lifetime replay probes (capacity-0 caches never account).
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Lifetime replay hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Whether the adaptive bypass has latched: the cache still replays
    /// existing entries but no longer inserts new ones.
    pub fn probe_only(&self) -> bool {
        self.probe_only
    }

    /// Number of probe-only transitions over this cache's lifetime
    /// (0 or 1 per cache; summed across workers in merged metrics).
    pub fn bypass_events(&self) -> u64 {
        self.bypass_events
    }

    /// Drops all entries, keeping the capacity.
    pub fn clear(&mut self) {
        self.hot.clear();
        self.cold.clear();
    }

    fn make_room(&mut self) {
        if self.hot.len() >= self.capacity {
            self.cold = std::mem::take(&mut self.hot);
            self.sweeps += 1;
        }
    }

    fn get(&mut self, key: u128) -> Option<&FamilyEntry> {
        if self.capacity == 0 {
            return None;
        }
        if self.hot.contains_key(&key) {
            return self.hot.get(&key);
        }
        if let Some(e) = self.cold.remove(&key) {
            self.make_room();
            return Some(self.hot.entry(key).or_insert(e));
        }
        None
    }

    /// On a hit, writes the cached family translated by `mask` into
    /// `out` (which must be cleared) and returns its
    /// `(rotations, detours)` plan counts. Every call on an enabled
    /// cache counts as one probe for the adaptive bypass; a sustained
    /// miss streak at a near-zero hit rate latches [`Self::probe_only`].
    pub(crate) fn replay(
        &mut self,
        key: u128,
        mask: u128,
        out: &mut PathSet,
    ) -> Option<(u64, u64)> {
        if self.capacity == 0 {
            return None;
        }
        self.probes += 1;
        let replayed = match self.get(key) {
            Some(e) => {
                for w in e.offsets.windows(2) {
                    for &raw in &e.nodes[w[0] as usize..w[1] as usize] {
                        out.push_node(NodeId::from_raw(raw ^ mask));
                    }
                    out.finish_path();
                }
                Some((e.rotations, e.detours))
            }
            None => None,
        };
        if replayed.is_some() {
            self.hits += 1;
            self.consec_misses = 0;
        } else {
            self.consec_misses += 1;
            if !self.probe_only
                && self.probes >= BYPASS_MIN_PROBES
                && self.consec_misses >= BYPASS_CONSEC_MISSES
                && (self.hits as f64) < BYPASS_HIT_FLOOR * self.probes as f64
            {
                self.probe_only = true;
                self.bypass_events += 1;
            }
        }
        replayed
    }

    /// Stores the family in `set` (a fresh construction for some pair
    /// with translation mask `mask`) under `key`, canonicalised to
    /// `Xu = 0` by XOR-ing `mask` back out.
    pub(crate) fn store(
        &mut self,
        key: u128,
        mask: u128,
        set: &PathSet,
        rotations: u64,
        detours: u64,
    ) {
        if self.capacity == 0 || self.probe_only {
            return;
        }
        let mut nodes = Vec::with_capacity(set.total_nodes());
        let mut offsets = Vec::with_capacity(set.len() + 1);
        offsets.push(0u32);
        for path in set.iter() {
            nodes.extend(path.iter().map(|v| v.raw() ^ mask));
            offsets.push(nodes.len() as u32);
        }
        self.make_room();
        self.hot.insert(
            key,
            FamilyEntry {
                nodes: nodes.into_boxed_slice(),
                offsets: offsets.into_boxed_slice(),
                rotations,
                detours,
            },
        );
    }
}

impl Default for FamilyCache {
    fn default() -> Self {
        FamilyCache::new(DEFAULT_FAMILY_CACHE_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_separate_every_component() {
        let mut keys = std::collections::HashSet::new();
        for (m, dx, yu, yv, order) in [
            (3u32, 0b101u128, 1u32, 2u32, CrossingOrder::Gray),
            (3, 0b101, 1, 2, CrossingOrder::Sorted),
            (3, 0b101, 2, 1, CrossingOrder::Gray),
            (3, 0b100, 1, 2, CrossingOrder::Gray),
            (4, 0b101, 1, 2, CrossingOrder::Gray),
        ] {
            assert!(keys.insert(family_key(m, dx, yu, yv, order)));
        }
    }

    #[test]
    fn store_replay_round_trips_translation() {
        let mut cache = FamilyCache::new(8);
        let mut set = PathSet::new();
        for p in [[5u128, 7, 9], [5, 6, 9]] {
            for raw in p {
                set.push_node(NodeId::from_raw(raw));
            }
            set.finish_path();
        }
        cache.store(1, 4, &set, 2, 1);
        // Replaying with a different mask translates node-wise.
        let mut out = PathSet::new();
        let (nr, nd) = cache.replay(1, 8, &mut out).unwrap();
        assert_eq!((nr, nd), (2, 1));
        let expect: Vec<u128> = [5u128, 7, 9, 5, 6, 9].iter().map(|r| r ^ 4 ^ 8).collect();
        let got: Vec<u128> = out.iter().flatten().map(|v| v.raw()).collect();
        assert_eq!(got, expect);
        assert!(cache.replay(2, 0, &mut PathSet::new()).is_none());
    }

    #[test]
    fn capacity_zero_is_inert() {
        let mut cache = FamilyCache::new(0);
        let mut set = PathSet::new();
        set.push_node(NodeId::from_raw(3));
        set.finish_path();
        cache.store(1, 0, &set, 0, 1);
        assert!(cache.replay(1, 0, &mut PathSet::new()).is_none());
        assert!(cache.is_empty());
        // A disabled cache does no bypass accounting either.
        assert_eq!(cache.probes(), 0);
        assert!(!cache.probe_only());
    }

    fn one_path_set() -> PathSet {
        let mut set = PathSet::new();
        set.push_node(NodeId::from_raw(3));
        set.finish_path();
        set
    }

    #[test]
    fn bypass_latches_after_sustained_misses_and_stops_inserting() {
        let mut cache = FamilyCache::new(8);
        let set = one_path_set();
        // An entry stored before the latch keeps replaying after it.
        cache.store(u128::MAX, 0, &set, 1, 0);
        let mut out = PathSet::new();
        for key in 0..BYPASS_MIN_PROBES as u128 {
            assert!(cache.replay(key, 0, &mut out).is_none());
        }
        assert!(cache.probe_only(), "miss streak should latch probe-only");
        assert_eq!(cache.bypass_events(), 1);
        assert_eq!(cache.probes(), BYPASS_MIN_PROBES);
        // Latched: store is a no-op...
        let before = cache.len();
        cache.store(42, 0, &set, 0, 1);
        assert_eq!(cache.len(), before);
        assert!(cache.replay(42, 0, &mut out).is_none());
        // ...but pre-latch entries still hit, and the event count stays 1.
        assert!(cache.replay(u128::MAX, 0, &mut out).is_some());
        assert_eq!(cache.bypass_events(), 1);
    }

    #[test]
    fn bypass_never_latches_while_the_cache_is_useful() {
        let mut cache = FamilyCache::new(8);
        cache.store(7, 0, &one_path_set(), 1, 0);
        let mut out = PathSet::new();
        for _ in 0..4 * BYPASS_MIN_PROBES {
            assert!(cache.replay(7, 0, &mut out).is_some());
        }
        assert!(!cache.probe_only());
        assert_eq!(cache.bypass_events(), 0);
        assert_eq!(cache.hits(), cache.probes());
    }
}
