//! The general (cross-cube) case of the construction.
//!
//! Given `u = (Xu, Yu)` and `v = (Xv, Yv)` with `Xu ≠ Xv`, let
//! `D = {p : Xu[p] ≠ Xv[p]}`, `k = |D| ≥ 1`. The `m + 1` paths are built
//! from crossing plans of two shapes:
//!
//! * **rotations** — cyclic rotations of `D` ordered along the Gray cycle
//!   of `Q_m`. Rotation `r` visits intermediate cubes `Xu ⊕ (cyclic
//!   interval of D starting at r)`; distinct rotations give distinct
//!   intervals, hence disjoint intermediate cube sets.
//! * **detours** — for a position `b ∉ D`: cross `b`, cross all of `D`,
//!   cross `b` again. Every intermediate cube has bit `b` flipped, which
//!   separates detours from all rotations and from each other.
//!
//! Plan selection must satisfy two *degree constraints*: the source node
//! has only `m` internal neighbours, so exactly one plan must leave `u`
//! through its external edge — i.e. have first crossing `int(Yu)` — and
//! symmetrically exactly one plan must enter `v` through its external
//! edge (last crossing `int(Yv)`). If `int(Yu) ∈ D` the rotation starting
//! there is forced into the selection; otherwise the detour `b = int(Yu)`
//! is. Likewise on the target side.
//!
//! Inside the source cube, the remaining `m` plans start at distinct
//! coordinates; a disjoint *fan* from `Yu` to those coordinates (Menger's
//! fan lemma, computed exactly by max-flow on the ≤ 2^m-node son-cube)
//! provides internally disjoint stubs. Symmetrically in the target cube.
//! Since all other cube sets are disjoint, the full paths are internally
//! vertex-disjoint by construction.
//!
//! All intermediate state lives in the caller's [`PathBuilder`]; after a
//! warm-up query at a given `m`, a construction performs no allocation.

use super::plan::{assemble_into, CrossingPlan};
use super::{ConstructionCase, ConstructionTrace, CrossingOrder, PathBuilder};
use crate::error::HhcError;
use crate::node::NodeId;
use crate::pathset::PathSet;
use crate::topology::Hhc;
use hypercube::fan::fan_paths_cached;
use hypercube::gray::gray_rank;

/// Sentinel in the per-plan segment tables: the plan starts (resp. ends)
/// at the terminal's own coordinate, so no fan segment is needed.
const SELF: u32 = u32::MAX;

/// Appends the differing positions to `out` in plan order according to
/// `order`, anchored at `anchor` (Gray order starts at the first position
/// the Gray cycle visits at-or-after the anchor). Scratch-buffer
/// equivalent of `hypercube::gray::sort_along_gray_cycle`.
pub(super) fn order_positions_into(
    d: &[u32],
    m: u32,
    anchor: u32,
    order: CrossingOrder,
    keyed: &mut Vec<(u64, u32)>,
    out: &mut Vec<u32>,
) {
    match order {
        CrossingOrder::Gray => {
            let period = 1u64 << m;
            let anchor_rank = gray_rank(anchor as u64);
            keyed.clear();
            keyed.extend(d.iter().map(|&p| {
                let r = gray_rank(p as u64);
                // Cyclic distance from the anchor's rank, so the order
                // starts at the anchor's position on the cycle.
                ((r + period - anchor_rank) % period, p)
            }));
            keyed.sort_unstable();
            out.extend(keyed.iter().map(|&(_, p)| p));
        }
        CrossingOrder::Sorted => {
            // `d` is produced in ascending position order already.
            debug_assert!(d.windows(2).all(|w| w[0] < w[1]));
            out.extend_from_slice(d);
        }
    }
}

pub(super) fn cross_cube_into(
    hhc: &Hhc,
    u: NodeId,
    v: NodeId,
    order: CrossingOrder,
    out: &mut PathSet,
    sc: &mut PathBuilder,
    want_trace: bool,
) -> Result<Option<ConstructionTrace>, HhcError> {
    let m = hhc.m();
    let total = (m + 1) as usize;
    let cube = hhc.son_cube();
    let (yu, yv) = (hhc.node_field(u), hhc.node_field(v));
    let (xu, xv) = (hhc.cube_field(u), hhc.cube_field(v));
    let dx = xu ^ xv;
    debug_assert_ne!(dx, 0, "case B requires differing cube fields");

    sc.d_positions.clear();
    sc.d_positions
        .extend((0..hhc.positions()).filter(|&p| dx >> p & 1 == 1));
    let k = sc.d_positions.len();
    let in_d = |p: u32| dx >> p & 1 == 1;

    // The rotation base order (shared by all rotations so that their
    // intermediate cube sets are cyclic intervals of one fixed sequence).
    sc.gd.clear();
    order_positions_into(&sc.d_positions, m, yu, order, &mut sc.keyed, &mut sc.gd);

    // --- Plan selection -------------------------------------------------
    // Required detours: the side coordinates not coverable by a rotation.
    sc.det_sel.clear();
    if !in_d(yu) {
        sc.det_sel.push(yu);
    }
    if !in_d(yv) && !sc.det_sel.contains(&yv) {
        sc.det_sel.push(yv);
    }
    let nd = total.saturating_sub(k).max(sc.det_sel.len());
    let nr = total - nd;
    debug_assert!(nr <= k);

    // Required rotations: start at int(Yu) / end at int(Yv) when in D.
    sc.rot_sel.clear();
    if in_d(yu) {
        let i = sc.gd.iter().position(|&p| p == yu).expect("yu in D");
        sc.rot_sel.push(i);
    }
    if in_d(yv) {
        let i = sc.gd.iter().position(|&p| p == yv).expect("yv in D");
        let r = (i + 1) % k;
        if !sc.rot_sel.contains(&r) {
            sc.rot_sel.push(r);
        }
    }
    debug_assert!(
        sc.rot_sel.len() <= nr,
        "required rotations {} exceed budget {nr}",
        sc.rot_sel.len()
    );
    for r in 0..k {
        if sc.rot_sel.len() == nr {
            break;
        }
        if !sc.rot_sel.contains(&r) {
            sc.rot_sel.push(r);
        }
    }

    for b in 0..hhc.positions() {
        if sc.det_sel.len() == nd {
            break;
        }
        if !in_d(b) && !sc.det_sel.contains(&b) {
            sc.det_sel.push(b);
        }
    }
    debug_assert_eq!(
        sc.det_sel.len(),
        nd,
        "not enough clean positions (impossible)"
    );

    // --- Plans (flat arena: positions + offsets) -------------------------
    sc.plan_pos.clear();
    sc.plan_off.clear();
    sc.plan_off.push(0);
    for i in 0..sc.rot_sel.len() {
        let r = sc.rot_sel[i];
        sc.plan_pos.extend_from_slice(&sc.gd[r..]);
        sc.plan_pos.extend_from_slice(&sc.gd[..r]);
        sc.plan_off.push(sc.plan_pos.len() as u32);
    }
    for i in 0..sc.det_sel.len() {
        let b = sc.det_sel[i];
        // Each detour orders D anchored at its own entry coordinate; the
        // disjointness argument only needs bit b, not a shared order.
        sc.plan_pos.push(b);
        order_positions_into(
            &sc.d_positions,
            m,
            b,
            order,
            &mut sc.keyed,
            &mut sc.plan_pos,
        );
        sc.plan_pos.push(b);
        sc.plan_off.push(sc.plan_pos.len() as u32);
    }
    let plan = |i: usize| &sc.plan_pos[sc.plan_off[i] as usize..sc.plan_off[i + 1] as usize];
    debug_assert_eq!(sc.plan_off.len() - 1, total);
    debug_assert!(
        (0..total).all(|i| { plan(i).iter().fold(0u128, |acc, &p| acc ^ (1u128 << p)) == dx })
    );
    #[cfg(debug_assertions)]
    check_cube_disjointness(&sc.plan_pos, &sc.plan_off, xu, xv);

    // --- End segments via disjoint fans ----------------------------------
    // For each plan, record which fan path (if any) supplies its segment
    // inside the terminal cubes, in the same pass that collects the fan
    // targets (fan paths come back in target order).
    sc.src_targets.clear();
    sc.tgt_targets.clear();
    sc.seg_src.clear();
    sc.seg_tgt.clear();
    for i in 0..total {
        let p = plan(i);
        let (first, last) = (p[0], p[p.len() - 1]);
        if first == yu {
            sc.seg_src.push(SELF);
        } else {
            sc.seg_src.push(sc.src_targets.len() as u32);
            sc.src_targets.push(first as u128);
        }
        if last == yv {
            sc.seg_tgt.push(SELF);
        } else {
            sc.seg_tgt.push(sc.tgt_targets.len() as u32);
            sc.tgt_targets.push(last as u128);
        }
    }
    debug_assert_eq!(sc.seg_src.iter().filter(|&&s| s == SELF).count(), 1);
    debug_assert_eq!(sc.seg_tgt.iter().filter(|&&s| s == SELF).count(), 1);
    debug_assert_eq!(sc.src_targets.len(), m as usize);
    debug_assert_eq!(sc.tgt_targets.len(), m as usize);

    // Cached + canonicalised: both terminal engines share one canonical
    // fan cache (the key is translation-invariant, so a source-side solve
    // can serve a target-side query and vice versa).
    fan_paths_cached(
        &cube,
        yu as u128,
        &sc.src_targets,
        &mut sc.src_fan,
        &mut sc.fan_cache,
    )
    .expect("fan lemma: m distinct targets in Q_m");
    fan_paths_cached(
        &cube,
        yv as u128,
        &sc.tgt_targets,
        &mut sc.tgt_fan,
        &mut sc.fan_cache,
    )
    .expect("fan lemma: m distinct targets in Q_m");

    // --- Assembly ---------------------------------------------------------
    const EMPTY: &[u128] = &[];
    for i in 0..total {
        // Source fan runs Yu → first; drop the shared Yu.
        let src_tail = match sc.seg_src[i] {
            SELF => EMPTY.iter(),
            j => sc.src_fan.path(j as usize)[1..].iter(),
        }
        .map(|&y| y as u32);
        // Target fan runs Yv → last; the path needs last → Yv.
        let tgt_tail = match sc.seg_tgt[i] {
            SELF => EMPTY.iter(),
            j => {
                let fp = sc.tgt_fan.path(j as usize);
                fp[..fp.len() - 1].iter()
            }
        }
        .rev()
        .map(|&y| y as u32);
        assemble_into(hhc, u, src_tail, plan(i), tgt_tail, out)?;
    }

    if !want_trace {
        return Ok(None);
    }
    Ok(Some(ConstructionTrace {
        case: ConstructionCase::CrossCube,
        rotations: nr,
        detours: nd,
        plans: (0..total)
            .map(|i| {
                Some(CrossingPlan {
                    positions: plan(i).to_vec(),
                })
            })
            .collect(),
        source_fan_targets: sc.src_targets.iter().map(|&t| t as u32).collect(),
        target_fan_targets: sc.tgt_targets.iter().map(|&t| t as u32).collect(),
    }))
}

/// Debug check: intermediate cube sets are pairwise disjoint and avoid
/// both terminal cubes.
#[cfg(debug_assertions)]
fn check_cube_disjointness(plan_pos: &[u32], plan_off: &[u32], xu: u128, xv: u128) {
    let mut seen = std::collections::HashSet::new();
    for i in 0..plan_off.len() - 1 {
        let positions = &plan_pos[plan_off[i] as usize..plan_off[i + 1] as usize];
        let mut x = xu;
        for &p in &positions[..positions.len() - 1] {
            x ^= 1u128 << p;
            assert_ne!(x, xu, "plan {i} revisits the source cube");
            assert_ne!(x, xv, "plan {i} enters the target cube early");
            assert!(seen.insert(x), "plans share intermediate cube {x:#x}");
        }
    }
}
