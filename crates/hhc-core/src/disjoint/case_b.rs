//! The general (cross-cube) case of the construction.
//!
//! Given `u = (Xu, Yu)` and `v = (Xv, Yv)` with `Xu ≠ Xv`, let
//! `D = {p : Xu[p] ≠ Xv[p]}`, `k = |D| ≥ 1`. The `m + 1` paths are built
//! from crossing plans of two shapes:
//!
//! * **rotations** — cyclic rotations of `D` ordered along the Gray cycle
//!   of `Q_m`. Rotation `r` visits intermediate cubes `Xu ⊕ (cyclic
//!   interval of D starting at r)`; distinct rotations give distinct
//!   intervals, hence disjoint intermediate cube sets.
//! * **detours** — for a position `b ∉ D`: cross `b`, cross all of `D`,
//!   cross `b` again. Every intermediate cube has bit `b` flipped, which
//!   separates detours from all rotations and from each other.
//!
//! Plan selection must satisfy two *degree constraints*: the source node
//! has only `m` internal neighbours, so exactly one plan must leave `u`
//! through its external edge — i.e. have first crossing `int(Yu)` — and
//! symmetrically exactly one plan must enter `v` through its external
//! edge (last crossing `int(Yv)`). If `int(Yu) ∈ D` the rotation starting
//! there is forced into the selection; otherwise the detour `b = int(Yu)`
//! is. Likewise on the target side.
//!
//! Inside the source cube, the remaining `m` plans start at distinct
//! coordinates; a disjoint *fan* from `Yu` to those coordinates (Menger's
//! fan lemma, computed exactly by max-flow on the ≤ 2^m-node son-cube)
//! provides internally disjoint stubs. Symmetrically in the target cube.
//! Since all other cube sets are disjoint, the full paths are internally
//! vertex-disjoint by construction.

use super::plan::{assemble, CrossingPlan};
use super::{ConstructionCase, ConstructionTrace, CrossingOrder};
use crate::error::HhcError;
use crate::node::NodeId;
use crate::topology::Hhc;
use crate::Path;
use hypercube::fan::fan_paths;
use hypercube::gray::sort_along_gray_cycle;
use std::collections::HashMap;

/// Orders the differing positions for a plan according to `order`,
/// anchored at `anchor` (Gray order starts at the first position the Gray
/// cycle visits at-or-after the anchor).
fn order_positions(d: &[u32], m: u32, anchor: u32, order: CrossingOrder) -> Vec<u32> {
    match order {
        CrossingOrder::Gray => {
            let d64: Vec<u64> = d.iter().map(|&p| p as u64).collect();
            sort_along_gray_cycle(&d64, m, anchor as u64)
                .into_iter()
                .map(|p| p as u32)
                .collect()
        }
        CrossingOrder::Sorted => {
            let mut s = d.to_vec();
            s.sort_unstable();
            s
        }
    }
}

pub(super) fn disjoint_paths_cross_cube(
    hhc: &Hhc,
    u: NodeId,
    v: NodeId,
    order: CrossingOrder,
) -> Result<(Vec<Path>, ConstructionTrace), HhcError> {
    let m = hhc.m();
    let total = (m + 1) as usize;
    let cube = hhc.son_cube();
    let (yu, yv) = (hhc.node_field(u), hhc.node_field(v));
    let (xu, xv) = (hhc.cube_field(u), hhc.cube_field(v));
    let dx = xu ^ xv;
    debug_assert_ne!(dx, 0, "case B requires differing cube fields");

    let d_positions: Vec<u32> = (0..hhc.positions()).filter(|&p| dx >> p & 1 == 1).collect();
    let k = d_positions.len();
    let in_d = |p: u32| dx >> p & 1 == 1;

    // The rotation base order (shared by all rotations so that their
    // intermediate cube sets are cyclic intervals of one fixed sequence).
    let gd = order_positions(&d_positions, m, yu, order);

    // --- Plan selection -------------------------------------------------
    // Required detours: the side coordinates not coverable by a rotation.
    let mut det_req: Vec<u32> = Vec::new();
    if !in_d(yu) {
        det_req.push(yu);
    }
    if !in_d(yv) && !det_req.contains(&yv) {
        det_req.push(yv);
    }
    let nd = total.saturating_sub(k).max(det_req.len());
    let nr = total - nd;
    debug_assert!(nr <= k);

    // Required rotations: start at int(Yu) / end at int(Yv) when in D.
    let mut rot_req: Vec<usize> = Vec::new();
    if in_d(yu) {
        let i = gd.iter().position(|&p| p == yu).expect("yu in D");
        rot_req.push(i);
    }
    if in_d(yv) {
        let i = gd.iter().position(|&p| p == yv).expect("yv in D");
        let r = (i + 1) % k;
        if !rot_req.contains(&r) {
            rot_req.push(r);
        }
    }
    debug_assert!(
        rot_req.len() <= nr,
        "required rotations {} exceed budget {nr}",
        rot_req.len()
    );
    let mut rot_sel = rot_req;
    for r in 0..k {
        if rot_sel.len() == nr {
            break;
        }
        if !rot_sel.contains(&r) {
            rot_sel.push(r);
        }
    }

    let mut det_sel = det_req;
    for b in 0..hhc.positions() {
        if det_sel.len() == nd {
            break;
        }
        if !in_d(b) && !det_sel.contains(&b) {
            det_sel.push(b);
        }
    }
    debug_assert_eq!(det_sel.len(), nd, "not enough clean positions (impossible)");

    // --- Plans -----------------------------------------------------------
    let mut plans: Vec<CrossingPlan> = Vec::with_capacity(total);
    for &r in &rot_sel {
        let mut positions = gd[r..].to_vec();
        positions.extend_from_slice(&gd[..r]);
        plans.push(CrossingPlan { positions });
    }
    for &b in &det_sel {
        // Each detour orders D anchored at its own entry coordinate; the
        // disjointness argument only needs bit b, not a shared order.
        let mut positions = vec![b];
        positions.extend(order_positions(&d_positions, m, b, order));
        positions.push(b);
        plans.push(CrossingPlan { positions });
    }
    debug_assert_eq!(plans.len(), total);
    debug_assert!(plans.iter().all(|p| p.total_mask() == dx));
    #[cfg(debug_assertions)]
    check_cube_disjointness(&plans, xu, xv);

    // --- End segments via disjoint fans ----------------------------------
    let firsts: Vec<u32> = plans.iter().map(|p| p.first()).collect();
    let lasts: Vec<u32> = plans.iter().map(|p| p.last()).collect();
    debug_assert_eq!(firsts.iter().filter(|&&f| f == yu).count(), 1);
    debug_assert_eq!(lasts.iter().filter(|&&l| l == yv).count(), 1);

    let src_targets: Vec<u128> = firsts
        .iter()
        .copied()
        .filter(|&f| f != yu)
        .map(|f| f as u128)
        .collect();
    let tgt_targets: Vec<u128> = lasts
        .iter()
        .copied()
        .filter(|&l| l != yv)
        .map(|l| l as u128)
        .collect();
    debug_assert_eq!(src_targets.len(), m as usize);
    debug_assert_eq!(tgt_targets.len(), m as usize);

    let src_fan = fan_paths(&cube, yu as u128, &src_targets)
        .expect("fan lemma: m distinct targets in Q_m");
    let tgt_fan = fan_paths(&cube, yv as u128, &tgt_targets)
        .expect("fan lemma: m distinct targets in Q_m");

    let mut src_map: HashMap<u32, Vec<u32>> = HashMap::with_capacity(total);
    src_map.insert(yu, vec![yu]);
    for (t, p) in src_targets.iter().zip(&src_fan) {
        src_map.insert(*t as u32, p.iter().map(|&y| y as u32).collect());
    }
    let mut tgt_map: HashMap<u32, Vec<u32>> = HashMap::with_capacity(total);
    tgt_map.insert(yv, vec![yv]);
    for (t, p) in tgt_targets.iter().zip(&tgt_fan) {
        // Fan runs Yv → l; the path needs l → Yv.
        let mut rev: Vec<u32> = p.iter().map(|&y| y as u32).collect();
        rev.reverse();
        tgt_map.insert(*t as u32, rev);
    }

    // --- Assembly ---------------------------------------------------------
    let paths: Result<Vec<Path>, HhcError> = plans
        .iter()
        .map(|plan| {
            assemble(
                hhc,
                u,
                &src_map[&plan.first()],
                plan,
                &tgt_map[&plan.last()],
            )
        })
        .collect();
    let trace = ConstructionTrace {
        case: ConstructionCase::CrossCube,
        rotations: nr,
        detours: nd,
        plans: plans.into_iter().map(Some).collect(),
        source_fan_targets: src_targets.iter().map(|&t| t as u32).collect(),
        target_fan_targets: tgt_targets.iter().map(|&t| t as u32).collect(),
    };
    Ok((paths?, trace))
}

/// Debug check: intermediate cube sets are pairwise disjoint and avoid
/// both terminal cubes.
#[cfg(debug_assertions)]
fn check_cube_disjointness(plans: &[CrossingPlan], xu: u128, xv: u128) {
    let mut seen = std::collections::HashSet::new();
    for (i, plan) in plans.iter().enumerate() {
        for c in plan.intermediate_cubes(xu) {
            assert_ne!(c, xu, "plan {i} revisits the source cube");
            assert_ne!(c, xv, "plan {i} enters the target cube early");
            assert!(seen.insert(c), "plans share intermediate cube {c:#x}");
        }
    }
}
