//! Crossing plans and path assembly.
//!
//! A *crossing plan* is the ordered list of cube-field positions a path
//! crosses. Realising a plan means: walk inside the current son-cube to
//! the next crossing coordinate, take the external edge there, repeat, and
//! finally walk to the destination's son-cube coordinate.
//!
//! Assembly is split into three pieces because the construction controls
//! the end segments explicitly (they come from disjoint *fans* inside the
//! source and target cubes) while the middle segments are plain e-cube
//! walks:
//!
//! ```text
//!  u ──src_seg──▸ (Xu, p₁) ──cross──▸ … mids: walk+cross … ──▸ (Xv, p_t) ──tgt_seg──▸ v
//! ```

use crate::error::HhcError;
use crate::node::NodeId;
use crate::pathset::PathSet;
use crate::topology::Hhc;
use crate::Path;

/// A crossing plan: the exact sequence of cube-field positions crossed,
/// in order. XOR of `e_p` over the plan must equal `Xu ⊕ Xv`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossingPlan {
    /// Crossing positions, each `< 2^m`.
    pub positions: Vec<u32>,
}

impl CrossingPlan {
    /// First crossing position (the coordinate at which the path leaves
    /// the source cube).
    pub fn first(&self) -> u32 {
        *self.positions.first().expect("plans are non-empty")
    }

    /// Last crossing position (the coordinate at which the path enters
    /// the target cube).
    pub fn last(&self) -> u32 {
        *self.positions.last().expect("plans are non-empty")
    }

    /// The intermediate cube fields this plan's path visits, given the
    /// source cube field: the proper prefix XORs (excluding the source
    /// cube itself and the final cube).
    pub fn intermediate_cubes(&self, xu: u128) -> Vec<u128> {
        let mut out = Vec::with_capacity(self.positions.len().saturating_sub(1));
        let mut x = xu;
        for &p in &self.positions[..self.positions.len() - 1] {
            x ^= 1u128 << p;
            out.push(x);
        }
        out
    }

    /// XOR of all crossed positions as a cube-field mask.
    pub fn total_mask(&self) -> u128 {
        self.positions
            .iter()
            .fold(0u128, |acc, &p| acc ^ (1u128 << p))
    }
}

/// Assembles a full path from its three pieces.
///
/// * `src_seg` — son-cube coordinates from `Yu` to `plan.first()`,
///   inclusive on both ends (`[Yu]` alone when the path leaves `u`
///   directly via its external edge);
/// * `plan` — the crossing plan; crossings after `src_seg` and between the
///   e-cube walks to each subsequent position;
/// * `tgt_seg` — coordinates from `plan.last()` to `Yv`, inclusive.
///
/// Panics (debug) if the segments do not line up; the caller — the
/// construction — guarantees they do, and `verify` re-checks the output.
pub fn assemble(
    hhc: &Hhc,
    u: NodeId,
    src_seg: &[u32],
    plan: &CrossingPlan,
    tgt_seg: &[u32],
) -> Result<Path, HhcError> {
    debug_assert_eq!(src_seg.first(), Some(&hhc.node_field(u)));
    debug_assert_eq!(src_seg.last(), Some(&plan.first()));
    debug_assert_eq!(tgt_seg.first(), Some(&plan.last()));
    let mut out = PathSet::new();
    assemble_into(
        hhc,
        u,
        src_seg[1..].iter().copied(),
        &plan.positions,
        tgt_seg[1..].iter().copied(),
        &mut out,
    )?;
    Ok(out.path(0).to_vec())
}

/// [`assemble`] writing into a caller-owned [`PathSet`]: appends the
/// assembled path as one new sealed path and allocates nothing.
///
/// The segments are passed without their redundant first coordinate:
/// `src_tail` is the source walk *after* `Yu` (ending at `positions[0]`,
/// empty when the path leaves `u` directly), `tgt_tail` the target walk
/// *after* the entry coordinate (ending at `Yv`). The middle e-cube walks
/// resolve dimensions in ascending order, matching
/// `hypercube::routing::shortest_path`.
pub(super) fn assemble_into(
    hhc: &Hhc,
    u: NodeId,
    src_tail: impl IntoIterator<Item = u32>,
    positions: &[u32],
    tgt_tail: impl IntoIterator<Item = u32>,
    out: &mut PathSet,
) -> Result<(), HhcError> {
    let mut cur = u;
    out.push_node(cur);

    // Source segment inside the source cube (fan-provided, may be any
    // simple coordinate walk).
    for y in src_tail {
        cur = hhc.node(hhc.cube_field(cur), y)?;
        out.push_node(cur);
    }
    // First crossing.
    cur = hhc.external_neighbor(cur);
    out.push_node(cur);

    // Middle: e-cube walk to each next position, then cross.
    for &p in &positions[1..] {
        loop {
            let y = hhc.node_field(cur);
            if y == p {
                break;
            }
            let d = (y ^ p).trailing_zeros();
            cur = hhc.node(hhc.cube_field(cur), y ^ (1 << d))?;
            out.push_node(cur);
        }
        cur = hhc.external_neighbor(cur);
        out.push_node(cur);
    }

    // Target segment inside the target cube (reversed fan path).
    for y in tgt_tail {
        cur = hhc.node(hhc.cube_field(cur), y)?;
        out.push_node(cur);
    }
    out.finish_path();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intermediate_cubes_are_prefix_xors() {
        let plan = CrossingPlan {
            positions: vec![0, 2, 3],
        };
        let xu = 0b0000u128;
        assert_eq!(plan.intermediate_cubes(xu), vec![0b0001, 0b0101]);
        assert_eq!(plan.total_mask(), 0b1101);
        assert_eq!(plan.first(), 0);
        assert_eq!(plan.last(), 3);
    }

    #[test]
    fn assemble_direct_external_hop() {
        // Plan [Yu] with trivial segments: u → external neighbour.
        let h = Hhc::new(2).unwrap();
        let u = h.node(0b0000, 0b10).unwrap();
        let plan = CrossingPlan {
            positions: vec![0b10],
        };
        let p = assemble(&h, u, &[0b10], &plan, &[0b10]).unwrap();
        assert_eq!(p, vec![u, h.external_neighbor(u)]);
    }

    #[test]
    fn assemble_multi_crossing_path() {
        let h = Hhc::new(2).unwrap();
        let u = h.node(0b0000, 0b00).unwrap();
        // Cross at 0, then at 3: ends in cube 0b1001 at coordinate 3.
        let plan = CrossingPlan {
            positions: vec![0, 3],
        };
        let p = assemble(&h, u, &[0], &plan, &[3, 2]).unwrap();
        // Validate every hop is an edge and endpoints are right.
        assert_eq!(*p.first().unwrap(), u);
        let last = *p.last().unwrap();
        assert_eq!(h.cube_field(last), 0b1001);
        assert_eq!(h.node_field(last), 2);
        for w in p.windows(2) {
            assert!(h.is_edge(w[0], w[1]));
        }
    }

    #[test]
    fn assemble_uses_fan_segment_verbatim() {
        let h = Hhc::new(3).unwrap();
        let u = h.node(0, 0b000).unwrap();
        // Custom (non-e-cube) source walk 000 → 100 → 101.
        let plan = CrossingPlan {
            positions: vec![0b101],
        };
        let p = assemble(&h, u, &[0b000, 0b100, 0b101], &plan, &[0b101]).unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(h.node_field(p[1]), 0b100);
        assert_eq!(h.node_field(p[2]), 0b101);
        assert_eq!(h.cube_field(p[3]), 1 << 0b101);
    }
}
