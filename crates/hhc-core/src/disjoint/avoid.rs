//! Fault-avoiding construction: disjoint-path families that route
//! *around* known-faulty nodes at build time.
//!
//! The plain construction is fault-blind; selection-time filtering (drop
//! blocked paths from a fault-blind family) collapses once the fault
//! count approaches `m`, because all `m + 1` paths of one family can be
//! hit. This module does better by exploiting slack the plain
//! construction never uses: in case B the candidate pool has `2^m`
//! crossing plans (`k` rotations plus `2^m - k` detours) with pairwise
//! disjoint intermediate cube sets, pairwise distinct entry coordinates
//! and pairwise distinct exit coordinates — *any* subset of them yields
//! an internally disjoint family. The plain construction picks `m + 1`
//! of them blind; with `f ≤ m - 1` faults there is almost always a
//! fault-free selection of the same size, and this module finds it.
//!
//! ## Algorithm
//!
//! 1. Build the plain family (all symmetry caches active — the plain
//!    path is byte-identical with caches on or off, and the fault check
//!    below is cache-independent, so cache-on ≡ cache-off holds for the
//!    avoiding entry points trivially).
//! 2. If no path touches a fault, return it unchanged (`rerouted =
//!    false`): the fault-free hot path costs one `is_faulty` probe per
//!    family node, nothing else.
//! 3. Otherwise (case B) rebuild from the full candidate pool: select
//!    viable plans in priority order (the two degree-forced candidates
//!    first), pre-check each plan's middle trajectory and terminal stubs
//!    against the oracle, and serve the terminal segments with
//!    *fault-avoiding* fans ([`hypercube::fan::fan_paths_avoiding`],
//!    faulty son-cube coordinates excluded from the flow network). Plans
//!    whose fan target goes unserved are retired permanently and the
//!    selection re-runs — drops are monotone, so the loop terminates in
//!    at most `2^m` rounds.
//! 4. Degradation is graceful, never a panic: if the rebuild yields
//!    fewer paths than simply dropping the blocked ones from the plain
//!    family (case A always, case B when faults overwhelm the pool), the
//!    surviving plain paths are returned instead. With `f ≥ m + 1`
//!    faults the result may legitimately be empty.
//!
//! The rebuild never touches the `FanCache`/`FamilyCache` — cached
//! entries are keyed on geometry only and would be unsound to replay
//! against an arbitrary fault set; bypassing them keeps cache-on ≡
//! cache-off exact.

use super::case_b::order_positions_into;
use super::plan::assemble_into;
use super::{CrossingOrder, PathBuilder};
use crate::error::HhcError;
use crate::fault::FaultOracle;
use crate::node::NodeId;
use crate::pathset::PathSet;
use crate::topology::Hhc;
use hypercube::fan::fan_paths_avoiding;

/// What a fault-avoiding construction did; returned alongside the family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AvoidOutcome {
    /// Paths in the returned family. `m + 1` when the faults left a full
    /// family reachable; possibly fewer (down to 0) as faults approach
    /// and exceed the connectivity.
    pub paths: usize,
    /// Whether the plain family was blocked and construction deviated
    /// from it (rebuild or survivor fallback). `false` means the result
    /// is byte-identical to [`super::disjoint_paths_into`].
    pub rerouted: bool,
}

/// Candidate states for the rebuild loop. `DEAD` is permanent — that
/// monotonicity is the termination argument.
const AVAIL: u8 = 0;
const VIABLE: u8 = 1;
const DEAD: u8 = 2;

/// Sentinel in the per-plan segment tables: no fan segment needed
/// (mirrors `case_b::SELF`).
const SELF: u32 = u32::MAX;

/// The fault-avoiding construction core. See the module docs for the
/// algorithm; the entry points in [`super`] are thin wrappers.
pub(super) fn avoid_into(
    hhc: &Hhc,
    u: NodeId,
    v: NodeId,
    order: CrossingOrder,
    faults: &dyn FaultOracle,
    out: &mut PathSet,
    sc: &mut PathBuilder,
) -> Result<AvoidOutcome, HhcError> {
    hhc.check(u)?;
    hhc.check(v)?;
    if u == v {
        return Err(HhcError::EqualNodes);
    }
    if faults.is_faulty(u) {
        return Err(HhcError::FaultyEndpoint(u));
    }
    if faults.is_faulty(v) {
        return Err(HhcError::FaultyEndpoint(v));
    }

    let l2_hits_before = sc.metrics.l2_hits;
    super::construct_into(hhc, u, v, order, out, sc, false)?;
    if faults.fault_count() == 0 {
        return Ok(AvoidOutcome {
            paths: out.len(),
            rerouted: false,
        });
    }

    // Which plain paths a fault blocks (endpoints are known healthy, so
    // only interior nodes need probing).
    sc.avoid_blocked.clear();
    let mut any_blocked = false;
    for p in out.iter() {
        let blocked = p[1..p.len() - 1].iter().any(|&w| faults.is_faulty(w));
        sc.avoid_blocked.push(blocked);
        any_blocked |= blocked;
    }
    if !any_blocked {
        return Ok(AvoidOutcome {
            paths: out.len(),
            rerouted: false,
        });
    }
    sc.metrics.fault_reroutes += 1;
    // The lazy-invalidation event of the tiered cache: a family replayed
    // from the shared L2 turned out to intersect the live fault set and
    // is being repaired (the entry itself stays — it is a fault-blind
    // fact, blocked only for this translation under these faults).
    if sc.metrics.l2_hits > l2_hits_before {
        sc.metrics.l2_invalidations += 1;
    }

    // Survivor fallback: the unblocked plain paths are themselves a
    // valid (internally disjoint, fault-free) family.
    sc.avoid_tmp.clear();
    for (i, p) in out.iter().enumerate() {
        if !sc.avoid_blocked[i] {
            sc.avoid_tmp.push_path(p);
        }
    }

    let same = hhc.cube_field(u) == hhc.cube_field(v);
    if !same {
        rebuild_cross_cube(hhc, u, v, order, faults, out, sc)?;
    }
    // Case A has no spare-plan pool to rebuild from (the m in-cube paths
    // are the Saad–Schultz family; the loop plan is unique), so it falls
    // back to the survivors; case B does too when the rebuild came up
    // shorter than just dropping the blocked paths.
    if same || out.len() < sc.avoid_tmp.len() {
        std::mem::swap(out, &mut sc.avoid_tmp);
    }
    Ok(AvoidOutcome {
        paths: out.len(),
        rerouted: true,
    })
}

/// Case-B rebuild over the full `2^m`-candidate plan pool. Writes the
/// rebuilt family into `out` (cleared first); an empty `out` means no
/// viable selection survived.
fn rebuild_cross_cube(
    hhc: &Hhc,
    u: NodeId,
    v: NodeId,
    order: CrossingOrder,
    faults: &dyn FaultOracle,
    out: &mut PathSet,
    sc: &mut PathBuilder,
) -> Result<(), HhcError> {
    let m = hhc.m();
    let cube = hhc.son_cube();
    let (yu, yv) = (hhc.node_field(u), hhc.node_field(v));
    let (xu, xv) = (hhc.cube_field(u), hhc.cube_field(v));
    let dx = xu ^ xv;
    let num = hhc.positions() as usize; // 2^m candidates in the pool
    let in_d = |p: u32| dx >> p & 1 == 1;

    // D and the shared rotation base order, recomputed here: the plain
    // construction may have replayed from the family cache, leaving the
    // selection scratch stale.
    sc.d_positions.clear();
    sc.d_positions
        .extend((0..hhc.positions()).filter(|&p| dx >> p & 1 == 1));
    let k = sc.d_positions.len();
    sc.gd.clear();
    order_positions_into(&sc.d_positions, m, yu, order, &mut sc.keyed, &mut sc.gd);

    // Full candidate arena: rotations r = 0..k (in base-order rotation
    // index), then detours for every b ∉ D ascending. Any subset has
    // pairwise disjoint intermediate cube sets, distinct firsts and
    // distinct lasts (the case_b argument applies to the whole pool, not
    // just the m + 1 plans the plain construction picks).
    sc.avoid_cand_pos.clear();
    sc.avoid_cand_off.clear();
    sc.avoid_cand_off.push(0);
    for r in 0..k {
        sc.avoid_cand_pos.extend_from_slice(&sc.gd[r..]);
        sc.avoid_cand_pos.extend_from_slice(&sc.gd[..r]);
        sc.avoid_cand_off.push(sc.avoid_cand_pos.len() as u32);
    }
    for b in 0..hhc.positions() {
        if !in_d(b) {
            sc.avoid_cand_pos.push(b);
            order_positions_into(
                &sc.d_positions,
                m,
                b,
                order,
                &mut sc.keyed,
                &mut sc.avoid_cand_pos,
            );
            sc.avoid_cand_pos.push(b);
            sc.avoid_cand_off.push(sc.avoid_cand_pos.len() as u32);
        }
    }
    debug_assert_eq!(sc.avoid_cand_off.len() - 1, num);

    // The two degree-forced candidates: exactly one plan in the pool
    // starts at int(Yu) (it must be selected whenever m + 1 plans are —
    // the source has only m internal neighbours) and exactly one ends at
    // int(Yv).
    let iu = if in_d(yu) {
        sc.gd.iter().position(|&p| p == yu).expect("yu in D")
    } else {
        k + (0..yu).filter(|&b| !in_d(b)).count()
    };
    let iv = if in_d(yv) {
        (sc.gd.iter().position(|&p| p == yv).expect("yv in D") + 1) % k
    } else {
        k + (0..yv).filter(|&b| !in_d(b)).count()
    };
    debug_assert_eq!(sc.avoid_cand_pos[sc.avoid_cand_off[iu] as usize], yu);
    debug_assert_eq!(
        sc.avoid_cand_pos[sc.avoid_cand_off[iv + 1] as usize - 1],
        yv
    );

    // Selection priority: forced candidates first (they are the only
    // ones that can relieve a fan of one target), then pool order.
    sc.avoid_priority.clear();
    sc.avoid_priority.push(iu as u32);
    if iv != iu {
        sc.avoid_priority.push(iv as u32);
    }
    for c in 0..num {
        if c != iu && c != iv {
            sc.avoid_priority.push(c as u32);
        }
    }

    // Faulty son-cube coordinates in the two terminal cubes, as fan
    // forbidden masks (2·2^m oracle probes, done once).
    let mut forb_src = 0u64;
    let mut forb_tgt = 0u64;
    for y in 0..(1u32 << m) {
        if faults.is_faulty(hhc.node(xu, y)?) {
            forb_src |= 1 << y;
        }
        if faults.is_faulty(hhc.node(xv, y)?) {
            forb_tgt |= 1 << y;
        }
    }

    sc.avoid_state.clear();
    sc.avoid_state.resize(num, AVAIL);

    // Each non-terminal round retires at least one candidate for good,
    // so `num` rounds bound the loop; one more for the final assembly.
    for _round in 0..num + 1 {
        // --- Selection (top-up to capacity in priority order) ---------
        // A plan not entering at Yu consumes one of the m source-fan
        // targets, symmetrically on the target side — so the family can
        // only reach m + 1 plans while both forced candidates are alive.
        // Recomputed per step because the forced candidates (always
        // visited first) may be found blocked during this very pass.
        sc.avoid_sel.clear();
        for i in 0..sc.avoid_priority.len() {
            let cap = if sc.avoid_state[iu] != DEAD && sc.avoid_state[iv] != DEAD {
                (m + 1) as usize
            } else {
                m as usize
            };
            if sc.avoid_sel.len() >= cap {
                break;
            }
            let c = sc.avoid_priority[i] as usize;
            match sc.avoid_state[c] {
                DEAD => continue,
                VIABLE => sc.avoid_sel.push(c as u32),
                _ => {
                    // First consideration: check the plan's fixed
                    // trajectory (terminal stubs + middle walk) against
                    // the oracle before letting it consume a slot.
                    let p = &sc.avoid_cand_pos
                        [sc.avoid_cand_off[c] as usize..sc.avoid_cand_off[c + 1] as usize];
                    let (first, last) = (p[0], p[p.len() - 1]);
                    let stub_blocked = (first != yu && forb_src >> first & 1 == 1)
                        || (last != yv && forb_tgt >> last & 1 == 1);
                    if stub_blocked || middle_blocked(hhc, p, xu, xv, faults)? {
                        sc.avoid_state[c] = DEAD;
                        sc.metrics.fault_avoided_plans += 1;
                    } else {
                        sc.avoid_state[c] = VIABLE;
                        sc.avoid_sel.push(c as u32);
                    }
                }
            }
        }
        if sc.avoid_sel.is_empty() {
            out.clear();
            return Ok(());
        }
        // Pool order for the output family, independent of the order
        // selection happened to visit candidates in.
        sc.avoid_sel.sort_unstable();

        // --- Fan targets and per-plan segment mapping -----------------
        sc.src_targets.clear();
        sc.tgt_targets.clear();
        sc.seg_src.clear();
        sc.seg_tgt.clear();
        for &c in &sc.avoid_sel {
            let c = c as usize;
            let p = &sc.avoid_cand_pos
                [sc.avoid_cand_off[c] as usize..sc.avoid_cand_off[c + 1] as usize];
            let (first, last) = (p[0], p[p.len() - 1]);
            if first == yu {
                sc.seg_src.push(SELF);
            } else {
                sc.seg_src.push(sc.src_targets.len() as u32);
                sc.src_targets.push(first as u128);
            }
            if last == yv {
                sc.seg_tgt.push(SELF);
            } else {
                sc.seg_tgt.push(sc.tgt_targets.len() as u32);
                sc.tgt_targets.push(last as u128);
            }
        }
        debug_assert!(sc.src_targets.len() <= m as usize);
        debug_assert!(sc.tgt_targets.len() <= m as usize);

        // --- Fault-avoiding fans (uncached by design) -----------------
        let served_src = fan_paths_avoiding(
            &cube,
            yu as u128,
            &sc.src_targets,
            forb_src,
            &mut sc.src_fan,
        )
        .expect("avoiding fan: distinct non-source targets in Q_m");
        let served_tgt = fan_paths_avoiding(
            &cube,
            yv as u128,
            &sc.tgt_targets,
            forb_tgt,
            &mut sc.tgt_fan,
        )
        .expect("avoiding fan: distinct non-source targets in Q_m");

        if served_src < sc.src_targets.len() || served_tgt < sc.tgt_targets.len() {
            // Retire every plan whose terminal segment the fans could
            // not route around the faults, and re-select.
            for (j, &c) in sc.avoid_sel.iter().enumerate() {
                let src_unserved = match sc.seg_src[j] {
                    SELF => false,
                    t => !sc.src_fan.target_served(t as usize),
                };
                let tgt_unserved = match sc.seg_tgt[j] {
                    SELF => false,
                    t => !sc.tgt_fan.target_served(t as usize),
                };
                if src_unserved || tgt_unserved {
                    sc.avoid_state[c as usize] = DEAD;
                    sc.metrics.fault_avoided_plans += 1;
                }
            }
            continue;
        }

        // --- Assembly (identical to case_b's gluing) ------------------
        out.clear();
        const EMPTY: &[u128] = &[];
        for (j, &c) in sc.avoid_sel.iter().enumerate() {
            let c = c as usize;
            let p = &sc.avoid_cand_pos
                [sc.avoid_cand_off[c] as usize..sc.avoid_cand_off[c + 1] as usize];
            let src_tail = match sc.seg_src[j] {
                SELF => EMPTY.iter(),
                t => sc.src_fan.path(t as usize)[1..].iter(),
            }
            .map(|&y| y as u32);
            let tgt_tail = match sc.seg_tgt[j] {
                SELF => EMPTY.iter(),
                t => {
                    let fp = sc.tgt_fan.path(t as usize);
                    fp[..fp.len() - 1].iter()
                }
            }
            .rev()
            .map(|&y| y as u32);
            assemble_into(hhc, u, src_tail, p, tgt_tail, out)?;
        }
        return Ok(());
    }
    unreachable!("avoid rebuild failed to converge despite monotone drops (bug)");
}

/// Whether a fault blocks the plan's fixed middle trajectory: every node
/// the assembled path visits from the first crossing up to (but not
/// including) entry into the target cube. Replicates
/// [`assemble_into`]'s walk exactly (same e-cube dimension order), so a
/// plan passing this check yields an assembled middle segment that is
/// fault-free by construction.
fn middle_blocked(
    hhc: &Hhc,
    positions: &[u32],
    xu: u128,
    xv: u128,
    faults: &dyn FaultOracle,
) -> Result<bool, HhcError> {
    let mut x = xu ^ (1u128 << positions[0]);
    let mut y = positions[0];
    if x != xv && faults.is_faulty(hhc.node(x, y)?) {
        return Ok(true);
    }
    for &p in &positions[1..] {
        while y != p {
            let d = (y ^ p).trailing_zeros();
            y ^= 1 << d;
            if faults.is_faulty(hhc.node(x, y)?) {
                return Ok(true);
            }
        }
        x ^= 1u128 << p;
        if x != xv && faults.is_faulty(hhc.node(x, y)?) {
            return Ok(true);
        }
    }
    Ok(false)
}
