//! The shared L2 tier: a sharded, concurrently-readable family cache
//! plus the live fault set and its generation counter.
//!
//! Entries are the same translation-canonical families the per-builder
//! [`FamilyCache`](crate::FamilyCache) stores (CSR node list for
//! `Xu = 0`, plus the plan counts), keyed by the same
//! `(m, Xu⊕Xv, Yu, Yv, order)` key — so one stored solve serves every
//! worker and every cube-field translation. The map is split into
//! `shards` lock-striped [`RwLock`] segments; replays take a read lock
//! on one shard only, so concurrent readers never serialise against
//! each other, and writers contend only within a shard.
//!
//! Entries hold *plain* (fault-blind) constructions, which are
//! fault-independent facts about the topology — they never become
//! wrong when the fault set changes. What changes is whether a replayed
//! (translated) family is *usable* under the current faults; that check
//! is the fault scan the avoiding layer already performs on the
//! replayed node set, and a blocked replay is repaired through
//! `construct_avoiding`'s rebuild (which bypasses every cache tier by
//! design). This is the lazy-invalidation scheme: fault events bump
//! [`SharedFamilyCache::generation`] and touch nothing else; only the
//! entries whose translated families actually intersect a fault pay a
//! repair, and they become servable again the moment the fault clears —
//! no eager scan, no cache discard.
//!
//! Eviction mirrors the L1: two generations per shard ("hot"/"cold"),
//! a full hot map becomes the cold map, bounding each shard at
//! `2 × shard_capacity` entries. Unlike the L1 there is no cold→hot
//! promotion on a hit — promotion would force a write lock on the read
//! path, and the L1 in front of this tier already keeps the genuinely
//! hot keys local.

use crate::node::NodeId;
use crate::pathset::PathSet;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Default shard count (rounded up to a power of two internally).
pub const DEFAULT_L2_SHARDS: usize = 16;

/// Default hot-generation capacity per shard. With the default 16
/// shards this bounds the tier at `2 × 16 × 1024` entries — a few tens
/// of megabytes of HHC(5) families, shared by every worker.
pub const DEFAULT_L2_SHARD_CAPACITY: usize = 1024;

/// Geometry of a [`SharedFamilyCache`]. `shard_capacity = 0` disables
/// the tier (probes and stores become no-ops), mirroring
/// [`CacheConfig`](crate::CacheConfig) capacity-0 semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Config {
    /// Lock stripes; rounded up to a power of two, at least 1.
    pub shards: usize,
    /// Hot-generation capacity of each stripe.
    pub shard_capacity: usize,
}

impl L2Config {
    /// The default enabled geometry.
    pub fn enabled() -> Self {
        L2Config {
            shards: DEFAULT_L2_SHARDS,
            shard_capacity: DEFAULT_L2_SHARD_CAPACITY,
        }
    }

    /// An inert tier: every probe misses, every store is dropped. The
    /// reference mode for the per-worker-cache-only baseline.
    pub fn disabled() -> Self {
        L2Config {
            shards: 1,
            shard_capacity: 0,
        }
    }
}

impl Default for L2Config {
    fn default() -> Self {
        L2Config::enabled()
    }
}

/// One cached canonical family, identical in content to the L1's entry.
#[derive(Debug, Clone)]
struct SharedEntry {
    nodes: Box<[u128]>,
    offsets: Box<[u32]>,
    rotations: u64,
    detours: u64,
}

/// Two-generation bounded map; see the module docs for the eviction
/// argument.
#[derive(Debug, Default)]
struct Shard {
    hot: HashMap<u128, SharedEntry>,
    cold: HashMap<u128, SharedEntry>,
    sweeps: u64,
}

/// The shared L2 family-cache tier plus the live fault set it is
/// invalidated against. See the module docs.
///
/// All methods take `&self`; the type is `Sync` and meant to live in an
/// [`Arc`](std::sync::Arc) shared by every worker's
/// [`PathBuilder`](crate::PathBuilder) (attached via
/// [`PathBuilder::attach_shared_cache`](crate::PathBuilder::attach_shared_cache)).
#[derive(Debug)]
pub struct SharedFamilyCache {
    shards: Vec<RwLock<Shard>>,
    shard_mask: usize,
    shard_capacity: usize,
    /// Bumped once per fault-set mutation, while the fault write lock is
    /// held; readers pair it with the set via [`Self::faults_snapshot`].
    generation: AtomicU64,
    faults: RwLock<HashSet<NodeId>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SharedFamilyCache {
    pub fn new(cfg: L2Config) -> Self {
        let n = cfg.shards.max(1).next_power_of_two();
        SharedFamilyCache {
            shards: (0..n).map(|_| RwLock::new(Shard::default())).collect(),
            shard_mask: n - 1,
            shard_capacity: cfg.shard_capacity,
            generation: AtomicU64::new(0),
            faults: RwLock::new(HashSet::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Number of lock stripes (power of two).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Hot-generation capacity per stripe (0 = inert tier).
    pub fn shard_capacity(&self) -> usize {
        self.shard_capacity
    }

    /// Entries currently retained across all shards and generations.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let s = s.read().expect("L2 shard lock poisoned");
                s.hot.len() + s.cold.len()
            })
            .sum()
    }

    /// Whether no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime replay hits across all workers (inert tiers never
    /// account).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime replay misses across all workers.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Current fault-set generation: bumped once per successful
    /// [`Self::add_fault`] / [`Self::clear_fault`].
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Current fault count.
    pub fn fault_count(&self) -> usize {
        self.faults.read().expect("fault lock poisoned").len()
    }

    /// Marks `v` faulty; returns `false` (and does not bump the
    /// generation) if it already was.
    pub fn add_fault(&self, v: NodeId) -> bool {
        let mut f = self.faults.write().expect("fault lock poisoned");
        let added = f.insert(v);
        if added {
            self.generation.fetch_add(1, Ordering::AcqRel);
        }
        added
    }

    /// Heals `v`; returns `false` (and does not bump the generation) if
    /// it was not faulty.
    pub fn clear_fault(&self, v: NodeId) -> bool {
        let mut f = self.faults.write().expect("fault lock poisoned");
        let removed = f.remove(&v);
        if removed {
            self.generation.fetch_add(1, Ordering::AcqRel);
        }
        removed
    }

    /// A consistent `(generation, fault set)` pair: the generation is
    /// read under the same read lock that guards the clone, so it never
    /// lags the set. Workers re-snapshot only when
    /// [`Self::generation`] moves — the epoch scheme's fast path is one
    /// atomic load per query.
    pub fn faults_snapshot(&self) -> (u64, HashSet<NodeId>) {
        let f = self.faults.read().expect("fault lock poisoned");
        (self.generation.load(Ordering::Acquire), f.clone())
    }

    /// Drops every cached entry in every shard (fault set and
    /// generation untouched). Exists for the full-rebuild-on-fault
    /// baseline ablation; the serving path never needs it.
    pub fn flush(&self) {
        for s in &self.shards {
            let mut s = s.write().expect("L2 shard lock poisoned");
            s.hot.clear();
            s.cold.clear();
        }
    }

    fn shard_of(&self, key: u128) -> &RwLock<Shard> {
        // Fold the 128-bit key and Fibonacci-hash it so dense key
        // families still spread across stripes.
        let folded = (key ^ (key >> 64)) as u64;
        let mixed = folded.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(mixed >> 32) as usize & self.shard_mask]
    }

    /// On a hit, appends the cached family translated by `mask` to
    /// `out` and returns its `(rotations, detours)` plan counts —
    /// byte-identical to what the construction that stored it produced,
    /// by the same equivariance argument as the L1 replay.
    pub(crate) fn replay(&self, key: u128, mask: u128, out: &mut PathSet) -> Option<(u64, u64)> {
        if self.shard_capacity == 0 {
            return None;
        }
        let shard = self.shard_of(key).read().expect("L2 shard lock poisoned");
        let entry = shard.hot.get(&key).or_else(|| shard.cold.get(&key));
        match entry {
            Some(e) => {
                for w in e.offsets.windows(2) {
                    for &raw in &e.nodes[w[0] as usize..w[1] as usize] {
                        out.push_node(NodeId::from_raw(raw ^ mask));
                    }
                    out.finish_path();
                }
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some((e.rotations, e.detours))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores the family in `set` (a fresh construction under
    /// translation `mask`) canonicalised to `Xu = 0`. Racing writers of
    /// the same key insert identical bytes (construction is
    /// deterministic), so last-writer-wins is harmless.
    pub(crate) fn store(&self, key: u128, mask: u128, set: &PathSet, rotations: u64, detours: u64) {
        if self.shard_capacity == 0 {
            return;
        }
        let mut nodes = Vec::with_capacity(set.total_nodes());
        let mut offsets = Vec::with_capacity(set.len() + 1);
        offsets.push(0u32);
        for path in set.iter() {
            nodes.extend(path.iter().map(|v| v.raw() ^ mask));
            offsets.push(nodes.len() as u32);
        }
        let mut shard = self.shard_of(key).write().expect("L2 shard lock poisoned");
        if shard.hot.contains_key(&key) {
            return;
        }
        if shard.hot.len() >= self.shard_capacity {
            shard.cold = std::mem::take(&mut shard.hot);
            shard.sweeps += 1;
        }
        shard.hot.insert(
            key,
            SharedEntry {
                nodes: nodes.into_boxed_slice(),
                offsets: offsets.into_boxed_slice(),
                rotations,
                detours,
            },
        );
    }
}

impl Default for SharedFamilyCache {
    fn default() -> Self {
        SharedFamilyCache::new(L2Config::enabled())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_path_set() -> PathSet {
        let mut set = PathSet::new();
        for p in [[5u128, 7, 9], [5, 6, 9]] {
            for raw in p {
                set.push_node(NodeId::from_raw(raw));
            }
            set.finish_path();
        }
        set
    }

    #[test]
    fn store_replay_round_trips_translation() {
        let l2 = SharedFamilyCache::new(L2Config {
            shards: 4,
            shard_capacity: 8,
        });
        l2.store(1, 4, &two_path_set(), 2, 1);
        let mut out = PathSet::new();
        let (nr, nd) = l2.replay(1, 8, &mut out).unwrap();
        assert_eq!((nr, nd), (2, 1));
        let expect: Vec<u128> = [5u128, 7, 9, 5, 6, 9].iter().map(|r| r ^ 4 ^ 8).collect();
        let got: Vec<u128> = out.iter().flatten().map(|v| v.raw()).collect();
        assert_eq!(got, expect);
        assert!(l2.replay(2, 0, &mut PathSet::new()).is_none());
        assert_eq!((l2.hits(), l2.misses()), (1, 1));
    }

    #[test]
    fn disabled_tier_is_inert() {
        let l2 = SharedFamilyCache::new(L2Config::disabled());
        l2.store(1, 0, &two_path_set(), 0, 1);
        assert!(l2.replay(1, 0, &mut PathSet::new()).is_none());
        assert!(l2.is_empty());
        assert_eq!((l2.hits(), l2.misses()), (0, 0));
    }

    #[test]
    fn shard_capacity_bounds_entries() {
        let cap = 4;
        let l2 = SharedFamilyCache::new(L2Config {
            shards: 1,
            shard_capacity: cap,
        });
        let set = two_path_set();
        for key in 0..10 * cap as u128 {
            l2.store(key, 0, &set, 1, 0);
        }
        assert!(
            l2.len() <= 2 * cap,
            "two-generation sweep must bound the shard at 2×capacity"
        );
    }

    #[test]
    fn fault_events_bump_generation_only_on_change() {
        let l2 = SharedFamilyCache::default();
        let v = NodeId::from_raw(42);
        assert_eq!(l2.generation(), 0);
        assert!(l2.add_fault(v));
        assert!(!l2.add_fault(v), "duplicate add is a no-op");
        assert_eq!(l2.generation(), 1);
        assert_eq!(l2.fault_count(), 1);
        assert!(l2.clear_fault(v));
        assert!(!l2.clear_fault(v), "duplicate clear is a no-op");
        assert_eq!(l2.generation(), 2);
        let (gen, snap) = l2.faults_snapshot();
        assert_eq!(gen, 2);
        assert!(snap.is_empty());
    }

    #[test]
    fn flush_drops_entries_but_keeps_faults() {
        let l2 = SharedFamilyCache::new(L2Config {
            shards: 2,
            shard_capacity: 8,
        });
        l2.store(1, 0, &two_path_set(), 1, 0);
        l2.add_fault(NodeId::from_raw(7));
        l2.flush();
        assert!(l2.is_empty());
        assert_eq!(l2.fault_count(), 1);
        assert_eq!(l2.generation(), 1);
    }
}
