//! The shared L2 tier: an atomically-published, read-lock-free family
//! cache plus the live fault set and its generation counter.
//!
//! Entries are the same translation-canonical families the per-builder
//! [`FamilyCache`](crate::FamilyCache) stores (CSR node list for
//! `Xu = 0`, plus the plan counts), keyed by the same
//! `(m, Xu⊕Xv, Yu, Yv, order)` key — so one stored solve serves every
//! worker and every cube-field translation.
//!
//! ## Snapshot-swap read path
//!
//! Earlier versions striped the map across `RwLock` shards; even
//! uncontended, every probe paid a read-lock acquire/release (an atomic
//! RMW on a shared cache line) and readers serialised against writers.
//! The tier is read-mostly to an extreme degree — after warm-up, stores
//! happen only on cold keys — so it now publishes **immutable
//! snapshots** instead:
//!
//! * Each shard owns an [`Arc<ShardSnapshot>`]: an open-addressing
//!   probe table (`slots` → entry index) over immutable entries, each a
//!   contiguous node/offset slab. Snapshots are never mutated after
//!   publication.
//! * Writers (cache-miss promotions) take a small per-shard mutex,
//!   rebuild the table with the new entry (`Arc`-sharing every existing
//!   entry's slab — no path data is copied), publish the new `Arc` and
//!   bump the shard's version counter with a single release store.
//! * Readers hold a per-worker [`L2Reader`] that caches one snapshot
//!   `Arc` per shard. A probe is: one `Acquire` load of the shard
//!   version, and — in the overwhelmingly common unchanged case — a
//!   direct probe of the locally held snapshot. **No lock, no reference
//!   count traffic, no clone**; a hit copies nodes straight from the
//!   shared slab into the caller's [`PathSet`] scratch. Only when the
//!   version moved (a writer published) does the reader briefly take
//!   the shard mutex to re-clone the new snapshot `Arc`.
//!
//! Staleness is harmless by construction: entries are plain
//! (fault-blind) canonical families — immutable facts about the
//! topology — so a reader probing a one-publish-old snapshot can only
//! miss a key some other worker *just* added (it reconstructs and the
//! store is idempotent: racing writers of the same key insert identical
//! bytes) or replay an entry that was *just* evicted (still a correct
//! family). Memory reclamation is the `Arc` drop chain: an old snapshot
//! is freed when the last reader holding it refreshes, and an entry's
//! slab is freed when the last snapshot referencing it goes — no epochs,
//! no hazard pointers, no unsafe.
//!
//! ## Fault feed
//!
//! Entries hold *plain* (fault-blind) constructions, which never become
//! wrong when the fault set changes. What changes is whether a replayed
//! (translated) family is *usable* under the current faults; that check
//! is the fault scan the avoiding layer already performs on the
//! replayed node set, and a blocked replay is repaired through
//! `construct_avoiding`'s rebuild (which bypasses every cache tier by
//! design). This is the lazy-invalidation scheme: fault events bump
//! [`SharedFamilyCache::generation`] and touch nothing else; only the
//! entries whose translated families actually intersect a fault pay a
//! repair, and they become servable again the moment the fault clears —
//! no eager scan, no cache discard.
//!
//! Eviction mirrors the L1: two generations per shard ("hot"/"cold"),
//! a full hot map becomes the cold map, bounding each shard at
//! `2 × shard_capacity` entries. There is no cold→hot promotion on a
//! hit — promotion would force a publish on the read path, and the L1
//! in front of this tier already keeps the genuinely hot keys local.

use crate::node::NodeId;
use crate::pathset::PathSet;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

/// Default shard count (rounded up to a power of two internally).
pub const DEFAULT_L2_SHARDS: usize = 16;

/// Default hot-generation capacity per shard. With the default 16
/// shards this bounds the tier at `2 × 16 × 1024` entries — a few tens
/// of megabytes of HHC(5) families, shared by every worker.
pub const DEFAULT_L2_SHARD_CAPACITY: usize = 1024;

/// Geometry of a [`SharedFamilyCache`]. `shard_capacity = 0` disables
/// the tier (probes and stores become no-ops), mirroring
/// [`CacheConfig`](crate::CacheConfig) capacity-0 semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Config {
    /// Write-side mutex stripes; rounded up to a power of two, at
    /// least 1. (Readers never lock regardless of the count.)
    pub shards: usize,
    /// Hot-generation capacity of each stripe.
    pub shard_capacity: usize,
}

impl L2Config {
    /// The default enabled geometry.
    pub fn enabled() -> Self {
        L2Config {
            shards: DEFAULT_L2_SHARDS,
            shard_capacity: DEFAULT_L2_SHARD_CAPACITY,
        }
    }

    /// An inert tier: every probe misses, every store is dropped. The
    /// reference mode for the per-worker-cache-only baseline.
    pub fn disabled() -> Self {
        L2Config {
            shards: 1,
            shard_capacity: 0,
        }
    }
}

impl Default for L2Config {
    fn default() -> Self {
        L2Config::enabled()
    }
}

/// One cached canonical family: a contiguous CSR node/offset slab plus
/// the plan counts of the construction that produced it. Immutable once
/// built; shared by every snapshot generation that contains it.
#[derive(Debug)]
struct SharedEntry {
    nodes: Box<[u128]>,
    offsets: Box<[u32]>,
    rotations: u64,
    detours: u64,
}

/// An immutable probe table over a shard's entries. `slots[i]` holds
/// `entry index + 1` (0 = vacant); `keys`/`entries` are parallel.
/// `slots.len()` is a power of two at least `2 × entries.len()`, so
/// linear probing always terminates at a vacant slot.
#[derive(Debug)]
struct ShardSnapshot {
    slots: Box<[u32]>,
    keys: Box<[u128]>,
    entries: Box<[Arc<SharedEntry>]>,
}

impl ShardSnapshot {
    fn empty() -> Arc<ShardSnapshot> {
        Arc::new(ShardSnapshot {
            slots: vec![0u32; 4].into_boxed_slice(),
            keys: Box::new([]),
            entries: Box::new([]),
        })
    }

    /// Builds a snapshot over the given entries (any iteration order).
    fn build<'a>(
        entries: impl Iterator<Item = (&'a u128, &'a Arc<SharedEntry>)>,
        n: usize,
    ) -> Self {
        let cap = (2 * n).next_power_of_two().max(4);
        let mut slots = vec![0u32; cap].into_boxed_slice();
        let mut keys = Vec::with_capacity(n);
        let mut ents = Vec::with_capacity(n);
        let mask = cap - 1;
        for (&key, entry) in entries {
            let mut i = fold_mix(key) as usize & mask;
            while slots[i] != 0 {
                i = (i + 1) & mask;
            }
            slots[i] = keys.len() as u32 + 1;
            keys.push(key);
            ents.push(Arc::clone(entry));
        }
        ShardSnapshot {
            slots,
            keys: keys.into_boxed_slice(),
            entries: ents.into_boxed_slice(),
        }
    }

    /// Linear-probe lookup. `h` must be `fold_mix(key)`.
    #[inline]
    fn get(&self, h: u64, key: u128) -> Option<&SharedEntry> {
        let mask = self.slots.len() - 1;
        let mut i = h as usize & mask;
        loop {
            let s = self.slots[i];
            if s == 0 {
                return None;
            }
            let idx = (s - 1) as usize;
            if self.keys[idx] == key {
                return Some(&self.entries[idx]);
            }
            i = (i + 1) & mask;
        }
    }
}

/// Write-side state of one shard: the bounded two-generation entry maps
/// plus the currently published snapshot. Everything here is guarded by
/// the shard mutex; readers touch it only to re-clone `published` after
/// a version bump.
#[derive(Debug)]
struct ShardWriter {
    hot: HashMap<u128, Arc<SharedEntry>>,
    cold: HashMap<u128, Arc<SharedEntry>>,
    sweeps: u64,
    published: Arc<ShardSnapshot>,
}

#[derive(Debug)]
struct ShardState {
    /// Bumped (release, under the mutex) once per publish; readers pair
    /// one acquire load with their locally cached snapshot.
    version: AtomicU64,
    inner: Mutex<ShardWriter>,
}

impl ShardState {
    fn new() -> Self {
        ShardState {
            version: AtomicU64::new(0),
            inner: Mutex::new(ShardWriter {
                hot: HashMap::new(),
                cold: HashMap::new(),
                sweeps: 0,
                published: ShardSnapshot::empty(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ShardWriter> {
        // A writer that panicked mid-store left `hot`/`cold` consistent
        // (the snapshot is built before anything is published), so
        // poison carries no information here.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Rebuilds and publishes the snapshot from the current generations.
    /// Must be called with the lock held (`w` is the guard's target).
    fn publish(&self, w: &mut ShardWriter) {
        let n = w.hot.len() + w.cold.len();
        // Hot entries first so a key present in both generations (never
        // happens today, but harmless) resolves to the hot copy.
        w.published = Arc::new(ShardSnapshot::build(w.hot.iter().chain(w.cold.iter()), n));
        self.version.fetch_add(1, Ordering::Release);
    }
}

/// Splitmix64 finalizer over the folded 128-bit key: the low bits index
/// a shard's probe table, the high bits pick the shard, so dense key
/// families spread across both levels independently.
#[inline]
fn fold_mix(key: u128) -> u64 {
    let mut z = ((key ^ (key >> 64)) as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The shared L2 family-cache tier plus the live fault set it is
/// invalidated against. See the module docs.
///
/// All methods take `&self`; the type is `Sync` and meant to live in an
/// [`Arc`] shared by every worker's
/// [`PathBuilder`](crate::PathBuilder) (attached via
/// [`PathBuilder::attach_shared_cache`](crate::PathBuilder::attach_shared_cache),
/// which wraps it in a per-worker `L2Reader`).
#[derive(Debug)]
pub struct SharedFamilyCache {
    shards: Box<[ShardState]>,
    shard_mask: usize,
    shard_capacity: usize,
    /// Bumped once per fault-set mutation, while the fault write lock is
    /// held; readers pair it with the set via [`Self::faults_snapshot`].
    generation: AtomicU64,
    faults: RwLock<HashSet<NodeId>>,
}

impl SharedFamilyCache {
    pub fn new(cfg: L2Config) -> Self {
        let n = cfg.shards.max(1).next_power_of_two();
        SharedFamilyCache {
            shards: (0..n).map(|_| ShardState::new()).collect(),
            shard_mask: n - 1,
            shard_capacity: cfg.shard_capacity,
            generation: AtomicU64::new(0),
            faults: RwLock::new(HashSet::new()),
        }
    }

    /// Number of shards (power of two).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Hot-generation capacity per shard (0 = inert tier).
    pub fn shard_capacity(&self) -> usize {
        self.shard_capacity
    }

    /// Entries currently retained across all shards and generations.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let w = s.lock();
                w.hot.len() + w.cold.len()
            })
            .sum()
    }

    /// Whether no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current fault-set generation: bumped once per successful
    /// [`Self::add_fault`] / [`Self::clear_fault`].
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Current fault count.
    pub fn fault_count(&self) -> usize {
        self.faults
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Marks `v` faulty; returns `false` (and does not bump the
    /// generation) if it already was.
    pub fn add_fault(&self, v: NodeId) -> bool {
        let mut f = self.faults.write().unwrap_or_else(PoisonError::into_inner);
        let added = f.insert(v);
        if added {
            self.generation.fetch_add(1, Ordering::AcqRel);
        }
        added
    }

    /// Heals `v`; returns `false` (and does not bump the generation) if
    /// it was not faulty.
    pub fn clear_fault(&self, v: NodeId) -> bool {
        let mut f = self.faults.write().unwrap_or_else(PoisonError::into_inner);
        let removed = f.remove(&v);
        if removed {
            self.generation.fetch_add(1, Ordering::AcqRel);
        }
        removed
    }

    /// A consistent `(generation, fault set)` pair: the generation is
    /// read under the same read lock that guards the clone, so it never
    /// lags the set. Workers re-snapshot only when
    /// [`Self::generation`] moves — the epoch scheme's fast path is one
    /// atomic load per query.
    pub fn faults_snapshot(&self) -> (u64, HashSet<NodeId>) {
        let f = self.faults.read().unwrap_or_else(PoisonError::into_inner);
        (self.generation.load(Ordering::Acquire), f.clone())
    }

    /// [`Self::faults_snapshot`] into a caller-owned set (capacity is
    /// reused, so a long-lived worker re-snapshots without allocating
    /// once its set has grown to the high-water fault count).
    pub fn faults_snapshot_into(&self, out: &mut HashSet<NodeId>) -> u64 {
        let f = self.faults.read().unwrap_or_else(PoisonError::into_inner);
        out.clone_from(&f);
        self.generation.load(Ordering::Acquire)
    }

    /// Drops every cached entry in every shard (fault set and
    /// generation untouched). Exists for the full-rebuild-on-fault
    /// baseline ablation; the serving path never needs it.
    pub fn flush(&self) {
        for s in self.shards.iter() {
            let mut w = s.lock();
            w.hot.clear();
            w.cold.clear();
            s.publish(&mut w);
        }
    }

    #[inline]
    fn shard_of(&self, h: u64) -> &ShardState {
        &self.shards[(h >> 32) as usize & self.shard_mask]
    }

    /// Stores the family in `set` (a fresh construction under
    /// translation `mask`) canonicalised to `Xu = 0`, and publishes a
    /// new shard snapshot. Racing writers of the same key insert
    /// identical bytes (construction is deterministic), so
    /// first-writer-wins is harmless.
    pub(crate) fn store(&self, key: u128, mask: u128, set: &PathSet, rotations: u64, detours: u64) {
        if self.shard_capacity == 0 {
            return;
        }
        let mut nodes = Vec::with_capacity(set.total_nodes());
        let mut offsets = Vec::with_capacity(set.len() + 1);
        offsets.push(0u32);
        for path in set.iter() {
            nodes.extend(path.iter().map(|v| v.raw() ^ mask));
            offsets.push(nodes.len() as u32);
        }
        let entry = Arc::new(SharedEntry {
            nodes: nodes.into_boxed_slice(),
            offsets: offsets.into_boxed_slice(),
            rotations,
            detours,
        });
        let shard = self.shard_of(fold_mix(key));
        let mut w = shard.lock();
        if w.hot.contains_key(&key) || w.cold.contains_key(&key) {
            return;
        }
        if w.hot.len() >= self.shard_capacity {
            w.cold = std::mem::take(&mut w.hot);
            w.sweeps += 1;
        }
        w.hot.insert(key, entry);
        shard.publish(&mut w);
    }
}

impl Default for SharedFamilyCache {
    fn default() -> Self {
        SharedFamilyCache::new(L2Config::enabled())
    }
}

/// Cached per-reader view of one shard: the snapshot `Arc` the reader
/// last saw and the shard version it was published at.
#[derive(Debug)]
struct LocalShard {
    version: u64,
    snap: Arc<ShardSnapshot>,
}

/// A per-worker read handle over a [`SharedFamilyCache`].
///
/// The reader caches one published snapshot `Arc` per shard; a probe is
/// one acquire load of the shard version plus a table probe of the
/// local snapshot — no lock and no reference-count traffic on the
/// steady-state path. When the version moved (a writer published), the
/// reader takes the shard mutex once to re-clone the new `Arc`; the
/// snapshot it let go of is freed when its last holder refreshes
/// (plain `Arc` reclamation — see the module docs).
///
/// Created by
/// [`PathBuilder::attach_shared_cache`](crate::PathBuilder::attach_shared_cache);
/// one reader per builder/worker.
#[derive(Debug)]
pub(crate) struct L2Reader {
    cache: Arc<SharedFamilyCache>,
    local: Box<[LocalShard]>,
}

impl L2Reader {
    pub(crate) fn new(cache: Arc<SharedFamilyCache>) -> Self {
        // Version 0 with an empty local snapshot matches a shard that
        // has never published; shards that already have entries carry a
        // version > 0 and refresh on first probe.
        let local = (0..cache.shards.len())
            .map(|_| LocalShard {
                version: 0,
                snap: ShardSnapshot::empty(),
            })
            .collect();
        L2Reader { cache, local }
    }

    /// The shared tier this reader probes.
    pub(crate) fn cache(&self) -> &Arc<SharedFamilyCache> {
        &self.cache
    }

    /// On a hit, appends the cached family translated by `mask` to
    /// `out` and returns its `(rotations, detours)` plan counts —
    /// byte-identical to what the construction that stored it produced,
    /// by the same equivariance argument as the L1 replay. Lock-free
    /// and allocation-free unless the shard published since the last
    /// probe (then one brief mutex hold to re-clone the snapshot).
    #[inline]
    pub(crate) fn replay(
        &mut self,
        key: u128,
        mask: u128,
        out: &mut PathSet,
    ) -> Option<(u64, u64)> {
        if self.cache.shard_capacity == 0 {
            return None;
        }
        let h = fold_mix(key);
        let idx = (h >> 32) as usize & self.cache.shard_mask;
        let shard = &self.cache.shards[idx];
        let local = &mut self.local[idx];
        let v = shard.version.load(Ordering::Acquire);
        if v != local.version {
            let w = shard.lock();
            local.snap = Arc::clone(&w.published);
            // Re-read under the lock: no writer can be mid-publish, so
            // the pair is consistent.
            local.version = shard.version.load(Ordering::Relaxed);
        }
        let e = local.snap.get(h, key)?;
        out.extend_csr_xor(&e.nodes, &e.offsets, mask);
        Some((e.rotations, e.detours))
    }

    /// Promotes a fresh construction into the shared tier (write side —
    /// takes the shard mutex; see [`SharedFamilyCache::store`]).
    pub(crate) fn store(&self, key: u128, mask: u128, set: &PathSet, rotations: u64, detours: u64) {
        self.cache.store(key, mask, set, rotations, detours);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_path_set() -> PathSet {
        let mut set = PathSet::new();
        for p in [[5u128, 7, 9], [5, 6, 9]] {
            for raw in p {
                set.push_node(NodeId::from_raw(raw));
            }
            set.finish_path();
        }
        set
    }

    fn reader(l2: &Arc<SharedFamilyCache>) -> L2Reader {
        L2Reader::new(Arc::clone(l2))
    }

    #[test]
    fn store_replay_round_trips_translation() {
        let l2 = Arc::new(SharedFamilyCache::new(L2Config {
            shards: 4,
            shard_capacity: 8,
        }));
        l2.store(1, 4, &two_path_set(), 2, 1);
        let mut r = reader(&l2);
        let mut out = PathSet::new();
        let (nr, nd) = r.replay(1, 8, &mut out).unwrap();
        assert_eq!((nr, nd), (2, 1));
        let expect: Vec<u128> = [5u128, 7, 9, 5, 6, 9].iter().map(|r| r ^ 4 ^ 8).collect();
        let got: Vec<u128> = out.iter().flatten().map(|v| v.raw()).collect();
        assert_eq!(got, expect);
        assert!(r.replay(2, 0, &mut PathSet::new()).is_none());
    }

    #[test]
    fn reader_sees_stores_published_after_creation() {
        // The version check must pull in snapshots published both before
        // and after the reader's first probe of a shard.
        let l2 = Arc::new(SharedFamilyCache::new(L2Config {
            shards: 2,
            shard_capacity: 8,
        }));
        let mut r = reader(&l2);
        let mut out = PathSet::new();
        for key in 0..32u128 {
            assert!(r.replay(key, 0, &mut out).is_none(), "cold tier misses");
            l2.store(key, 0, &two_path_set(), key as u64, 0);
            out.clear();
            assert_eq!(
                r.replay(key, 0, &mut out).expect("store is visible"),
                (key as u64, 0)
            );
            out.clear();
        }
    }

    #[test]
    fn stale_snapshot_is_refreshed_not_resurrected() {
        // After a flush, readers must stop replaying dropped entries.
        let l2 = Arc::new(SharedFamilyCache::new(L2Config {
            shards: 1,
            shard_capacity: 8,
        }));
        let mut r = reader(&l2);
        l2.store(7, 0, &two_path_set(), 1, 0);
        let mut out = PathSet::new();
        assert!(r.replay(7, 0, &mut out).is_some());
        l2.flush();
        out.clear();
        assert!(r.replay(7, 0, &mut out).is_none(), "flush is visible");
    }

    #[test]
    fn disabled_tier_is_inert() {
        let l2 = Arc::new(SharedFamilyCache::new(L2Config::disabled()));
        l2.store(1, 0, &two_path_set(), 0, 1);
        assert!(reader(&l2).replay(1, 0, &mut PathSet::new()).is_none());
        assert!(l2.is_empty());
    }

    #[test]
    fn shard_capacity_bounds_entries() {
        let cap = 4;
        let l2 = SharedFamilyCache::new(L2Config {
            shards: 1,
            shard_capacity: cap,
        });
        let set = two_path_set();
        for key in 0..10 * cap as u128 {
            l2.store(key, 0, &set, 1, 0);
        }
        assert!(
            l2.len() <= 2 * cap,
            "two-generation sweep must bound the shard at 2×capacity"
        );
    }

    #[test]
    fn cold_generation_still_replays() {
        let cap = 2;
        let l2 = Arc::new(SharedFamilyCache::new(L2Config {
            shards: 1,
            shard_capacity: cap,
        }));
        let set = two_path_set();
        for key in 0..cap as u128 + 1 {
            l2.store(key, 0, &set, key as u64, 0);
        }
        // Key 0 or 1 was swept to the cold generation by the third
        // store; both must still replay from the published snapshot.
        let mut r = reader(&l2);
        let mut out = PathSet::new();
        for key in 0..cap as u128 + 1 {
            out.clear();
            assert_eq!(
                r.replay(key, 0, &mut out),
                Some((key as u64, 0)),
                "key {key} must survive the generation sweep"
            );
        }
    }

    #[test]
    fn fault_events_bump_generation_only_on_change() {
        let l2 = SharedFamilyCache::default();
        let v = NodeId::from_raw(42);
        assert_eq!(l2.generation(), 0);
        assert!(l2.add_fault(v));
        assert!(!l2.add_fault(v), "duplicate add is a no-op");
        assert_eq!(l2.generation(), 1);
        assert_eq!(l2.fault_count(), 1);
        assert!(l2.clear_fault(v));
        assert!(!l2.clear_fault(v), "duplicate clear is a no-op");
        assert_eq!(l2.generation(), 2);
        let (gen, snap) = l2.faults_snapshot();
        assert_eq!(gen, 2);
        assert!(snap.is_empty());
        let mut reused = HashSet::new();
        reused.insert(NodeId::from_raw(9));
        assert_eq!(l2.faults_snapshot_into(&mut reused), 2);
        assert!(reused.is_empty(), "snapshot_into replaces the contents");
    }

    #[test]
    fn flush_drops_entries_but_keeps_faults() {
        let l2 = SharedFamilyCache::new(L2Config {
            shards: 2,
            shard_capacity: 8,
        });
        l2.store(1, 0, &two_path_set(), 1, 0);
        l2.add_fault(NodeId::from_raw(7));
        l2.flush();
        assert!(l2.is_empty());
        assert_eq!(l2.fault_count(), 1);
        assert_eq!(l2.generation(), 1);
    }

    #[test]
    fn concurrent_store_replay_smoke() {
        // Writers and readers race over a small key space; every replay
        // must return either a miss or the exact stored family.
        let l2 = Arc::new(SharedFamilyCache::new(L2Config {
            shards: 2,
            shard_capacity: 16,
        }));
        let set = two_path_set();
        let writers: Vec<_> = (0..2)
            .map(|t| {
                let l2 = Arc::clone(&l2);
                let set = set.clone();
                std::thread::spawn(move || {
                    for round in 0..50u128 {
                        for key in 0..24u128 {
                            l2.store(key, 0, &set, key as u64, round as u64 % 7 + t);
                        }
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let l2 = Arc::clone(&l2);
                std::thread::spawn(move || {
                    let mut r = L2Reader::new(l2);
                    let mut out = PathSet::new();
                    let mut hits = 0u64;
                    for round in 0..200u128 {
                        let key = round % 24;
                        out.clear();
                        if let Some((nr, _)) = r.replay(key, 0, &mut out) {
                            assert_eq!(nr, key as u64, "payload matches key");
                            assert_eq!(out.len(), 2, "stored family has two paths");
                            hits += 1;
                        }
                    }
                    hits
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        for r in readers {
            r.join().unwrap();
        }
        // After the dust settles a fresh reader sees every key.
        let mut r = L2Reader::new(Arc::clone(&l2));
        let mut out = PathSet::new();
        for key in 0..24u128 {
            out.clear();
            assert!(r.replay(key, 0, &mut out).is_some());
        }
    }
}
