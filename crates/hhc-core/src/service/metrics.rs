//! Per-worker atomic metrics aggregation for the routing service.
//!
//! Each worker owns an [`AtomicReport`]: one relaxed `AtomicU64` per
//! counter in [`MetricsReport`]. After every batch the worker publishes
//! the *delta* between its builder's cumulative report and the previous
//! publication — a handful of uncontended `fetch_add`s — and
//! [`Router::metrics`](super::Router::metrics) merges by summing loads.
//! No lock on either side, so there is no poisoned-mutex panic path and
//! a reader never blocks a worker mid-batch.
//!
//! Deltas use `saturating_sub` because two counters can legitimately
//! step backwards between publications: `family_bypass_events` is
//! lifetime-of-cache (it resets when
//! [`Router::flush_caches`](super::Router::flush_caches) replaces the
//! L1), and a flush likewise rebuilds the whole builder-side report.
//! Saturation turns such resets into "no new events this batch", which
//! keeps every published total monotone. `fault_generation` is a gauge,
//! not a counter: publish takes `fetch_max`, merge takes `max`, same as
//! [`ConstructionMetrics::merge`](crate::ConstructionMetrics::merge).
//!
//! The per-query timing histogram is deliberately excluded: the router
//! never enables builder timing (the serve loop measures wall-clock at
//! the call site instead), and a 64-bucket histogram per publication
//! would defeat the point of the cheap delta path.

use crate::metrics::MetricsReport;
use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! atomic_report {
    (
        counters { $($name:ident => $($path:ident).+;)+ }
        gauges { $($gname:ident => $($gpath:ident).+;)+ }
    ) => {
        /// Lock-free cumulative counters for one worker; see the module
        /// docs.
        #[derive(Debug, Default)]
        pub(crate) struct AtomicReport {
            $($name: AtomicU64,)+
            $($gname: AtomicU64,)+
        }

        impl AtomicReport {
            /// Publishes the change from `prev` (the report at the last
            /// publication) to `cur` (the builder's current cumulative
            /// report).
            pub(crate) fn publish(&self, cur: &MetricsReport, prev: &MetricsReport) {
                $(
                    let d = cur.$($path).+.saturating_sub(prev.$($path).+);
                    if d != 0 {
                        self.$name.fetch_add(d, Ordering::Relaxed);
                    }
                )+
                $(
                    self.$gname.fetch_max(cur.$($gpath).+, Ordering::Relaxed);
                )+
            }

            /// Accumulates this worker's published totals into `out`
            /// (counters sum, gauges max) — the merge half of
            /// [`MetricsReport::merge`].
            pub(crate) fn merge_into(&self, out: &mut MetricsReport) {
                $(
                    out.$($path).+ += self.$name.load(Ordering::Relaxed);
                )+
                $(
                    out.$($gpath).+ =
                        out.$($gpath).+.max(self.$gname.load(Ordering::Relaxed));
                )+
            }
        }
    };
}

atomic_report! {
    counters {
        queries => construction.queries;
        same_cube => construction.same_cube;
        cross_cube => construction.cross_cube;
        rotation_plans => construction.rotation_plans;
        detour_plans => construction.detour_plans;
        family_hits => construction.family_hits;
        family_hits_cross => construction.family_hits_cross;
        family_bypass_events => construction.family_bypass_events;
        fault_reroutes => construction.fault_reroutes;
        fault_avoided_plans => construction.fault_avoided_plans;
        l2_hits => construction.l2_hits;
        l2_misses => construction.l2_misses;
        l2_invalidations => construction.l2_invalidations;
        src_fan_queries => src_fan.queries;
        src_fan_targets_requested => src_fan.targets_requested;
        src_fan_seeded_direct => src_fan.seeded_direct;
        src_fan_network_builds => src_fan.network_builds;
        src_fan_fast_path => src_fan.fast_path;
        src_fan_cache_hits => src_fan.cache_hits;
        src_fan_cache_misses => src_fan.cache_misses;
        tgt_fan_queries => tgt_fan.queries;
        tgt_fan_targets_requested => tgt_fan.targets_requested;
        tgt_fan_seeded_direct => tgt_fan.seeded_direct;
        tgt_fan_network_builds => tgt_fan.network_builds;
        tgt_fan_fast_path => tgt_fan.fast_path;
        tgt_fan_cache_hits => tgt_fan.cache_hits;
        tgt_fan_cache_misses => tgt_fan.cache_misses;
        solver_bfs_passes => solver.bfs_passes;
        solver_augmentations => solver.augmentations;
        solver_arcs_touched => solver.arcs_touched;
        solver_slots_rewound => solver.slots_rewound;
        solver_csr_rebuilds => solver.csr_rebuilds;
    }
    gauges {
        fault_generation => construction.fault_generation;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_accumulates_deltas() {
        let a = AtomicReport::default();
        let mut prev = MetricsReport::default();
        let mut cur = MetricsReport::default();
        cur.construction.queries = 3;
        cur.solver.bfs_passes = 5;
        cur.construction.fault_generation = 2;
        a.publish(&cur, &prev);
        prev = cur.clone();
        cur.construction.queries = 7;
        cur.src_fan.cache_hits = 4;
        cur.construction.fault_generation = 1; // gauge may regress in cur
        a.publish(&cur, &prev);
        let mut out = MetricsReport::default();
        a.merge_into(&mut out);
        assert_eq!(out.construction.queries, 7);
        assert_eq!(out.solver.bfs_passes, 5);
        assert_eq!(out.src_fan.cache_hits, 4);
        assert_eq!(out.construction.fault_generation, 2, "gauge keeps max");
    }

    #[test]
    fn backwards_counter_saturates_to_zero_delta() {
        // A cache flush resets the builder-side report; the published
        // totals must stay monotone.
        let a = AtomicReport::default();
        let mut big = MetricsReport::default();
        big.construction.family_bypass_events = 1;
        big.construction.queries = 10;
        a.publish(&big, &MetricsReport::default());
        let mut small = MetricsReport::default();
        small.construction.queries = 2;
        a.publish(&small, &big);
        let mut out = MetricsReport::default();
        a.merge_into(&mut out);
        assert_eq!(out.construction.family_bypass_events, 1);
        assert_eq!(
            out.construction.queries, 10,
            "a regressed counter publishes no delta — totals stay monotone"
        );
    }

    #[test]
    fn merge_into_adds_to_existing() {
        let a = AtomicReport::default();
        let mut cur = MetricsReport::default();
        cur.construction.l2_hits = 2;
        a.publish(&cur, &MetricsReport::default());
        let mut out = MetricsReport::default();
        out.construction.l2_hits = 5;
        a.merge_into(&mut out);
        assert_eq!(out.construction.l2_hits, 7);
    }
}
