//! Concurrent routing service: a long-lived [`Router`] answering
//! disjoint-path queries from a tiered family cache under a live fault
//! feed.
//!
//! Every earlier consumer of the construction engine is a closed-loop
//! batch ([`crate::batch`], the experiment drivers, the DES). This
//! module turns the library into a serving system: a pool of worker
//! threads, each owning a [`PathBuilder`] (the per-worker **L1** — the
//! existing caches, semantics unchanged), layered over one process-wide
//! [`SharedFamilyCache`] (**L2** — atomically-published immutable shard
//! snapshots, keyed by the same canonical `(m, Xu⊕Xv, Yu, Yv, order)`
//! signature; see [`shared`](self) module docs for the lock-free read
//! path). A query is answered L1 → L2 → construct; misses are promoted
//! into both tiers, so one worker's solve warms every other worker.
//!
//! ## Steady-state allocation discipline
//!
//! The serving hot path performs **no per-query heap allocation** once
//! warm: an L2 hit is one atomic load plus a probe of a reader-local
//! snapshot, copying nodes straight into reused scratch. The batch
//! plumbing is pooled to match — `Batch` buffers (pairs in, results
//! out) cycle `Router` → worker → `Router` through the existing
//! channels and are recycled from a free list, and a whole batch's
//! answers live in one arena-backed [`QueryBatchResult`] (a single
//! [`PathSet`] plus per-query spans) instead of a `Vec<Path>` of
//! per-path `Vec`s per query. [`Router::query_many_into`] and
//! [`Router::query_into`] expose that representation; the original
//! [`Router::query_many`]/[`Router::query`] survive as thin shims that
//! materialise owned `Vec<Path>`s from the arena.
//!
//! Worker metrics follow the same discipline: each worker publishes
//! per-batch deltas into lock-free per-worker atomic counters (see
//! [`metrics`](self)), merged on demand by [`Router::metrics`] — no
//! mutex, no poison path.
//!
//! ## Fault feed
//!
//! [`Router::add_fault`] / [`Router::clear_fault`] take effect without
//! stopping the service: each event bumps the cache's generation
//! counter, workers notice the moved generation with one atomic load at
//! their next query and re-snapshot the fault set. Cached entries are
//! **not** discarded — they are plain (fault-blind) families, which stay
//! true facts about the topology. Each query runs through the
//! fault-avoiding layer, which scans the (possibly replayed) plain
//! family against the live snapshot and repairs blocked ones via the
//! `construct_avoiding` rebuild — the rebuild bypasses every cache tier,
//! so answers are byte-identical to a cold cache *by construction*
//! (the PR 4/PR 7 equivalence argument, extended to the shared tier;
//! see `tests/router_equivalence.rs`). Replays that had to be repaired
//! are counted as `l2_invalidations` in
//! [`ConstructionMetrics`](crate::ConstructionMetrics).
//!
//! ## Interface
//!
//! Queries arrive over per-worker mpsc channels:
//! [`Router::query_many_into`] splits a batch into contiguous chunks,
//! fans them across the workers and reassembles results in submission
//! order; [`Router::query_into`] round-robins single queries. Results
//! depend only on the pair and the fault snapshot — never on which
//! worker answered or how the chunks interleaved.

mod metrics;
mod shared;

pub(crate) use shared::L2Reader;
pub use shared::{L2Config, SharedFamilyCache, DEFAULT_L2_SHARDS, DEFAULT_L2_SHARD_CAPACITY};

use self::metrics::AtomicReport;
use crate::disjoint::{disjoint_paths_avoiding_into, CrossingOrder, PathBuilder};
use crate::error::HhcError;
use crate::metrics::MetricsReport;
use crate::node::NodeId;
use crate::pathset::PathSet;
use crate::topology::Hhc;
use crate::{CacheConfig, Path};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// Geometry and policy of a [`Router`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterConfig {
    /// Worker threads answering queries (at least 1).
    pub threads: usize,
    /// Crossing order every answer uses.
    pub order: CrossingOrder,
    /// Per-worker L1 cache capacities.
    pub l1: CacheConfig,
    /// Shared L2 tier geometry ([`L2Config::disabled`] gives the
    /// per-worker-cache-only baseline).
    pub l2: L2Config,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            threads: std::thread::available_parallelism().map_or(2, |n| n.get().min(8)),
            order: CrossingOrder::Gray,
            l1: CacheConfig::enabled(),
            l2: L2Config::enabled(),
        }
    }
}

/// One answered query in owned form: the `m + 1` (or fewer, under
/// faults) internally disjoint paths, or the construction error for
/// that pair. Produced by the compatibility shims; the allocation-free
/// pipeline answers through [`QueryBatchResult`] instead.
pub type QueryResult = Result<Vec<Path>, HhcError>;

/// One query's answer inside a [`QueryBatchResult`] arena.
#[derive(Debug, Clone, PartialEq, Eq)]
enum QuerySlot {
    /// Not yet answered (only observable mid-reassembly).
    Pending,
    /// Paths `[first, last)` of the arena.
    Ok {
        first: u32,
        last: u32,
    },
    Failed(HhcError),
}

/// A borrowed disjoint-path family: one query's span of a
/// [`QueryBatchResult`] arena. Paths are `&[NodeId]` slices into the
/// shared [`PathSet`] — nothing is owned, nothing is cloned.
#[derive(Debug, Clone, Copy)]
pub struct FamilyRef<'a> {
    set: &'a PathSet,
    first: usize,
    last: usize,
}

impl<'a> FamilyRef<'a> {
    /// Number of paths in the family (`m + 1` plain; possibly fewer
    /// under heavy faults, down to zero).
    pub fn len(&self) -> usize {
        self.last - self.first
    }

    /// Whether the family is empty (no fault-free path survived).
    pub fn is_empty(&self) -> bool {
        self.first == self.last
    }

    /// The `j`-th path of the family.
    ///
    /// # Panics
    /// If `j >= self.len()`.
    pub fn path(&self, j: usize) -> &'a [NodeId] {
        assert!(j < self.len(), "path index {j} out of range");
        self.set.path(self.first + j)
    }

    /// Iterates the family's paths as node slices.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &'a [NodeId]> + 'a {
        let copy = *self;
        (copy.first..copy.last).map(move |i| copy.set.path(i))
    }

    /// Materialises the family as owned paths (allocates; the shims'
    /// bridge to the legacy [`QueryResult`] shape).
    pub fn to_paths(&self) -> Vec<Path> {
        self.iter().map(<[NodeId]>::to_vec).collect()
    }
}

/// Arena-backed answers for a whole batch of queries: one reusable
/// [`PathSet`] holding every path of every answered family, plus one
/// span-or-error slot per query. Reusing the buffer across
/// [`Router::query_many_into`] calls makes the steady-state query path
/// allocation-free — capacity is retained by [`Self::clear`].
#[derive(Debug, Default)]
pub struct QueryBatchResult {
    paths: PathSet,
    slots: Vec<QuerySlot>,
}

impl QueryBatchResult {
    /// An empty result buffer (allocates nothing until first use).
    pub fn new() -> Self {
        QueryBatchResult::default()
    }

    /// Number of query slots (answered or pending).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the buffer holds no query slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total paths across all answered families.
    pub fn total_paths(&self) -> usize {
        self.paths.len()
    }

    /// Drops all answers, keeping both buffers' capacity.
    pub fn clear(&mut self) {
        self.paths.clear();
        self.slots.clear();
    }

    /// Query `i`'s answer: the family span, or the construction error.
    ///
    /// # Panics
    /// If `i` is out of range or (unreachable through the public query
    /// entry points) the slot was never answered.
    pub fn get(&self, i: usize) -> Result<FamilyRef<'_>, &HhcError> {
        match &self.slots[i] {
            QuerySlot::Ok { first, last } => Ok(FamilyRef {
                set: &self.paths,
                first: *first as usize,
                last: *last as usize,
            }),
            QuerySlot::Failed(e) => Err(e),
            QuerySlot::Pending => panic!("query {i} was never answered"),
        }
    }

    /// Iterates every query's answer in submission order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = Result<FamilyRef<'_>, &HhcError>> + '_ {
        (0..self.slots.len()).map(move |i| self.get(i))
    }

    /// Materialises owned per-query results (allocates; the
    /// [`Router::query_many`] compatibility bridge).
    pub fn to_results(&self) -> Vec<QueryResult> {
        self.iter()
            .map(|r| r.map(|f| f.to_paths()).map_err(Clone::clone))
            .collect()
    }

    /// Clears and lays out `n` pending slots for out-of-order
    /// reassembly via [`Self::absorb`].
    fn begin(&mut self, n: usize) {
        self.clear();
        self.slots.resize(n, QuerySlot::Pending);
    }

    /// Appends one answered family, copying its paths into the arena.
    fn push_ok(&mut self, family: &PathSet) {
        let first = self.paths.len() as u32;
        for p in family.iter() {
            self.paths.push_path(p);
        }
        self.slots.push(QuerySlot::Ok {
            first,
            last: self.paths.len() as u32,
        });
    }

    /// Appends one failed query.
    fn push_err(&mut self, e: HhcError) {
        self.slots.push(QuerySlot::Failed(e));
    }

    /// Copies a worker chunk's answers into slots `base..`, rebasing
    /// its arena spans onto this arena's tail.
    fn absorb(&mut self, base: usize, chunk: &QueryBatchResult) {
        let off = self.paths.len() as u32;
        for (j, slot) in chunk.slots.iter().enumerate() {
            self.slots[base + j] = match slot {
                QuerySlot::Pending => QuerySlot::Pending,
                QuerySlot::Ok { first, last } => QuerySlot::Ok {
                    first: first + off,
                    last: last + off,
                },
                QuerySlot::Failed(e) => QuerySlot::Failed(e.clone()),
            };
        }
        for p in chunk.paths.iter() {
            self.paths.push_path(p);
        }
    }
}

/// A pooled unit of work: a chunk of queries, the index its results
/// slot back into, and the result buffer the worker fills in place. The
/// same `Batch` objects cycle `Router` → worker → `Router` forever, so
/// the channels carry no fresh allocations after warm-up.
#[derive(Default)]
struct Batch {
    base: usize,
    pairs: Vec<(NodeId, NodeId)>,
    result: QueryBatchResult,
}

/// The concurrent routing front-end; see the module docs.
///
/// Dropping the router shuts the workers down and joins them.
pub struct Router {
    hhc: Hhc,
    shared: Arc<SharedFamilyCache>,
    senders: Vec<mpsc::Sender<Batch>>,
    handles: Vec<JoinHandle<()>>,
    results_rx: mpsc::Receiver<Batch>,
    reports: Vec<Arc<AtomicReport>>,
    flush_epoch: Arc<AtomicU64>,
    next_worker: usize,
    /// Recycled batch buffers; bounded by the most batches ever in
    /// flight at once (≤ the worker count).
    pool: Vec<Batch>,
    /// Reused result buffer behind the owned-result shims.
    scratch: QueryBatchResult,
}

impl Router {
    /// Spawns the worker pool for `HHC(m)`.
    ///
    /// # Errors
    /// Propagates [`Hhc::new`]'s validation of `m`.
    pub fn new(m: u32, cfg: RouterConfig) -> Result<Router, HhcError> {
        let hhc = Hhc::new(m)?;
        let threads = cfg.threads.max(1);
        let shared = Arc::new(SharedFamilyCache::new(cfg.l2));
        let flush_epoch = Arc::new(AtomicU64::new(0));
        let (results_tx, results_rx) = mpsc::channel();
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        let mut reports = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (tx, rx) = mpsc::channel::<Batch>();
            let report = Arc::new(AtomicReport::default());
            let ctx = WorkerCtx {
                hhc,
                order: cfg.order,
                l1: cfg.l1,
                shared: Arc::clone(&shared),
                flush_epoch: Arc::clone(&flush_epoch),
                report: Arc::clone(&report),
                results_tx: results_tx.clone(),
            };
            handles.push(std::thread::spawn(move || worker_loop(ctx, rx)));
            senders.push(tx);
            reports.push(report);
        }
        Ok(Router {
            hhc,
            shared,
            senders,
            handles,
            results_rx,
            reports,
            flush_epoch,
            next_worker: 0,
            pool: Vec::new(),
            scratch: QueryBatchResult::new(),
        })
    }

    /// The network this router serves.
    pub fn hhc(&self) -> &Hhc {
        &self.hhc
    }

    /// Worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.senders.len()
    }

    /// The shared L2 tier, for fault/occupancy introspection.
    pub fn shared_cache(&self) -> &Arc<SharedFamilyCache> {
        &self.shared
    }

    /// Marks `v` faulty for all subsequent queries; returns `false` if
    /// it already was. Takes effect at each worker's next query.
    pub fn add_fault(&self, v: NodeId) -> bool {
        self.shared.add_fault(v)
    }

    /// Heals `v`; returns `false` if it was not faulty.
    pub fn clear_fault(&self, v: NodeId) -> bool {
        self.shared.clear_fault(v)
    }

    /// Current fault count.
    pub fn fault_count(&self) -> usize {
        self.shared.fault_count()
    }

    /// Current fault-set generation.
    pub fn generation(&self) -> u64 {
        self.shared.generation()
    }

    /// Drops the L2 tier and tells every worker to replace its L1 with
    /// a fresh one before its next batch. This is the
    /// full-rebuild-on-fault baseline the bench ablates against — the
    /// serving path never calls it (lazy invalidation makes it
    /// unnecessary).
    pub fn flush_caches(&self) {
        self.shared.flush();
        self.flush_epoch.fetch_add(1, Ordering::Release);
    }

    /// Answers a batch into a caller-owned (reusable) result buffer:
    /// pairs are split into contiguous chunks, one per worker, answered
    /// concurrently, and reassembled in submission order. Equivalent to
    /// answering each pair serially under a fixed fault set. With a
    /// warm `out`, allocation-free end to end.
    pub fn query_many_into(&mut self, pairs: &[(NodeId, NodeId)], out: &mut QueryBatchResult) {
        out.begin(pairs.len());
        if pairs.is_empty() {
            return;
        }
        let threads = self.senders.len();
        let chunk = pairs.len().div_ceil(threads);
        let mut outstanding = 0usize;
        for (i, slice) in pairs.chunks(chunk).enumerate() {
            let mut b = self.pool.pop().unwrap_or_default();
            b.base = i * chunk;
            b.pairs.clear();
            b.pairs.extend_from_slice(slice);
            self.submit(i % threads, b);
            outstanding += 1;
        }
        for _ in 0..outstanding {
            let b = self.results_rx.recv().expect("worker pool hung up");
            out.absorb(b.base, &b.result);
            self.pool.push(b);
        }
    }

    /// Answers one query into a caller-owned (reusable) [`PathSet`],
    /// round-robining across the workers; returns the family size. With
    /// a warm `out`, allocation-free end to end.
    ///
    /// # Errors
    /// The construction error for the pair, exactly as the serial
    /// avoiding entry point reports it.
    pub fn query_into(
        &mut self,
        u: NodeId,
        v: NodeId,
        out: &mut PathSet,
    ) -> Result<usize, HhcError> {
        let b = self.exchange_single(u, v);
        out.clear();
        let r = match b.result.get(0) {
            Ok(f) => {
                for p in f.iter() {
                    out.push_path(p);
                }
                Ok(f.len())
            }
            Err(e) => Err(e.clone()),
        };
        self.pool.push(b);
        r
    }

    /// Answers one query in owned form — a compatibility shim over
    /// [`Self::query_into`] (the pooled pipeline underneath is shared;
    /// only the final `Vec<Path>` materialisation allocates).
    pub fn query(&mut self, u: NodeId, v: NodeId) -> QueryResult {
        let b = self.exchange_single(u, v);
        let r = b.result.get(0).map(|f| f.to_paths()).map_err(Clone::clone);
        self.pool.push(b);
        r
    }

    /// Answers a batch in owned form — a compatibility shim over
    /// [`Self::query_many_into`] through an internal reused buffer.
    pub fn query_many(&mut self, pairs: &[(NodeId, NodeId)]) -> Vec<QueryResult> {
        let mut out = std::mem::take(&mut self.scratch);
        self.query_many_into(pairs, &mut out);
        let results = out.to_results();
        self.scratch = out;
        results
    }

    /// Merged effort snapshot across all workers (each worker publishes
    /// per-batch counter deltas into lock-free atomics;
    /// `fault_generation` is the maximum generation any worker has
    /// acted on).
    pub fn metrics(&self) -> MetricsReport {
        let mut merged = MetricsReport::default();
        for r in &self.reports {
            r.merge_into(&mut merged);
        }
        merged
    }

    /// Ships a one-pair pooled batch to the next worker and returns the
    /// answered batch (callers recycle it into the pool).
    fn exchange_single(&mut self, u: NodeId, v: NodeId) -> Batch {
        let w = self.next_worker;
        self.next_worker = (self.next_worker + 1) % self.senders.len();
        let mut b = self.pool.pop().unwrap_or_default();
        b.base = 0;
        b.pairs.clear();
        b.pairs.push((u, v));
        self.submit(w, b);
        self.results_rx.recv().expect("worker pool hung up")
    }

    fn submit(&self, worker: usize, batch: Batch) {
        self.senders[worker]
            .send(batch)
            .expect("worker pool hung up");
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.senders.clear(); // disconnects every worker's receiver
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Everything a worker owns or shares; bundled so the spawn site stays
/// readable.
struct WorkerCtx {
    hhc: Hhc,
    order: CrossingOrder,
    l1: CacheConfig,
    shared: Arc<SharedFamilyCache>,
    flush_epoch: Arc<AtomicU64>,
    report: Arc<AtomicReport>,
    results_tx: mpsc::Sender<Batch>,
}

fn worker_loop(ctx: WorkerCtx, rx: mpsc::Receiver<Batch>) {
    let mut builder = PathBuilder::with_caches(ctx.l1);
    builder.attach_shared_cache(Arc::clone(&ctx.shared));
    let mut out = PathSet::new();
    let mut local_faults: HashSet<NodeId> = HashSet::new();
    let mut local_gen = ctx.shared.faults_snapshot_into(&mut local_faults);
    let mut seen_flush = ctx.flush_epoch.load(Ordering::Acquire);
    // The builder's cumulative report at the last publication; the
    // difference against it is what each batch adds to the atomics.
    let mut prev = MetricsReport::default();
    while let Ok(mut batch) = rx.recv() {
        let fe = ctx.flush_epoch.load(Ordering::Acquire);
        if fe != seen_flush {
            seen_flush = fe;
            builder.set_cache_config(ctx.l1);
        }
        batch.result.clear();
        for &(u, v) in &batch.pairs {
            // Epoch fast path: one atomic load per query; the fault set
            // is re-cloned only when an event moved the generation.
            let gen = ctx.shared.generation();
            if gen != local_gen {
                local_gen = ctx.shared.faults_snapshot_into(&mut local_faults);
            }
            match disjoint_paths_avoiding_into(
                &ctx.hhc,
                u,
                v,
                ctx.order,
                &local_faults,
                &mut out,
                &mut builder,
            ) {
                Ok(_) => batch.result.push_ok(&out),
                Err(e) => batch.result.push_err(e),
            }
        }
        let mut cur = builder.metrics();
        cur.construction.fault_generation = local_gen;
        // Publish before send: the channel's happens-before edge makes
        // the relaxed counter updates visible to whoever receives the
        // batch and then reads Router::metrics().
        ctx.report.publish(&cur, &prev);
        prev = cur;
        if ctx.results_tx.send(batch).is_err() {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disjoint::disjoint_paths;

    fn cfg(threads: usize) -> RouterConfig {
        RouterConfig {
            threads,
            ..RouterConfig::default()
        }
    }

    #[test]
    fn rejects_invalid_m() {
        assert!(Router::new(99, RouterConfig::default()).is_err());
    }

    #[test]
    fn answers_match_the_plain_construction() {
        let mut router = Router::new(3, cfg(3)).unwrap();
        let h = Hhc::new(3).unwrap();
        let pairs = workload_pairs(&h, 40);
        let answers = router.query_many(&pairs);
        for ((u, v), got) in pairs.iter().zip(&answers) {
            let want = disjoint_paths(&h, *u, *v, CrossingOrder::Gray).unwrap();
            assert_eq!(got.as_ref().unwrap(), &want);
        }
        let m = router.metrics();
        assert_eq!(m.construction.queries, 40);
        // Every L1 miss probed the L2 exactly once.
        assert_eq!(
            m.construction.family_hits + m.construction.l2_hits + m.construction.l2_misses,
            m.construction.queries,
            "tiered-probe conservation law"
        );
    }

    #[test]
    fn pipeline_and_shim_agree() {
        // query_many_into (arena) and query_many (owned) answer the
        // same batch identically, and query_into matches query.
        let mut router = Router::new(3, cfg(2)).unwrap();
        let h = Hhc::new(3).unwrap();
        let pairs = workload_pairs(&h, 24);
        let owned = router.query_many(&pairs);
        let mut arena = QueryBatchResult::new();
        router.query_many_into(&pairs, &mut arena);
        assert_eq!(arena.len(), pairs.len());
        assert_eq!(arena.to_results(), owned);
        let mut single = PathSet::new();
        for (i, &(u, v)) in pairs.iter().enumerate() {
            match router.query_into(u, v, &mut single) {
                Ok(n) => {
                    let want = owned[i].as_ref().unwrap();
                    assert_eq!(n, want.len());
                    assert_eq!(&single.to_paths(), want);
                }
                Err(e) => assert_eq!(Err(e), owned[i].clone()),
            }
        }
    }

    #[test]
    fn batch_buffers_are_pooled_and_bounded() {
        let threads = 3;
        let mut router = Router::new(3, cfg(threads)).unwrap();
        let h = Hhc::new(3).unwrap();
        let pairs = workload_pairs(&h, 30);
        let mut out = QueryBatchResult::new();
        for _ in 0..5 {
            router.query_many_into(&pairs, &mut out);
            let _ = router.query(pairs[0].0, pairs[0].1);
        }
        assert!(
            router.pool.len() <= threads,
            "free list holds at most one batch per worker, got {}",
            router.pool.len()
        );
    }

    #[test]
    fn empty_batch_answers_empty() {
        let mut router = Router::new(2, cfg(2)).unwrap();
        assert!(router.query_many(&[]).is_empty());
        let mut out = QueryBatchResult::new();
        router.query_many_into(&[], &mut out);
        assert!(out.is_empty());
        assert_eq!(out.total_paths(), 0);
    }

    #[test]
    fn l2_promotes_across_workers() {
        // A repeated pair answered by many single queries round-robins
        // across workers; after the first solve every other worker hits
        // the shared tier (or its own L1).
        let mut router = Router::new(3, cfg(4)).unwrap();
        let h = Hhc::new(3).unwrap();
        let u = h.node(0x00, 0b000).unwrap();
        let v = h.node(0xA5, 0b110).unwrap();
        let first = router.query(u, v).unwrap();
        for _ in 0..7 {
            assert_eq!(router.query(u, v).unwrap(), first);
        }
        let c = router.metrics().construction;
        assert_eq!(c.queries, 8);
        assert_eq!(c.l2_misses, 1, "only the first query constructs");
        assert_eq!(c.family_hits + c.l2_hits, 7);
    }

    #[test]
    fn fault_events_reach_queries_and_stamp_metrics() {
        let mut router = Router::new(2, cfg(2)).unwrap();
        let h = Hhc::new(2).unwrap();
        let u = h.node(0b0000, 0b00).unwrap();
        let v = h.node(0b0101, 0b11).unwrap();
        let plain = router.query(u, v).unwrap();
        // Fault an interior node of the first path: answers must reroute.
        let fault = plain[0][1];
        assert!(router.add_fault(fault));
        let rerouted = router.query_many(&[(u, v), (u, v)]);
        for r in &rerouted {
            let fam = r.as_ref().unwrap();
            assert!(fam.iter().all(|p| !p.contains(&fault)));
        }
        assert_ne!(rerouted[0].as_ref().unwrap(), &plain);
        // Faulty endpoints error like the serial avoiding entry point.
        assert_eq!(router.query(fault, v), Err(HhcError::FaultyEndpoint(fault)));
        assert!(router.clear_fault(fault));
        assert_eq!(router.query(u, v).unwrap(), plain);
        let c = router.metrics().construction;
        assert_eq!(c.fault_generation, 2, "add + clear = two generations");
        assert!(c.fault_reroutes >= 1);
    }

    #[test]
    fn flush_caches_forces_reconstruction() {
        let mut router = Router::new(3, cfg(2)).unwrap();
        let h = Hhc::new(3).unwrap();
        let u = h.node(0x01, 0b001).unwrap();
        let v = h.node(0x3C, 0b100).unwrap();
        let a = router.query(u, v).unwrap();
        router.flush_caches();
        assert!(router.shared_cache().is_empty());
        let b = router.query(u, v).unwrap();
        assert_eq!(a, b, "flushing never changes answers");
        let c = router.metrics().construction;
        assert_eq!(
            c.family_hits + c.l2_hits,
            0,
            "both tiers were cold both times"
        );
    }

    fn workload_pairs(h: &Hhc, n: usize) -> Vec<(NodeId, NodeId)> {
        // Deterministic xorshift pairs, mixing same-cube and cross-cube.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let xmask = (1u128 << h.positions()) - 1;
        let mut pairs = Vec::with_capacity(n);
        while pairs.len() < n {
            let u = h
                .node(
                    next() as u128 & xmask,
                    (next() % (1 << h.m()) as u64) as u32,
                )
                .unwrap();
            let v = h
                .node(
                    next() as u128 & xmask,
                    (next() % (1 << h.m()) as u64) as u32,
                )
                .unwrap();
            if u != v {
                pairs.push((u, v));
            }
        }
        pairs
    }
}
