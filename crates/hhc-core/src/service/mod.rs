//! Concurrent routing service: a long-lived [`Router`] answering
//! disjoint-path queries from a tiered family cache under a live fault
//! feed.
//!
//! Every earlier consumer of the construction engine is a closed-loop
//! batch ([`crate::batch`], the experiment drivers, the DES). This
//! module turns the library into a serving system: a pool of worker
//! threads, each owning a [`PathBuilder`] (the per-worker **L1** — the
//! existing caches, semantics unchanged), layered over one process-wide
//! [`SharedFamilyCache`] (**L2** — sharded, read-mostly, keyed by the
//! same canonical `(m, Xu⊕Xv, Yu, Yv, order)` signature). A query is
//! answered L1 → L2 → construct; misses are promoted into both tiers,
//! so one worker's solve warms every other worker.
//!
//! ## Fault feed
//!
//! [`Router::add_fault`] / [`Router::clear_fault`] take effect without
//! stopping the service: each event bumps the cache's generation
//! counter, workers notice the moved generation with one atomic load at
//! their next query and re-snapshot the fault set. Cached entries are
//! **not** discarded — they are plain (fault-blind) families, which stay
//! true facts about the topology. Each query runs through the
//! fault-avoiding layer, which scans the (possibly replayed) plain
//! family against the live snapshot and repairs blocked ones via the
//! `construct_avoiding` rebuild — the rebuild bypasses every cache tier,
//! so answers are byte-identical to a cold cache *by construction*
//! (the PR 4/PR 7 equivalence argument, extended to the shared tier;
//! see `tests/router_equivalence.rs`). Replays that had to be repaired
//! are counted as `l2_invalidations` in
//! [`ConstructionMetrics`](crate::ConstructionMetrics).
//!
//! ## Interface
//!
//! Queries arrive over per-worker mpsc channels:
//! [`Router::query_many`] splits a batch into contiguous chunks, fans
//! them across the workers and reassembles results in submission order;
//! [`Router::query`] round-robins single queries. Results depend only
//! on the pair and the fault snapshot — never on which worker answered
//! or how the chunks interleaved.

mod shared;

pub use shared::{L2Config, SharedFamilyCache, DEFAULT_L2_SHARDS, DEFAULT_L2_SHARD_CAPACITY};

use crate::disjoint::{disjoint_paths_avoiding_into, CrossingOrder, PathBuilder};
use crate::error::HhcError;
use crate::metrics::MetricsReport;
use crate::node::NodeId;
use crate::pathset::PathSet;
use crate::topology::Hhc;
use crate::{CacheConfig, Path};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// Geometry and policy of a [`Router`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterConfig {
    /// Worker threads answering queries (at least 1).
    pub threads: usize,
    /// Crossing order every answer uses.
    pub order: CrossingOrder,
    /// Per-worker L1 cache capacities.
    pub l1: CacheConfig,
    /// Shared L2 tier geometry ([`L2Config::disabled`] gives the
    /// per-worker-cache-only baseline).
    pub l2: L2Config,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            threads: std::thread::available_parallelism().map_or(2, |n| n.get().min(8)),
            order: CrossingOrder::Gray,
            l1: CacheConfig::enabled(),
            l2: L2Config::enabled(),
        }
    }
}

/// One answered query: the `m + 1` (or fewer, under faults) internally
/// disjoint paths, or the construction error for that pair.
pub type QueryResult = Result<Vec<Path>, HhcError>;

/// A chunk of queries plus the index its results slot back into.
struct Batch {
    base: usize,
    pairs: Vec<(NodeId, NodeId)>,
}

/// The concurrent routing front-end; see the module docs.
///
/// Dropping the router shuts the workers down and joins them.
pub struct Router {
    hhc: Hhc,
    shared: Arc<SharedFamilyCache>,
    senders: Vec<mpsc::Sender<Batch>>,
    handles: Vec<JoinHandle<()>>,
    results_rx: mpsc::Receiver<(usize, Vec<QueryResult>)>,
    metrics_slots: Vec<Arc<Mutex<MetricsReport>>>,
    flush_epoch: Arc<AtomicU64>,
    next_worker: usize,
}

impl Router {
    /// Spawns the worker pool for `HHC(m)`.
    ///
    /// # Errors
    /// Propagates [`Hhc::new`]'s validation of `m`.
    pub fn new(m: u32, cfg: RouterConfig) -> Result<Router, HhcError> {
        let hhc = Hhc::new(m)?;
        let threads = cfg.threads.max(1);
        let shared = Arc::new(SharedFamilyCache::new(cfg.l2));
        let flush_epoch = Arc::new(AtomicU64::new(0));
        let (results_tx, results_rx) = mpsc::channel();
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        let mut metrics_slots = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (tx, rx) = mpsc::channel::<Batch>();
            let slot = Arc::new(Mutex::new(MetricsReport::default()));
            let ctx = WorkerCtx {
                hhc,
                order: cfg.order,
                l1: cfg.l1,
                shared: Arc::clone(&shared),
                flush_epoch: Arc::clone(&flush_epoch),
                slot: Arc::clone(&slot),
                results_tx: results_tx.clone(),
            };
            handles.push(std::thread::spawn(move || worker_loop(ctx, rx)));
            senders.push(tx);
            metrics_slots.push(slot);
        }
        Ok(Router {
            hhc,
            shared,
            senders,
            handles,
            results_rx,
            metrics_slots,
            flush_epoch,
            next_worker: 0,
        })
    }

    /// The network this router serves.
    pub fn hhc(&self) -> &Hhc {
        &self.hhc
    }

    /// Worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.senders.len()
    }

    /// The shared L2 tier, for fault/occupancy introspection.
    pub fn shared_cache(&self) -> &Arc<SharedFamilyCache> {
        &self.shared
    }

    /// Marks `v` faulty for all subsequent queries; returns `false` if
    /// it already was. Takes effect at each worker's next query.
    pub fn add_fault(&self, v: NodeId) -> bool {
        self.shared.add_fault(v)
    }

    /// Heals `v`; returns `false` if it was not faulty.
    pub fn clear_fault(&self, v: NodeId) -> bool {
        self.shared.clear_fault(v)
    }

    /// Current fault count.
    pub fn fault_count(&self) -> usize {
        self.shared.fault_count()
    }

    /// Current fault-set generation.
    pub fn generation(&self) -> u64 {
        self.shared.generation()
    }

    /// Drops the L2 tier and tells every worker to replace its L1 with
    /// a fresh one before its next batch. This is the
    /// full-rebuild-on-fault baseline the bench ablates against — the
    /// serving path never calls it (lazy invalidation makes it
    /// unnecessary).
    pub fn flush_caches(&self) {
        self.shared.flush();
        self.flush_epoch.fetch_add(1, Ordering::Release);
    }

    /// Answers one query, round-robining across the workers.
    pub fn query(&mut self, u: NodeId, v: NodeId) -> QueryResult {
        let w = self.next_worker;
        self.next_worker = (self.next_worker + 1) % self.senders.len();
        self.submit(
            w,
            Batch {
                base: 0,
                pairs: vec![(u, v)],
            },
        );
        let (_, mut results) = self.results_rx.recv().expect("worker pool hung up");
        results
            .pop()
            .expect("single-query batch returns one result")
    }

    /// Answers a batch: the pairs are split into contiguous chunks, one
    /// per worker, answered concurrently, and returned in submission
    /// order. Equivalent to calling [`Self::query`] per pair serially
    /// under a fixed fault set.
    pub fn query_many(&mut self, pairs: &[(NodeId, NodeId)]) -> Vec<QueryResult> {
        if pairs.is_empty() {
            return Vec::new();
        }
        let threads = self.senders.len();
        let chunk = pairs.len().div_ceil(threads);
        let mut outstanding = 0;
        for (i, slice) in pairs.chunks(chunk).enumerate() {
            self.submit(
                i % threads,
                Batch {
                    base: i * chunk,
                    pairs: slice.to_vec(),
                },
            );
            outstanding += 1;
        }
        let mut results: Vec<Option<QueryResult>> = (0..pairs.len()).map(|_| None).collect();
        for _ in 0..outstanding {
            let (base, chunk_results) = self.results_rx.recv().expect("worker pool hung up");
            for (j, r) in chunk_results.into_iter().enumerate() {
                results[base + j] = Some(r);
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every submitted query is answered"))
            .collect()
    }

    /// Merged effort snapshot across all workers (each worker publishes
    /// its cumulative report after every batch; `fault_generation` is
    /// the maximum generation any worker has acted on).
    pub fn metrics(&self) -> MetricsReport {
        let mut merged = MetricsReport::default();
        for slot in &self.metrics_slots {
            merged.merge(&slot.lock().expect("metrics slot poisoned"));
        }
        merged
    }

    fn submit(&self, worker: usize, batch: Batch) {
        self.senders[worker]
            .send(batch)
            .expect("worker pool hung up");
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.senders.clear(); // disconnects every worker's receiver
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Everything a worker owns or shares; bundled so the spawn site stays
/// readable.
struct WorkerCtx {
    hhc: Hhc,
    order: CrossingOrder,
    l1: CacheConfig,
    shared: Arc<SharedFamilyCache>,
    flush_epoch: Arc<AtomicU64>,
    slot: Arc<Mutex<MetricsReport>>,
    results_tx: mpsc::Sender<(usize, Vec<QueryResult>)>,
}

fn worker_loop(ctx: WorkerCtx, rx: mpsc::Receiver<Batch>) {
    let mut builder = PathBuilder::with_caches(ctx.l1);
    builder.attach_shared_cache(Arc::clone(&ctx.shared));
    let mut out = PathSet::new();
    let (mut local_gen, mut local_faults): (u64, HashSet<NodeId>) = ctx.shared.faults_snapshot();
    let mut seen_flush = ctx.flush_epoch.load(Ordering::Acquire);
    while let Ok(batch) = rx.recv() {
        let fe = ctx.flush_epoch.load(Ordering::Acquire);
        if fe != seen_flush {
            seen_flush = fe;
            builder.set_cache_config(ctx.l1);
        }
        let mut results = Vec::with_capacity(batch.pairs.len());
        for (u, v) in batch.pairs {
            // Epoch fast path: one atomic load per query; the fault set
            // is re-cloned only when an event moved the generation.
            let gen = ctx.shared.generation();
            if gen != local_gen {
                (local_gen, local_faults) = ctx.shared.faults_snapshot();
            }
            let r = disjoint_paths_avoiding_into(
                &ctx.hhc,
                u,
                v,
                ctx.order,
                &local_faults,
                &mut out,
                &mut builder,
            )
            .map(|_| out.to_paths());
            results.push(r);
        }
        let mut report = builder.metrics();
        report.construction.fault_generation = local_gen;
        *ctx.slot.lock().expect("metrics slot poisoned") = report;
        if ctx.results_tx.send((batch.base, results)).is_err() {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disjoint::disjoint_paths;

    fn cfg(threads: usize) -> RouterConfig {
        RouterConfig {
            threads,
            ..RouterConfig::default()
        }
    }

    #[test]
    fn rejects_invalid_m() {
        assert!(Router::new(99, RouterConfig::default()).is_err());
    }

    #[test]
    fn answers_match_the_plain_construction() {
        let mut router = Router::new(3, cfg(3)).unwrap();
        let h = Hhc::new(3).unwrap();
        let pairs = workload_pairs(&h, 40);
        let answers = router.query_many(&pairs);
        for ((u, v), got) in pairs.iter().zip(&answers) {
            let want = disjoint_paths(&h, *u, *v, CrossingOrder::Gray).unwrap();
            assert_eq!(got.as_ref().unwrap(), &want);
        }
        let m = router.metrics();
        assert_eq!(m.construction.queries, 40);
        // Every L1 miss probed the L2 exactly once.
        assert_eq!(
            m.construction.family_hits + m.construction.l2_hits + m.construction.l2_misses,
            m.construction.queries,
            "tiered-probe conservation law"
        );
    }

    #[test]
    fn l2_promotes_across_workers() {
        // A repeated pair answered by many single queries round-robins
        // across workers; after the first solve every other worker hits
        // the shared tier (or its own L1).
        let mut router = Router::new(3, cfg(4)).unwrap();
        let h = Hhc::new(3).unwrap();
        let u = h.node(0x00, 0b000).unwrap();
        let v = h.node(0xA5, 0b110).unwrap();
        let first = router.query(u, v).unwrap();
        for _ in 0..7 {
            assert_eq!(router.query(u, v).unwrap(), first);
        }
        let c = router.metrics().construction;
        assert_eq!(c.queries, 8);
        assert_eq!(c.l2_misses, 1, "only the first query constructs");
        assert_eq!(c.family_hits + c.l2_hits, 7);
    }

    #[test]
    fn fault_events_reach_queries_and_stamp_metrics() {
        let mut router = Router::new(2, cfg(2)).unwrap();
        let h = Hhc::new(2).unwrap();
        let u = h.node(0b0000, 0b00).unwrap();
        let v = h.node(0b0101, 0b11).unwrap();
        let plain = router.query(u, v).unwrap();
        // Fault an interior node of the first path: answers must reroute.
        let fault = plain[0][1];
        assert!(router.add_fault(fault));
        let rerouted = router.query_many(&[(u, v), (u, v)]);
        for r in &rerouted {
            let fam = r.as_ref().unwrap();
            assert!(fam.iter().all(|p| !p.contains(&fault)));
        }
        assert_ne!(rerouted[0].as_ref().unwrap(), &plain);
        // Faulty endpoints error like the serial avoiding entry point.
        assert_eq!(router.query(fault, v), Err(HhcError::FaultyEndpoint(fault)));
        assert!(router.clear_fault(fault));
        assert_eq!(router.query(u, v).unwrap(), plain);
        let c = router.metrics().construction;
        assert_eq!(c.fault_generation, 2, "add + clear = two generations");
        assert!(c.fault_reroutes >= 1);
    }

    #[test]
    fn flush_caches_forces_reconstruction() {
        let mut router = Router::new(3, cfg(2)).unwrap();
        let h = Hhc::new(3).unwrap();
        let u = h.node(0x01, 0b001).unwrap();
        let v = h.node(0x3C, 0b100).unwrap();
        let a = router.query(u, v).unwrap();
        router.flush_caches();
        assert!(router.shared_cache().is_empty());
        let b = router.query(u, v).unwrap();
        assert_eq!(a, b, "flushing never changes answers");
        let c = router.metrics().construction;
        assert_eq!(
            c.family_hits + c.l2_hits,
            0,
            "both tiers were cold both times"
        );
    }

    fn workload_pairs(h: &Hhc, n: usize) -> Vec<(NodeId, NodeId)> {
        // Deterministic xorshift pairs, mixing same-cube and cross-cube.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let xmask = (1u128 << h.positions()) - 1;
        let mut pairs = Vec::with_capacity(n);
        while pairs.len() < n {
            let u = h
                .node(
                    next() as u128 & xmask,
                    (next() % (1 << h.m()) as u64) as u32,
                )
                .unwrap();
            let v = h
                .node(
                    next() as u128 & xmask,
                    (next() % (1 << h.m()) as u64) as u32,
                )
                .unwrap();
            if u != v {
                pairs.push((u, v));
            }
        }
        pairs
    }
}
