//! Property-based tests for the graph substrate: random graphs, checked
//! invariants between BFS, Dinic, and both Menger decompositions.

use graphs::{bfs, csr::CsrGraph, edge_disjoint, vertex_disjoint};
use proptest::prelude::*;

/// Strategy: a random simple graph with n in [2, 24] nodes given by an
/// edge-presence bitmask over the upper-triangular pairs.
fn random_graph() -> impl Strategy<Value = CsrGraph> {
    (
        2u32..=24,
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(n, a, b, c, d, e)| {
            let words = [a, b, c, d, e];
            let mut edges = Vec::new();
            let mut idx = 0usize;
            for x in 0..n {
                for y in x + 1..n {
                    let bit = words[idx / 64] >> (idx % 64) & 1;
                    // Thin the graph a little so cuts are interesting.
                    if bit == 1 && (!idx.is_multiple_of(3) || x + 1 == y) {
                        edges.push((x, y));
                    }
                    idx += 1;
                }
            }
            CsrGraph::from_edges(n, &edges)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// BFS distances satisfy the edge-relaxation (triangle) property:
    /// |d(u) − d(w)| ≤ 1 across every edge reachable from the source.
    #[test]
    fn bfs_distances_are_consistent(g in random_graph()) {
        let run = bfs::Bfs::run(&g, 0);
        for (a, b) in g.edges() {
            match (run.dist(a), run.dist(b)) {
                (Some(da), Some(db)) => {
                    prop_assert!(da.abs_diff(db) <= 1, "edge ({a},{b}): {da} vs {db}");
                }
                (Some(_), None) | (None, Some(_)) => {
                    return Err(TestCaseError::fail(
                        proptest::test_runner::Reason::from("edge with one endpoint unreachable"),
                    ));
                }
                (None, None) => {}
            }
        }
    }

    /// Path reconstruction matches the reported distance for every node.
    #[test]
    fn bfs_paths_match_distances(g in random_graph()) {
        let run = bfs::Bfs::run(&g, 0);
        for v in 0..g.num_nodes() {
            if let Some(p) = run.path_to(v) {
                prop_assert_eq!((p.len() - 1) as u32, run.dist(v).unwrap());
                for w in p.windows(2) {
                    prop_assert!(g.has_edge(w[0], w[1]));
                }
            } else {
                prop_assert_eq!(run.dist(v), None);
            }
        }
    }

    /// Local vertex connectivity is symmetric and bounded by min degree.
    #[test]
    fn vertex_connectivity_symmetric(g in random_graph()) {
        let n = g.num_nodes();
        let (s, t) = (0, n - 1);
        let st = vertex_disjoint::vertex_connectivity_between(&g, s, t);
        let ts = vertex_disjoint::vertex_connectivity_between(&g, t, s);
        prop_assert_eq!(st, ts);
        if !g.has_edge(s, t) {
            prop_assert!(st <= g.degree(s).min(g.degree(t)));
        }
    }

    /// The vertex-disjoint decomposition is valid and achieves κ(s,t).
    #[test]
    fn vertex_disjoint_paths_validate(g in random_graph()) {
        let (s, t) = (0, g.num_nodes() - 1);
        let k = vertex_disjoint::vertex_connectivity_between(&g, s, t);
        let ps = vertex_disjoint::vertex_disjoint_paths(&g, s, t);
        prop_assert_eq!(ps.len() as u32, k);
        vertex_disjoint::check_disjoint_paths(&g, s, t, &ps)
            .map_err(|e| TestCaseError::fail(proptest::test_runner::Reason::from(e)))?;
    }

    /// Edge connectivity dominates vertex connectivity, and its
    /// decomposition validates.
    #[test]
    fn edge_disjoint_paths_validate(g in random_graph()) {
        let (s, t) = (0, g.num_nodes() - 1);
        let lam = edge_disjoint::edge_connectivity_between(&g, s, t);
        let kap = vertex_disjoint::vertex_connectivity_between(&g, s, t);
        prop_assert!(lam >= kap, "λ={lam} < κ={kap}");
        let ps = edge_disjoint::edge_disjoint_paths(&g, s, t);
        prop_assert_eq!(ps.len() as u32, lam);
        edge_disjoint::check_edge_disjoint(&g, s, t, &ps)
            .map_err(|e| TestCaseError::fail(proptest::test_runner::Reason::from(e)))?;
    }

    /// κ(s,t) > 0 iff s and t are in the same BFS component.
    #[test]
    fn connectivity_agrees_with_reachability(g in random_graph()) {
        let (s, t) = (0, g.num_nodes() - 1);
        let reach = bfs::Bfs::run(&g, s).dist(t).is_some();
        let k = vertex_disjoint::vertex_connectivity_between(&g, s, t);
        prop_assert_eq!(reach, k > 0);
    }
}
