//! Compressed-sparse-row adjacency for undirected graphs.
//!
//! Node ids are `u32`; explicit graphs in this suite stay well below
//! 2^24 nodes (the largest materialised HHC has m = 4, i.e. 2^20 nodes),
//! so `u32` halves the memory traffic relative to `usize` indices.

/// An immutable undirected graph in CSR form.
///
/// Both endpoints of every undirected edge appear in each other's
/// neighbour list. Neighbour lists are sorted, which makes adjacency
/// queries `O(log deg)` and iteration cache-friendly.
///
/// # Examples
/// ```
/// use graphs::CsrGraph;
/// let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
/// assert_eq!(g.degree(1), 2);
/// assert!(g.has_edge(3, 0));
/// assert_eq!(graphs::bfs::diameter(&g), Some(2));
/// ```
#[derive(Clone, Debug)]
pub struct CsrGraph {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl CsrGraph {
    /// Builds a graph with `n` nodes from an undirected edge list.
    ///
    /// Self-loops and duplicate edges are rejected with a panic: every
    /// topology in this suite is simple, and silently deduplicating would
    /// mask generator bugs.
    ///
    /// # Panics
    /// Panics if an endpoint is `>= n`, on self-loops, or on duplicate edges.
    pub fn from_edges(n: u32, edges: &[(u32, u32)]) -> Self {
        let mut degree = vec![0u32; n as usize];
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range for n={n}");
            assert_ne!(a, b, "self-loop at node {a}");
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        let mut offsets = vec![0u32; n as usize + 1];
        for v in 0..n as usize {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let mut targets = vec![0u32; 2 * edges.len()];
        let mut cursor: Vec<u32> = offsets[..n as usize].to_vec();
        for &(a, b) in edges {
            targets[cursor[a as usize] as usize] = b;
            cursor[a as usize] += 1;
            targets[cursor[b as usize] as usize] = a;
            cursor[b as usize] += 1;
        }
        for v in 0..n as usize {
            let lo = offsets[v] as usize;
            let hi = offsets[v + 1] as usize;
            targets[lo..hi].sort_unstable();
            for w in targets[lo..hi].windows(2) {
                assert_ne!(w[0], w[1], "duplicate edge at node {v}");
            }
        }
        CsrGraph { offsets, targets }
    }

    /// Builds a graph by calling `neighbors_of` for every node.
    ///
    /// The closure must be symmetric (`b ∈ f(a)` ⟺ `a ∈ f(b)`); this is
    /// checked during construction. This is how symbolic topologies
    /// (hypercube, HHC) are materialised for cross-validation.
    pub fn from_fn<F, I>(n: u32, mut neighbors_of: F) -> Self
    where
        F: FnMut(u32) -> I,
        I: IntoIterator<Item = u32>,
    {
        let mut edges = Vec::new();
        let mut seen_deg = vec![0u32; n as usize];
        for v in 0..n {
            for w in neighbors_of(v) {
                assert!(w < n, "neighbor {w} of {v} out of range");
                assert_ne!(v, w, "self-loop at {v}");
                seen_deg[v as usize] += 1;
                if v < w {
                    edges.push((v, w));
                }
            }
        }
        let g = Self::from_edges(n, &edges);
        // A asymmetric neighbour function yields 2*|edges| != sum(seen_deg).
        let total: u32 = seen_deg.iter().sum();
        assert_eq!(
            total as usize,
            g.targets.len(),
            "neighbor function is not symmetric"
        );
        g
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Sorted neighbour list of `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> u32 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Whether edge `{a, b}` exists (binary search over `a`'s list).
    pub fn has_edge(&self, a: u32, b: u32) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over all undirected edges `(a, b)` with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.num_nodes()).flat_map(move |a| {
            self.neighbors(a)
                .iter()
                .copied()
                .filter(move |&b| a < b)
                .map(move |b| (a, b))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> CsrGraph {
        CsrGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn triangle_basics() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.degree(2), 2);
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
    }

    #[test]
    fn edge_iterator_yields_each_edge_once() {
        let g = triangle();
        let mut es: Vec<_> = g.edges().collect();
        es.sort_unstable();
        assert_eq!(es, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn isolated_nodes_have_empty_lists() {
        let g = CsrGraph::from_edges(4, &[(1, 2)]);
        assert_eq!(g.neighbors(0), &[] as &[u32]);
        assert_eq!(g.neighbors(3), &[] as &[u32]);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn from_fn_builds_cycle() {
        let n = 6u32;
        let g = CsrGraph::from_fn(n, |v| vec![(v + 1) % n, (v + n - 1) % n]);
        assert_eq!(g.num_edges(), 6);
        for v in 0..n {
            assert_eq!(g.degree(v), 2);
            assert!(g.has_edge(v, (v + 1) % n));
        }
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        CsrGraph::from_edges(2, &[(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn rejects_duplicate_edge() {
        CsrGraph::from_edges(3, &[(0, 1), (1, 0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        CsrGraph::from_edges(2, &[(0, 5)]);
    }

    #[test]
    #[should_panic(expected = "not symmetric")]
    fn from_fn_rejects_asymmetric() {
        // 0 lists 1 but 1 lists nothing.
        CsrGraph::from_fn(2, |v| if v == 0 { vec![1] } else { vec![] });
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }
}
