//! General one-to-many vertex-disjoint fans on explicit graphs.
//!
//! Generalises `hypercube::fan` (which is specialised to son-cubes) to an
//! arbitrary [`CsrGraph`]: given a source `s` and distinct targets
//! `t_1 … t_k`, finds paths `s → t_i` that are pairwise vertex-disjoint
//! except at `s`, or reports that no complete fan exists. This is the
//! ground-truth baseline for one-to-many disjoint routing on materialised
//! HHC instances (the one-to-many generalisation of the paper's theorem,
//! which follow-up literature develops; symbolic construction is future
//! work — see DESIGN.md §6).
//!
//! Flow model: vertex split with unit interior capacities, unbounded
//! source, one unit sink arc per target.

use crate::csr::CsrGraph;
use crate::dinic::Dinic;
use std::collections::HashMap;

#[inline]
fn v_in(v: u32) -> u32 {
    2 * v
}
#[inline]
fn v_out(v: u32) -> u32 {
    2 * v + 1
}

/// Computes a complete fan from `s` to every target, or `None` if the
/// graph does not admit one (max flow < number of targets).
///
/// `paths[i]` runs `s → targets[i]`. Targets must be distinct and ≠ `s`.
pub fn fan_paths(g: &CsrGraph, s: u32, targets: &[u32]) -> Option<Vec<Vec<u32>>> {
    let n = g.num_nodes();
    assert!(s < n, "source out of range");
    {
        let mut seen = std::collections::HashSet::new();
        for &t in targets {
            assert!(t < n, "target out of range");
            assert!(t != s && seen.insert(t), "targets must be distinct and ≠ s");
        }
    }
    if targets.is_empty() {
        return Some(Vec::new());
    }
    let sink = 2 * n;
    let mut d = Dinic::new(sink as usize + 1);
    for v in 0..n {
        let cap = if v == s { u32::MAX / 2 } else { 1 };
        d.add_edge(v_in(v), v_out(v), cap);
    }
    for (a, b) in g.edges() {
        d.add_edge(v_out(a), v_in(b), 1);
        d.add_edge(v_out(b), v_in(a), 1);
    }
    let mut terminal: HashMap<u32, usize> = HashMap::new();
    for (i, &t) in targets.iter().enumerate() {
        d.add_edge(v_out(t), sink, 1);
        terminal.insert(t, i);
    }
    let flow = d.max_flow(v_in(s), sink);
    if (flow as usize) < targets.len() {
        return None;
    }

    let mut remaining: HashMap<(u32, u32), u32> = HashMap::new();
    for v in 0..=sink {
        for (aid, to) in d.flow_arcs_from(v) {
            *remaining.entry((v, to)).or_insert(0) += d.flow_on(aid);
        }
    }
    let mut take = |from: u32, to: u32| -> bool {
        match remaining.get_mut(&(from, to)) {
            Some(c) if *c > 0 => {
                *c -= 1;
                true
            }
            _ => false,
        }
    };
    let mut paths: Vec<Option<Vec<u32>>> = vec![None; targets.len()];
    for _ in 0..flow {
        let mut path = vec![s];
        let mut cur = s;
        loop {
            let _ = take(v_in(cur), v_out(cur));
            if let Some(&idx) = terminal.get(&cur) {
                if take(v_out(cur), sink) {
                    assert!(paths[idx].is_none(), "target reached twice");
                    paths[idx] = Some(path);
                    break;
                }
            }
            let next = g
                .neighbors(cur)
                .iter()
                .copied()
                .find(|&w| take(v_out(cur), v_in(w)))
                .expect("fan decomposition stuck (bug)");
            path.push(next);
            cur = next;
        }
    }
    Some(
        paths
            .into_iter()
            .map(|p| p.expect("missing fan path"))
            .collect(),
    )
}

/// Checks fan validity: `paths[i]` runs `s → targets[i]`, each simple,
/// pairwise sharing only `s`.
pub fn check_fan(g: &CsrGraph, s: u32, targets: &[u32], paths: &[Vec<u32>]) -> Result<(), String> {
    if paths.len() != targets.len() {
        return Err("path/target count mismatch".into());
    }
    let mut used = std::collections::HashSet::new();
    for (i, p) in paths.iter().enumerate() {
        if p.first() != Some(&s) || p.last() != Some(&targets[i]) {
            return Err(format!("path {i}: wrong endpoints"));
        }
        let mut own = std::collections::HashSet::new();
        for w in p.windows(2) {
            if !g.has_edge(w[0], w[1]) {
                return Err(format!("path {i}: non-edge"));
            }
        }
        for &x in p {
            if !own.insert(x) {
                return Err(format!("path {i}: revisit"));
            }
        }
        for &x in &p[1..] {
            if !used.insert(x) {
                return Err(format!("paths share node {x} beyond the source"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: u32) -> CsrGraph {
        CsrGraph::from_edges(n, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>())
    }

    #[test]
    fn two_way_fan_on_cycle() {
        let g = cycle(8);
        let targets = [3u32, 5];
        let f = fan_paths(&g, 0, &targets).unwrap();
        check_fan(&g, 0, &targets, &f).unwrap();
    }

    #[test]
    fn three_targets_on_cycle_impossible() {
        // Degree 2 at the source: no 3-fan can exist.
        let g = cycle(8);
        assert!(fan_paths(&g, 0, &[2, 4, 6]).is_none());
    }

    #[test]
    fn complete_graph_fans_everywhere() {
        let mut e = Vec::new();
        for a in 0..5u32 {
            for b in a + 1..5 {
                e.push((a, b));
            }
        }
        let g = CsrGraph::from_edges(5, &e);
        let targets = [1u32, 2, 3, 4];
        let f = fan_paths(&g, 0, &targets).unwrap();
        check_fan(&g, 0, &targets, &f).unwrap();
        assert!(f.iter().all(|p| p.len() == 2), "K5 fans are direct edges");
    }

    #[test]
    fn empty_targets() {
        let g = cycle(4);
        assert_eq!(fan_paths(&g, 0, &[]), Some(Vec::new()));
    }

    #[test]
    fn fan_blocked_by_cut_vertex() {
        // Star: all targets behind the centre — only one path can pass.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (1, 3)]);
        assert!(fan_paths(&g, 0, &[2, 3]).is_none());
        let f = fan_paths(&g, 0, &[2]).unwrap();
        check_fan(&g, 0, &[2], &f).unwrap();
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn rejects_duplicate_targets() {
        fan_paths(&cycle(6), 0, &[2, 2]);
    }
}
