//! Breadth-first search: ground-truth distances for cross-validation.
//!
//! Symbolic routing and path constructions in `hypercube` and `hhc-core`
//! are checked against BFS distances computed here on materialised graphs.

use crate::csr::CsrGraph;
use std::collections::VecDeque;

/// Distance value for unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

/// A single-source BFS result: distances and parent pointers.
pub struct Bfs {
    source: u32,
    dist: Vec<u32>,
    parent: Vec<u32>,
}

impl Bfs {
    /// Runs BFS from `source`.
    ///
    /// # Panics
    /// Panics if `source` is not a node of `g`.
    pub fn run(g: &CsrGraph, source: u32) -> Self {
        Self::run_avoiding(g, source, |_| false)
    }

    /// Runs BFS from `source`, never entering nodes for which
    /// `blocked(v)` is true (the source itself is always entered).
    ///
    /// Used by the fault-tolerance experiments to compute ground-truth
    /// reachability in a faulty network.
    ///
    /// # Panics
    /// Panics if `source` is not a node of `g`.
    pub fn run_avoiding<F: Fn(u32) -> bool>(g: &CsrGraph, source: u32, blocked: F) -> Self {
        let n = g.num_nodes() as usize;
        assert!((source as usize) < n, "source out of range");
        let mut dist = vec![UNREACHABLE; n];
        let mut parent = vec![UNREACHABLE; n];
        let mut queue = VecDeque::new();
        dist[source as usize] = 0;
        queue.push_back(source);
        while let Some(v) = queue.pop_front() {
            let dv = dist[v as usize];
            for &w in g.neighbors(v) {
                if dist[w as usize] == UNREACHABLE && !blocked(w) {
                    dist[w as usize] = dv + 1;
                    parent[w as usize] = v;
                    queue.push_back(w);
                }
            }
        }
        Bfs {
            source,
            dist,
            parent,
        }
    }

    /// Distance from the source to `v`, or `None` if unreachable.
    #[inline]
    pub fn dist(&self, v: u32) -> Option<u32> {
        match self.dist[v as usize] {
            UNREACHABLE => None,
            d => Some(d),
        }
    }

    /// The source node this BFS was run from.
    #[inline]
    pub fn source(&self) -> u32 {
        self.source
    }

    /// Maximum finite distance from the source (eccentricity), or `None`
    /// if the graph has a single node and no other reachable node.
    pub fn eccentricity(&self) -> Option<u32> {
        self.dist
            .iter()
            .copied()
            .filter(|&d| d != UNREACHABLE)
            .max()
    }

    /// Number of nodes reachable from the source (including the source).
    pub fn reachable_count(&self) -> usize {
        self.dist.iter().filter(|&&d| d != UNREACHABLE).count()
    }

    /// Reconstructs a shortest path from the source to `t`
    /// (inclusive of both endpoints), or `None` if unreachable.
    pub fn path_to(&self, t: u32) -> Option<Vec<u32>> {
        if self.dist[t as usize] == UNREACHABLE {
            return None;
        }
        let mut path = vec![t];
        let mut cur = t;
        while cur != self.source {
            cur = self.parent[cur as usize];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }
}

/// Exact diameter by all-pairs BFS. Intended for small graphs
/// (every materialised HHC with m ≤ 3, i.e. ≤ 2048 nodes).
///
/// Returns `None` for a disconnected or empty graph.
pub fn diameter(g: &CsrGraph) -> Option<u32> {
    let n = g.num_nodes();
    if n == 0 {
        return None;
    }
    let mut best = 0;
    for v in 0..n {
        let bfs = Bfs::run(g, v);
        if bfs.reachable_count() != n as usize {
            return None;
        }
        best = best.max(bfs.eccentricity().unwrap_or(0));
    }
    Some(best)
}

/// Lower bound on the diameter from BFS at a sample of sources.
/// `sources` may contain duplicates; out-of-range ids panic.
pub fn diameter_lower_bound(g: &CsrGraph, sources: &[u32]) -> u32 {
    sources
        .iter()
        .map(|&s| Bfs::run(g, s).eccentricity().unwrap_or(0))
        .max()
        .unwrap_or(0)
}

/// Whether `g` is connected (trivially true for the empty graph).
pub fn is_connected(g: &CsrGraph) -> bool {
    let n = g.num_nodes();
    n == 0 || Bfs::run(g, 0).reachable_count() == n as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: u32) -> CsrGraph {
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        CsrGraph::from_edges(n, &edges)
    }

    fn cycle_graph(n: u32) -> CsrGraph {
        let edges: Vec<_> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        CsrGraph::from_edges(n, &edges)
    }

    #[test]
    fn distances_on_path() {
        let g = path_graph(5);
        let bfs = Bfs::run(&g, 0);
        for v in 0..5 {
            assert_eq!(bfs.dist(v), Some(v));
        }
        assert_eq!(bfs.eccentricity(), Some(4));
    }

    #[test]
    fn path_reconstruction_is_shortest() {
        let g = cycle_graph(8);
        let bfs = Bfs::run(&g, 0);
        let p = bfs.path_to(3).unwrap();
        assert_eq!(p.first(), Some(&0));
        assert_eq!(p.last(), Some(&3));
        assert_eq!(p.len() as u32 - 1, bfs.dist(3).unwrap());
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn path_to_source_is_singleton() {
        let g = cycle_graph(4);
        let bfs = Bfs::run(&g, 2);
        assert_eq!(bfs.path_to(2), Some(vec![2]));
        assert_eq!(bfs.dist(2), Some(0));
    }

    #[test]
    fn cycle_diameter() {
        assert_eq!(diameter(&cycle_graph(8)), Some(4));
        assert_eq!(diameter(&cycle_graph(9)), Some(4));
        assert_eq!(diameter(&path_graph(6)), Some(5));
    }

    #[test]
    fn disconnected_graph_reports_none_diameter() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(diameter(&g), None);
        assert!(!is_connected(&g));
        let bfs = Bfs::run(&g, 0);
        assert_eq!(bfs.dist(2), None);
        assert_eq!(bfs.path_to(3), None);
        assert_eq!(bfs.reachable_count(), 2);
    }

    #[test]
    fn blocked_nodes_are_avoided() {
        // 0-1-2 and 0-3-2: blocking 1 forces the longer way around.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (0, 3), (3, 2)]);
        let bfs = Bfs::run_avoiding(&g, 0, |v| v == 1);
        assert_eq!(bfs.dist(2), Some(2));
        assert_eq!(bfs.path_to(2), Some(vec![0, 3, 2]));
        assert_eq!(bfs.dist(1), None);
    }

    #[test]
    fn diameter_lower_bound_no_larger_than_diameter() {
        let g = cycle_graph(10);
        let lb = diameter_lower_bound(&g, &[0, 3]);
        assert!(lb <= diameter(&g).unwrap());
        assert_eq!(lb, 5); // cycle is vertex-transitive: every ecc = 5
    }

    #[test]
    fn connected_check() {
        assert!(is_connected(&cycle_graph(5)));
        assert!(is_connected(&CsrGraph::from_edges(0, &[])));
        assert!(is_connected(&CsrGraph::from_edges(1, &[])));
        assert!(!is_connected(&CsrGraph::from_edges(2, &[])));
    }
}
