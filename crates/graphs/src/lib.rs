//! Explicit-graph substrate for the HHC suite.
//!
//! The paper's construction is *symbolic* (it never materialises the
//! exponential-size network), but its claims are cross-validated against
//! explicit graphs: BFS gives ground-truth distances and diameters, and a
//! vertex-split Dinic max-flow gives the ground-truth number of internally
//! vertex-disjoint paths between two nodes (Menger's theorem) together with
//! an actual set of such paths, which serves as the baseline the constructive
//! algorithm is compared against (Table T3).
//!
//! Contents:
//! * [`csr`] — compact immutable adjacency (compressed sparse row);
//! * [`bfs`] — breadth-first search, distances, eccentricity, diameter;
//! * [`dinic`] — Dinic's maximum-flow algorithm on integer capacities;
//! * [`vertex_disjoint`] — Menger baseline: max set of internally
//!   vertex-disjoint paths via vertex splitting;
//! * [`edge_disjoint`] — the edge version of Menger's theorem;
//! * [`fan`] — general one-to-many vertex-disjoint fans (flow-based);
//! * [`many_to_many`] — unpaired many-to-many disjoint path covers;
//! * [`articulation`] — cut vertices / biconnectivity (Tarjan);
//! * [`props`] — structural property checks (regularity, bipartiteness,
//!   triangle counts, girth).

pub mod articulation;
pub mod bfs;
pub mod csr;
pub mod dinic;
pub mod edge_disjoint;
pub mod fan;
pub mod many_to_many;
pub mod props;
pub mod vertex_disjoint;

pub use articulation::{articulation_points, is_biconnected};
pub use bfs::Bfs;
pub use csr::CsrGraph;
pub use dinic::{ArcId, Dinic, DinicStats};
pub use edge_disjoint::{edge_connectivity_between, edge_disjoint_paths};
pub use fan::fan_paths;
pub use many_to_many::many_to_many_paths;
pub use vertex_disjoint::{vertex_connectivity_between, vertex_disjoint_paths};
