//! Edge-disjoint paths (Menger, edge version).
//!
//! Used to confirm that the HHC construction's families — which are
//! *vertex*-disjoint, the stronger property — are a fortiori
//! edge-disjoint, and to measure edge connectivity `λ(s, t)` on
//! materialised topologies (`λ = κ = m+1` on the HHC, being regular
//! and maximally connected).
//!
//! Model: one flow node per graph node, each undirected edge becomes two
//! unit-capacity directed arcs. Max-flow = max number of edge-disjoint
//! paths; decomposition walks positive-flow arcs.

use crate::csr::CsrGraph;
use crate::dinic::Dinic;
use std::collections::HashMap;

/// Maximum number of edge-disjoint `s–t` paths (`λ(s, t)`).
pub fn edge_connectivity_between(g: &CsrGraph, s: u32, t: u32) -> u32 {
    assert_ne!(s, t, "terminals must differ");
    let mut d = build(g);
    d.max_flow(s, t)
}

/// Computes a maximum set of pairwise edge-disjoint `s–t` paths.
/// Paths are simple individually but may share nodes (not edges).
pub fn edge_disjoint_paths(g: &CsrGraph, s: u32, t: u32) -> Vec<Vec<u32>> {
    assert_ne!(s, t, "terminals must differ");
    let mut d = build(g);
    let flow = d.max_flow(s, t);
    // Remaining flow per directed node pair.
    let mut remaining: HashMap<(u32, u32), u32> = HashMap::new();
    for v in 0..g.num_nodes() {
        for (aid, to) in d.flow_arcs_from(v) {
            *remaining.entry((v, to)).or_insert(0) += d.flow_on(aid);
        }
    }
    // Cancel opposing flow (a unit u→w and w→u annihilate; they only
    // arise from decomposition artefacts and would create loops).
    let keys: Vec<(u32, u32)> = remaining.keys().copied().collect();
    for (a, b) in keys {
        if a < b {
            let fwd = remaining.get(&(a, b)).copied().unwrap_or(0);
            let back = remaining.get(&(b, a)).copied().unwrap_or(0);
            let cancel = fwd.min(back);
            if cancel > 0 {
                *remaining.get_mut(&(a, b)).unwrap() -= cancel;
                *remaining.get_mut(&(b, a)).unwrap() -= cancel;
            }
        }
    }
    let mut take = |from: u32, to: u32| -> bool {
        match remaining.get_mut(&(from, to)) {
            Some(c) if *c > 0 => {
                *c -= 1;
                true
            }
            _ => false,
        }
    };
    let mut paths = Vec::with_capacity(flow as usize);
    for _ in 0..flow {
        let mut path = vec![s];
        let mut cur = s;
        // Walk until t; loops are impossible after opposing-flow
        // cancellation because net out-degree strictly decreases.
        while cur != t {
            let next = g
                .neighbors(cur)
                .iter()
                .copied()
                .find(|&w| take(cur, w))
                .expect("edge-disjoint decomposition stuck (bug)");
            path.push(next);
            cur = next;
        }
        // Shortcut any revisits so each returned path is simple.
        paths.push(simplify(path));
    }
    paths
}

fn build(g: &CsrGraph) -> Dinic {
    let mut d = Dinic::new(g.num_nodes() as usize);
    for (a, b) in g.edges() {
        d.add_edge(a, b, 1);
        d.add_edge(b, a, 1);
    }
    d
}

/// Removes loops from a walk: keeps the first occurrence of each node and
/// drops everything between repeats.
fn simplify(walk: Vec<u32>) -> Vec<u32> {
    let mut seen: HashMap<u32, usize> = HashMap::new();
    let mut out: Vec<u32> = Vec::with_capacity(walk.len());
    for v in walk {
        if let Some(&idx) = seen.get(&v) {
            for dropped in out.drain(idx + 1..) {
                seen.remove(&dropped);
            }
        } else {
            seen.insert(v, out.len());
            out.push(v);
        }
    }
    out
}

/// Checks that `paths` are valid `s–t` paths sharing no (undirected) edge.
pub fn check_edge_disjoint(g: &CsrGraph, s: u32, t: u32, paths: &[Vec<u32>]) -> Result<(), String> {
    let mut used = std::collections::HashSet::new();
    for (i, p) in paths.iter().enumerate() {
        if p.first() != Some(&s) || p.last() != Some(&t) {
            return Err(format!("path {i}: wrong endpoints"));
        }
        for w in p.windows(2) {
            if !g.has_edge(w[0], w[1]) {
                return Err(format!("path {i}: non-edge ({}, {})", w[0], w[1]));
            }
            let key = (w[0].min(w[1]), w[0].max(w[1]));
            if !used.insert(key) {
                return Err(format!("paths share edge {key:?}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: u32) -> CsrGraph {
        CsrGraph::from_edges(n, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>())
    }

    #[test]
    fn cycle_has_two_edge_disjoint_paths() {
        let g = cycle(6);
        assert_eq!(edge_connectivity_between(&g, 0, 3), 2);
        let ps = edge_disjoint_paths(&g, 0, 3);
        assert_eq!(ps.len(), 2);
        check_edge_disjoint(&g, 0, 3, &ps).unwrap();
    }

    #[test]
    fn theta_graph_counts_three() {
        // Two endpoints joined by three internally disjoint paths.
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 4), (0, 2), (2, 4), (0, 3), (3, 4)]);
        assert_eq!(edge_connectivity_between(&g, 0, 4), 3);
        let ps = edge_disjoint_paths(&g, 0, 4);
        assert_eq!(ps.len(), 3);
        check_edge_disjoint(&g, 0, 4, &ps).unwrap();
    }

    #[test]
    fn edge_ge_vertex_connectivity() {
        // λ(s,t) ≥ κ(s,t) always; equal on the (node-symmetric) cycle.
        let g = cycle(8);
        let lam = edge_connectivity_between(&g, 1, 5);
        let kap = crate::vertex_disjoint::vertex_connectivity_between(&g, 1, 5);
        assert!(lam >= kap);
        assert_eq!(lam, 2);
    }

    #[test]
    fn bridge_limits_to_one() {
        // Two triangles joined by a bridge edge.
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)]);
        assert_eq!(edge_connectivity_between(&g, 0, 5), 1);
        let ps = edge_disjoint_paths(&g, 0, 5);
        check_edge_disjoint(&g, 0, 5, &ps).unwrap();
    }

    #[test]
    fn adjacent_terminals_in_k4() {
        let mut e = Vec::new();
        for a in 0..4u32 {
            for b in a + 1..4 {
                e.push((a, b));
            }
        }
        let g = CsrGraph::from_edges(4, &e);
        assert_eq!(edge_connectivity_between(&g, 0, 1), 3);
        let ps = edge_disjoint_paths(&g, 0, 1);
        check_edge_disjoint(&g, 0, 1, &ps).unwrap();
    }

    #[test]
    fn simplify_removes_loops() {
        assert_eq!(simplify(vec![0, 1, 2, 1, 3]), vec![0, 1, 3]);
        assert_eq!(simplify(vec![0, 1, 2, 3]), vec![0, 1, 2, 3]);
        assert_eq!(simplify(vec![5]), vec![5]);
        // Nested loops collapse correctly.
        assert_eq!(simplify(vec![0, 1, 2, 3, 2, 1, 4]), vec![0, 1, 4]);
    }

    #[test]
    fn hypercube_edge_connectivity_is_n() {
        // Q_3: λ between antipodes = 3 = degree.
        let mut edges = Vec::new();
        for v in 0..8u32 {
            for d in 0..3 {
                let w = v ^ (1 << d);
                if v < w {
                    edges.push((v, w));
                }
            }
        }
        let g = CsrGraph::from_edges(8, &edges);
        assert_eq!(edge_connectivity_between(&g, 0, 7), 3);
        let ps = edge_disjoint_paths(&g, 0, 7);
        assert_eq!(ps.len(), 3);
        check_edge_disjoint(&g, 0, 7, &ps).unwrap();
    }
}
