//! Articulation points and biconnectivity (Tarjan's low-link DFS).
//!
//! Used by the robustness analysis: a network tolerates any single node
//! fault without disconnecting iff it has no articulation points. The
//! HHC is (m+1)-connected, so every materialised instance must report an
//! empty articulation set — a structural cross-check on the topology
//! generator that is independent of the flow machinery.

use crate::csr::CsrGraph;

/// Returns the articulation points (cut vertices) of `g`, ascending.
///
/// Iterative Tarjan DFS (explicit stack), so large materialised
/// topologies cannot overflow the call stack.
pub fn articulation_points(g: &CsrGraph) -> Vec<u32> {
    let n = g.num_nodes() as usize;
    const UNVISITED: u32 = u32::MAX;
    let mut disc = vec![UNVISITED; n];
    let mut low = vec![0u32; n];
    let mut parent = vec![UNVISITED; n];
    let mut is_cut = vec![false; n];
    let mut timer = 0u32;

    for root in 0..n as u32 {
        if disc[root as usize] != UNVISITED {
            continue;
        }
        // Frame: (node, index into its neighbour list).
        let mut stack: Vec<(u32, usize)> = vec![(root, 0)];
        disc[root as usize] = timer;
        low[root as usize] = timer;
        timer += 1;
        let mut root_children = 0u32;

        while let Some(&mut (v, ref mut i)) = stack.last_mut() {
            let nbrs = g.neighbors(v);
            if *i < nbrs.len() {
                let w = nbrs[*i];
                *i += 1;
                if disc[w as usize] == UNVISITED {
                    parent[w as usize] = v;
                    disc[w as usize] = timer;
                    low[w as usize] = timer;
                    timer += 1;
                    if v == root {
                        root_children += 1;
                    }
                    stack.push((w, 0));
                } else if w != parent[v as usize] {
                    low[v as usize] = low[v as usize].min(disc[w as usize]);
                }
            } else {
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    low[p as usize] = low[p as usize].min(low[v as usize]);
                    // Non-root p is a cut vertex if some child's subtree
                    // cannot reach above p.
                    if p != root && low[v as usize] >= disc[p as usize] {
                        is_cut[p as usize] = true;
                    }
                }
            }
        }
        if root_children >= 2 {
            is_cut[root as usize] = true;
        }
    }

    (0..n as u32).filter(|&v| is_cut[v as usize]).collect()
}

/// Whether `g` is biconnected: connected, ≥ 3 nodes, and free of
/// articulation points.
pub fn is_biconnected(g: &CsrGraph) -> bool {
    g.num_nodes() >= 3 && crate::bfs::is_connected(g) && articulation_points(g).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: u32) -> CsrGraph {
        CsrGraph::from_edges(n, &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>())
    }

    fn cycle(n: u32) -> CsrGraph {
        CsrGraph::from_edges(n, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>())
    }

    #[test]
    fn path_interiors_are_cuts() {
        let g = path_graph(5);
        assert_eq!(articulation_points(&g), vec![1, 2, 3]);
        assert!(!is_biconnected(&g));
    }

    #[test]
    fn cycles_have_none() {
        assert!(articulation_points(&cycle(7)).is_empty());
        assert!(is_biconnected(&cycle(7)));
    }

    #[test]
    fn bowtie_cut_at_the_waist() {
        // Two triangles sharing node 2.
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]);
        assert_eq!(articulation_points(&g), vec![2]);
    }

    #[test]
    fn bridge_graph_cuts() {
        // Triangle 0-1-2, bridge 2-3, triangle 3-4-5.
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)]);
        assert_eq!(articulation_points(&g), vec![2, 3]);
    }

    #[test]
    fn star_center_is_the_only_cut() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(articulation_points(&g), vec![0]);
    }

    #[test]
    fn disconnected_components_handled() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        assert_eq!(articulation_points(&g), vec![1, 4]);
        assert!(!is_biconnected(&g));
    }

    #[test]
    fn deep_path_does_not_overflow() {
        // 100k-node path: recursion would blow the stack; iteration must not.
        let n = 100_000u32;
        let g = path_graph(n);
        let cuts = articulation_points(&g);
        assert_eq!(cuts.len() as u32, n - 2);
    }

    #[test]
    fn agrees_with_flow_connectivity_on_small_graphs() {
        // No articulation points ⟺ κ(G) ≥ 2 for connected graphs ≥ 3 nodes.
        let bicon = cycle(9);
        assert!(crate::vertex_disjoint::vertex_connectivity(&bicon) >= 2);
        assert!(is_biconnected(&bicon));
        let cut = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]);
        assert_eq!(crate::vertex_disjoint::vertex_connectivity(&cut), 1);
        assert!(!is_biconnected(&cut));
    }
}
