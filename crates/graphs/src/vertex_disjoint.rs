//! Menger baseline: maximum sets of internally vertex-disjoint paths.
//!
//! The transformation is the classic vertex split: every node `v` becomes
//! `v_in → v_out` with capacity 1 (unbounded for the two terminals), and
//! every undirected edge `{a, b}` becomes the two arcs `a_out → b_in` and
//! `b_out → a_in` of capacity 1. The `s → t` max-flow value then equals the
//! maximum number of internally vertex-disjoint `s–t` paths (Menger), and
//! path extraction walks the positive-flow arcs.
//!
//! This is the *baseline* the paper-style constructive algorithm is compared
//! against (it is exact but needs the whole graph in memory, whereas the
//! construction is symbolic and output-sensitive).

use crate::csr::CsrGraph;
use crate::dinic::Dinic;

#[inline]
fn v_in(v: u32) -> u32 {
    2 * v
}
#[inline]
fn v_out(v: u32) -> u32 {
    2 * v + 1
}

/// Builds the vertex-split network and runs max-flow; returns the solved
/// Dinic instance and the flow value.
fn solve(g: &CsrGraph, s: u32, t: u32) -> (Dinic, u32) {
    let n = g.num_nodes();
    assert!(s < n && t < n, "terminal out of range");
    assert_ne!(s, t, "terminals must differ");
    let mut d = Dinic::new(2 * n as usize);
    for v in 0..n {
        // Interior vertices may carry one path; terminals are unbounded.
        let cap = if v == s || v == t { u32::MAX / 2 } else { 1 };
        d.add_edge(v_in(v), v_out(v), cap);
    }
    for (a, b) in g.edges() {
        d.add_edge(v_out(a), v_in(b), 1);
        d.add_edge(v_out(b), v_in(a), 1);
    }
    let f = d.max_flow(v_in(s), v_out(t));
    (d, f)
}

/// Maximum number of internally vertex-disjoint `s–t` paths
/// (the local vertex connectivity `κ(s, t)`; for adjacent `s, t` the direct
/// edge counts as one of the paths).
pub fn vertex_connectivity_between(g: &CsrGraph, s: u32, t: u32) -> u32 {
    solve(g, s, t).1
}

/// Computes a maximum set of internally vertex-disjoint `s–t` paths.
///
/// Each returned path starts at `s`, ends at `t`, is simple, and shares no
/// interior node with any other returned path. The number of paths equals
/// `κ(s, t)`.
///
/// # Examples
/// ```
/// use graphs::{CsrGraph, vertex_disjoint_paths};
/// // A 6-cycle: exactly two disjoint routes between opposite corners.
/// let g = CsrGraph::from_edges(6, &[(0,1),(1,2),(2,3),(3,4),(4,5),(5,0)]);
/// let paths = vertex_disjoint_paths(&g, 0, 3);
/// assert_eq!(paths.len(), 2);
/// ```
pub fn vertex_disjoint_paths(g: &CsrGraph, s: u32, t: u32) -> Vec<Vec<u32>> {
    let (d, flow) = solve(g, s, t);
    // Walk flow decomposition: from s, repeatedly follow a positive-flow arc
    // to the next original node, consuming one unit as we go. Unit vertex
    // capacities guarantee interior nodes appear in exactly one path.
    let mut used_arc = vec![false; 0];
    let _ = &mut used_arc; // arcs tracked via remaining budget below
    let mut remaining: std::collections::HashMap<(u32, u32), u32> =
        std::collections::HashMap::new();
    for v in 0..2 * g.num_nodes() {
        for (aid, to) in d.flow_arcs_from(v) {
            *remaining.entry((v, to)).or_insert(0) += d.flow_on(aid);
        }
    }
    let mut take = |from: u32, to: u32| -> bool {
        match remaining.get_mut(&(from, to)) {
            Some(c) if *c > 0 => {
                *c -= 1;
                true
            }
            _ => false,
        }
    };
    let mut paths = Vec::with_capacity(flow as usize);
    for _ in 0..flow {
        let mut path = vec![s];
        let mut cur = s;
        loop {
            // Consume cur_in→cur_out if present (terminals keep large caps,
            // so only require it for interior hops where it must exist).
            let _ = take(v_in(cur), v_out(cur));
            if cur == t {
                break;
            }
            // Find the next original node via a positive-flow out-arc.
            let next = g
                .neighbors(cur)
                .iter()
                .copied()
                .find(|&w| take(v_out(cur), v_in(w)))
                .expect("flow decomposition: no out-arc with remaining flow");
            path.push(next);
            cur = next;
        }
        paths.push(path);
    }
    paths
}

/// Global vertex connectivity `κ(G)` of a connected graph, by Whitney's
/// formula: `κ = min over v not adjacent to v0 (plus neighbour pairs)` —
/// implemented as the standard `min(deg)`-bounded sweep: fix `v0` of minimum
/// degree and take the minimum of `κ(v0, u)` over non-neighbours `u`, and
/// `κ(a, b)` over non-adjacent pairs of neighbours of `v0`.
///
/// Intended for small graphs only (used to confirm `κ(HHC) = m+1` and
/// `κ(Q_n) = n` for materialisable sizes).
pub fn vertex_connectivity(g: &CsrGraph) -> u32 {
    let n = g.num_nodes();
    assert!(n >= 2, "connectivity undefined below 2 nodes");
    if !crate::bfs::is_connected(g) {
        return 0;
    }
    // Complete graph: κ = n-1 by convention.
    if g.num_edges() == (n as usize * (n as usize - 1)) / 2 {
        return n - 1;
    }
    let v0 = (0..n).min_by_key(|&v| g.degree(v)).unwrap();
    let mut best = u32::MAX;
    for u in 0..n {
        if u != v0 && !g.has_edge(v0, u) {
            best = best.min(vertex_connectivity_between(g, v0, u));
        }
    }
    let nbrs = g.neighbors(v0).to_vec();
    for (i, &a) in nbrs.iter().enumerate() {
        for &b in &nbrs[i + 1..] {
            if !g.has_edge(a, b) {
                best = best.min(vertex_connectivity_between(g, a, b));
            }
        }
    }
    best
}

/// Checks that `paths` is a valid set of internally vertex-disjoint simple
/// `s–t` paths in `g`. Returns a human-readable error on the first violation.
pub fn check_disjoint_paths(
    g: &CsrGraph,
    s: u32,
    t: u32,
    paths: &[Vec<u32>],
) -> Result<(), String> {
    let mut seen_interior = std::collections::HashSet::new();
    for (i, p) in paths.iter().enumerate() {
        if p.first() != Some(&s) || p.last() != Some(&t) {
            return Err(format!("path {i} does not run s→t"));
        }
        let mut own = std::collections::HashSet::new();
        for w in p.windows(2) {
            if !g.has_edge(w[0], w[1]) {
                return Err(format!("path {i} uses non-edge ({}, {})", w[0], w[1]));
            }
        }
        for &v in p.iter() {
            if !own.insert(v) {
                return Err(format!("path {i} revisits node {v}"));
            }
        }
        for &v in &p[1..p.len() - 1] {
            if !seen_interior.insert(v) {
                return Err(format!("paths share interior node {v}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: u32) -> CsrGraph {
        CsrGraph::from_edges(n, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>())
    }

    fn complete(n: u32) -> CsrGraph {
        let mut e = Vec::new();
        for a in 0..n {
            for b in a + 1..n {
                e.push((a, b));
            }
        }
        CsrGraph::from_edges(n, &e)
    }

    #[test]
    fn cycle_has_two_disjoint_paths() {
        let g = cycle(8);
        assert_eq!(vertex_connectivity_between(&g, 0, 4), 2);
        let ps = vertex_disjoint_paths(&g, 0, 4);
        assert_eq!(ps.len(), 2);
        check_disjoint_paths(&g, 0, 4, &ps).unwrap();
    }

    #[test]
    fn complete_graph_connectivity() {
        let g = complete(5);
        assert_eq!(vertex_connectivity_between(&g, 0, 3), 4);
        let ps = vertex_disjoint_paths(&g, 0, 3);
        assert_eq!(ps.len(), 4);
        check_disjoint_paths(&g, 0, 3, &ps).unwrap();
        assert_eq!(vertex_connectivity(&g), 4);
    }

    #[test]
    fn adjacent_terminals_count_direct_edge() {
        let g = cycle(5);
        assert_eq!(vertex_connectivity_between(&g, 0, 1), 2);
        let ps = vertex_disjoint_paths(&g, 0, 1);
        check_disjoint_paths(&g, 0, 1, &ps).unwrap();
        assert!(ps.iter().any(|p| p.len() == 2), "direct edge missing");
    }

    #[test]
    fn cut_vertex_limits_connectivity() {
        // Two triangles sharing node 2: κ(0, 4) = 1.
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]);
        assert_eq!(vertex_connectivity_between(&g, 0, 4), 1);
        let ps = vertex_disjoint_paths(&g, 0, 4);
        assert_eq!(ps.len(), 1);
        check_disjoint_paths(&g, 0, 4, &ps).unwrap();
        assert_eq!(vertex_connectivity(&g), 1);
    }

    #[test]
    fn global_connectivity_of_cycle_is_two() {
        assert_eq!(vertex_connectivity(&cycle(7)), 2);
    }

    #[test]
    fn disconnected_graph_has_zero_connectivity() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(vertex_connectivity(&g), 0);
    }

    #[test]
    fn checker_rejects_bad_paths() {
        let g = cycle(6);
        // Shares interior node 1.
        let bad = vec![vec![0, 1, 2, 3], vec![0, 1, 2, 3]];
        assert!(check_disjoint_paths(&g, 0, 3, &bad).is_err());
        // Uses non-edge.
        let bad2 = vec![vec![0, 2, 3]];
        assert!(check_disjoint_paths(&g, 0, 3, &bad2).is_err());
        // Wrong endpoints.
        let bad3 = vec![vec![1, 2, 3]];
        assert!(check_disjoint_paths(&g, 0, 3, &bad3).is_err());
        // Revisits a node.
        let bad4 = vec![vec![0, 1, 0, 5, 4, 3]];
        assert!(check_disjoint_paths(&g, 0, 3, &bad4).is_err());
    }

    #[test]
    fn petersen_graph_is_three_connected() {
        let edges = [
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 0), // outer 5-cycle
            (5, 7),
            (7, 9),
            (9, 6),
            (6, 8),
            (8, 5), // inner pentagram
            (0, 5),
            (1, 6),
            (2, 7),
            (3, 8),
            (4, 9), // spokes
        ];
        let g = CsrGraph::from_edges(10, &edges);
        assert_eq!(vertex_connectivity(&g), 3);
        let ps = vertex_disjoint_paths(&g, 0, 7);
        assert_eq!(ps.len(), 3);
        check_disjoint_paths(&g, 0, 7, &ps).unwrap();
    }
}
