//! Structural property checks used by the topology validation experiments
//! (Table T1) and by tests that materialise symbolic topologies.

use crate::csr::CsrGraph;

/// Whether every node has degree exactly `d`.
pub fn is_regular(g: &CsrGraph, d: u32) -> bool {
    (0..g.num_nodes()).all(|v| g.degree(v) == d)
}

/// Minimum and maximum degree, or `None` for the empty graph.
pub fn degree_range(g: &CsrGraph) -> Option<(u32, u32)> {
    let n = g.num_nodes();
    if n == 0 {
        return None;
    }
    let mut lo = u32::MAX;
    let mut hi = 0;
    for v in 0..n {
        let d = g.degree(v);
        lo = lo.min(d);
        hi = hi.max(d);
    }
    Some((lo, hi))
}

/// Whether the graph is bipartite (2-colourable).
///
/// Both `Q_n` and the HHC are bipartite (every edge flips exactly one bit
/// of the combined address), and T1 verifies this on materialised instances.
pub fn is_bipartite(g: &CsrGraph) -> bool {
    let n = g.num_nodes() as usize;
    let mut color = vec![u8::MAX; n];
    for start in 0..n as u32 {
        if color[start as usize] != u8::MAX {
            continue;
        }
        color[start as usize] = 0;
        let mut stack = vec![start];
        while let Some(v) = stack.pop() {
            for &w in g.neighbors(v) {
                if color[w as usize] == u8::MAX {
                    color[w as usize] = 1 - color[v as usize];
                    stack.push(w);
                } else if color[w as usize] == color[v as usize] {
                    return false;
                }
            }
        }
    }
    true
}

/// Counts triangles (3-cycles). Bipartite graphs must report 0.
pub fn triangle_count(g: &CsrGraph) -> u64 {
    let mut count = 0u64;
    for (a, b) in g.edges() {
        // Intersect sorted neighbour lists, counting each triangle once
        // via the ordering a < b < c.
        let (mut i, mut j) = (0, 0);
        let na = g.neighbors(a);
        let nb = g.neighbors(b);
        while i < na.len() && j < nb.len() {
            match na[i].cmp(&nb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if na[i] > b {
                        count += 1;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    count
}

/// Girth (length of a shortest cycle) computed by BFS from every node,
/// or `None` for a forest. Small graphs only.
pub fn girth(g: &CsrGraph) -> Option<u32> {
    use std::collections::VecDeque;
    let n = g.num_nodes();
    let mut best: Option<u32> = None;
    for s in 0..n {
        let mut dist = vec![u32::MAX; n as usize];
        let mut parent = vec![u32::MAX; n as usize];
        dist[s as usize] = 0;
        let mut q = VecDeque::new();
        q.push_back(s);
        while let Some(v) = q.pop_front() {
            for &w in g.neighbors(v) {
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = dist[v as usize] + 1;
                    parent[w as usize] = v;
                    q.push_back(w);
                } else if parent[v as usize] != w {
                    // Non-tree edge closes a cycle through s of length
                    // dist[v] + dist[w] + 1 (an upper bound that is tight
                    // for the node on the shortest cycle).
                    let c = dist[v as usize] + dist[w as usize] + 1;
                    best = Some(best.map_or(c, |b| b.min(c)));
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: u32) -> CsrGraph {
        CsrGraph::from_edges(n, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>())
    }

    #[test]
    fn cycle_is_two_regular() {
        assert!(is_regular(&cycle(6), 2));
        assert!(!is_regular(&cycle(6), 3));
        assert_eq!(degree_range(&cycle(6)), Some((2, 2)));
    }

    #[test]
    fn even_cycles_bipartite_odd_not() {
        assert!(is_bipartite(&cycle(8)));
        assert!(!is_bipartite(&cycle(7)));
    }

    #[test]
    fn triangle_counting() {
        let k4 = {
            let mut e = Vec::new();
            for a in 0..4u32 {
                for b in a + 1..4 {
                    e.push((a, b));
                }
            }
            CsrGraph::from_edges(4, &e)
        };
        assert_eq!(triangle_count(&k4), 4);
        assert_eq!(triangle_count(&cycle(8)), 0);
    }

    #[test]
    fn girth_values() {
        assert_eq!(girth(&cycle(5)), Some(5));
        assert_eq!(girth(&cycle(12)), Some(12));
        let path = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(girth(&path), None);
    }

    #[test]
    fn empty_graph_properties() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(degree_range(&g), None);
        assert!(is_bipartite(&g));
        assert_eq!(triangle_count(&g), 0);
        assert_eq!(girth(&g), None);
    }
}
