//! Dinic's maximum-flow algorithm.
//!
//! Used as the exact engine behind two baselines:
//! * [`crate::vertex_disjoint`] — Menger-optimal internally vertex-disjoint
//!   path sets on materialised networks (the comparator in Table T3);
//! * the disjoint *fan* construction inside a son-cube
//!   (`hypercube::fan`), where the graph has at most `2^m ≤ 64` nodes.
//!
//! Complexity is `O(V^2 E)` in general and `O(E sqrt(V))` on unit-capacity
//! networks, which is all this suite ever feeds it.

/// Arc index into the flat arc array.
type ArcId = u32;

/// A directed arc with residual bookkeeping. `to` is the head,
/// `cap` the remaining capacity, `rev` the index of the reverse arc.
#[derive(Clone, Debug)]
struct Arc {
    to: u32,
    cap: u32,
    rev: ArcId,
}

/// A Dinic max-flow instance over a directed graph with integer capacities.
pub struct Dinic {
    /// Per-node outgoing arc ids.
    adj: Vec<Vec<ArcId>>,
    arcs: Vec<Arc>,
    /// BFS level of each node in the current phase.
    level: Vec<u32>,
    /// DFS iterator position per node (current-arc optimisation).
    iter: Vec<usize>,
}

const NO_LEVEL: u32 = u32::MAX;

impl Dinic {
    /// Creates an empty flow network with `n` nodes.
    pub fn new(n: usize) -> Self {
        Dinic {
            adj: vec![Vec::new(); n],
            arcs: Vec::new(),
            level: vec![NO_LEVEL; n],
            iter: vec![0; n],
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Adds a directed arc `from → to` with capacity `cap`.
    /// Returns the arc id, usable with [`Dinic::flow_on`] after solving.
    pub fn add_edge(&mut self, from: u32, to: u32, cap: u32) -> ArcId {
        assert!((from as usize) < self.adj.len() && (to as usize) < self.adj.len());
        let a = self.arcs.len() as ArcId;
        let b = a + 1;
        self.arcs.push(Arc { to, cap, rev: b });
        self.arcs.push(Arc {
            to: from,
            cap: 0,
            rev: a,
        });
        self.adj[from as usize].push(a);
        self.adj[to as usize].push(b);
        a
    }

    /// Flow currently pushed through arc `id` (reverse arc's residual).
    pub fn flow_on(&self, id: ArcId) -> u32 {
        let rev = self.arcs[id as usize].rev;
        self.arcs[rev as usize].cap
    }

    fn bfs_levels(&mut self, s: u32, t: u32) -> bool {
        self.level.fill(NO_LEVEL);
        self.level[s as usize] = 0;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for &aid in &self.adj[v as usize] {
                let arc = &self.arcs[aid as usize];
                if arc.cap > 0 && self.level[arc.to as usize] == NO_LEVEL {
                    self.level[arc.to as usize] = self.level[v as usize] + 1;
                    queue.push_back(arc.to);
                }
            }
        }
        self.level[t as usize] != NO_LEVEL
    }

    fn dfs_augment(&mut self, v: u32, t: u32, pushed: u32) -> u32 {
        if v == t {
            return pushed;
        }
        while self.iter[v as usize] < self.adj[v as usize].len() {
            let aid = self.adj[v as usize][self.iter[v as usize]];
            let (to, cap) = {
                let arc = &self.arcs[aid as usize];
                (arc.to, arc.cap)
            };
            if cap > 0 && self.level[to as usize] == self.level[v as usize] + 1 {
                let got = self.dfs_augment(to, t, pushed.min(cap));
                if got > 0 {
                    self.arcs[aid as usize].cap -= got;
                    let rev = self.arcs[aid as usize].rev;
                    self.arcs[rev as usize].cap += got;
                    return got;
                }
            }
            self.iter[v as usize] += 1;
        }
        0
    }

    /// Computes the maximum `s → t` flow. May be called once per instance
    /// (subsequent calls continue from the residual network, which is only
    /// meaningful if `s`/`t` are unchanged).
    pub fn max_flow(&mut self, s: u32, t: u32) -> u32 {
        assert_ne!(s, t, "source and sink must differ");
        let mut total = 0u32;
        while self.bfs_levels(s, t) {
            self.iter.fill(0);
            loop {
                let pushed = self.dfs_augment(s, t, u32::MAX);
                if pushed == 0 {
                    break;
                }
                total += pushed;
            }
        }
        total
    }

    /// All arcs leaving `v` that carry positive flow, as `(arc_id, head)`.
    pub fn flow_arcs_from(&self, v: u32) -> impl Iterator<Item = (ArcId, u32)> + '_ {
        self.adj[v as usize]
            .iter()
            .copied()
            // Even arc ids are forward arcs; odd ids are residual reverses.
            .filter(|&aid| aid % 2 == 0)
            .filter(move |&aid| self.flow_on(aid) > 0)
            .map(move |aid| (aid, self.arcs[aid as usize].to))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut d = Dinic::new(2);
        let a = d.add_edge(0, 1, 7);
        assert_eq!(d.max_flow(0, 1), 7);
        assert_eq!(d.flow_on(a), 7);
    }

    #[test]
    fn series_bottleneck() {
        let mut d = Dinic::new(3);
        d.add_edge(0, 1, 5);
        d.add_edge(1, 2, 3);
        assert_eq!(d.max_flow(0, 2), 3);
    }

    #[test]
    fn parallel_paths_add_up() {
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 2);
        d.add_edge(1, 3, 2);
        d.add_edge(0, 2, 3);
        d.add_edge(2, 3, 3);
        assert_eq!(d.max_flow(0, 3), 5);
    }

    #[test]
    fn classic_textbook_network() {
        // CLRS figure: max flow 23.
        let mut d = Dinic::new(6);
        d.add_edge(0, 1, 16);
        d.add_edge(0, 2, 13);
        d.add_edge(1, 2, 10);
        d.add_edge(2, 1, 4);
        d.add_edge(1, 3, 12);
        d.add_edge(3, 2, 9);
        d.add_edge(2, 4, 14);
        d.add_edge(4, 3, 7);
        d.add_edge(3, 5, 20);
        d.add_edge(4, 5, 4);
        assert_eq!(d.max_flow(0, 5), 23);
    }

    #[test]
    fn rerouting_through_residual_arcs() {
        // Flow must back out of a greedy first choice to reach optimum.
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 1);
        d.add_edge(0, 2, 1);
        d.add_edge(1, 2, 1);
        d.add_edge(1, 3, 1);
        d.add_edge(2, 3, 1);
        assert_eq!(d.max_flow(0, 3), 2);
    }

    #[test]
    fn zero_when_disconnected() {
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 9);
        d.add_edge(2, 3, 9);
        assert_eq!(d.max_flow(0, 3), 0);
    }

    #[test]
    fn flow_conservation_holds() {
        let mut d = Dinic::new(5);
        d.add_edge(0, 1, 4);
        d.add_edge(0, 2, 2);
        d.add_edge(1, 2, 3);
        d.add_edge(1, 3, 1);
        d.add_edge(2, 4, 5);
        d.add_edge(3, 4, 2);
        let f = d.max_flow(0, 4);
        assert_eq!(f, 6);
        // Net outflow of interior nodes must be zero.
        for v in 1..4u32 {
            let out: u32 = d.flow_arcs_from(v).map(|(a, _)| d.flow_on(a)).sum();
            let inflow: u32 = (0..5u32)
                .flat_map(|u| d.flow_arcs_from(u).collect::<Vec<_>>())
                .filter(|&(_, to)| to == v)
                .map(|(a, _)| d.flow_on(a))
                .sum();
            assert_eq!(out, inflow, "conservation violated at {v}");
        }
    }

    #[test]
    fn unit_capacity_matches_edge_connectivity_of_cycle() {
        // 6-cycle: exactly 2 edge-disjoint paths between opposite nodes.
        let n = 6u32;
        let mut d = Dinic::new(n as usize);
        for v in 0..n {
            let w = (v + 1) % n;
            d.add_edge(v, w, 1);
            d.add_edge(w, v, 1);
        }
        assert_eq!(d.max_flow(0, 3), 2);
    }
}
