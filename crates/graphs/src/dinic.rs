//! Dinic's maximum-flow algorithm.
//!
//! Used as the exact engine behind two baselines:
//! * [`crate::vertex_disjoint`] — Menger-optimal internally vertex-disjoint
//!   path sets on materialised networks (the comparator in Table T3);
//! * the disjoint *fan* construction inside a son-cube
//!   (`hypercube::fan`), where the graph has at most `2^m ≤ 64` nodes.
//!
//! Complexity is `O(V^2 E)` in general and `O(E sqrt(V))` on unit-capacity
//! networks, which is all this suite ever feeds it.

/// Arc index into the flat arc array.
pub type ArcId = u32;

/// A directed arc with residual bookkeeping. `to` is the head,
/// `cap` the remaining capacity, `rev` the index of the reverse arc.
#[derive(Clone, Debug)]
struct Arc {
    to: u32,
    cap: u32,
    rev: ArcId,
}

/// Effort counters accumulated by a [`Dinic`] instance across solves.
///
/// Counters are monotone until [`Dinic::reset_stats`]; they survive
/// [`Dinic::rewind`]/[`Dinic::reset_caps`] so a reused network (the fan
/// engine) reports totals across all of its queries. Incrementing them
/// is a plain `u64` add on paths that already do comparable work, so
/// they stay unconditionally enabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DinicStats {
    /// Level-graph BFS passes (one per Dinic phase, one per unit path in
    /// [`Dinic::max_flow_unit`]).
    pub bfs_passes: u64,
    /// Augmenting paths pushed (each carries ≥ 1 unit of flow).
    pub augmentations: u64,
    /// Arc-slot mutations recorded for rewind (augment steps, seeded
    /// units and capacity overrides), duplicates included.
    pub arcs_touched: u64,
    /// Slots restored by [`Dinic::rewind`].
    pub slots_rewound: u64,
    /// Lazy CSR flattens triggered by solving after edge insertion.
    pub csr_rebuilds: u64,
}

impl DinicStats {
    /// Element-wise accumulation (for combining several instances).
    pub fn merge(&mut self, other: &DinicStats) {
        self.bfs_passes += other.bfs_passes;
        self.augmentations += other.augmentations;
        self.arcs_touched += other.arcs_touched;
        self.slots_rewound += other.slots_rewound;
        self.csr_rebuilds += other.csr_rebuilds;
    }
}

/// A Dinic max-flow instance over a directed graph with integer capacities.
pub struct Dinic {
    /// Per-node outgoing arc ids (build-time shape; solves read the CSR).
    adj: Vec<Vec<ArcId>>,
    arcs: Vec<Arc>,
    /// Flattened adjacency: node `v`'s arc ids occupy
    /// `csr_arcs[csr_start[v] .. csr_start[v + 1]]`. Rebuilt lazily when
    /// arcs were added since the last solve, so repeated re-solves of one
    /// network (the fan engine's reuse pattern) pay the flatten once.
    csr_arcs: Vec<ArcId>,
    csr_start: Vec<u32>,
    csr_dirty: bool,
    /// BFS level of each node in the current phase.
    level: Vec<u32>,
    /// DFS cursor per node (current-arc optimisation), as an absolute
    /// index into `csr_arcs`.
    iter: Vec<u32>,
    /// Reused BFS queue (plain Vec + head index; no per-phase allocation).
    queue: Vec<u32>,
    /// Forward-arc slots (`arc id / 2`) whose capacities changed since the
    /// last rewind/reset — lets a re-solve restore only what moved.
    touched: Vec<u32>,
    /// Arc that discovered each node in the last unit-augmenting BFS.
    parent: Vec<ArcId>,
    /// Monotone effort counters; see [`DinicStats`].
    stats: DinicStats,
}

const NO_LEVEL: u32 = u32::MAX;

impl Dinic {
    /// Creates an empty flow network with `n` nodes.
    pub fn new(n: usize) -> Self {
        Dinic {
            adj: vec![Vec::new(); n],
            arcs: Vec::new(),
            csr_arcs: Vec::new(),
            csr_start: Vec::new(),
            csr_dirty: true,
            level: vec![NO_LEVEL; n],
            iter: vec![0; n],
            queue: Vec::with_capacity(n),
            touched: Vec::new(),
            parent: vec![0; n],
            stats: DinicStats::default(),
        }
    }

    /// Effort counters accumulated since construction or the last
    /// [`Dinic::reset_stats`].
    pub fn stats(&self) -> DinicStats {
        self.stats
    }

    /// Zeroes the effort counters (network state is untouched).
    pub fn reset_stats(&mut self) {
        self.stats = DinicStats::default();
    }

    /// Rebuilds the flat adjacency from `adj`.
    fn rebuild_csr(&mut self) {
        self.csr_arcs.clear();
        self.csr_start.clear();
        let mut acc = 0u32;
        for out in &self.adj {
            self.csr_start.push(acc);
            acc += out.len() as u32;
            self.csr_arcs.extend_from_slice(out);
        }
        self.csr_start.push(acc);
        self.csr_dirty = false;
        self.stats.csr_rebuilds += 1;
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Adds a directed arc `from → to` with capacity `cap`.
    /// Returns the arc id, usable with [`Dinic::flow_on`] after solving.
    ///
    /// # Panics
    /// Panics if either endpoint is not a node of this network.
    pub fn add_edge(&mut self, from: u32, to: u32, cap: u32) -> ArcId {
        assert!((from as usize) < self.adj.len() && (to as usize) < self.adj.len());
        let a = self.arcs.len() as ArcId;
        let b = a + 1;
        self.arcs.push(Arc { to, cap, rev: b });
        self.arcs.push(Arc {
            to: from,
            cap: 0,
            rev: a,
        });
        self.adj[from as usize].push(a);
        self.adj[to as usize].push(b);
        self.csr_dirty = true;
        a
    }

    /// Flow currently pushed through arc `id` (reverse arc's residual).
    pub fn flow_on(&self, id: ArcId) -> u32 {
        let rev = self.arcs[id as usize].rev;
        self.arcs[rev as usize].cap
    }

    fn bfs_levels(&mut self, s: u32, t: u32) -> bool {
        self.stats.bfs_passes += 1;
        self.level.fill(NO_LEVEL);
        self.level[s as usize] = 0;
        self.queue.clear();
        self.queue.push(s);
        let mut head = 0;
        while head < self.queue.len() {
            // Once `t` is levelled, every node on a shortest augmenting
            // path is already labelled (BFS labels a whole level before
            // popping any of it), so deeper exploration is pure waste.
            if self.level[t as usize] != NO_LEVEL {
                break;
            }
            let v = self.queue[head];
            head += 1;
            let (a, b) = (
                self.csr_start[v as usize] as usize,
                self.csr_start[v as usize + 1] as usize,
            );
            for &aid in &self.csr_arcs[a..b] {
                let arc = &self.arcs[aid as usize];
                if arc.cap > 0 && self.level[arc.to as usize] == NO_LEVEL {
                    self.level[arc.to as usize] = self.level[v as usize] + 1;
                    self.queue.push(arc.to);
                }
            }
        }
        self.level[t as usize] != NO_LEVEL
    }

    fn dfs_augment(&mut self, v: u32, t: u32, pushed: u32) -> u32 {
        if v == t {
            return pushed;
        }
        while self.iter[v as usize] < self.csr_start[v as usize + 1] {
            let aid = self.csr_arcs[self.iter[v as usize] as usize];
            let (to, cap) = {
                let arc = &self.arcs[aid as usize];
                (arc.to, arc.cap)
            };
            if cap > 0 && self.level[to as usize] == self.level[v as usize] + 1 {
                let got = self.dfs_augment(to, t, pushed.min(cap));
                if got > 0 {
                    self.arcs[aid as usize].cap -= got;
                    let rev = self.arcs[aid as usize].rev;
                    self.arcs[rev as usize].cap += got;
                    self.touched.push(aid >> 1);
                    self.stats.arcs_touched += 1;
                    return got;
                }
            }
            self.iter[v as usize] += 1;
        }
        0
    }

    /// Computes the maximum `s → t` flow. May be called once per instance
    /// (subsequent calls continue from the residual network, which is only
    /// meaningful if `s`/`t` are unchanged).
    pub fn max_flow(&mut self, s: u32, t: u32) -> u32 {
        self.max_flow_limited(s, t, u32::MAX)
    }

    /// [`Dinic::max_flow`], but stops as soon as `limit` units have been
    /// pushed. When the caller knows the max-flow value in advance (e.g.
    /// a fan query whose sink capacity equals the target count), passing
    /// it skips the final phase — a full-graph BFS plus an exhausted DFS
    /// whose only job is proving no augmenting path remains.
    pub fn max_flow_limited(&mut self, s: u32, t: u32, limit: u32) -> u32 {
        assert_ne!(s, t, "source and sink must differ");
        if self.csr_dirty {
            self.rebuild_csr();
        }
        let n = self.adj.len();
        let mut total = 0u32;
        while total < limit && self.bfs_levels(s, t) {
            self.iter.copy_from_slice(&self.csr_start[..n]);
            while total < limit {
                let pushed = self.dfs_augment(s, t, limit - total);
                if pushed == 0 {
                    break;
                }
                self.stats.augmentations += 1;
                total += pushed;
            }
        }
        total
    }

    /// Shortest-augmenting-path solver pushing **one unit per path**, up
    /// to `limit` units: repeat { BFS for a shortest residual `s → t`
    /// path, augment it by 1 } until `t` is unreachable or the limit is
    /// hit. Returns the units pushed.
    ///
    /// On unit-bottleneck networks (every augmenting path has residual
    /// capacity 1 — e.g. vertex-split disjoint-path models) this computes
    /// the same flow value as [`Dinic::max_flow`] with far less machinery
    /// per unit: each BFS stops the moment `t` is discovered and the
    /// augmenting path falls out of the parent arcs, with no per-phase
    /// cursor resets or exhausted-DFS sweeps. On general networks it is
    /// still exact but needs one BFS per flow unit — use
    /// [`Dinic::max_flow`] there.
    pub fn max_flow_unit(&mut self, s: u32, t: u32, limit: u32) -> u32 {
        assert_ne!(s, t, "source and sink must differ");
        if self.csr_dirty {
            self.rebuild_csr();
        }
        let mut total = 0u32;
        while total < limit {
            self.stats.bfs_passes += 1;
            self.level.fill(NO_LEVEL);
            self.level[s as usize] = 0;
            self.queue.clear();
            self.queue.push(s);
            let mut head = 0;
            let mut found = false;
            'bfs: while head < self.queue.len() {
                let v = self.queue[head];
                head += 1;
                let (a, b) = (
                    self.csr_start[v as usize] as usize,
                    self.csr_start[v as usize + 1] as usize,
                );
                for &aid in &self.csr_arcs[a..b] {
                    let arc = &self.arcs[aid as usize];
                    if arc.cap > 0 && self.level[arc.to as usize] == NO_LEVEL {
                        self.level[arc.to as usize] = 1;
                        self.parent[arc.to as usize] = aid;
                        if arc.to == t {
                            found = true;
                            break 'bfs;
                        }
                        self.queue.push(arc.to);
                    }
                }
            }
            if !found {
                break;
            }
            let mut v = t;
            while v != s {
                let aid = self.parent[v as usize];
                self.arcs[aid as usize].cap -= 1;
                let rev = self.arcs[aid as usize].rev;
                self.arcs[rev as usize].cap += 1;
                self.touched.push(aid >> 1);
                self.stats.arcs_touched += 1;
                v = self.arcs[rev as usize].to;
            }
            self.stats.augmentations += 1;
            total += 1;
        }
        total
    }

    /// Sets the capacity of forward arc `id` and zeroes its reverse,
    /// erasing any flow previously pushed through it. Together with
    /// [`Dinic::reset_caps`] this lets one network be re-solved many
    /// times with varying terminal capacities (the fan engine's reuse
    /// pattern) instead of being rebuilt per query.
    pub fn set_cap(&mut self, id: ArcId, cap: u32) {
        let rev = self.arcs[id as usize].rev;
        self.arcs[id as usize].cap = cap;
        self.arcs[rev as usize].cap = 0;
        self.touched.push(id >> 1);
        self.stats.arcs_touched += 1;
    }

    /// Pushes one unit of flow through arc `id` directly, bypassing the
    /// solver. The caller asserts that a valid (extendable-to-maximum)
    /// flow results — e.g. seeding a known-trivial augmenting path before
    /// [`Dinic::max_flow_limited`] finishes the rest.
    pub fn force_unit(&mut self, id: ArcId) {
        debug_assert!(self.arcs[id as usize].cap > 0, "forcing a saturated arc");
        let rev = self.arcs[id as usize].rev;
        self.arcs[id as usize].cap -= 1;
        self.arcs[rev as usize].cap += 1;
        self.touched.push(id >> 1);
        self.stats.arcs_touched += 1;
    }

    /// Forward-arc slots (`arc id / 2`) modified since the last
    /// [`Dinic::rewind`]/[`Dinic::reset_caps`], possibly with duplicates.
    /// Every arc carrying nonzero flow appears here — a decomposition can
    /// scan this instead of every arc in the network.
    pub fn touched_slots(&self) -> &[u32] {
        &self.touched
    }

    /// [`Dinic::reset_caps`] restricted to the touched slots: restores
    /// forward arc `2i` to `caps[i]` (reverse to 0) for every modified
    /// slot only — O(arcs moved by the last solve) instead of O(arcs).
    pub fn rewind(&mut self, caps: &[u32]) {
        debug_assert_eq!(caps.len() * 2, self.arcs.len(), "one cap per forward arc");
        while let Some(slot) = self.touched.pop() {
            let i = slot as usize;
            self.arcs[2 * i].cap = caps[i];
            self.arcs[2 * i + 1].cap = 0;
            self.stats.slots_rewound += 1;
        }
    }

    /// Restores every forward arc `2i` to capacity `caps[i]` (and its
    /// reverse to 0), i.e. rewinds the network to an unsolved state.
    /// `caps` must have one entry per `add_edge` call, in call order.
    pub fn reset_caps(&mut self, caps: &[u32]) {
        assert_eq!(caps.len() * 2, self.arcs.len(), "one cap per forward arc");
        for (i, &cap) in caps.iter().enumerate() {
            self.arcs[2 * i].cap = cap;
            self.arcs[2 * i + 1].cap = 0;
        }
        self.touched.clear();
    }

    /// All arcs leaving `v` that carry positive flow, as `(arc_id, head)`.
    pub fn flow_arcs_from(&self, v: u32) -> impl Iterator<Item = (ArcId, u32)> + '_ {
        self.adj[v as usize]
            .iter()
            .copied()
            // Even arc ids are forward arcs; odd ids are residual reverses.
            .filter(|&aid| aid % 2 == 0)
            .filter(move |&aid| self.flow_on(aid) > 0)
            .map(move |aid| (aid, self.arcs[aid as usize].to))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut d = Dinic::new(2);
        let a = d.add_edge(0, 1, 7);
        assert_eq!(d.max_flow(0, 1), 7);
        assert_eq!(d.flow_on(a), 7);
    }

    #[test]
    fn series_bottleneck() {
        let mut d = Dinic::new(3);
        d.add_edge(0, 1, 5);
        d.add_edge(1, 2, 3);
        assert_eq!(d.max_flow(0, 2), 3);
    }

    #[test]
    fn parallel_paths_add_up() {
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 2);
        d.add_edge(1, 3, 2);
        d.add_edge(0, 2, 3);
        d.add_edge(2, 3, 3);
        assert_eq!(d.max_flow(0, 3), 5);
    }

    #[test]
    fn classic_textbook_network() {
        // CLRS figure: max flow 23.
        let mut d = Dinic::new(6);
        d.add_edge(0, 1, 16);
        d.add_edge(0, 2, 13);
        d.add_edge(1, 2, 10);
        d.add_edge(2, 1, 4);
        d.add_edge(1, 3, 12);
        d.add_edge(3, 2, 9);
        d.add_edge(2, 4, 14);
        d.add_edge(4, 3, 7);
        d.add_edge(3, 5, 20);
        d.add_edge(4, 5, 4);
        assert_eq!(d.max_flow(0, 5), 23);
    }

    #[test]
    fn rerouting_through_residual_arcs() {
        // Flow must back out of a greedy first choice to reach optimum.
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 1);
        d.add_edge(0, 2, 1);
        d.add_edge(1, 2, 1);
        d.add_edge(1, 3, 1);
        d.add_edge(2, 3, 1);
        assert_eq!(d.max_flow(0, 3), 2);
    }

    #[test]
    fn zero_when_disconnected() {
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 9);
        d.add_edge(2, 3, 9);
        assert_eq!(d.max_flow(0, 3), 0);
    }

    #[test]
    fn flow_conservation_holds() {
        let mut d = Dinic::new(5);
        d.add_edge(0, 1, 4);
        d.add_edge(0, 2, 2);
        d.add_edge(1, 2, 3);
        d.add_edge(1, 3, 1);
        d.add_edge(2, 4, 5);
        d.add_edge(3, 4, 2);
        let f = d.max_flow(0, 4);
        assert_eq!(f, 6);
        // Net outflow of interior nodes must be zero.
        for v in 1..4u32 {
            let out: u32 = d.flow_arcs_from(v).map(|(a, _)| d.flow_on(a)).sum();
            let inflow: u32 = (0..5u32)
                .flat_map(|u| d.flow_arcs_from(u).collect::<Vec<_>>())
                .filter(|&(_, to)| to == v)
                .map(|(a, _)| d.flow_on(a))
                .sum();
            assert_eq!(out, inflow, "conservation violated at {v}");
        }
    }

    #[test]
    fn reset_caps_allows_resolving() {
        // Solve, rewind, re-solve with a different terminal capacity.
        let mut d = Dinic::new(4);
        let a = d.add_edge(0, 1, 2);
        let b = d.add_edge(1, 3, 2);
        let c = d.add_edge(2, 3, 1);
        let e = d.add_edge(0, 2, 1);
        assert_eq!(d.max_flow(0, 3), 3);
        d.reset_caps(&[2, 2, 1, 1]);
        assert_eq!(d.max_flow(0, 3), 3);
        d.reset_caps(&[2, 2, 1, 1]);
        d.set_cap(b, 1); // throttle the main route
        assert_eq!(d.max_flow(0, 3), 2);
        let _ = (a, c, e);
    }

    #[test]
    fn set_cap_erases_prior_flow() {
        let mut d = Dinic::new(2);
        let a = d.add_edge(0, 1, 5);
        assert_eq!(d.max_flow(0, 1), 5);
        assert_eq!(d.flow_on(a), 5);
        d.set_cap(a, 3);
        assert_eq!(d.flow_on(a), 0);
        assert_eq!(d.max_flow(0, 1), 3);
    }

    #[test]
    fn unit_solver_matches_dinic_on_unit_networks() {
        // Vertex-split 6-cycle plus chords: compare against max_flow on
        // identical copies.
        let build = || {
            let mut d = Dinic::new(8);
            d.add_edge(0, 1, 1);
            d.add_edge(0, 2, 1);
            d.add_edge(0, 3, 1);
            d.add_edge(1, 4, 1);
            d.add_edge(2, 4, 1);
            d.add_edge(2, 5, 1);
            d.add_edge(3, 5, 1);
            d.add_edge(4, 7, 1);
            d.add_edge(5, 7, 1);
            d.add_edge(1, 6, 1);
            d.add_edge(6, 7, 1);
            d
        };
        let mut a = build();
        let mut b = build();
        assert_eq!(a.max_flow(0, 7), b.max_flow_unit(0, 7, u32::MAX));
    }

    #[test]
    fn unit_solver_needs_residual_rerouting() {
        // The greedy shortest path must be partially undone through
        // reverse arcs to reach the optimum of 2.
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 1);
        d.add_edge(0, 2, 1);
        d.add_edge(1, 2, 1);
        d.add_edge(1, 3, 1);
        d.add_edge(2, 3, 1);
        assert_eq!(d.max_flow_unit(0, 3, u32::MAX), 2);
    }

    #[test]
    fn unit_solver_respects_limit() {
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 2);
        d.add_edge(1, 3, 2);
        d.add_edge(0, 2, 3);
        d.add_edge(2, 3, 3);
        assert_eq!(d.max_flow_unit(0, 3, 3), 3);
        assert_eq!(d.max_flow(0, 3), 2);
    }

    #[test]
    fn rewind_matches_full_reset() {
        let caps = [2u32, 2, 1, 1];
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 2);
        d.add_edge(1, 3, 2);
        d.add_edge(2, 3, 1);
        d.add_edge(0, 2, 1);
        for _ in 0..3 {
            assert_eq!(d.max_flow(0, 3), 3);
            d.rewind(&caps);
            // After rewind every forward arc is back at its default and
            // carries no flow.
            for i in 0..caps.len() {
                assert_eq!(d.flow_on(2 * i as ArcId), 0);
            }
        }
    }

    #[test]
    fn touched_slots_cover_all_flow_arcs() {
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 1);
        d.add_edge(0, 2, 1);
        d.add_edge(1, 2, 1);
        d.add_edge(1, 3, 1);
        d.add_edge(2, 3, 1);
        assert_eq!(d.max_flow(0, 3), 2);
        let touched: std::collections::HashSet<u32> = d.touched_slots().iter().copied().collect();
        for slot in 0..5u32 {
            if d.flow_on(2 * slot) > 0 {
                assert!(touched.contains(&slot), "flow arc {slot} not recorded");
            }
        }
    }

    #[test]
    fn force_unit_seeds_flow() {
        // Seed the direct edge, then let the solver finish the rest.
        let mut d = Dinic::new(4);
        let direct = d.add_edge(0, 3, 1);
        d.add_edge(0, 1, 1);
        d.add_edge(1, 3, 1);
        d.add_edge(0, 2, 1);
        d.add_edge(2, 3, 1);
        d.force_unit(direct);
        assert_eq!(d.flow_on(direct), 1);
        assert_eq!(d.max_flow_limited(0, 3, 2), 2);
        assert_eq!(d.flow_on(direct), 1);
    }

    #[test]
    fn limited_flow_stops_at_limit() {
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 2);
        d.add_edge(1, 3, 2);
        d.add_edge(0, 2, 3);
        d.add_edge(2, 3, 3);
        assert_eq!(d.max_flow_limited(0, 3, 4), 4);
        // The residual network still admits the remaining unit.
        assert_eq!(d.max_flow(0, 3), 1);
    }

    #[test]
    fn limit_at_max_flow_matches_unlimited() {
        let build = || {
            let mut d = Dinic::new(6);
            d.add_edge(0, 1, 16);
            d.add_edge(0, 2, 13);
            d.add_edge(1, 2, 10);
            d.add_edge(2, 1, 4);
            d.add_edge(1, 3, 12);
            d.add_edge(3, 2, 9);
            d.add_edge(2, 4, 14);
            d.add_edge(4, 3, 7);
            d.add_edge(3, 5, 20);
            d.add_edge(4, 5, 4);
            d
        };
        let mut full = build();
        assert_eq!(full.max_flow(0, 5), 23);
        let mut capped = build();
        assert_eq!(capped.max_flow_limited(0, 5, 23), 23);
        let mut over = build();
        // A limit above the max flow degenerates to the plain solve.
        assert_eq!(over.max_flow_limited(0, 5, 99), 23);
    }

    #[test]
    fn stats_track_solver_effort() {
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 2);
        d.add_edge(1, 3, 2);
        d.add_edge(0, 2, 1);
        d.add_edge(2, 3, 1);
        assert_eq!(d.stats(), DinicStats::default());
        assert_eq!(d.max_flow(0, 3), 3);
        let s = d.stats();
        assert_eq!(s.csr_rebuilds, 1);
        // 3 units over paths of length 2 ⇒ ≥ 2 augmentations, ≥ 4 arc
        // mutations; the final BFS proves no path remains.
        assert!(s.bfs_passes >= 2, "bfs_passes = {}", s.bfs_passes);
        assert!(s.augmentations >= 2);
        assert!(s.arcs_touched >= 4);
        assert_eq!(s.slots_rewound, 0);
        d.rewind(&[2, 2, 1, 1]);
        let s = d.stats();
        assert!(s.slots_rewound >= 4);
        // Counters survive rewind; reset_stats zeroes them.
        assert!(s.augmentations >= 2);
        d.reset_stats();
        assert_eq!(d.stats(), DinicStats::default());
    }

    #[test]
    fn unit_solver_counts_one_bfs_per_unit() {
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 1);
        d.add_edge(0, 2, 1);
        d.add_edge(1, 3, 1);
        d.add_edge(2, 3, 1);
        assert_eq!(d.max_flow_unit(0, 3, u32::MAX), 2);
        let s = d.stats();
        // One BFS per unit pushed plus the final failed pass.
        assert_eq!(s.augmentations, 2);
        assert_eq!(s.bfs_passes, 3);
        assert_eq!(s.arcs_touched, 4);
    }

    #[test]
    fn unit_capacity_matches_edge_connectivity_of_cycle() {
        // 6-cycle: exactly 2 edge-disjoint paths between opposite nodes.
        let n = 6u32;
        let mut d = Dinic::new(n as usize);
        for v in 0..n {
            let w = (v + 1) % n;
            d.add_edge(v, w, 1);
            d.add_edge(w, v, 1);
        }
        assert_eq!(d.max_flow(0, 3), 2);
    }
}
