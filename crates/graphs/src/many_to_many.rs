//! Unpaired many-to-many vertex-disjoint paths (flow baseline).
//!
//! Given disjoint source and target sets `S`, `T` with `|S| = |T| = k`,
//! find `k` fully vertex-disjoint paths, each from *some* source to
//! *some* target, covering every source and every target. (This is the
//! *unpaired* variant studied by the many-to-many disjoint-path
//! literature on hypercubes and their hierarchies; the *paired* variant
//! is a different, much harder problem.)
//!
//! Unlike the one-to-one and one-to-many cases, here the paths share no
//! node at all — sources are distinct, so every vertex has unit capacity.
//! Flow model: super-source → each `s`, each `t` → super-sink, vertex
//! split throughout.

use crate::csr::CsrGraph;
use crate::dinic::Dinic;
use std::collections::HashMap;

#[inline]
fn v_in(v: u32) -> u32 {
    2 * v
}
#[inline]
fn v_out(v: u32) -> u32 {
    2 * v + 1
}

/// Computes an unpaired many-to-many disjoint path cover, or `None` if
/// fewer than `k` fully disjoint paths exist.
///
/// Sources and targets must each be duplicate-free and mutually disjoint
/// sets of equal size. Each returned path runs from a source to a target;
/// every source and target appears in exactly one path; no two paths
/// share any vertex.
pub fn many_to_many_paths(g: &CsrGraph, sources: &[u32], targets: &[u32]) -> Option<Vec<Vec<u32>>> {
    let n = g.num_nodes();
    assert_eq!(sources.len(), targets.len(), "|S| must equal |T|");
    {
        let mut seen = std::collections::HashSet::new();
        for &x in sources.iter().chain(targets) {
            assert!(x < n, "endpoint out of range");
            assert!(
                seen.insert(x),
                "S and T must be disjoint and duplicate-free"
            );
        }
    }
    let k = sources.len();
    if k == 0 {
        return Some(Vec::new());
    }
    let super_src = 2 * n;
    let super_snk = 2 * n + 1;
    let mut d = Dinic::new(super_snk as usize + 1);
    for v in 0..n {
        d.add_edge(v_in(v), v_out(v), 1);
    }
    for (a, b) in g.edges() {
        d.add_edge(v_out(a), v_in(b), 1);
        d.add_edge(v_out(b), v_in(a), 1);
    }
    for &s in sources {
        d.add_edge(super_src, v_in(s), 1);
    }
    let mut terminal: HashMap<u32, ()> = HashMap::new();
    for &t in targets {
        d.add_edge(v_out(t), super_snk, 1);
        terminal.insert(t, ());
    }
    let flow = d.max_flow(super_src, super_snk);
    if (flow as usize) < k {
        return None;
    }

    let mut remaining: HashMap<(u32, u32), u32> = HashMap::new();
    for v in 0..=super_snk {
        for (aid, to) in d.flow_arcs_from(v) {
            *remaining.entry((v, to)).or_insert(0) += d.flow_on(aid);
        }
    }
    let mut take = |from: u32, to: u32| -> bool {
        match remaining.get_mut(&(from, to)) {
            Some(c) if *c > 0 => {
                *c -= 1;
                true
            }
            _ => false,
        }
    };
    let mut paths = Vec::with_capacity(k);
    for &s in sources {
        assert!(take(super_src, v_in(s)), "source {s} unserved (bug)");
        let mut path = vec![s];
        let mut cur = s;
        loop {
            let _ = take(v_in(cur), v_out(cur));
            if terminal.contains_key(&cur) && take(v_out(cur), super_snk) {
                break;
            }
            let next = g
                .neighbors(cur)
                .iter()
                .copied()
                .find(|&w| take(v_out(cur), v_in(w)))
                .expect("decomposition stuck (bug)");
            path.push(next);
            cur = next;
        }
        paths.push(path);
    }
    Some(paths)
}

/// Checks a many-to-many cover: k fully vertex-disjoint simple paths,
/// sources and targets each covered exactly once.
pub fn check_many_to_many(
    g: &CsrGraph,
    sources: &[u32],
    targets: &[u32],
    paths: &[Vec<u32>],
) -> Result<(), String> {
    if paths.len() != sources.len() {
        return Err("wrong path count".into());
    }
    let mut used = std::collections::HashSet::new();
    let mut src_left: std::collections::HashSet<u32> = sources.iter().copied().collect();
    let mut tgt_left: std::collections::HashSet<u32> = targets.iter().copied().collect();
    for (i, p) in paths.iter().enumerate() {
        let (first, last) = (*p.first().unwrap(), *p.last().unwrap());
        if !src_left.remove(&first) {
            return Err(format!("path {i}: source {first} not available"));
        }
        if !tgt_left.remove(&last) {
            return Err(format!("path {i}: target {last} not available"));
        }
        for w in p.windows(2) {
            if !g.has_edge(w[0], w[1]) {
                return Err(format!("path {i}: non-edge"));
            }
        }
        for &x in p {
            if !used.insert(x) {
                return Err(format!("paths share node {x}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: u32) -> CsrGraph {
        CsrGraph::from_edges(n, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>())
    }

    fn hypercube(n: u32) -> CsrGraph {
        CsrGraph::from_fn(1 << n, |v| {
            (0..n).map(move |d| v ^ (1u32 << d)).collect::<Vec<_>>()
        })
    }

    #[test]
    fn two_pairs_on_a_cycle() {
        let g = cycle(8);
        let ps = many_to_many_paths(&g, &[0, 4], &[2, 6]).unwrap();
        check_many_to_many(&g, &[0, 4], &[2, 6], &ps).unwrap();
    }

    #[test]
    fn cycle_feasibility_dichotomy() {
        let g = cycle(12);
        // Sources adjacent, targets adjacent on the far side: feasible.
        assert!(many_to_many_paths(&g, &[0, 1], &[6, 7]).is_some());
        // Spread S/T blocks around the ring: feasible (local hops).
        let ps = many_to_many_paths(&g, &[0, 4, 8], &[2, 6, 10]).unwrap();
        check_many_to_many(&g, &[0, 4, 8], &[2, 6, 10], &ps).unwrap();
        // A 3-source block: the middle source (1) is walled in by its
        // own neighbours 0 and 2 (both sources) — at most 2 paths exist.
        assert!(many_to_many_paths(&g, &[0, 1, 2], &[6, 7, 8]).is_none());
    }

    #[test]
    fn hypercube_antipodal_sets() {
        // Q_4: match {even-weight corners} to {odd-weight corners}.
        let g = hypercube(4);
        let sources = [0b0000u32, 0b0011, 0b0101, 0b1001];
        let targets = [0b1111u32, 0b1110, 0b0111, 0b1011];
        let ps = many_to_many_paths(&g, &sources, &targets).unwrap();
        check_many_to_many(&g, &sources, &targets, &ps).unwrap();
    }

    #[test]
    fn empty_sets() {
        let g = cycle(4);
        assert_eq!(many_to_many_paths(&g, &[], &[]), Some(Vec::new()));
    }

    #[test]
    fn single_pair_reduces_to_a_path() {
        let g = hypercube(3);
        let ps = many_to_many_paths(&g, &[0], &[7]).unwrap();
        check_many_to_many(&g, &[0], &[7], &ps).unwrap();
        assert_eq!(ps[0].first(), Some(&0));
        assert_eq!(ps[0].last(), Some(&7));
    }

    #[test]
    fn unpaired_matching_freedom() {
        // Path endpoints may cross-match: S = {0, 3}, T = {1, 2} on a
        // path graph 0-1-2-3 only works as 0→1 and 3→2.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let ps = many_to_many_paths(&g, &[0, 3], &[1, 2]).unwrap();
        check_many_to_many(&g, &[0, 3], &[1, 2], &ps).unwrap();
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn rejects_overlapping_sets() {
        many_to_many_paths(&cycle(6), &[0, 1], &[1, 3]);
    }
}
