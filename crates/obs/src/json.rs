//! Minimal JSON writer (no external dependencies).
//!
//! The metrics sidecars are flat objects of numbers, strings and nested
//! pre-serialised fragments; this module provides exactly that and
//! nothing more. Output is compact (no whitespace), keys are emitted in
//! insertion order.

/// Escapes a string for inclusion inside JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialises a slice of pre-serialised JSON values as an array.
pub fn array(items: &[String]) -> String {
    format!("[{}]", items.join(","))
}

/// Serialises a slice of `u64` as a JSON array of numbers.
pub fn u64_array(items: &[u64]) -> String {
    let strs: Vec<String> = items.iter().map(u64::to_string).collect();
    format!("[{}]", strs.join(","))
}

/// Serialises a slice of `f64` as a JSON array of numbers.
pub fn f64_array(items: &[f64]) -> String {
    let strs: Vec<String> = items.iter().map(|v| fmt_f64(*v)).collect();
    format!("[{}]", strs.join(","))
}

/// Finite floats print shortest-round-trip; non-finite values (invalid
/// in JSON) degrade to null.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Incremental JSON object builder.
///
/// ```
/// let mut o = obs::json::Obj::new();
/// o.u64("answer", 42);
/// o.str("name", "hhc");
/// assert_eq!(o.finish(), r#"{"answer":42,"name":"hhc"}"#);
/// ```
#[derive(Default)]
pub struct Obj {
    buf: String,
}

impl Obj {
    pub fn new() -> Self {
        Obj::default()
    }

    fn key(&mut self, k: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(&escape(k));
        self.buf.push_str("\":");
    }

    pub fn u64(&mut self, k: &str, v: u64) {
        self.key(k);
        self.buf.push_str(&v.to_string());
    }

    pub fn f64(&mut self, k: &str, v: f64) {
        self.key(k);
        self.buf.push_str(&fmt_f64(v));
    }

    pub fn str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
    }

    /// Inserts a pre-serialised JSON value (object, array, number…).
    pub fn raw(&mut self, k: &str, v: &str) {
        self.key(k);
        self.buf.push_str(v);
    }

    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_flat_object() {
        let mut o = Obj::new();
        o.u64("a", 1);
        o.f64("b", 2.5);
        o.str("c", "x\"y");
        o.raw("d", "[1,2]");
        assert_eq!(o.finish(), r#"{"a":1,"b":2.5,"c":"x\"y","d":[1,2]}"#);
    }

    #[test]
    fn arrays_and_escape() {
        assert_eq!(u64_array(&[1, 2, 3]), "[1,2,3]");
        assert_eq!(f64_array(&[0.5]), "[0.5]");
        assert_eq!(array(&["{}".into(), "1".into()]), "[{},1]");
        assert_eq!(escape("tab\there"), "tab\\there");
        assert_eq!(fmt_f64(f64::NAN), "null");
    }

    #[test]
    fn empty_object() {
        assert_eq!(Obj::new().finish(), "{}");
    }
}
