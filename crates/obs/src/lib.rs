//! Shared observability primitives for the HHC suite.
//!
//! Every layer of the stack reports effort through the same three
//! building blocks:
//!
//! * [`Histogram`] — a fixed power-of-two-bucket histogram of `u64`
//!   observations with exact `count/sum/min/max` and approximate
//!   quantiles (bucket upper bounds);
//! * [`TimingStats`] — a [`Histogram`] of nanosecond durations with the
//!   `min/mean/p99/max` view the experiment tables want;
//! * [`json`] — a dependency-free JSON writer for the metrics sidecars
//!   the experiments and the CLI emit.
//!
//! ## Cost model
//!
//! Recording into a [`Histogram`] is a handful of integer operations
//! (one `leading_zeros`, one indexed add) — cheap enough to stay
//! unconditionally enabled next to any work worth measuring. What is
//! *not* free is acquiring the observation itself: wall-clock timing
//! costs two `Instant` reads per query, and per-cycle simulator
//! sampling walks the queue map. Those producers are therefore opt-in
//! (`PathBuilder::enable_timing`, `SimConfig::sample_every`) and cost
//! nothing when disabled; see `DESIGN.md` §8 for measurements.

pub mod json;

/// Number of buckets: observations are bucketed by bit length, so bucket
/// `i` holds values in `[2^(i-1), 2^i - 1]` (bucket 0 holds exactly 0).
pub const BUCKETS: usize = 65;

/// Fixed-bucket histogram of `u64` observations.
///
/// Buckets are powers of two — bucket `i > 0` covers `[2^(i-1), 2^i - 1]`
/// and bucket 0 covers the single value 0 — so recording costs one
/// `leading_zeros` plus one indexed increment, and two histograms always
/// share a bucket layout (merging is element-wise). `count`, `sum`,
/// `min` and `max` are tracked exactly; quantiles are approximate with
/// resolution one power of two (the returned value is the bucket's upper
/// bound clamped to the exact maximum).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

#[inline]
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Upper bound (inclusive) of bucket `i`.
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact minimum, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Approximate `q`-quantile (`0.0 ≤ q ≤ 1.0`): the upper bound of the
    /// first bucket whose cumulative count reaches `⌈q·count⌉`, clamped
    /// to the exact maximum. `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(bucket_upper(i).min(self.max).max(self.min));
            }
        }
        Some(self.max)
    }

    /// Per-bucket `(lower, upper, count)` triples for the non-empty
    /// buckets, in increasing value order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| {
                let lo = if i == 0 { 0 } else { bucket_upper(i - 1) + 1 };
                (lo, bucket_upper(i), c)
            })
    }

    /// Element-wise accumulation of `other` into `self` (same layout by
    /// construction).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Drops every recorded observation.
    pub fn reset(&mut self) {
        *self = Histogram::default();
    }

    /// JSON object: summary fields plus the non-empty buckets.
    pub fn to_json(&self) -> String {
        let mut o = json::Obj::new();
        o.u64("count", self.count);
        o.u64("sum", self.sum);
        if let (Some(mn), Some(mx)) = (self.min(), self.max()) {
            o.u64("min", mn);
            o.u64("max", mx);
        }
        if let Some(mean) = self.mean() {
            o.f64("mean", mean);
        }
        if let Some(p) = self.quantile(0.99) {
            o.u64("p99", p);
        }
        let buckets: Vec<String> = self
            .nonzero_buckets()
            .map(|(lo, hi, c)| {
                let mut b = json::Obj::new();
                b.u64("lo", lo);
                b.u64("hi", hi);
                b.u64("count", c);
                b.finish()
            })
            .collect();
        o.raw("buckets", &json::array(&buckets));
        o.finish()
    }
}

/// Aggregated wall-clock timings in nanoseconds: a [`Histogram`] with
/// the `min/mean/p99/max` view the tables report. The producer decides
/// whether to time at all — see the crate-level cost model.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimingStats {
    hist: Histogram,
}

impl TimingStats {
    pub fn new() -> Self {
        TimingStats::default()
    }

    /// Records one duration in nanoseconds.
    #[inline]
    pub fn record_ns(&mut self, ns: u64) {
        self.hist.record(ns);
    }

    /// Number of timed events.
    pub fn count(&self) -> u64 {
        self.hist.count()
    }

    pub fn min_ns(&self) -> Option<u64> {
        self.hist.min()
    }

    pub fn max_ns(&self) -> Option<u64> {
        self.hist.max()
    }

    pub fn mean_ns(&self) -> Option<f64> {
        self.hist.mean()
    }

    /// Approximate 99th percentile (bucket resolution).
    pub fn p99_ns(&self) -> Option<u64> {
        self.hist.quantile(0.99)
    }

    /// The underlying nanosecond histogram.
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }

    pub fn merge(&mut self, other: &TimingStats) {
        self.hist.merge(&other.hist);
    }

    pub fn reset(&mut self) {
        self.hist.reset();
    }

    /// JSON object with `count/min/mean/p99/max` in nanoseconds.
    pub fn to_json(&self) -> String {
        let mut o = json::Obj::new();
        o.u64("count", self.count());
        if let (Some(mn), Some(mx)) = (self.min_ns(), self.max_ns()) {
            o.u64("min_ns", mn);
            o.u64("max_ns", mx);
        }
        if let Some(mean) = self.mean_ns() {
            o.f64("mean_ns", mean);
        }
        if let Some(p) = self.p99_ns() {
            o.u64("p99_ns", p);
        }
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.nonzero_buckets().count(), 0);
    }

    #[test]
    fn exact_summary_fields() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 1, 7, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1109);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        assert!((h.mean().unwrap() - 1109.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn bucket_totals_equal_count() {
        let mut h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v * v);
        }
        let total: u64 = h.nonzero_buckets().map(|(_, _, c)| c).sum();
        assert_eq!(total, h.count());
    }

    #[test]
    fn bucket_bounds_partition() {
        // Consecutive non-empty buckets never overlap and each recorded
        // value falls inside its bucket's range.
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 8, 15, 16, u64::MAX] {
            h.record(v);
        }
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        for w in buckets.windows(2) {
            assert!(w[0].1 < w[1].0, "buckets overlap: {w:?}");
        }
        assert_eq!(buckets[0], (0, 0, 1));
    }

    #[test]
    fn quantiles_are_monotone_and_bracket_extremes() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let q0 = h.quantile(0.0).unwrap();
        let q50 = h.quantile(0.5).unwrap();
        let q99 = h.quantile(0.99).unwrap();
        let q100 = h.quantile(1.0).unwrap();
        assert!(q0 <= q50 && q50 <= q99 && q99 <= q100);
        assert!(q0 >= 1);
        assert_eq!(q100, 10_000);
        // p50 of 1..=10k is in [4096, 8191]: bucket resolution.
        assert!((5000..=8191).contains(&q50), "p50 = {q50}");
    }

    #[test]
    fn merge_equals_concatenation() {
        let (mut a, mut b, mut both) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in 0..100u64 {
            a.record(v * 3);
            both.record(v * 3);
        }
        for v in 0..77u64 {
            b.record(v * v);
            both.record(v * v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn timing_stats_view() {
        let mut t = TimingStats::new();
        for ns in [100u64, 200, 300, 100_000] {
            t.record_ns(ns);
        }
        assert_eq!(t.count(), 4);
        assert_eq!(t.min_ns(), Some(100));
        assert_eq!(t.max_ns(), Some(100_000));
        assert!(t.p99_ns().unwrap() >= 65_536); // bucket containing 100_000
        let j = t.to_json();
        assert!(j.contains("\"count\":4"));
        assert!(j.contains("min_ns"));
    }

    #[test]
    fn json_shape() {
        let mut h = Histogram::new();
        h.record(5);
        let j = h.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"buckets\":[{\"lo\":4,\"hi\":7,\"count\":1}]"));
    }
}
