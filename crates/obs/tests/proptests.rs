//! Property tests for the metrics primitives: the invariants every
//! consumer of [`obs::Histogram`] relies on.

use obs::{Histogram, TimingStats};
use proptest::prelude::*;

proptest! {
    /// Bucket totals always equal the observation count, and the exact
    /// summary fields match a straight recomputation.
    #[test]
    fn bucket_totals_and_summary(values in proptest::collection::vec(any::<u64>(), 0..200)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let total: u64 = h.nonzero_buckets().map(|(_, _, c)| c).sum();
        prop_assert_eq!(total, values.len() as u64);
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.min(), values.iter().copied().min());
        prop_assert_eq!(h.max(), values.iter().copied().max());
        let sum = values.iter().fold(0u64, |a, &v| a.saturating_add(v));
        prop_assert_eq!(h.sum(), sum);
    }

    /// Every value lands in a bucket whose [lo, hi] range contains it.
    #[test]
    fn values_fall_in_their_buckets(v in any::<u64>()) {
        let mut h = Histogram::new();
        h.record(v);
        let (lo, hi, c) = h.nonzero_buckets().next().unwrap();
        prop_assert_eq!(c, 1);
        prop_assert!(lo <= v && v <= hi, "{} not in [{}, {}]", v, lo, hi);
    }

    /// Quantiles are monotone in q and bracketed by min/max.
    #[test]
    fn quantiles_monotone(values in proptest::collection::vec(any::<u64>(), 1..100)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let qs: Vec<u64> = [0.0, 0.25, 0.5, 0.9, 0.99, 1.0]
            .iter()
            .map(|&q| h.quantile(q).unwrap())
            .collect();
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles not monotone: {:?}", qs);
        }
        prop_assert!(qs[0] >= h.min().unwrap());
        prop_assert_eq!(*qs.last().unwrap(), h.max().unwrap());
    }

    /// merge(a, b) is indistinguishable from recording both streams into
    /// one histogram, in either order.
    #[test]
    fn merge_is_concatenation(
        xs in proptest::collection::vec(any::<u64>(), 0..100),
        ys in proptest::collection::vec(any::<u64>(), 0..100),
    ) {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for &v in &xs { a.record(v); both.record(v); }
        for &v in &ys { b.record(v); both.record(v); }
        let mut ab = a.clone();
        ab.merge(&b);
        prop_assert_eq!(&ab, &both);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ba, &both);
    }

    /// TimingStats is a faithful view over its histogram.
    #[test]
    fn timing_view_consistent(values in proptest::collection::vec(0u64..10_000_000, 1..100)) {
        let mut t = TimingStats::new();
        for &v in &values {
            t.record_ns(v);
        }
        prop_assert_eq!(t.count(), values.len() as u64);
        prop_assert_eq!(t.min_ns(), values.iter().copied().min());
        prop_assert_eq!(t.max_ns(), values.iter().copied().max());
        prop_assert!(t.p99_ns().unwrap() >= t.min_ns().unwrap());
        prop_assert!(t.p99_ns().unwrap() <= t.max_ns().unwrap());
    }
}
