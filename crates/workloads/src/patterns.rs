//! Traffic patterns: how sources choose destinations.
//!
//! The synthetic patterns are the standard interconnection-network
//! benchmarks (uniform, complement, reversal, transpose, hotspot), applied
//! to the `n = 2^m + m`-bit HHC address. Permutation patterns stress
//! specific resources: bit-complement maximises cube-field Hamming
//! distance (every external position must be crossed), bit-reversal and
//! transpose create non-local skew, hotspot concentrates load.

use crate::space::AddressSpace;
use hhc_core::NodeId;
use rand::Rng;

/// A destination-selection pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Uniform over all nodes except the source.
    UniformRandom,
    /// Destination = bitwise complement of the full n-bit address.
    BitComplement,
    /// Destination = the n-bit address reversed.
    BitReversal,
    /// Destination swaps the low and high halves of the address
    /// (matrix-transpose traffic; for odd `n` the middle bit stays put).
    Transpose,
    /// With probability `hot_fraction`, send to the fixed hotspot node 0;
    /// otherwise uniform random.
    Hotspot {
        /// Fraction of traffic aimed at the hotspot, in `[0, 1]`.
        hot_fraction: f64,
    },
    /// Destination = a uniformly random neighbour of the source
    /// (maximally local traffic; every packet is a single hop).
    NearestNeighbor,
}

impl Pattern {
    /// Picks the destination for a packet injected at `src`.
    ///
    /// Deterministic patterns ignore `rng`. Returns `None` when the
    /// pattern maps the source to itself (such packets are not injected).
    pub fn destination<A: AddressSpace + ?Sized, R: Rng>(
        &self,
        space: &A,
        src: NodeId,
        rng: &mut R,
    ) -> Option<NodeId> {
        let n = space.address_bits();
        let mask: u128 = space.address_mask();
        let dst = match self {
            Pattern::UniformRandom => {
                let r: u128 = ((rng.gen::<u64>() as u128) << 64 | rng.gen::<u64>() as u128) & mask;
                NodeId::from_raw(r)
            }
            Pattern::BitComplement => NodeId::from_raw(!src.raw() & mask),
            Pattern::BitReversal => {
                let mut out = 0u128;
                let raw = src.raw();
                for b in 0..n {
                    out |= (raw >> b & 1) << (n - 1 - b);
                }
                NodeId::from_raw(out)
            }
            Pattern::Transpose => {
                let half = n / 2;
                let raw = src.raw();
                let low = raw & ((1u128 << half) - 1);
                let high = raw >> (n - half) & ((1u128 << half) - 1);
                let mid = raw & !(((1u128 << half) - 1) | (((1u128 << half) - 1) << (n - half)));
                NodeId::from_raw(mid | low << (n - half) | high)
            }
            Pattern::Hotspot { hot_fraction } => {
                if rng.gen::<f64>() < *hot_fraction {
                    NodeId::from_raw(0)
                } else {
                    let r: u128 =
                        ((rng.gen::<u64>() as u128) << 64 | rng.gen::<u64>() as u128) & mask;
                    NodeId::from_raw(r)
                }
            }
            Pattern::NearestNeighbor => {
                let nbrs = space.neighbors_of(src);
                nbrs[rng.gen_range(0..nbrs.len())]
            }
        };
        if dst == src {
            None
        } else {
            Some(dst)
        }
    }

    /// Whether the pattern is a fixed permutation (no randomness).
    pub fn is_deterministic(&self) -> bool {
        matches!(
            self,
            Pattern::BitComplement | Pattern::BitReversal | Pattern::Transpose
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhc_core::Hhc;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn complement_is_an_involution() {
        let h = Hhc::new(3).unwrap();
        let mut r = rng();
        for raw in [0u128, 5, 77, 2047] {
            let src = NodeId::from_raw(raw);
            let dst = Pattern::BitComplement.destination(&h, src, &mut r).unwrap();
            let back = Pattern::BitComplement.destination(&h, dst, &mut r).unwrap();
            assert_eq!(back, src);
            assert!(h.check(dst).is_ok());
        }
    }

    #[test]
    fn complement_maximises_crossings() {
        let h = Hhc::new(3).unwrap();
        let src = h.node(0x0F, 0b010).unwrap();
        let dst = Pattern::BitComplement
            .destination(&h, src, &mut rng())
            .unwrap();
        assert_eq!(
            (h.cube_field(src) ^ h.cube_field(dst)).count_ones(),
            h.positions()
        );
    }

    #[test]
    fn reversal_is_an_involution_and_in_range() {
        let h = Hhc::new(2).unwrap();
        let mut r = rng();
        for raw in 0..64u128 {
            let src = NodeId::from_raw(raw);
            if let Some(dst) = Pattern::BitReversal.destination(&h, src, &mut r) {
                assert!(h.check(dst).is_ok());
                let back = Pattern::BitReversal.destination(&h, dst, &mut r).unwrap();
                assert_eq!(back, src);
            }
        }
    }

    #[test]
    fn transpose_is_an_involution() {
        let h = Hhc::new(2).unwrap(); // n = 6, halves of 3
        let mut r = rng();
        for raw in 0..64u128 {
            let src = NodeId::from_raw(raw);
            if let Some(dst) = Pattern::Transpose.destination(&h, src, &mut r) {
                assert!(h.check(dst).is_ok());
                let back = Pattern::Transpose.destination(&h, dst, &mut r).unwrap();
                assert_eq!(back, src, "transpose must be an involution");
            }
        }
    }

    #[test]
    fn transpose_odd_n_keeps_middle_bit() {
        let h = Hhc::new(3).unwrap(); // n = 11, halves of 5, middle bit 5
        let src = NodeId::from_raw(1 << 5);
        let dst = Pattern::Transpose.destination(&h, src, &mut rng());
        // Middle bit maps to itself ⇒ src → src ⇒ None.
        assert_eq!(dst, None);
    }

    #[test]
    fn uniform_stays_in_range_and_varies() {
        let h = Hhc::new(3).unwrap();
        let src = NodeId::from_raw(0);
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            if let Some(d) = Pattern::UniformRandom.destination(&h, src, &mut r) {
                assert!(h.check(d).is_ok());
                assert_ne!(d, src);
                seen.insert(d);
            }
        }
        assert!(seen.len() > 50, "uniform pattern not spreading");
    }

    #[test]
    fn hotspot_concentrates() {
        let h = Hhc::new(2).unwrap();
        let src = NodeId::from_raw(17);
        let mut r = rng();
        let p = Pattern::Hotspot { hot_fraction: 0.8 };
        let hits = (0..500)
            .filter_map(|_| p.destination(&h, src, &mut r))
            .filter(|d| d.raw() == 0)
            .count();
        assert!(hits > 300, "hotspot fraction not honoured ({hits}/500)");
    }

    #[test]
    fn nearest_neighbor_is_one_hop() {
        let h = Hhc::new(3).unwrap();
        let src = h.node(0x3C, 0b010).unwrap();
        let mut r = rng();
        for _ in 0..50 {
            let d = Pattern::NearestNeighbor
                .destination(&h, src, &mut r)
                .unwrap();
            assert!(h.is_edge(src, d), "destination must be adjacent");
        }
    }

    #[test]
    fn self_destination_suppressed() {
        let h = Hhc::new(2).unwrap();
        // Complement never maps a node to itself; reversal of a palindrome does.
        let palindrome = NodeId::from_raw(0b100001);
        assert_eq!(
            Pattern::BitReversal.destination(&h, palindrome, &mut rng()),
            None
        );
    }
}
