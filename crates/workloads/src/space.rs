//! Address-space abstraction.
//!
//! Workload generators only need two facts about a network: how many
//! address bits a node label has (to draw uniform nodes) and who a
//! node's neighbours are (for local traffic). Abstracting this lets the
//! same traffic patterns and fault models drive both the HHC and the
//! plain hypercube baseline in the comparison experiments (T5/F6).

use hhc_core::{Hhc, NodeId};

/// A network address space: dense `raw ∈ [0, 2^address_bits)` labels
/// plus an adjacency oracle.
pub trait AddressSpace {
    /// Number of address bits; node labels are exactly the values in
    /// `[0, 2^address_bits)`.
    fn address_bits(&self) -> u32;

    /// The neighbours of a node.
    fn neighbors_of(&self, v: NodeId) -> Vec<NodeId>;

    /// Bitmask selecting valid raw addresses.
    fn address_mask(&self) -> u128 {
        let n = self.address_bits();
        if n >= 128 {
            u128::MAX
        } else {
            (1u128 << n) - 1
        }
    }

    /// Total number of nodes, `2^address_bits`.
    fn num_addresses(&self) -> u128 {
        1u128 << self.address_bits()
    }
}

impl AddressSpace for Hhc {
    fn address_bits(&self) -> u32 {
        self.n()
    }

    fn neighbors_of(&self, v: NodeId) -> Vec<NodeId> {
        self.neighbors(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hhc_address_space() {
        let h = Hhc::new(3).unwrap();
        assert_eq!(h.address_bits(), 11);
        assert_eq!(h.num_addresses(), 2048);
        assert_eq!(h.address_mask(), 0x7FF);
        let v = NodeId::from_raw(5);
        assert_eq!(h.neighbors_of(v).len(), 4);
    }
}

#[cfg(test)]
mod address_space_laws {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every neighbour returned by the oracle is a valid address and
        /// the relation is symmetric on the HHC.
        #[test]
        fn neighbor_oracle_is_symmetric(m in 1u32..=4, raw in any::<u64>()) {
            let h = Hhc::new(m).unwrap();
            let v = NodeId::from_raw(raw as u128 & h.address_mask());
            for w in h.neighbors_of(v) {
                prop_assert_eq!(w.raw() & h.address_mask(), w.raw());
                prop_assert!(h.neighbors_of(w).contains(&v));
            }
        }
    }
}
