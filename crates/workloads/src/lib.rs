//! Workload generation for network experiments.
//!
//! Provides the three inputs every evaluation needs, all deterministic
//! under a seed:
//!
//! * [`patterns`] — destination selection per source (uniform random,
//!   bit-complement, bit-reversal, transpose, hotspot) over the HHC
//!   address space;
//! * [`arrivals`] — per-node Bernoulli injection processes parameterised
//!   by offered load;
//! * [`faults`] — random distinct fault sets avoiding protected nodes;
//! * [`sampling`] — random node/pair sampling over the HHC address
//!   space, shared by experiments, benches and stress tests.

pub mod arrivals;
pub mod faults;
pub mod patterns;
pub mod sampling;
pub mod space;

pub use arrivals::Bernoulli;
pub use faults::{adversarial_fault_set, random_fault_set};
pub use patterns::Pattern;
pub use space::AddressSpace;
