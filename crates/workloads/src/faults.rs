//! Random fault-set generation.
//!
//! Experiment F3 measures delivery success under `f` random node faults.
//! Fault sets never include *protected* nodes (the communicating pair),
//! matching the fault-tolerance model of the paper: the claim `f ≤ m`
//! faults can never disconnect a pair follows from the m+1 disjoint paths
//! only if the endpoints themselves are alive.

use crate::space::AddressSpace;
use hhc_core::NodeId;
use rand::Rng;
use std::collections::HashSet;

/// Samples `count` distinct faulty nodes, none of which is in `protected`.
///
/// # Panics
/// Panics if `count` exceeds the number of unprotected nodes, or if the
/// network is too large for rejection sampling to make sense
/// (`count` must be ≤ 2^20).
pub fn random_fault_set<A: AddressSpace + ?Sized, R: Rng>(
    space: &A,
    count: usize,
    protected: &[NodeId],
    rng: &mut R,
) -> HashSet<NodeId> {
    assert!(count <= 1 << 20, "fault set too large");
    let total = space.num_addresses();
    assert!(
        (count + protected.len()) as u128 <= total,
        "more faults than nodes"
    );
    let mask: u128 = space.address_mask();
    let protected: HashSet<NodeId> = protected.iter().copied().collect();
    let mut faults = HashSet::with_capacity(count);
    while faults.len() < count {
        let raw = ((rng.gen::<u64>() as u128) << 64 | rng.gen::<u64>() as u128) & mask;
        let v = NodeId::from_raw(raw);
        if !protected.contains(&v) {
            faults.insert(v);
        }
    }
    faults
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhc_core::Hhc;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn produces_requested_count() {
        let h = Hhc::new(3).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let f = random_fault_set(&h, 10, &[], &mut rng);
        assert_eq!(f.len(), 10);
        for v in &f {
            assert!(h.check(*v).is_ok());
        }
    }

    #[test]
    fn respects_protection() {
        let h = Hhc::new(2).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let u = NodeId::from_raw(0);
        let v = NodeId::from_raw(63);
        for _ in 0..50 {
            let f = random_fault_set(&h, 20, &[u, v], &mut rng);
            assert!(!f.contains(&u) && !f.contains(&v));
            assert_eq!(f.len(), 20);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let h = Hhc::new(3).unwrap();
        let a = random_fault_set(&h, 15, &[], &mut StdRng::seed_from_u64(11));
        let b = random_fault_set(&h, 15, &[], &mut StdRng::seed_from_u64(11));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "more faults than nodes")]
    fn rejects_oversized_request() {
        let h = Hhc::new(1).unwrap(); // 8 nodes
        random_fault_set(&h, 9, &[], &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn can_fault_everything_unprotected() {
        let h = Hhc::new(1).unwrap(); // 8 nodes
        let prot = [NodeId::from_raw(0)];
        let f = random_fault_set(&h, 7, &prot, &mut StdRng::seed_from_u64(2));
        assert_eq!(f.len(), 7);
        assert!(!f.contains(&prot[0]));
    }
}

/// Builds an *adversarial* fault set against a specific disjoint-path
/// family: faults one interior node of each path in turn (round-robin)
/// until `count` faults are placed. With `count ≥` the family size every
/// path is blocked; with `count <` the family size, exactly `count`
/// paths are blocked — the worst placement any `count`-node adversary
/// can achieve against internally disjoint paths.
///
/// Paths of length 1 (direct edges) have no interior and are skipped —
/// an adversary cannot block them without killing an endpoint.
pub fn adversarial_fault_set<R: Rng>(
    paths: &[Vec<NodeId>],
    count: usize,
    rng: &mut R,
) -> HashSet<NodeId> {
    let mut faults = HashSet::with_capacity(count);
    let blockable: Vec<&Vec<NodeId>> = paths.iter().filter(|p| p.len() > 2).collect();
    if blockable.is_empty() {
        return faults;
    }
    let mut round = 0usize;
    while faults.len() < count {
        let p = blockable[round % blockable.len()];
        round += 1;
        // After every path has one fault, extra budget lands on random
        // additional interiors (may repeat a path).
        let interior = &p[1..p.len() - 1];
        let pick = interior[rng.gen_range(0..interior.len())];
        faults.insert(pick);
        if round > 64 * count.max(1) {
            break; // interiors exhausted; cannot place more faults
        }
    }
    faults
}

#[cfg(test)]
mod adversarial_tests {
    use super::*;
    use hhc_core::Hhc;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn blocks_exactly_count_paths_when_budget_small() {
        let h = Hhc::new(3).unwrap();
        let u = h.node(0x21, 0b001).unwrap();
        let v = h.node(0x84, 0b110).unwrap();
        let paths = h.disjoint_paths(u, v).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for count in 1..=h.m() as usize {
            let faults = adversarial_fault_set(&paths, count, &mut rng);
            assert_eq!(faults.len(), count);
            let blocked = paths
                .iter()
                .filter(|p| p.iter().any(|x| faults.contains(x)))
                .count();
            assert_eq!(blocked, count, "round-robin must block one path per fault");
        }
    }

    #[test]
    fn full_budget_blocks_all_blockable_paths() {
        let h = Hhc::new(2).unwrap();
        let u = h.node(0b0000, 0b00).unwrap();
        let v = h.node(0b1001, 0b10).unwrap();
        let paths = h.disjoint_paths(u, v).unwrap();
        let blockable = paths.iter().filter(|p| p.len() > 2).count();
        let faults = adversarial_fault_set(&paths, blockable, &mut StdRng::seed_from_u64(1));
        let blocked = paths
            .iter()
            .filter(|p| p.iter().any(|x| faults.contains(x)))
            .count();
        assert_eq!(blocked, blockable);
    }

    #[test]
    fn direct_edges_cannot_be_blocked() {
        let h = Hhc::new(2).unwrap();
        let u = h.node(0, 0b00).unwrap();
        let v = h.internal_neighbor(u, 0);
        let paths = h.disjoint_paths(u, v).unwrap();
        let faults = adversarial_fault_set(&paths, 10, &mut StdRng::seed_from_u64(2));
        // The direct edge path survives any interior-only fault set.
        let direct = paths.iter().find(|p| p.len() == 2).expect("direct edge");
        assert!(!direct.iter().any(|x| faults.contains(x)));
        // And faults never include the endpoints.
        assert!(!faults.contains(&u) && !faults.contains(&v));
    }
}
