//! Random node/pair sampling over the HHC address space.
//!
//! This is the single home of the pair-sampling logic shared by the
//! experiment tables, the criterion benches and the stress suites (it
//! was previously duplicated in each). Everything is deterministic under
//! the caller's RNG (or seed, for the owning helpers).

use hhc_core::{Hhc, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A uniformly random node of `hhc`.
pub fn random_node<R: Rng>(hhc: &Hhc, rng: &mut R) -> NodeId {
    let n = hhc.n();
    let mask: u128 = if n >= 128 {
        u128::MAX
    } else {
        (1u128 << n) - 1
    };
    let raw = ((rng.gen::<u64>() as u128) << 64 | rng.gen::<u64>() as u128) & mask;
    NodeId::from_raw(raw)
}

/// A random ordered pair of distinct nodes.
pub fn random_pair<R: Rng>(hhc: &Hhc, rng: &mut R) -> (NodeId, NodeId) {
    loop {
        let u = random_node(hhc, rng);
        let v = random_node(hhc, rng);
        if u != v {
            return (u, v);
        }
    }
}

/// `count` random ordered pairs of distinct nodes from a fresh
/// seed-deterministic RNG — the workload shape batched construction
/// benchmarks run on.
pub fn random_pairs(hhc: &Hhc, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| random_pair(hhc, &mut rng)).collect()
}

/// A random pair whose cube fields differ in exactly `k` positions
/// (`0 ≤ k ≤ 2^m`); node fields are uniform.
pub fn random_pair_with_k<R: Rng>(hhc: &Hhc, k: u32, rng: &mut R) -> (NodeId, NodeId) {
    let positions = hhc.positions();
    assert!(k <= positions);
    loop {
        // Choose k distinct positions to flip.
        let mut mask = 0u128;
        let mut chosen = 0;
        while chosen < k {
            let p = rng.gen_range(0..positions);
            if mask >> p & 1 == 0 {
                mask |= 1u128 << p;
                chosen += 1;
            }
        }
        let xu_mask: u128 = if positions >= 128 {
            u128::MAX
        } else {
            (1u128 << positions) - 1
        };
        let xu = ((rng.gen::<u64>() as u128) << 64 | rng.gen::<u64>() as u128) & xu_mask;
        let yu = rng.gen_range(0..hhc.positions());
        let yv = rng.gen_range(0..hhc.positions());
        let u = hhc.node(xu, yu).expect("in range");
        let v = hhc.node(xu ^ mask, yv).expect("in range");
        if u != v {
            return (u, v);
        }
    }
}

/// All ordered pairs of a small network (`m ≤ 2`).
pub fn all_pairs(hhc: &Hhc) -> Vec<(NodeId, NodeId)> {
    assert!(hhc.m() <= 2);
    let nodes: Vec<NodeId> = hhc.iter_nodes().collect();
    let mut out = Vec::with_capacity(nodes.len() * (nodes.len() - 1));
    for &u in &nodes {
        for &v in &nodes {
            if u != v {
                out.push((u, v));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_pair_distinct_and_in_range() {
        let h = Hhc::new(3).unwrap();
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let (u, v) = random_pair(&h, &mut r);
            assert_ne!(u, v);
            h.check(u).unwrap();
            h.check(v).unwrap();
        }
    }

    #[test]
    fn random_pairs_deterministic_under_seed() {
        let h = Hhc::new(4).unwrap();
        assert_eq!(random_pairs(&h, 32, 7), random_pairs(&h, 32, 7));
        assert_ne!(random_pairs(&h, 32, 7), random_pairs(&h, 32, 8));
    }

    #[test]
    fn random_pair_with_k_has_exact_crossing_count() {
        let h = Hhc::new(3).unwrap();
        let mut r = StdRng::seed_from_u64(2);
        for k in 0..=8 {
            for _ in 0..50 {
                let (u, v) = random_pair_with_k(&h, k, &mut r);
                assert_eq!(
                    (h.cube_field(u) ^ h.cube_field(v)).count_ones(),
                    k,
                    "wrong k"
                );
            }
        }
    }

    #[test]
    fn all_pairs_counts() {
        let h = Hhc::new(1).unwrap();
        assert_eq!(all_pairs(&h).len(), 8 * 7);
    }
}
