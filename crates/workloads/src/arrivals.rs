//! Packet arrival processes.
//!
//! The simulator is slotted (one cycle = one link traversal), so the
//! natural open-loop arrival model is a per-node Bernoulli process: in
//! each cycle each node independently injects a packet with probability
//! `rate` (packets/node/cycle). Offered-load sweeps in experiment F4 vary
//! `rate` from well below to beyond saturation.

use rand::Rng;

/// A per-node, per-cycle Bernoulli injection process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    rate: f64,
}

impl Bernoulli {
    /// Creates a process with injection probability `rate ∈ [0, 1]`.
    ///
    /// # Panics
    /// Panics if `rate` is outside `[0, 1]` or not finite.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && (0.0..=1.0).contains(&rate),
            "injection rate {rate} outside [0, 1]"
        );
        Bernoulli { rate }
    }

    /// The configured injection probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Whether a packet arrives at this node in this cycle.
    #[inline]
    pub fn fires<R: Rng>(&self, rng: &mut R) -> bool {
        self.rate > 0.0 && rng.gen::<f64>() < self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_rate_never_fires() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = Bernoulli::new(0.0);
        assert!((0..1000).all(|_| !p.fires(&mut rng)));
    }

    #[test]
    fn unit_rate_always_fires() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = Bernoulli::new(1.0);
        assert!((0..1000).all(|_| p.fires(&mut rng)));
    }

    #[test]
    fn empirical_rate_close_to_nominal() {
        let mut rng = StdRng::seed_from_u64(99);
        let p = Bernoulli::new(0.3);
        let hits = (0..20_000).filter(|_| p.fires(&mut rng)).count();
        let freq = hits as f64 / 20_000.0;
        assert!((freq - 0.3).abs() < 0.02, "empirical rate {freq}");
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_bad_rate() {
        Bernoulli::new(1.5);
    }

    #[test]
    fn deterministic_under_seed() {
        let p = Bernoulli::new(0.5);
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let sa: Vec<bool> = (0..100).map(|_| p.fires(&mut a)).collect();
        let sb: Vec<bool> = (0..100).map(|_| p.fires(&mut b)).collect();
        assert_eq!(sa, sb);
    }
}
