//! Slotted store-and-forward network simulator for HHC experiments.
//!
//! A deliberately simple, deterministic discrete-event model — one event
//! class (link transmission), fixed unit timestep — which is exactly what
//! the routing experiments need:
//!
//! * every **directed link** transmits at most one packet per cycle;
//! * each link has an unbounded FIFO output queue (open-loop injection,
//!   saturation shows up as unbounded queue growth / latency);
//! * packets are **source-routed**: a [`strategy::Strategy`] picks the
//!   full path at injection (single path, random one of the `m + 1`
//!   disjoint paths, or fault-adaptive);
//! * faulty nodes never carry traffic; packets that cannot be routed are
//!   counted as drops.
//!
//! [`fault`] additionally provides the *static* (queue-free) delivery
//! analysis used by experiment F3, where only connectivity matters.
//! [`scenario`] layers declarative TOML scenarios — spec, compile, run,
//! golden-trace record/replay, delta-debug shrinking — on top of
//! [`sim::Simulator`].

#![warn(missing_docs)]

pub mod fault;
pub mod faults;
pub mod flat;
pub mod net;
pub mod packet;
pub mod scenario;
pub mod sim;
pub mod stats;
pub mod strategy;

pub use faults::{FaultAction, FaultEvent, FaultFlags, FaultLookup, FaultSet};
pub use flat::{EngineConfig, Fidelity, LinkStoreMode, RouteArena, WarmRoutes};
pub use hhc_core::CacheConfig;
pub use net::{CubeNet, LinkTable, Network, RouteScratch};
pub use sim::{DeliveryRecord, SimConfig, SimError, Simulator, Switching};
pub use stats::{CycleSample, SimStats};
pub use strategy::Strategy;
