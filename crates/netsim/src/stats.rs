//! Simulation statistics.

/// Counters and aggregates collected by a simulation run.
///
/// Conservation invariant (checked in tests):
/// `injected == delivered + in_flight_at_end` and drops are counted
/// separately (a dropped packet never entered the network).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Packets that entered the network.
    pub injected: u64,
    /// Packets that reached their destination.
    pub delivered: u64,
    /// Packets rejected at injection (unroutable under the strategy).
    pub dropped_unroutable: u64,
    /// Injection attempts whose destination was faulty (no strategy can
    /// deliver these; counted separately from routing failures).
    pub dropped_dst_faulty: u64,
    /// Injection attempts suppressed because the pattern mapped the
    /// source to itself.
    pub self_addressed: u64,
    /// Injections refused because the first queue was full
    /// (finite-buffer mode only).
    pub dropped_backpressure: u64,
    /// Link-cycles during which a head-of-line packet could not advance
    /// because its next queue was full (finite-buffer mode only).
    pub backpressure_stalls: u64,
    /// Packets still queued when the run ended.
    pub in_flight_at_end: u64,
    /// Sum of delivered-packet latencies (cycles).
    pub latency_sum: u64,
    /// Largest delivered-packet latency.
    pub latency_max: u64,
    /// Sum over delivered packets of their route length (hops).
    pub hops_sum: u64,
    /// Total link transmissions performed (one per packet per hop).
    pub link_transmissions: u64,
    /// Largest queue depth observed on any directed link.
    pub max_queue_len: u64,
    /// Cycles simulated.
    pub cycles: u64,
    /// Nodes in the network.
    pub nodes: u64,
}

impl SimStats {
    /// Mean latency of delivered packets, or `None` if nothing delivered.
    pub fn mean_latency(&self) -> Option<f64> {
        (self.delivered > 0).then(|| self.latency_sum as f64 / self.delivered as f64)
    }

    /// Mean hop count of delivered packets.
    pub fn mean_hops(&self) -> Option<f64> {
        (self.delivered > 0).then(|| self.hops_sum as f64 / self.delivered as f64)
    }

    /// Mean link utilisation: transmissions per link per cycle
    /// (an HHC has `2^n · (m+1)` directed links).
    pub fn link_utilization(&self, directed_links: u64) -> f64 {
        if self.cycles == 0 || directed_links == 0 {
            0.0
        } else {
            self.link_transmissions as f64 / (self.cycles as f64 * directed_links as f64)
        }
    }

    /// Accepted throughput in packets/node/cycle.
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 || self.nodes == 0 {
            0.0
        } else {
            self.delivered as f64 / (self.cycles as f64 * self.nodes as f64)
        }
    }

    /// Fraction of routable injection attempts that were delivered by the
    /// end of the run (< 1 under saturation or when the run ends early).
    pub fn delivery_ratio(&self) -> f64 {
        if self.injected == 0 {
            1.0
        } else {
            self.delivered as f64 / self.injected as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let s = SimStats {
            injected: 10,
            delivered: 8,
            latency_sum: 40,
            latency_max: 9,
            hops_sum: 24,
            cycles: 100,
            nodes: 4,
            ..Default::default()
        };
        assert_eq!(s.mean_latency(), Some(5.0));
        assert_eq!(s.mean_hops(), Some(3.0));
        assert!((s.throughput() - 0.02).abs() < 1e-12);
        assert!((s.delivery_ratio() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_run_is_well_defined() {
        let s = SimStats::default();
        assert_eq!(s.mean_latency(), None);
        assert_eq!(s.throughput(), 0.0);
        assert_eq!(s.delivery_ratio(), 1.0);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn link_utilization_edges() {
        let s = SimStats {
            link_transmissions: 50,
            cycles: 100,
            nodes: 4,
            ..Default::default()
        };
        assert!((s.link_utilization(10) - 0.05).abs() < 1e-12);
        assert_eq!(s.link_utilization(0), 0.0);
        let z = SimStats::default();
        assert_eq!(z.link_utilization(10), 0.0);
    }
}
