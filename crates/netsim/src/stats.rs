//! Simulation statistics.

use obs::{json, Histogram};

/// One time-series sample, captured at the end of a cycle when
/// [`SimConfig::sample_every`](crate::SimConfig::sample_every) is set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleSample {
    /// Cycle the sample was taken at.
    pub cycle: u64,
    /// Packets sitting in link queues at the end of the cycle.
    pub queued_packets: u64,
    /// Deepest single queue at the end of the cycle.
    pub max_queue_len: u64,
    /// Link transmissions started during the cycle (the numerator of
    /// instantaneous link utilisation).
    pub transmissions: u64,
}

/// Counters and aggregates collected by a simulation run.
///
/// Conservation invariant (checked in tests):
/// `injected == delivered + in_flight_at_end` and drops are counted
/// separately (a dropped packet never entered the network).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Packets that entered the network.
    pub injected: u64,
    /// Packets that reached their destination.
    pub delivered: u64,
    /// Packets rejected at injection (unroutable under the strategy).
    pub dropped_unroutable: u64,
    /// Injection attempts whose destination was faulty (no strategy can
    /// deliver these; counted separately from routing failures).
    pub dropped_dst_faulty: u64,
    /// Injection attempts suppressed because the pattern mapped the
    /// source to itself.
    pub self_addressed: u64,
    /// Injections refused because the first queue was full
    /// (finite-buffer mode only).
    pub dropped_backpressure: u64,
    /// Link-cycles during which a head-of-line packet could not advance
    /// because its next queue was full (finite-buffer mode only).
    pub backpressure_stalls: u64,
    /// Packets still queued when the run ended.
    pub in_flight_at_end: u64,
    /// Sum of delivered-packet latencies (cycles).
    pub latency_sum: u64,
    /// Largest delivered-packet latency.
    pub latency_max: u64,
    /// Sum over delivered packets of their route length (hops).
    pub hops_sum: u64,
    /// Total link transmissions performed (one per packet per hop).
    pub link_transmissions: u64,
    /// Largest queue depth observed on any directed link.
    pub max_queue_len: u64,
    /// Cycles simulated.
    pub cycles: u64,
    /// Nodes in the network.
    pub nodes: u64,
    /// Disjoint-route constructions performed by the run's route
    /// scratch. Zero when the strategy never builds route families
    /// (single-path / Valiant) or the network routes outside the
    /// construction engine (the plain cube).
    pub route_constructions: u64,
    /// Subset of [`route_constructions`](Self::route_constructions)
    /// answered by replaying the translation-canonical family cache
    /// instead of re-running fans and max-flows. Routes are identical
    /// either way; this only measures construction effort saved.
    pub route_family_hits: u64,
    /// Link-state slots materialised by the engine's link store — the
    /// number of distinct directed links the run's traffic actually
    /// crossed (lazy store), or the full link count (eager store).
    /// Always ≤ [`links_total`](Self::links_total).
    pub peak_links_materialised: u64,
    /// Directed links in the simulated topology.
    pub links_total: u64,
    /// Latency distribution of delivered packets (power-of-two buckets;
    /// always populated — recording a `u64` into a fixed array is cheap).
    pub latency_hist: Histogram,
    /// Per-cycle time series; empty unless
    /// [`SimConfig::sample_every`](crate::SimConfig::sample_every) > 0.
    pub samples: Vec<CycleSample>,
}

impl SimStats {
    /// Mean latency of delivered packets, or `None` if nothing delivered.
    pub fn mean_latency(&self) -> Option<f64> {
        (self.delivered > 0).then(|| self.latency_sum as f64 / self.delivered as f64)
    }

    /// Mean hop count of delivered packets.
    pub fn mean_hops(&self) -> Option<f64> {
        (self.delivered > 0).then(|| self.hops_sum as f64 / self.delivered as f64)
    }

    /// Mean link utilisation: transmissions per link per cycle, over the
    /// [`links_total`](Self::links_total) directed links the engine
    /// recorded for the simulated topology (an HHC has `2^n · (m+1)`).
    pub fn link_utilization(&self) -> f64 {
        if self.cycles == 0 || self.links_total == 0 {
            0.0
        } else {
            self.link_transmissions as f64 / (self.cycles as f64 * self.links_total as f64)
        }
    }

    /// Accepted throughput in packets/node/cycle.
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 || self.nodes == 0 {
            0.0
        } else {
            self.delivered as f64 / (self.cycles as f64 * self.nodes as f64)
        }
    }

    /// Fraction of routable injection attempts that were delivered by the
    /// end of the run (< 1 under saturation or when the run ends early).
    pub fn delivery_ratio(&self) -> f64 {
        if self.injected == 0 {
            1.0
        } else {
            self.delivered as f64 / self.injected as f64
        }
    }

    /// Approximate p99 latency (bucket upper bound, clamped to the true
    /// max), or `None` if nothing was delivered.
    pub fn latency_p99(&self) -> Option<u64> {
        self.latency_hist.quantile(0.99)
    }

    /// Fraction of disjoint-route constructions served from the family
    /// cache, or `None` when the run built no route families.
    pub fn route_cache_hit_rate(&self) -> Option<f64> {
        (self.route_constructions > 0)
            .then(|| self.route_family_hits as f64 / self.route_constructions as f64)
    }

    /// Estimated engine memory per node (bytes): the dense CSR link
    /// table plus the materialised link-state slots (slab entry + page
    /// map), amortised over the node count. A derived observability
    /// figure — it tracks the lazy store's memory win in sidecars, not
    /// an exact RSS accounting.
    pub fn bytes_per_node(&self) -> f64 {
        if self.nodes == 0 {
            return 0.0;
        }
        let link_state = std::mem::size_of::<crate::flat::LinkState>() as u64 + 8;
        let table = self.links_total * 8;
        let store = self.peak_links_materialised * link_state;
        (table + store) as f64 / self.nodes as f64
    }

    /// Mean queued-packet count over the captured time series, or `None`
    /// when sampling was disabled (no samples).
    pub fn mean_sampled_queue_depth(&self) -> Option<f64> {
        (!self.samples.is_empty()).then(|| {
            let total: u64 = self.samples.iter().map(|s| s.queued_packets).sum();
            total as f64 / self.samples.len() as f64
        })
    }

    /// Merges another run's statistics into `self` — the accumulation
    /// step of a replication sweep ([`crate::Simulator::run_many`]).
    /// Counters add; maxima (`latency_max`, `max_queue_len`) take the
    /// max; `cycles` add, so [`SimStats::throughput`] becomes the
    /// delivered-per-cycle average over the combined simulated time;
    /// `nodes` takes the max (replications share one network); the
    /// latency histogram merges bucket-wise and time-series samples
    /// concatenate in merge order. Merging is associative, and folding
    /// runs in a fixed order makes the result reproducible.
    pub fn merge(&mut self, other: &SimStats) {
        self.injected += other.injected;
        self.delivered += other.delivered;
        self.dropped_unroutable += other.dropped_unroutable;
        self.dropped_dst_faulty += other.dropped_dst_faulty;
        self.self_addressed += other.self_addressed;
        self.dropped_backpressure += other.dropped_backpressure;
        self.backpressure_stalls += other.backpressure_stalls;
        self.in_flight_at_end += other.in_flight_at_end;
        self.latency_sum += other.latency_sum;
        self.latency_max = self.latency_max.max(other.latency_max);
        self.hops_sum += other.hops_sum;
        self.link_transmissions += other.link_transmissions;
        self.max_queue_len = self.max_queue_len.max(other.max_queue_len);
        self.cycles += other.cycles;
        self.nodes = self.nodes.max(other.nodes);
        self.route_constructions += other.route_constructions;
        self.route_family_hits += other.route_family_hits;
        // Replications run sequentially in memory terms: the peak is the
        // largest single run's footprint, and the topology is shared.
        self.peak_links_materialised = self
            .peak_links_materialised
            .max(other.peak_links_materialised);
        self.links_total = self.links_total.max(other.links_total);
        self.latency_hist.merge(&other.latency_hist);
        self.samples.extend_from_slice(&other.samples);
    }

    /// Serialises the full stats — counters, derived rates, the latency
    /// histogram and the sampled time series — as one compact JSON object.
    /// The headline `link_utilization` uses the engine-recorded
    /// [`links_total`](Self::links_total); `directed_links` only scales
    /// the per-sample utilisation series (pass the network's
    /// directed-link count; 0 yields zero utilisation).
    pub fn to_json(&self, directed_links: u64) -> String {
        let mut o = json::Obj::new();
        o.u64("injected", self.injected);
        o.u64("delivered", self.delivered);
        o.u64("dropped_unroutable", self.dropped_unroutable);
        o.u64("dropped_dst_faulty", self.dropped_dst_faulty);
        o.u64("dropped_backpressure", self.dropped_backpressure);
        o.u64("backpressure_stalls", self.backpressure_stalls);
        o.u64("self_addressed", self.self_addressed);
        o.u64("in_flight_at_end", self.in_flight_at_end);
        o.u64("latency_max", self.latency_max);
        o.u64("link_transmissions", self.link_transmissions);
        o.u64("max_queue_len", self.max_queue_len);
        o.u64("cycles", self.cycles);
        o.u64("nodes", self.nodes);
        o.u64("route_constructions", self.route_constructions);
        o.u64("route_family_hits", self.route_family_hits);
        o.u64("peak_links_materialised", self.peak_links_materialised);
        o.u64("links_total", self.links_total);
        o.f64("bytes_per_node", self.bytes_per_node());
        // NaN degrades to JSON null, keeping the key set stable.
        o.f64("mean_latency", self.mean_latency().unwrap_or(f64::NAN));
        o.f64("mean_hops", self.mean_hops().unwrap_or(f64::NAN));
        o.f64(
            "latency_p99",
            self.latency_p99().map_or(f64::NAN, |v| v as f64),
        );
        o.f64("throughput", self.throughput());
        o.f64("delivery_ratio", self.delivery_ratio());
        o.f64(
            "route_cache_hit_rate",
            self.route_cache_hit_rate().unwrap_or(f64::NAN),
        );
        o.f64("link_utilization", self.link_utilization());
        o.raw("latency_hist", &self.latency_hist.to_json());
        let cycles: Vec<u64> = self.samples.iter().map(|s| s.cycle).collect();
        let depth: Vec<u64> = self.samples.iter().map(|s| s.queued_packets).collect();
        let qmax: Vec<u64> = self.samples.iter().map(|s| s.max_queue_len).collect();
        let util: Vec<f64> = self
            .samples
            .iter()
            .map(|s| {
                if directed_links == 0 {
                    0.0
                } else {
                    s.transmissions as f64 / directed_links as f64
                }
            })
            .collect();
        o.raw("sample_cycles", &json::u64_array(&cycles));
        o.raw("queue_depth", &json::u64_array(&depth));
        o.raw("queue_max", &json::u64_array(&qmax));
        o.raw("link_utilization_series", &json::f64_array(&util));
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let s = SimStats {
            injected: 10,
            delivered: 8,
            latency_sum: 40,
            latency_max: 9,
            hops_sum: 24,
            cycles: 100,
            nodes: 4,
            ..Default::default()
        };
        assert_eq!(s.mean_latency(), Some(5.0));
        assert_eq!(s.mean_hops(), Some(3.0));
        assert!((s.throughput() - 0.02).abs() < 1e-12);
        assert!((s.delivery_ratio() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_run_is_well_defined() {
        let s = SimStats::default();
        assert_eq!(s.mean_latency(), None);
        assert_eq!(s.mean_hops(), None);
        assert_eq!(s.latency_p99(), None);
        assert_eq!(s.mean_sampled_queue_depth(), None);
        assert_eq!(s.throughput(), 0.0);
        assert_eq!(s.delivery_ratio(), 1.0);
        // Even the empty run serialises: every numeric key present,
        // undefined means degrade to null.
        let j = s.to_json(0);
        assert!(j.contains("\"delivered\":0"));
        assert!(j.contains("\"mean_latency\":null"));
        assert!(j.contains("\"latency_hist\":{"));
        assert!(j.contains("\"queue_depth\":[]"));
    }

    #[test]
    fn json_exports_histogram_and_series() {
        let mut s = SimStats {
            injected: 3,
            delivered: 3,
            latency_sum: 12,
            latency_max: 6,
            cycles: 10,
            nodes: 4,
            link_transmissions: 5,
            ..Default::default()
        };
        for lat in [2u64, 4, 6] {
            s.latency_hist.record(lat);
        }
        s.samples.push(CycleSample {
            cycle: 0,
            queued_packets: 2,
            max_queue_len: 2,
            transmissions: 1,
        });
        s.samples.push(CycleSample {
            cycle: 5,
            queued_packets: 4,
            max_queue_len: 3,
            transmissions: 2,
        });
        assert_eq!(s.mean_sampled_queue_depth(), Some(3.0));
        assert_eq!(s.latency_p99(), Some(6));
        let j = s.to_json(10);
        assert!(j.contains("\"sample_cycles\":[0,5]"));
        assert!(j.contains("\"queue_depth\":[2,4]"));
        assert!(j.contains("\"queue_max\":[2,3]"));
        assert!(j.contains("\"link_utilization_series\":[0.1,0.2]"));
        assert!(j.contains("\"count\":3"));
    }
}

#[cfg(test)]
mod merge_tests {
    use super::*;

    fn sample_stats(seed: u64) -> SimStats {
        let mut s = SimStats {
            injected: 10 + seed,
            delivered: 8 + seed,
            dropped_unroutable: 1,
            self_addressed: 2,
            in_flight_at_end: 2,
            latency_sum: 40 * (seed + 1),
            latency_max: 9 + seed,
            hops_sum: 24,
            link_transmissions: 30,
            max_queue_len: 3 + seed,
            cycles: 100,
            nodes: 64,
            route_constructions: 5,
            route_family_hits: 3,
            ..Default::default()
        };
        for lat in [2u64, 4, 9 + seed] {
            s.latency_hist.record(lat);
        }
        s.samples.push(CycleSample {
            cycle: seed,
            queued_packets: 1,
            max_queue_len: 1,
            transmissions: 1,
        });
        s
    }

    #[test]
    fn merge_adds_counters_and_maxes_extrema() {
        let (a, b) = (sample_stats(0), sample_stats(5));
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.injected, a.injected + b.injected);
        assert_eq!(m.delivered, a.delivered + b.delivered);
        assert_eq!(m.latency_sum, a.latency_sum + b.latency_sum);
        assert_eq!(m.cycles, a.cycles + b.cycles);
        assert_eq!(m.latency_max, b.latency_max);
        assert_eq!(m.max_queue_len, b.max_queue_len);
        assert_eq!(m.nodes, 64);
        assert_eq!(m.latency_hist.count(), 6);
        assert_eq!(
            m.latency_hist.sum(),
            a.latency_hist.sum() + b.latency_hist.sum()
        );
        assert_eq!(m.samples.len(), 2);
        // Throughput of equal-weight replications is their average.
        let avg = (a.throughput() + b.throughput()) / 2.0;
        assert!((m.throughput() - avg).abs() < 1e-12);
    }

    #[test]
    fn merge_into_default_is_identity() {
        let a = sample_stats(3);
        let mut m = SimStats::default();
        m.merge(&a);
        assert_eq!(m, a);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn memory_estimates_and_merge_take_max() {
        let a = SimStats {
            nodes: 64,
            peak_links_materialised: 10,
            links_total: 192,
            ..Default::default()
        };
        assert!(a.bytes_per_node() > 0.0);
        // More materialised slots → strictly more bytes per node.
        let b = SimStats {
            peak_links_materialised: 40,
            ..a.clone()
        };
        assert!(b.bytes_per_node() > a.bytes_per_node());
        assert_eq!(SimStats::default().bytes_per_node(), 0.0);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.peak_links_materialised, 40);
        assert_eq!(m.links_total, 192);
        let j = b.to_json(192);
        assert!(j.contains("\"peak_links_materialised\":40"));
        assert!(j.contains("\"links_total\":192"));
        assert!(j.contains("\"bytes_per_node\":"));
    }

    #[test]
    fn link_utilization_edges() {
        let mut s = SimStats {
            link_transmissions: 50,
            cycles: 100,
            nodes: 4,
            links_total: 10,
            ..Default::default()
        };
        assert!((s.link_utilization() - 0.05).abs() < 1e-12);
        s.links_total = 0;
        assert_eq!(s.link_utilization(), 0.0);
        let z = SimStats::default();
        assert_eq!(z.link_utilization(), 0.0);
    }
}
