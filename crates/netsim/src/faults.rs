//! Fault-set representations for the routing hot path.
//!
//! The injection loop and every [`Strategy`](crate::Strategy) consult
//! the fault set per packet — and per *node* of every candidate path.
//! `HashSet<NodeId>` pays a 16-byte hash per probe; the fault sets the
//! experiments use are tiny (`|F| ≤ m`, occasionally a few dozen), so a
//! sorted slice probed by binary search is cheaper, cache-resident and
//! allocation-free after construction. [`FaultLookup`] abstracts over
//! both: the public APIs keep accepting `HashSet<NodeId>` unchanged,
//! while [`Simulator`](crate::Simulator) converts its set into a
//! [`FaultSet`] once per run.
//!
//! ```
//! use hhc_core::NodeId;
//! use netsim::{FaultLookup, FaultSet};
//!
//! let set = FaultSet::new(vec![5u128, 5, 9].into_iter().map(NodeId::from_raw).collect());
//! assert_eq!(set.fault_count(), 2); // deduplicated
//! assert!(set.is_faulty(NodeId::from_raw(9)));
//! assert!(!set.is_faulty(NodeId::from_raw(4)));
//! ```

use hhc_core::NodeId;
use std::collections::HashSet;

/// Membership oracle for faulty nodes — the construction-layer
/// [`hhc_core::FaultOracle`] re-exported under the simulator's
/// historical name. One trait serves both layers: `HashSet<NodeId>`
/// (the ergonomic builder representation, implemented in `hhc-core`),
/// [`FaultSet`] and [`FaultFlags`] (the hot-path representations,
/// implemented here) all plug directly into both the selection
/// strategies and the fault-avoiding construction.
pub use hhc_core::FaultOracle as FaultLookup;

/// A fault set stored as a sorted, deduplicated vector and probed by
/// binary search.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSet {
    nodes: Vec<NodeId>,
}

impl FaultSet {
    /// Builds the set from arbitrary (unsorted, possibly duplicated)
    /// nodes.
    pub fn new(mut nodes: Vec<NodeId>) -> Self {
        nodes.sort_unstable();
        nodes.dedup();
        FaultSet { nodes }
    }

    /// Converts from the builder representation.
    pub fn from_set(set: &HashSet<NodeId>) -> Self {
        Self::new(set.iter().copied().collect())
    }

    /// Number of faulty nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no node is faulty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Membership test (binary search).
    pub fn contains(&self, v: NodeId) -> bool {
        self.nodes.binary_search(&v).is_ok()
    }

    /// The faulty nodes in ascending order.
    pub fn as_slice(&self) -> &[NodeId] {
        &self.nodes
    }
}

impl FromIterator<NodeId> for FaultSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

impl FaultLookup for FaultSet {
    fn is_faulty(&self, v: NodeId) -> bool {
        self.contains(v)
    }

    fn fault_count(&self) -> usize {
        self.len()
    }
}

/// Dense per-node fault flags for materialised networks: one `bool` per
/// address, probed by direct indexing. The flat simulation core iterates
/// every node each cycle and probes the fault set per packet, so on the
/// ≤ 2^16-node networks it accepts a dense table beats both the hash set
/// and the binary search. Nodes outside the table (never issued by the
/// simulator) read as healthy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultFlags {
    flags: Vec<bool>,
    faulty: usize,
}

impl FaultFlags {
    /// Builds the table from the builder representation, for a network
    /// of `num_nodes` addresses (raw ids `0..num_nodes`).
    pub fn from_set(set: &HashSet<NodeId>, num_nodes: usize) -> Self {
        let mut flags = vec![false; num_nodes];
        let mut faulty = 0;
        for v in set {
            let i = v.raw() as usize;
            if i < num_nodes && !flags[i] {
                flags[i] = true;
                faulty += 1;
            }
        }
        FaultFlags { flags, faulty }
    }

    /// Number of faulty nodes inside the table.
    pub fn len(&self) -> usize {
        self.faulty
    }

    /// Sets the fault flag of `node`, returning whether the flag
    /// changed. Nodes outside the table are ignored (they read as
    /// healthy and stay that way).
    pub fn set(&mut self, node: NodeId, faulty: bool) -> bool {
        let Some(slot) = self.flags.get_mut(node.raw() as usize) else {
            return false;
        };
        if *slot == faulty {
            return false;
        }
        *slot = faulty;
        if faulty {
            self.faulty += 1;
        } else {
            self.faulty -= 1;
        }
        true
    }

    /// Whether no node is faulty.
    pub fn is_empty(&self) -> bool {
        self.faulty == 0
    }
}

/// What a timed [`FaultEvent`] does to its node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The node becomes faulty.
    Fail,
    /// The node becomes healthy again.
    Recover,
}

/// A scheduled change to the fault set, applied by the engine at the
/// *start* of `cycle`, before that cycle's injection phase. Faults act
/// at injection time only: a faulty node injects nothing, is never
/// selected as a destination, and is avoided by fault-aware strategies —
/// but packets already in flight are not rerouted or dropped
/// (the "fail-at-injection" model; see `DESIGN.md` §13).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cycle at whose start the change takes effect.
    pub cycle: u64,
    /// The node changing state.
    pub node: NodeId,
    /// Fail or recover.
    pub action: FaultAction,
}

impl FaultLookup for FaultFlags {
    #[inline]
    fn is_faulty(&self, v: NodeId) -> bool {
        *self.flags.get(v.raw() as usize).unwrap_or(&false)
    }

    fn fault_count(&self) -> usize {
        self.faulty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(raw: u128) -> NodeId {
        NodeId::from_raw(raw)
    }

    #[test]
    fn agrees_with_hashset_membership() {
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let raw: Vec<NodeId> = (0..200).map(|_| n((next() % 512) as u128)).collect();
        let hs: HashSet<NodeId> = raw.iter().copied().collect();
        let fs: FaultSet = raw.iter().copied().collect();
        assert_eq!(fs.len(), hs.len());
        for probe in 0..512u128 {
            assert_eq!(
                fs.is_faulty(n(probe)),
                hs.is_faulty(n(probe)),
                "membership diverged at {probe}"
            );
        }
    }

    #[test]
    fn flags_agree_with_hashset_membership() {
        let hs: HashSet<NodeId> = [3u128, 17, 63, 63, 200].map(n).into_iter().collect();
        let ff = FaultFlags::from_set(&hs, 64); // 200 outside the table
        assert_eq!(ff.len(), 3);
        assert!(!ff.is_empty());
        for probe in 0..64u128 {
            assert_eq!(ff.is_faulty(n(probe)), hs.is_faulty(n(probe)));
        }
        // Out-of-table probes read healthy rather than panicking.
        assert!(!ff.is_faulty(n(200)));
        assert!(FaultFlags::default().is_empty());
    }

    #[test]
    fn flags_set_tracks_count_and_ignores_out_of_table() {
        let mut ff = FaultFlags::from_set(&HashSet::new(), 8);
        assert!(ff.is_empty());
        assert!(ff.set(n(3), true));
        assert!(!ff.set(n(3), true), "no-op re-fail");
        assert!(ff.set(n(5), true));
        assert_eq!(ff.len(), 2);
        assert!(ff.is_faulty(n(3)) && ff.is_faulty(n(5)));
        assert!(ff.set(n(3), false));
        assert!(!ff.set(n(3), false), "no-op re-recover");
        assert_eq!(ff.len(), 1);
        assert!(!ff.is_faulty(n(3)));
        // Out-of-table nodes never mutate the table.
        assert!(!ff.set(n(100), true));
        assert_eq!(ff.len(), 1);
        assert!(!ff.is_faulty(n(100)));
    }

    #[test]
    fn dedups_and_sorts() {
        let fs = FaultSet::new(vec![n(7), n(3), n(7), n(1)]);
        assert_eq!(fs.as_slice(), &[n(1), n(3), n(7)]);
        assert!(fs.contains(n(3)));
        assert!(!fs.contains(n(2)));
        assert!(!fs.is_empty());
        assert!(FaultSet::default().is_empty());
    }
}
