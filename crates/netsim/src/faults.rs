//! Fault-set representations for the routing hot path.
//!
//! The injection loop and every [`Strategy`](crate::Strategy) consult
//! the fault set per packet — and per *node* of every candidate path.
//! `HashSet<NodeId>` pays a 16-byte hash per probe; the fault sets the
//! experiments use are tiny (`|F| ≤ m`, occasionally a few dozen), so a
//! sorted slice probed by binary search is cheaper, cache-resident and
//! allocation-free after construction. [`FaultLookup`] abstracts over
//! both: the public APIs keep accepting `HashSet<NodeId>` unchanged,
//! while [`Simulator`](crate::Simulator) converts its set into a
//! [`FaultSet`] once per run.

use hhc_core::NodeId;
use std::collections::HashSet;

/// Membership oracle for faulty nodes. Implemented by
/// `HashSet<NodeId>` (the ergonomic builder representation) and
/// [`FaultSet`] (the hot-path representation).
pub trait FaultLookup {
    /// Whether `v` is faulty.
    fn is_faulty(&self, v: NodeId) -> bool;
}

impl FaultLookup for HashSet<NodeId> {
    fn is_faulty(&self, v: NodeId) -> bool {
        self.contains(&v)
    }
}

/// A fault set stored as a sorted, deduplicated vector and probed by
/// binary search.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSet {
    nodes: Vec<NodeId>,
}

impl FaultSet {
    /// Builds the set from arbitrary (unsorted, possibly duplicated)
    /// nodes.
    pub fn new(mut nodes: Vec<NodeId>) -> Self {
        nodes.sort_unstable();
        nodes.dedup();
        FaultSet { nodes }
    }

    /// Converts from the builder representation.
    pub fn from_set(set: &HashSet<NodeId>) -> Self {
        Self::new(set.iter().copied().collect())
    }

    /// Number of faulty nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no node is faulty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Membership test (binary search).
    pub fn contains(&self, v: NodeId) -> bool {
        self.nodes.binary_search(&v).is_ok()
    }

    /// The faulty nodes in ascending order.
    pub fn as_slice(&self) -> &[NodeId] {
        &self.nodes
    }
}

impl FromIterator<NodeId> for FaultSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

impl FaultLookup for FaultSet {
    fn is_faulty(&self, v: NodeId) -> bool {
        self.contains(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(raw: u128) -> NodeId {
        NodeId::from_raw(raw)
    }

    #[test]
    fn agrees_with_hashset_membership() {
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let raw: Vec<NodeId> = (0..200).map(|_| n((next() % 512) as u128)).collect();
        let hs: HashSet<NodeId> = raw.iter().copied().collect();
        let fs: FaultSet = raw.iter().copied().collect();
        assert_eq!(fs.len(), hs.len());
        for probe in 0..512u128 {
            assert_eq!(
                fs.is_faulty(n(probe)),
                hs.is_faulty(n(probe)),
                "membership diverged at {probe}"
            );
        }
    }

    #[test]
    fn dedups_and_sorts() {
        let fs = FaultSet::new(vec![n(7), n(3), n(7), n(1)]);
        assert_eq!(fs.as_slice(), &[n(1), n(3), n(7)]);
        assert!(fs.contains(n(3)));
        assert!(!fs.contains(n(2)));
        assert!(!fs.is_empty());
        assert!(FaultSet::default().is_empty());
    }
}
