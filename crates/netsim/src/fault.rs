//! Static (queue-free) fault-tolerance analysis — experiment F3.
//!
//! For a pair `(u, v)` and a fault set `F` (with `u, v ∉ F`):
//!
//! * **single-path** delivery succeeds iff the deterministic route avoids
//!   `F`;
//! * **multipath** delivery succeeds iff at least one of the `m + 1`
//!   node-disjoint paths avoids `F` — which is *guaranteed* whenever
//!   `|F| ≤ m`, since each fault can block at most one of the internally
//!   disjoint paths;
//! * **ground truth** reachability (any path at all) comes from BFS on
//!   the materialised graph, for calibration on small networks.

use crate::faults::FaultLookup;
use crate::net::{Network, RouteScratch};
use crate::strategy::path_blocked;
use hhc_core::NodeId;

/// Outcome of the static delivery analysis for one (pair, fault set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryOutcome {
    /// The single deterministic route avoided all faults.
    pub single_path_ok: bool,
    /// At least one of the `m + 1` disjoint paths avoided all faults.
    pub multipath_ok: bool,
    /// Number of the `m + 1` disjoint paths that avoided all faults.
    pub surviving_paths: u32,
}

/// Runs the static analysis for one pair under one fault set.
///
/// # Panics
/// Panics if `u == v` or either endpoint is faulty (the model protects
/// the communicating pair).
pub fn analyze<N: Network + ?Sized, F: FaultLookup + ?Sized>(
    net: &N,
    u: NodeId,
    v: NodeId,
    faults: &F,
) -> DeliveryOutcome {
    analyze_with(net, u, v, faults, &mut RouteScratch::new())
}

/// [`analyze`] with caller-owned route scratch — sweeps over many (pair,
/// fault set) combinations reuse the disjoint-path buffers (experiment
/// F3 issues tens of thousands of these).
///
/// # Panics
///
/// Same contract as [`analyze`]: `u ≠ v` and both endpoints alive.
pub fn analyze_with<N: Network + ?Sized, F: FaultLookup + ?Sized>(
    net: &N,
    u: NodeId,
    v: NodeId,
    faults: &F,
    scratch: &mut RouteScratch,
) -> DeliveryOutcome {
    assert_ne!(u, v);
    assert!(
        !faults.is_faulty(u) && !faults.is_faulty(v),
        "endpoints must be alive"
    );
    let single = net.route(u, v);
    let disjoint = net.disjoint_routes_into(u, v, scratch);
    let surviving = disjoint.iter().filter(|p| !path_blocked(p, faults)).count() as u32;
    DeliveryOutcome {
        single_path_ok: !path_blocked(&single, faults),
        multipath_ok: surviving > 0,
        surviving_paths: surviving,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultSet;
    use hhc_core::Hhc;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;
    use workloads::random_fault_set;

    #[test]
    fn no_faults_everything_survives() {
        let h = Hhc::new(2).unwrap();
        let u = h.node(0b0001, 0b01).unwrap();
        let v = h.node(0b1110, 0b10).unwrap();
        let out = analyze(&h, u, v, &HashSet::new());
        assert!(out.single_path_ok && out.multipath_ok);
        assert_eq!(out.surviving_paths, h.degree());
    }

    #[test]
    fn multipath_guaranteed_for_up_to_m_faults() {
        // The paper's headline fault-tolerance property, brute-checked
        // over random fault sets on HHC(3).
        let h = Hhc::new(3).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let u = h.node(0x12, 0b001).unwrap();
        let v = h.node(0xA0, 0b100).unwrap();
        for f in 0..=h.m() as usize {
            for _ in 0..100 {
                let faults = random_fault_set(&h, f, &[u, v], &mut rng);
                let out = analyze(&h, u, v, &faults);
                assert!(out.multipath_ok, "f={f} disconnected the pair");
                assert!(out.surviving_paths >= h.degree() - f as u32);
            }
        }
    }

    #[test]
    fn each_fault_blocks_at_most_one_path() {
        let h = Hhc::new(2).unwrap();
        let u = h.node(0b0000, 0b00).unwrap();
        let v = h.node(0b0110, 0b01).unwrap();
        let paths = h.disjoint_paths(u, v).unwrap();
        // Fault a single interior node of path 0.
        let faults: HashSet<NodeId> = [paths[0][1]].into_iter().collect();
        let out = analyze(&h, u, v, &faults);
        assert_eq!(out.surviving_paths, h.degree() - 1);
    }

    #[test]
    fn single_path_is_strictly_weaker() {
        // Blocking one node of the deterministic route breaks single-path
        // delivery but never multipath for one fault.
        let h = Hhc::new(3).unwrap();
        let u = h.node(0x00, 0b000).unwrap();
        let v = h.node(0x81, 0b011).unwrap();
        let route = h.route(u, v).unwrap();
        let faults: HashSet<NodeId> = [route[route.len() / 2]].into_iter().collect();
        let out = analyze(&h, u, v, &faults);
        assert!(!out.single_path_ok);
        assert!(out.multipath_ok);
    }

    #[test]
    fn sorted_fault_set_matches_hashset_analysis() {
        // Same outcomes through either fault representation.
        let h = Hhc::new(3).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let u = h.node(0x3C, 0b010).unwrap();
        let v = h.node(0xC3, 0b111).unwrap();
        let mut scratch = RouteScratch::new();
        for f in 0..12 {
            let hs = random_fault_set(&h, f, &[u, v], &mut rng);
            let fs = FaultSet::from_set(&hs);
            assert_eq!(
                analyze_with(&h, u, v, &hs, &mut scratch),
                analyze_with(&h, u, v, &fs, &mut scratch),
                "representations diverged at f={f}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "alive")]
    fn rejects_faulty_endpoint() {
        let h = Hhc::new(2).unwrap();
        let u = h.node(0, 0).unwrap();
        let v = h.node(1, 0).unwrap();
        let faults: HashSet<NodeId> = [u].into_iter().collect();
        analyze(&h, u, v, &faults);
    }
}
