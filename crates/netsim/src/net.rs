//! The [`Network`] abstraction the simulator runs on.
//!
//! The evaluation compares the HHC against the plain hypercube with the
//! same node count (the paper's motivating trade-off: hypercube-like
//! behaviour at degree `m + 1` instead of `n`). Both topologies implement
//! this trait: addressing via [`AddressSpace`], plus the two routing
//! services the strategies need — a deterministic single route and the
//! family of internally node-disjoint routes.

use crate::faults::FaultLookup;
use hhc_core::{
    CacheConfig, CrossingOrder, Hhc, MetricsReport, NodeId, Path, PathBuilder, PathSet,
};
use hypercube::Cube;
use workloads::AddressSpace;

/// Reusable buffers for [`Network::disjoint_routes_into`]. One scratch
/// per simulation run (or per analysis sweep) makes repeated disjoint-
/// route queries allocation-free after warm-up. The fields cover both
/// topologies: the HHC construction writes through its [`PathBuilder`],
/// the plain cube through the CSR buffers.
#[derive(Default)]
pub struct RouteScratch {
    /// The route family of the most recent query, as a flat [`PathSet`].
    pub(crate) set: PathSet,
    pub(crate) builder: PathBuilder,
    /// Fault-free family of the most recent avoiding query (kept apart
    /// from `set` so the default filter can read one while writing the
    /// other).
    pub(crate) avoid_set: PathSet,
    /// Indices of fault-free family members, for single-pass selection.
    pub(crate) alive_idx: Vec<u32>,
    qdims: Vec<u32>,
    qnodes: Vec<u128>,
    qoffsets: Vec<u32>,
}

impl RouteScratch {
    /// A fresh scratch with default-capacity symmetry caches.
    pub fn new() -> Self {
        RouteScratch::default()
    }

    /// A scratch whose construction engine uses the given symmetry-cache
    /// configuration (fan cache + family cache). The default scratch has
    /// both caches enabled at their default capacities; routes are
    /// byte-identical under every configuration.
    pub fn with_route_cache(cfg: CacheConfig) -> Self {
        let mut s = RouteScratch::default();
        s.builder.set_cache_config(cfg);
        s
    }

    /// Construction-engine effort snapshot (queries, cache hits, fan and
    /// solver counters) accumulated by this scratch's disjoint-route
    /// queries. Only HHC networks route through the construction engine;
    /// on [`CubeNet`] the report stays zero.
    pub fn construction_metrics(&self) -> MetricsReport {
        self.builder.metrics()
    }
}

/// Dense directed-link index over a materialisable network, built once
/// per simulation run: CSR adjacency with link ids `0..num_links()`
/// assigned in ascending `(from, to)` order. That is exactly the order a
/// `BTreeMap<(NodeId, NodeId), _>` iterates, so a sweep over ascending
/// link ids reproduces the legacy map-ordered link sweep — the flat core
/// relies on this for byte-identical statistics.
#[derive(Debug, Clone)]
pub struct LinkTable {
    /// `offsets[u]..offsets[u + 1]` indexes `targets` with `u`'s
    /// neighbours in ascending order; a link id *is* a `targets` index.
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl LinkTable {
    /// Materialises the directed-link index of `net`.
    ///
    /// # Panics
    ///
    /// Panics above `MAX_ADDRESS_BITS` address bits (the
    /// table is dense in nodes); [`crate::Simulator::try_new`] rejects
    /// such networks first.
    pub fn build<N: Network + ?Sized>(net: &N) -> Self {
        assert!(
            net.address_bits() <= crate::sim::MAX_ADDRESS_BITS,
            "link table on a huge network"
        );
        let n = 1usize << net.address_bits();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::new();
        offsets.push(0u32);
        let mut nbrs: Vec<u32> = Vec::new();
        for u in 0..n {
            nbrs.clear();
            nbrs.extend(
                net.neighbors_of(NodeId::from_raw(u as u128))
                    .iter()
                    .map(|v| v.raw() as u32),
            );
            nbrs.sort_unstable();
            targets.extend_from_slice(&nbrs);
            offsets.push(targets.len() as u32);
        }
        LinkTable { offsets, targets }
    }

    /// Number of directed links (= valid link ids).
    pub fn num_links(&self) -> usize {
        self.targets.len()
    }

    /// Link id of the directed edge `(from, to)`.
    ///
    /// # Panics
    ///
    /// Panics when `(from, to)` is not an edge of the indexed network —
    /// routes are validated by construction, so the simulator never asks.
    #[inline]
    pub fn link_id(&self, from: u32, to: u32) -> u32 {
        let lo = self.offsets[from as usize] as usize;
        let hi = self.offsets[from as usize + 1] as usize;
        match self.targets[lo..hi].binary_search(&to) {
            Ok(i) => (lo + i) as u32,
            Err(_) => panic!("({from}, {to}) is not a directed link"),
        }
    }

    /// Endpoints `(from, to)` of a link id (inverse of
    /// [`LinkTable::link_id`]).
    pub fn endpoints(&self, link: u32) -> (u32, u32) {
        debug_assert!((link as usize) < self.targets.len());
        let from = self.offsets.partition_point(|&o| o <= link) - 1;
        (from as u32, self.targets[link as usize])
    }
}

/// A simulatable network: an address space with routing services.
pub trait Network: AddressSpace {
    /// Human-readable name for reports.
    fn name(&self) -> String;

    /// Node degree (regular topologies only, which covers this suite).
    fn degree(&self) -> u32;

    /// Whether `{a, b}` is an edge.
    fn is_edge(&self, a: NodeId, b: NodeId) -> bool;

    /// The deterministic single route from `src` to `dst` (`src ≠ dst`).
    ///
    /// # Panics
    ///
    /// Implementations may panic when `src == dst` or an endpoint is
    /// outside the network — the simulator never issues such queries
    /// (self-addressed injections are filtered before routing).
    fn route(&self, src: NodeId, dst: NodeId) -> Path;

    /// A maximal family of internally node-disjoint routes
    /// (`degree()` many on the maximally connected topologies here).
    ///
    /// # Panics
    ///
    /// Same contract as [`Network::route`]: `src ≠ dst` and both valid.
    fn disjoint_routes(&self, src: NodeId, dst: NodeId) -> Vec<Path>;

    /// [`Network::disjoint_routes`] into the scratch's [`PathSet`],
    /// reusing the scratch's working buffers across queries. Returns a
    /// view of the family; identical routes to `disjoint_routes`.
    fn disjoint_routes_into<'s>(
        &self,
        src: NodeId,
        dst: NodeId,
        scratch: &'s mut RouteScratch,
    ) -> &'s PathSet {
        scratch.set.clear();
        for p in self.disjoint_routes(src, dst) {
            scratch.set.push_path(&p);
        }
        &scratch.set
    }

    /// A family of internally node-disjoint routes that avoids every
    /// node the oracle reports faulty — possibly fewer than `degree()`
    /// routes, possibly none. The default builds the plain family and
    /// keeps the fault-free survivors; fault-aware topologies (the HHC)
    /// override this to *construct around* the faults instead, which
    /// keeps families alive at fault counts where filtering collapses.
    ///
    /// # Panics
    ///
    /// Same contract as [`Network::route`], plus both endpoints must be
    /// healthy.
    fn disjoint_routes_avoiding_into<'s>(
        &self,
        src: NodeId,
        dst: NodeId,
        faults: &dyn FaultLookup,
        scratch: &'s mut RouteScratch,
    ) -> &'s PathSet {
        let mut avoid = std::mem::take(&mut scratch.avoid_set);
        avoid.clear();
        let set = self.disjoint_routes_into(src, dst, scratch);
        for p in set.iter() {
            if !crate::strategy::path_blocked(p, faults) {
                avoid.push_path(p);
            }
        }
        scratch.avoid_set = avoid;
        &scratch.avoid_set
    }

    /// All nodes, for per-cycle injection sweeps.
    /// Only meaningful for materialisable sizes; guarded by the caller.
    ///
    /// # Panics
    ///
    /// Panics above `MAX_ADDRESS_BITS` address bits;
    /// [`crate::Simulator::try_new`] rejects such networks before any
    /// sweep can reach this.
    fn all_nodes(&self) -> Vec<NodeId> {
        assert!(
            self.address_bits() <= crate::sim::MAX_ADDRESS_BITS,
            "all_nodes on a huge network"
        );
        (0..1u128 << self.address_bits())
            .map(NodeId::from_raw)
            .collect()
    }
}

impl Network for Hhc {
    fn name(&self) -> String {
        format!("HHC({})", self.m())
    }

    fn degree(&self) -> u32 {
        Hhc::degree(self)
    }

    fn is_edge(&self, a: NodeId, b: NodeId) -> bool {
        Hhc::is_edge(self, a, b)
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Path {
        Hhc::route(self, src, dst).expect("valid pair")
    }

    fn disjoint_routes(&self, src: NodeId, dst: NodeId) -> Vec<Path> {
        Hhc::disjoint_paths(self, src, dst).expect("valid pair")
    }

    fn disjoint_routes_into<'s>(
        &self,
        src: NodeId,
        dst: NodeId,
        scratch: &'s mut RouteScratch,
    ) -> &'s PathSet {
        hhc_core::disjoint_paths_into(
            self,
            src,
            dst,
            CrossingOrder::Gray,
            &mut scratch.set,
            &mut scratch.builder,
        )
        .expect("valid pair");
        &scratch.set
    }

    fn disjoint_routes_avoiding_into<'s>(
        &self,
        src: NodeId,
        dst: NodeId,
        faults: &dyn FaultLookup,
        scratch: &'s mut RouteScratch,
    ) -> &'s PathSet {
        hhc_core::disjoint_paths_avoiding_into(
            self,
            src,
            dst,
            CrossingOrder::Gray,
            faults,
            &mut scratch.avoid_set,
            &mut scratch.builder,
        )
        .expect("valid pair, healthy endpoints");
        &scratch.avoid_set
    }
}

/// The plain hypercube `Q_n` as a simulatable network — the comparison
/// baseline with `n` links per node instead of the HHC's `m + 1`.
#[derive(Debug, Clone, Copy)]
pub struct CubeNet(pub Cube);

impl CubeNet {
    /// `Q_n` with the same node count as `HHC(m)` (i.e. `n = 2^m + m`).
    pub fn matching_hhc(m: u32) -> Self {
        CubeNet(Cube::new((1 << m) + m).expect("valid dimension"))
    }
}

impl AddressSpace for CubeNet {
    fn address_bits(&self) -> u32 {
        self.0.dim()
    }

    fn neighbors_of(&self, v: NodeId) -> Vec<NodeId> {
        self.0.neighbors(v.raw()).map(NodeId::from_raw).collect()
    }
}

impl Network for CubeNet {
    fn name(&self) -> String {
        format!("Q_{}", self.0.dim())
    }

    fn degree(&self) -> u32 {
        self.0.dim()
    }

    fn is_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.0.distance(a.raw(), b.raw()) == 1
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Path {
        hypercube::routing::shortest_path(&self.0, src.raw(), dst.raw())
            .into_iter()
            .map(NodeId::from_raw)
            .collect()
    }

    fn disjoint_routes(&self, src: NodeId, dst: NodeId) -> Vec<Path> {
        hypercube::paths::disjoint_paths(&self.0, src.raw(), dst.raw())
            .expect("valid pair")
            .into_iter()
            .map(|p| p.into_iter().map(NodeId::from_raw).collect())
            .collect()
    }

    fn disjoint_routes_into<'s>(
        &self,
        src: NodeId,
        dst: NodeId,
        scratch: &'s mut RouteScratch,
    ) -> &'s PathSet {
        scratch.qnodes.clear();
        scratch.qoffsets.clear();
        scratch.qoffsets.push(0);
        hypercube::paths::disjoint_paths_buf(
            &self.0,
            src.raw(),
            dst.raw(),
            self.0.dim() as usize,
            &mut scratch.qdims,
            &mut scratch.qnodes,
            &mut scratch.qoffsets,
        )
        .expect("valid pair");
        scratch.set.clear();
        for w in scratch.qoffsets.windows(2) {
            for &y in &scratch.qnodes[w[0] as usize..w[1] as usize] {
                scratch.set.push_node(NodeId::from_raw(y));
            }
            scratch.set.finish_path();
        }
        &scratch.set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hhc_network_services() {
        let h = Hhc::new(2).unwrap();
        assert_eq!(Network::name(&h), "HHC(2)");
        assert_eq!(Network::degree(&h), 3);
        let u = NodeId::from_raw(0);
        let v = NodeId::from_raw(45);
        let r = Network::route(&h, u, v);
        assert_eq!(r.first(), Some(&u));
        assert_eq!(r.last(), Some(&v));
        assert_eq!(Network::disjoint_routes(&h, u, v).len(), 3);
        assert_eq!(h.all_nodes().len(), 64);
    }

    #[test]
    fn cube_network_services() {
        let q = CubeNet::matching_hhc(2); // Q_6: 64 nodes like HHC(2)
        assert_eq!(q.name(), "Q_6");
        assert_eq!(Network::degree(&q), 6);
        assert_eq!(q.num_addresses(), 64);
        let u = NodeId::from_raw(0);
        let v = NodeId::from_raw(63);
        let r = q.route(u, v);
        assert_eq!(r.len(), 7); // Hamming distance 6
        let d = q.disjoint_routes(u, v);
        assert_eq!(d.len(), 6);
        for p in &d {
            for w in p.windows(2) {
                assert!(q.is_edge(w[0], w[1]));
            }
        }
        assert_eq!(q.neighbors_of(u).len(), 6);
    }

    #[test]
    fn scratch_routes_match_allocating_routes() {
        let h = Hhc::new(2).unwrap();
        let q = CubeNet::matching_hhc(2);
        let mut scratch = RouteScratch::new();
        for (u, v) in [(0u128, 45u128), (3, 60), (17, 42)] {
            let (u, v) = (NodeId::from_raw(u), NodeId::from_raw(v));
            let set = h.disjoint_routes_into(u, v, &mut scratch);
            assert_eq!(set.to_paths(), Network::disjoint_routes(&h, u, v));
            let set = q.disjoint_routes_into(u, v, &mut scratch);
            assert_eq!(set.to_paths(), q.disjoint_routes(u, v));
        }
    }

    #[test]
    fn link_table_orders_links_like_a_btreemap() {
        let h = Hhc::new(2).unwrap();
        let t = LinkTable::build(&h);
        assert_eq!(t.num_links(), 64 * 3); // 2^n nodes × (m+1) links
                                           // Ids enumerate the edge set in ascending (from, to) order and
                                           // round-trip through endpoints().
        let mut prev: Option<(u32, u32)> = None;
        for l in 0..t.num_links() as u32 {
            let (from, to) = t.endpoints(l);
            assert!(h.is_edge(NodeId::from_raw(from as u128), NodeId::from_raw(to as u128)));
            assert_eq!(t.link_id(from, to), l);
            assert!(prev < Some((from, to)), "ids not in (from, to) order");
            prev = Some((from, to));
        }
    }

    #[test]
    #[should_panic(expected = "not a directed link")]
    fn link_table_rejects_non_edges() {
        let h = Hhc::new(2).unwrap();
        LinkTable::build(&h).link_id(0, 63);
    }

    #[test]
    fn matching_sizes() {
        for m in 1..=3 {
            let h = Hhc::new(m).unwrap();
            let q = CubeNet::matching_hhc(m);
            assert_eq!(h.num_addresses(), q.num_addresses());
            assert!(Network::degree(&q) > Network::degree(&h) || m == 1);
        }
    }
}
