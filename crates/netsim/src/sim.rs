//! The slotted simulation engine.
//!
//! Each cycle has two phases:
//!
//! 1. **injection** — every alive node draws its Bernoulli arrival; on a
//!    hit, the traffic pattern picks a destination and the strategy a
//!    route. Unroutable packets are dropped (counted), self-addressed
//!    attempts suppressed.
//! 2. **transmission** — every directed link dequeues at most one packet
//!    and hands it to the next node on its route (arriving packets join
//!    the next link's queue *after* this phase, so a packet moves at most
//!    one hop per cycle).
//!
//! The engine is fully deterministic under (`SimConfig::seed`, topology,
//! pattern, strategy).
//!
//! [`Simulator::run`] executes the **flat core** ([`crate::flat`]):
//! u32 link ids over a CSR link table, link-queue state materialised
//! lazily on first use, interned routes in a sharded arena, a
//! skip-sampled arrival stream, and a timing-wheel event calendar. Per
//! cycle, cost is proportional to *traffic* (active links and landing
//! packets), not to topology size; together with the engine's hybrid
//! link fidelity ([`crate::flat::Fidelity`]) this lets HHC(4) — 2^20
//! nodes — run packet-level end-to-end. All engine variants
//! ([`crate::flat::EngineConfig`]) are byte-identical in their
//! [`SimStats`]: same RNG draw order, same link service order, same
//! landing order. [`Simulator::run_many`] fans independent seeded
//! replications across rayon workers and merges their statistics.

use crate::faults::FaultEvent;
use crate::flat::{EngineConfig, RouteArena, WarmRoutes};
use crate::net::{LinkTable, Network, RouteScratch};
use crate::stats::SimStats;
use crate::strategy::Strategy;
use hhc_core::{CacheConfig, NodeId};
use rayon::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;
use workloads::Pattern;

/// Largest network (in address bits) the engine accepts. 20 bits admits
/// HHC(4) (2^20 ≈ 1M nodes) and its matching cube Q_20. The bound is
/// set by the dense per-node structures that remain after the lazy link
/// store: the CSR link-table offsets, the fault-flag table, and the
/// pattern/arrival index space — all linear in node count, ~10 bytes per
/// node at 20 bits. Raising it further is a memory budget question, not
/// an algorithmic one.
pub(crate) const MAX_ADDRESS_BITS: u32 = 20;

/// Switching discipline: how a multi-flit packet crosses a link chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Switching {
    /// The whole packet is received before being forwarded: per-hop time
    /// is the full packet length, end-to-end ≈ `hops × len`.
    #[default]
    StoreAndForward,
    /// Virtual cut-through: the header advances one hop per cycle while
    /// the tail streams behind; a link is still occupied for `len` cycles
    /// per packet. Uncontended end-to-end ≈ `hops + len − 1`.
    CutThrough,
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Cycles to simulate (injection active the whole time).
    pub cycles: u64,
    /// Extra cycles after `cycles` with injection off, letting queues
    /// drain (0 = report in-flight as backlog).
    pub drain_cycles: u64,
    /// Offered load: injection probability per node per cycle.
    pub inject_rate: f64,
    /// RNG seed (arrivals, pattern, strategy tie-breaks).
    pub seed: u64,
    /// Packet length in flit-cycles: the time a link is occupied per
    /// packet (serialisation). 1 = the classic unit-latency slotted model.
    pub packet_len: u64,
    /// Switching discipline (see [`Switching`]).
    pub switching: Switching,
    /// Per-link queue capacity (packets). `None` = unbounded (the
    /// default, classic open-loop model). With a bound, a link starts a
    /// transmission only when the packet's *next* queue has room
    /// (backpressure); injection into a full first queue is dropped and
    /// counted. Capacity is checked at transmission start, so several
    /// same-cycle arrivals may briefly overshoot by the node in-degree.
    ///
    /// **Deadlock**: bounded buffers plus unrestricted routes admit the
    /// classic store-and-forward buffer-cycle deadlock (this simulator
    /// reproduces it — see the backpressure tests). Wedged packets show
    /// up as `in_flight_at_end` after the drain phase; deadlock-free
    /// operation needs either unbounded buffers (virtual cut-through
    /// with escape queues in real hardware) or restricted turn models,
    /// which are out of scope here.
    pub queue_capacity: Option<u64>,
    /// Time-series sampling period in cycles: every `sample_every`-th
    /// cycle (including cycle 0) a [`CycleSample`](crate::stats::CycleSample)
    /// of queue depth and link activity is appended to
    /// [`SimStats::samples`]. 0 (the default) disables sampling — the
    /// run then does no per-cycle scan and allocates nothing.
    pub sample_every: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cycles: 1000,
            drain_cycles: 0,
            inject_rate: 0.05,
            seed: 0xC0FFEE,
            packet_len: 1,
            switching: Switching::StoreAndForward,
            queue_capacity: None,
            sample_every: 0,
        }
    }
}

/// Errors from simulator construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// The network exceeds [`Simulator::MAX_ADDRESS_BITS`] address bits
    /// (currently 20, i.e. up to HHC(4)/Q_20 at 2^20 nodes). Even with
    /// the lazy link store the engine keeps a few dense per-node tables
    /// (CSR link offsets, fault flags), so the address space must stay
    /// materialisable.
    NetworkTooLarge {
        /// Address bits of the offending network.
        address_bits: u32,
        /// Largest supported value.
        max_bits: u32,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::NetworkTooLarge {
                address_bits,
                max_bits,
            } => write!(
                f,
                "network with {address_bits} address bits too large to simulate \
                 (per-cycle node iteration; max {max_bits} bits)"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// A simulator instance bound to one network, pattern and strategy.
///
/// # Examples
/// ```
/// use hhc_core::Hhc;
/// use netsim::{SimConfig, Simulator, Strategy};
/// use workloads::Pattern;
///
/// let net = Hhc::new(2).unwrap();
/// let stats = Simulator::new(&net, Pattern::UniformRandom, Strategy::SinglePath)
///     .run(SimConfig { cycles: 100, drain_cycles: 2000, inject_rate: 0.05,
///                      seed: 1, ..SimConfig::default() });
/// assert_eq!(stats.delivered, stats.injected);   // drained completely
/// ```
pub struct Simulator<'a, N: Network + ?Sized> {
    net: &'a N,
    pattern: Pattern,
    strategy: Strategy,
    faults: HashSet<NodeId>,
    fault_events: Vec<FaultEvent>,
    route_cache: CacheConfig,
    engine: EngineConfig,
}

impl<'a, N: Network + ?Sized> Simulator<'a, N> {
    /// Largest network (address bits) the engine accepts — 20, which
    /// admits HHC(4) (2^20 nodes) and Q_20. See
    /// [`SimError::NetworkTooLarge`] for what still scales with nodes.
    pub const MAX_ADDRESS_BITS: u32 = MAX_ADDRESS_BITS;

    /// Creates a simulator with no faults and the default engine
    /// (lazy link store, hybrid fidelity — see [`EngineConfig`]).
    ///
    /// # Panics
    ///
    /// Panics when the network exceeds [`Simulator::MAX_ADDRESS_BITS`]
    /// (= 20) address bits — the engine keeps dense per-node tables, so
    /// the address space must stay materialisable; use
    /// [`Simulator::try_new`] for a typed error instead.
    pub fn new(net: &'a N, pattern: Pattern, strategy: Strategy) -> Self {
        Self::try_new(net, pattern, strategy).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Simulator::new`]: rejects networks past the
    /// 20-bit address bound with [`SimError::NetworkTooLarge`].
    pub fn try_new(net: &'a N, pattern: Pattern, strategy: Strategy) -> Result<Self, SimError> {
        if net.address_bits() > Self::MAX_ADDRESS_BITS {
            return Err(SimError::NetworkTooLarge {
                address_bits: net.address_bits(),
                max_bits: Self::MAX_ADDRESS_BITS,
            });
        }
        Ok(Simulator {
            net,
            pattern,
            strategy,
            faults: HashSet::new(),
            fault_events: Vec::new(),
            route_cache: CacheConfig::default(),
            engine: EngineConfig::default(),
        })
    }

    /// Selects the engine variant (link-store mode × link fidelity).
    /// Every variant produces byte-identical [`SimStats`]; the choice
    /// only affects memory and speed. The default (lazy + hybrid) is
    /// right for everything except microbenchmark baselines.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Installs a fault set (faulty nodes inject nothing, carry nothing,
    /// and are never selected as destinations).
    pub fn with_faults(mut self, faults: HashSet<NodeId>) -> Self {
        self.faults = faults;
        self
    }

    /// Installs a timeline of runtime fault events ([`FaultEvent`]):
    /// fail/recover changes applied at the start of their cycle, before
    /// injection. Events may be given in any order (the engine sorts by
    /// cycle, same-cycle events applying in list order).
    ///
    /// Semantics ("fail-at-injection"): a currently-faulty node injects
    /// nothing, is never chosen as a destination, and is avoided by
    /// fault-aware strategies at route-selection time — but packets
    /// already in flight are neither rerouted nor dropped. With a
    /// non-empty timeline the injection index space covers all
    /// addresses (not just initially-healthy ones), so the arrival
    /// stream differs from the no-events run even before the first
    /// event fires; an *empty* timeline is byte-identical to not
    /// calling this at all.
    pub fn with_fault_events(mut self, events: Vec<FaultEvent>) -> Self {
        self.fault_events = events;
        self
    }

    /// Configures the symmetry caches of the run's route-construction
    /// scratch (fan cache + family cache; on by default). The caches
    /// memoise exact translation-canonical solutions, so routes are
    /// byte-identical in every configuration — only the construction
    /// cost changes. Pass [`CacheConfig::disabled`] for the uncached
    /// reference behaviour.
    pub fn with_route_cache(mut self, cfg: CacheConfig) -> Self {
        self.route_cache = cfg;
        self
    }

    /// Runs the simulation on the flat core and returns the collected
    /// statistics.
    pub fn run(&self, cfg: SimConfig) -> SimStats {
        crate::flat::run_flat(
            self.net,
            self.pattern,
            self.strategy,
            &self.faults,
            &self.fault_events,
            self.route_cache,
            cfg,
            self.engine,
            None,
            None,
        )
    }

    /// [`Simulator::run`] with a pre-warmed shared route arena
    /// ([`Simulator::warm_routes`]): routes the warmup predicted resolve
    /// through the frozen arena's index instead of being re-interned
    /// into the run's private one. Purely an optimisation — statistics
    /// are byte-identical to [`Simulator::run`]'s (route ids never leak
    /// into [`SimStats`]).
    pub fn run_warm(&self, cfg: SimConfig, warm: &WarmRoutes) -> SimStats {
        crate::flat::run_flat(
            self.net,
            self.pattern,
            self.strategy,
            &self.faults,
            &self.fault_events,
            self.route_cache,
            cfg,
            self.engine,
            Some(warm),
            None,
        )
    }

    /// Like [`Simulator::run`], but also returns one [`DeliveryRecord`]
    /// per delivered packet (in delivery order) for offline analysis.
    /// Runs the *same* flat core as `run` — tracing only collects
    /// records, so the returned statistics are identical to `run`'s.
    pub fn run_traced(&self, cfg: SimConfig) -> (SimStats, Vec<DeliveryRecord>) {
        let mut records = Vec::new();
        let stats = crate::flat::run_flat(
            self.net,
            self.pattern,
            self.strategy,
            &self.faults,
            &self.fault_events,
            self.route_cache,
            cfg,
            self.engine,
            None,
            Some(&mut records),
        );
        (stats, records)
    }

    /// Builds a frozen, shareable route arena by pre-interning the
    /// routes this simulator's strategy can select for `pairs`
    /// (self-addressed pairs are skipped): the deterministic single
    /// route for [`Strategy::SinglePath`] and [`Strategy::Valiant`]
    /// (whose random detour walks cannot be predicted, so only the
    /// direct route is warmed), the whole fault-blind disjoint family
    /// otherwise. Warming is *advisory*: a run layers a private overlay
    /// over the frozen arena, so missing or superfluous routes cost
    /// nothing but memory and statistics stay byte-identical.
    pub fn warm_routes(&self, pairs: &[(NodeId, NodeId)]) -> WarmRoutes {
        let table = LinkTable::build(self.net);
        let mut arena = RouteArena::new();
        let mut scratch = RouteScratch::with_route_cache(self.route_cache);
        let mut idx: Vec<u32> = Vec::new();
        for &(u, v) in pairs {
            if u == v {
                continue;
            }
            match self.strategy {
                Strategy::SinglePath | Strategy::Valiant => {
                    idx.clear();
                    idx.extend(self.net.route(u, v).iter().map(|v| v.raw() as u32));
                    arena.intern(&idx, &table);
                }
                Strategy::MultipathRandom | Strategy::FaultAdaptive | Strategy::FaultFree => {
                    let set = self.net.disjoint_routes_into(u, v, &mut scratch);
                    for p in set.iter() {
                        idx.clear();
                        idx.extend(p.iter().map(|v| v.raw() as u32));
                        arena.intern(&idx, &table);
                    }
                }
            }
        }
        WarmRoutes {
            arena: Arc::new(arena),
        }
    }

    /// Runs `n_runs` independent replications of `cfg` — run `i` uses
    /// seed `cfg.seed.wrapping_add(i)` — fanned across rayon workers,
    /// and merges their statistics with [`SimStats::merge`] in seed
    /// order. The result is deterministic and independent of the worker
    /// count: it equals `n_runs` sequential [`Simulator::run`] calls
    /// folded in the same order. Zero replications yield
    /// `SimStats::default()`.
    pub fn run_many(&self, cfg: SimConfig, n_runs: usize) -> SimStats
    where
        N: Sync,
    {
        let seeds: Vec<u64> = (0..n_runs as u64)
            .map(|i| cfg.seed.wrapping_add(i))
            .collect();
        let runs: Vec<SimStats> = seeds
            .par_iter()
            .map(|&seed| self.run(SimConfig { seed, ..cfg }))
            .collect();
        let mut merged = SimStats::default();
        for s in &runs {
            merged.merge(s);
        }
        merged
    }

    /// [`Simulator::run_many`] with a shared pre-warmed route arena: all
    /// replications read the same frozen arena ([`Simulator::warm_routes`])
    /// through per-run overlays instead of each re-interning the hot
    /// routes from scratch. Same determinism contract as `run_many` —
    /// the result equals `n_runs` sequential [`Simulator::run_warm`]
    /// calls folded in seed order, independent of the worker count, and
    /// byte-identical to the unwarmed [`Simulator::run_many`].
    pub fn run_many_warm(&self, cfg: SimConfig, n_runs: usize, warm: &WarmRoutes) -> SimStats
    where
        N: Sync,
    {
        let seeds: Vec<u64> = (0..n_runs as u64)
            .map(|i| cfg.seed.wrapping_add(i))
            .collect();
        let runs: Vec<SimStats> = seeds
            .par_iter()
            .map(|&seed| self.run_warm(SimConfig { seed, ..cfg }, warm))
            .collect();
        let mut merged = SimStats::default();
        for s in &runs {
            merged.merge(s);
        }
        merged
    }
}

/// Per-packet trace of a completed delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliveryRecord {
    /// Packet id (injection order).
    pub id: u64,
    /// Injection cycle.
    pub injected_at: u64,
    /// Cycle the final hop completed.
    pub delivered_at: u64,
    /// The full route taken.
    pub route: Vec<NodeId>,
}

impl DeliveryRecord {
    /// End-to-end latency in cycles.
    pub fn latency(&self) -> u64 {
        self.delivered_at - self.injected_at
    }

    /// Cycles spent waiting in queues (latency minus pure hop time).
    pub fn queueing_delay(&self) -> u64 {
        self.latency() - (self.route.len() as u64 - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhc_core::Hhc;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net() -> Hhc {
        Hhc::new(2).unwrap()
    }

    #[test]
    fn conservation_of_packets() {
        let h = net();
        let sim = Simulator::new(&h, Pattern::UniformRandom, Strategy::SinglePath);
        let stats = sim.run(SimConfig {
            cycles: 200,
            drain_cycles: 0,
            inject_rate: 0.1,
            seed: 1,
            ..SimConfig::default()
        });
        assert!(stats.injected > 0, "nothing injected");
        assert_eq!(
            stats.injected,
            stats.delivered + stats.in_flight_at_end,
            "packet conservation violated"
        );
    }

    #[test]
    fn drain_empties_network_at_low_load() {
        let h = net();
        let sim = Simulator::new(&h, Pattern::UniformRandom, Strategy::SinglePath);
        let stats = sim.run(SimConfig {
            cycles: 300,
            drain_cycles: 2000,
            inject_rate: 0.02,
            seed: 2,
            ..SimConfig::default()
        });
        assert_eq!(stats.in_flight_at_end, 0);
        assert_eq!(stats.delivered, stats.injected);
        assert!(stats.mean_latency().unwrap() >= 1.0);
    }

    #[test]
    fn latency_at_least_route_length() {
        // With one packet total, latency equals hop count exactly.
        let h = net();
        let sim = Simulator::new(&h, Pattern::BitComplement, Strategy::SinglePath);
        let stats = sim.run(SimConfig {
            cycles: 1,
            drain_cycles: 100,
            inject_rate: 0.02,
            seed: 3,
            ..SimConfig::default()
        });
        if stats.delivered > 0 {
            assert!(stats.latency_sum >= stats.hops_sum);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let h = net();
        let sim = Simulator::new(&h, Pattern::UniformRandom, Strategy::MultipathRandom);
        let cfg = SimConfig {
            cycles: 150,
            drain_cycles: 50,
            inject_rate: 0.08,
            seed: 42,
            ..SimConfig::default()
        };
        assert_eq!(sim.run(cfg), sim.run(cfg));
    }

    #[test]
    fn faulty_nodes_carry_no_traffic() {
        let h = net();
        let faults: HashSet<NodeId> =
            workloads::random_fault_set(&h, 8, &[], &mut StdRng::seed_from_u64(9));
        let sim = Simulator::new(&h, Pattern::UniformRandom, Strategy::FaultAdaptive)
            .with_faults(faults.clone());
        let stats = sim.run(SimConfig {
            cycles: 100,
            drain_cycles: 1000,
            inject_rate: 0.05,
            seed: 5,
            ..SimConfig::default()
        });
        // Everything injected was routed around the faults and delivered.
        assert_eq!(stats.delivered, stats.injected);
        assert!(stats.delivered > 0);
    }

    #[test]
    fn multipath_trades_hops_for_path_diversity() {
        // The m+1 disjoint paths include detours, so multipath's mean hop
        // count strictly exceeds the single Gray route's; the premium is
        // bounded (each detour adds O(m + the Gray-lap slack)), and both
        // strategies deliver everything at moderate load. The fault
        // experiments (fault.rs, experiment F3) show what the premium
        // buys: guaranteed delivery under up to m faults.
        let h = net();
        let cfg = SimConfig {
            cycles: 400,
            drain_cycles: 4000,
            inject_rate: 0.20,
            seed: 7,
            ..SimConfig::default()
        };
        let single = Simulator::new(&h, Pattern::BitComplement, Strategy::SinglePath).run(cfg);
        let multi = Simulator::new(&h, Pattern::BitComplement, Strategy::MultipathRandom).run(cfg);
        assert_eq!(single.delivered, single.injected);
        assert_eq!(multi.delivered, multi.injected);
        let hs = single.mean_hops().unwrap();
        let hm = multi.mean_hops().unwrap();
        assert!(
            hm > hs,
            "disjoint families must average longer than the Gray route"
        );
        assert!(hm < hs * 2.5, "multipath hop premium should stay bounded");
    }

    #[test]
    fn higher_load_does_not_reduce_delivered_count() {
        let h = net();
        let mk = |rate| {
            Simulator::new(&h, Pattern::UniformRandom, Strategy::SinglePath).run(SimConfig {
                cycles: 200,
                drain_cycles: 0,
                inject_rate: rate,
                seed: 11,
                ..SimConfig::default()
            })
        };
        let lo = mk(0.02);
        let hi = mk(0.10);
        assert!(hi.injected > lo.injected);
        assert!(hi.delivered >= lo.delivered / 2, "sanity: load scales");
    }
}

#[cfg(test)]
mod fault_event_tests {
    use super::*;
    use crate::faults::FaultAction;
    use hhc_core::Hhc;

    fn cfg() -> SimConfig {
        SimConfig {
            cycles: 200,
            drain_cycles: 4000,
            inject_rate: 0.05,
            seed: 404,
            ..SimConfig::default()
        }
    }

    fn fail(cycle: u64, node: u128) -> FaultEvent {
        FaultEvent {
            cycle,
            node: NodeId::from_raw(node),
            action: FaultAction::Fail,
        }
    }

    fn recover(cycle: u64, node: u128) -> FaultEvent {
        FaultEvent {
            cycle,
            node: NodeId::from_raw(node),
            action: FaultAction::Recover,
        }
    }

    #[test]
    fn empty_timeline_is_byte_identical_to_no_timeline() {
        let h = Hhc::new(2).unwrap();
        let plain = Simulator::new(&h, Pattern::UniformRandom, Strategy::MultipathRandom);
        let with_empty = Simulator::new(&h, Pattern::UniformRandom, Strategy::MultipathRandom)
            .with_fault_events(Vec::new());
        assert_eq!(plain.run(cfg()), with_empty.run(cfg()));
    }

    #[test]
    fn mid_run_fail_and_recover_gate_injection_at_the_source() {
        let h = Hhc::new(2).unwrap();
        let sim = |events: Vec<FaultEvent>| {
            Simulator::new(&h, Pattern::UniformRandom, Strategy::FaultAdaptive)
                .with_fault_events(events)
        };
        // All three runs are dynamic-mode (non-empty timelines). A
        // suppressed arrival skips its destination draw, so the runs'
        // RNG streams diverge after the first suppression — the
        // assertions below are structural (who may inject, what gets
        // dropped), not count comparisons.
        let noop = sim(vec![fail(1_000_000, 0)]).run_traced(cfg());
        let down = sim(vec![fail(0, 0), fail(1_000_000, 0)]).run_traced(cfg());
        let churn = sim(vec![fail(0, 0), recover(100, 0)]).run_traced(cfg());

        let from_zero = |records: &[DeliveryRecord]| {
            records
                .iter()
                .filter(|r| r.route[0] == NodeId::from_raw(0))
                .map(|r| r.injected_at)
                .collect::<Vec<u64>>()
        };
        assert!(
            !from_zero(&noop.1).is_empty(),
            "healthy node 0 should inject"
        );
        assert!(
            from_zero(&down.1).is_empty(),
            "failed node 0 must never inject"
        );
        let churn_inj = from_zero(&churn.1);
        assert!(!churn_inj.is_empty(), "recovered node 0 injects again");
        assert!(
            churn_inj.iter().all(|&c| c >= 100),
            "no injection from node 0 before its recovery"
        );
        // A down node is also an invalid destination: uniform traffic
        // aimed at it is dropped and counted.
        assert!(down.0.dropped_dst_faulty > 0);
        assert_eq!(noop.0.dropped_dst_faulty, 0);
        // Conservation holds in every mode, and the fault-adaptive
        // strategy keeps everything routable around the failed node.
        for (stats, _) in [&noop, &down, &churn] {
            assert_eq!(stats.injected, stats.delivered + stats.in_flight_at_end);
            assert_eq!(stats.dropped_unroutable, 0);
            assert!(stats.injected > 0);
        }
    }

    #[test]
    fn timelines_are_deterministic_and_order_insensitive() {
        let h = Hhc::new(2).unwrap();
        let events = vec![fail(50, 7), recover(120, 7), fail(80, 13)];
        let mut shuffled = events.clone();
        shuffled.rotate_left(1);
        let a = Simulator::new(&h, Pattern::UniformRandom, Strategy::FaultAdaptive)
            .with_fault_events(events)
            .run(cfg());
        let b = Simulator::new(&h, Pattern::UniformRandom, Strategy::FaultAdaptive)
            .with_fault_events(shuffled)
            .run(cfg());
        assert_eq!(a, b, "non-conflicting events sort by cycle");
        assert!(a.delivered > 0);
    }
}

#[cfg(test)]
mod instrumentation_tests {
    use super::*;
    use hhc_core::Hhc;

    #[test]
    fn transmissions_equal_hops_when_drained() {
        let h = Hhc::new(2).unwrap();
        let stats =
            Simulator::new(&h, Pattern::UniformRandom, Strategy::SinglePath).run(SimConfig {
                cycles: 150,
                drain_cycles: 5000,
                inject_rate: 0.05,
                seed: 17,
                ..SimConfig::default()
            });
        assert_eq!(stats.in_flight_at_end, 0);
        // Every delivered packet's hop produced exactly one transmission.
        assert_eq!(stats.link_transmissions, stats.hops_sum);
        assert!(stats.max_queue_len >= 1);
    }

    #[test]
    fn latency_histogram_matches_scalar_aggregates() {
        let h = Hhc::new(2).unwrap();
        let stats =
            Simulator::new(&h, Pattern::UniformRandom, Strategy::SinglePath).run(SimConfig {
                cycles: 200,
                drain_cycles: 5000,
                inject_rate: 0.08,
                seed: 23,
                ..SimConfig::default()
            });
        assert!(stats.delivered > 0);
        assert_eq!(stats.latency_hist.count(), stats.delivered);
        assert_eq!(stats.latency_hist.sum(), stats.latency_sum);
        assert_eq!(stats.latency_hist.max(), Some(stats.latency_max));
        let p99 = stats.latency_p99().unwrap();
        assert!(p99 <= stats.latency_max);
        assert!(p99 as f64 >= stats.mean_latency().unwrap() / 2.0);
    }

    #[test]
    fn sampling_captures_queue_depth_series() {
        let h = Hhc::new(2).unwrap();
        let sim = Simulator::new(&h, Pattern::UniformRandom, Strategy::SinglePath);
        let cfg = SimConfig {
            cycles: 200,
            drain_cycles: 0,
            inject_rate: 0.25,
            seed: 31,
            sample_every: 10,
            ..SimConfig::default()
        };
        let stats = sim.run(cfg);
        assert_eq!(stats.samples.len(), 20); // cycles 0, 10, …, 190
        assert!(stats
            .samples
            .windows(2)
            .all(|w| w[1].cycle == w[0].cycle + 10));
        // At 25% load on HHC(2) some sample must catch queued packets
        // and active links.
        assert!(stats.samples.iter().any(|s| s.queued_packets > 0));
        assert!(stats.samples.iter().any(|s| s.transmissions > 0));
        assert!(stats
            .samples
            .iter()
            .all(|s| s.max_queue_len <= s.queued_packets));
        assert!(stats
            .samples
            .iter()
            .all(|s| s.max_queue_len <= stats.max_queue_len));
        // Sampling only observes; it must not perturb the run.
        let mut unsampled_cfg = cfg;
        unsampled_cfg.sample_every = 0;
        let unsampled = sim.run(unsampled_cfg);
        assert!(unsampled.samples.is_empty());
        let mut resampled = stats.clone();
        resampled.samples.clear();
        assert_eq!(unsampled, resampled);
    }

    #[test]
    fn route_cache_changes_nothing_but_effort() {
        // Multipath routing on a fixed permutation pattern repeats the
        // same (src, dst) pairs every cycle: the family cache should
        // absorb nearly every construction while leaving the simulation
        // bit-for-bit unchanged.
        let h = Hhc::new(2).unwrap();
        let cfg = SimConfig {
            cycles: 150,
            drain_cycles: 2000,
            inject_rate: 0.10,
            seed: 97,
            ..SimConfig::default()
        };
        let cached = Simulator::new(&h, Pattern::BitComplement, Strategy::MultipathRandom).run(cfg);
        let uncached = Simulator::new(&h, Pattern::BitComplement, Strategy::MultipathRandom)
            .with_route_cache(hhc_core::CacheConfig::disabled())
            .run(cfg);
        assert!(cached.route_constructions > 64);
        assert_eq!(cached.route_constructions, uncached.route_constructions);
        assert_eq!(uncached.route_family_hits, 0);
        // Bit-complement on HHC(2) flips every cube-field bit, so all 64
        // pairs share dx = 1111 and collapse onto the 4 translation
        // classes (Y, ~Y): after one solve per class everything replays.
        assert_eq!(
            cached.route_family_hits,
            cached.route_constructions - 4,
            "bit-complement traffic has exactly 4 canonical families"
        );
        assert!(cached.route_cache_hit_rate().unwrap() > 0.9);
        // Same packets, same routes, same queues — only the effort
        // counters may differ between the two configurations.
        let mut masked = cached.clone();
        masked.route_family_hits = uncached.route_family_hits;
        assert_eq!(masked, uncached);
    }

    #[test]
    fn single_path_runs_build_no_route_families() {
        let h = Hhc::new(2).unwrap();
        let stats =
            Simulator::new(&h, Pattern::UniformRandom, Strategy::SinglePath).run(SimConfig {
                cycles: 50,
                drain_cycles: 500,
                inject_rate: 0.05,
                seed: 13,
                ..SimConfig::default()
            });
        assert_eq!(stats.route_constructions, 0);
        assert_eq!(stats.route_cache_hit_rate(), None);
    }

    #[test]
    fn try_new_rejects_oversized_networks() {
        let big = Hhc::new(5).unwrap(); // n = 37 address bits
        match Simulator::try_new(&big, Pattern::UniformRandom, Strategy::SinglePath) {
            Err(SimError::NetworkTooLarge {
                address_bits,
                max_bits,
            }) => {
                assert_eq!(address_bits, 37);
                assert_eq!(max_bits, Simulator::<Hhc>::MAX_ADDRESS_BITS);
            }
            Ok(_) => panic!("expected NetworkTooLarge"),
        }
        let small = Hhc::new(2).unwrap();
        assert!(Simulator::try_new(&small, Pattern::UniformRandom, Strategy::SinglePath).is_ok());
    }

    #[test]
    fn utilization_grows_with_load() {
        let h = Hhc::new(2).unwrap();
        let run = |rate| {
            Simulator::new(&h, Pattern::UniformRandom, Strategy::SinglePath)
                .run(SimConfig {
                    cycles: 300,
                    drain_cycles: 5000,
                    inject_rate: rate,
                    seed: 3,
                    ..SimConfig::default()
                })
                .link_utilization()
        };
        let lo = run(0.02);
        let hi = run(0.20);
        assert!(
            hi > lo * 5.0,
            "utilisation should scale ~linearly: {lo} vs {hi}"
        );
    }
}

#[cfg(test)]
mod warm_route_tests {
    use super::*;
    use hhc_core::Hhc;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The pairs a pattern will generate, for warming. BitComplement is
    /// deterministic per source, so this predicts the traffic exactly.
    fn pattern_pairs(h: &Hhc, pattern: Pattern) -> Vec<(NodeId, NodeId)> {
        let mut rng = StdRng::seed_from_u64(0);
        h.all_nodes()
            .into_iter()
            .filter_map(|u| pattern.destination(h, u, &mut rng).map(|v| (u, v)))
            .collect()
    }

    fn cfg() -> SimConfig {
        SimConfig {
            cycles: 150,
            drain_cycles: 2000,
            inject_rate: 0.10,
            seed: 97,
            ..SimConfig::default()
        }
    }

    #[test]
    fn warm_arena_is_observationally_invisible() {
        let h = Hhc::new(2).unwrap();
        let sim = Simulator::new(&h, Pattern::BitComplement, Strategy::MultipathRandom);
        let warm = sim.warm_routes(&pattern_pairs(&h, Pattern::BitComplement));
        // 64 sources × (m + 1) = 3 disjoint routes each, all distinct
        // node sequences (translation moves the whole family).
        assert_eq!(warm.len(), 64 * 3);
        assert_eq!(sim.run_warm(cfg(), &warm), sim.run(cfg()));
    }

    #[test]
    fn warm_run_many_matches_cold_and_sequential_fold() {
        let h = Hhc::new(2).unwrap();
        let sim = Simulator::new(&h, Pattern::BitComplement, Strategy::MultipathRandom);
        let warm = sim.warm_routes(&pattern_pairs(&h, Pattern::BitComplement));
        let n_runs = 4;
        let warm_merged = sim.run_many_warm(cfg(), n_runs, &warm);
        // Worker-count invariance: the parallel warmed fan-out equals
        // the sequential seed-order fold of warmed runs...
        let mut seq = SimStats::default();
        for i in 0..n_runs as u64 {
            seq.merge(&sim.run_warm(
                SimConfig {
                    seed: cfg().seed.wrapping_add(i),
                    ..cfg()
                },
                &warm,
            ));
        }
        assert_eq!(warm_merged, seq);
        // ...and warming itself is invisible in the merged statistics.
        assert_eq!(warm_merged, sim.run_many(cfg(), n_runs));
    }

    #[test]
    fn partial_and_superfluous_warming_change_nothing() {
        let h = Hhc::new(2).unwrap();
        let sim = Simulator::new(&h, Pattern::UniformRandom, Strategy::FaultAdaptive);
        // Warm from a *different* traffic pattern: some routes will hit,
        // most will miss, none of it may show in the stats.
        let warm = sim.warm_routes(&pattern_pairs(&h, Pattern::BitComplement));
        assert!(!warm.is_empty());
        assert_eq!(sim.run_warm(cfg(), &warm), sim.run(cfg()));
        // An empty warm arena is the degenerate case of the same claim.
        let empty = sim.warm_routes(&[]);
        assert!(empty.is_empty());
        assert_eq!(sim.run_warm(cfg(), &empty), sim.run(cfg()));
    }

    #[test]
    fn single_path_warming_interns_one_route_per_pair() {
        let h = Hhc::new(2).unwrap();
        let sim = Simulator::new(&h, Pattern::BitComplement, Strategy::SinglePath);
        let pairs = pattern_pairs(&h, Pattern::BitComplement);
        let warm = sim.warm_routes(&pairs);
        assert_eq!(warm.len(), pairs.len());
        assert_eq!(sim.run_warm(cfg(), &warm), sim.run(cfg()));
    }
}

#[cfg(test)]
mod cube_network_tests {
    use super::*;
    use crate::net::CubeNet;

    #[test]
    fn simulator_runs_on_plain_hypercube() {
        let q = CubeNet::matching_hhc(2); // Q_6, 64 nodes
        let stats =
            Simulator::new(&q, Pattern::UniformRandom, Strategy::SinglePath).run(SimConfig {
                cycles: 200,
                drain_cycles: 4000,
                inject_rate: 0.05,
                seed: 21,
                ..SimConfig::default()
            });
        assert_eq!(stats.delivered, stats.injected);
        assert!(stats.delivered > 100);
        // Q_6 mean distance is 3 (n/2); latency can't be below hops.
        assert!(stats.mean_hops().unwrap() > 2.0);
        assert!(stats.mean_latency().unwrap() >= stats.mean_hops().unwrap());
    }

    #[test]
    fn hypercube_beats_hhc_on_latency_at_equal_size() {
        // The price of the HHC's low degree: longer routes. Same node
        // count (64), same load, same pattern.
        let q = CubeNet::matching_hhc(2);
        let h = hhc_core::Hhc::new(2).unwrap();
        let cfg = SimConfig {
            cycles: 300,
            drain_cycles: 6000,
            inject_rate: 0.05,
            seed: 33,
            ..SimConfig::default()
        };
        let sq = Simulator::new(&q, Pattern::UniformRandom, Strategy::SinglePath).run(cfg);
        let sh = Simulator::new(&h, Pattern::UniformRandom, Strategy::SinglePath).run(cfg);
        assert!(
            sq.mean_latency().unwrap() < sh.mean_latency().unwrap(),
            "Q_6 (degree 6) should be faster than HHC(2) (degree 3)"
        );
    }

    #[test]
    fn fault_adaptive_works_on_cube_too() {
        use rand::SeedableRng;
        let q = CubeNet::matching_hhc(2);
        // Q_6 has 6 disjoint paths; 6 faults can't block a live pair...
        // only f ≤ n−1 = 5 is guaranteed, use 5.
        let faults =
            workloads::random_fault_set(&q, 5, &[], &mut rand::rngs::StdRng::seed_from_u64(4));
        let stats = Simulator::new(&q, Pattern::UniformRandom, Strategy::FaultAdaptive)
            .with_faults(faults)
            .run(SimConfig {
                cycles: 100,
                drain_cycles: 4000,
                inject_rate: 0.05,
                seed: 9,
                ..SimConfig::default()
            });
        assert_eq!(stats.dropped_unroutable, 0);
        assert_eq!(stats.delivered, stats.injected);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use hhc_core::Hhc;

    #[test]
    fn trace_consistent_with_stats() {
        let h = Hhc::new(2).unwrap();
        let sim = Simulator::new(&h, Pattern::UniformRandom, Strategy::SinglePath);
        let cfg = SimConfig {
            cycles: 150,
            drain_cycles: 5000,
            inject_rate: 0.06,
            seed: 77,
            ..SimConfig::default()
        };
        let (stats, records) = sim.run_traced(cfg);
        assert_eq!(records.len() as u64, stats.delivered);
        let lat_sum: u64 = records.iter().map(|r| r.latency()).sum();
        assert_eq!(lat_sum, stats.latency_sum);
        let hops: u64 = records.iter().map(|r| r.route.len() as u64 - 1).sum();
        assert_eq!(hops, stats.hops_sum);
        for r in &records {
            assert!(r.latency() >= r.route.len() as u64 - 1);
            for w in r.route.windows(2) {
                assert!(h.is_edge(w[0], w[1]));
            }
        }
        // Queueing delay is the congestion component.
        assert!(records.iter().any(|r| r.queueing_delay() == 0) || stats.delivered == 0);
    }

    #[test]
    fn traced_and_untraced_runs_agree() {
        let h = Hhc::new(2).unwrap();
        let sim = Simulator::new(&h, Pattern::BitComplement, Strategy::MultipathRandom);
        let cfg = SimConfig {
            cycles: 100,
            drain_cycles: 3000,
            inject_rate: 0.05,
            seed: 55,
            ..SimConfig::default()
        };
        assert_eq!(sim.run(cfg), sim.run_traced(cfg).0);
    }
}

#[cfg(test)]
mod latency_model_tests {
    use super::*;
    use hhc_core::Hhc;

    fn cfg(len: u64) -> SimConfig {
        SimConfig {
            cycles: 200,
            drain_cycles: 20_000,
            inject_rate: 0.02,
            seed: 808,
            packet_len: len,
            switching: Switching::StoreAndForward,
            queue_capacity: None,
            sample_every: 0,
        }
    }

    #[test]
    fn latency_scales_with_packet_len_at_low_load() {
        let h = Hhc::new(2).unwrap();
        let sim = Simulator::new(&h, Pattern::UniformRandom, Strategy::SinglePath);
        let l1 = sim.run(cfg(1));
        let l3 = sim.run(cfg(3));
        assert_eq!(l1.delivered, l1.injected);
        assert_eq!(l3.delivered, l3.injected);
        // Same arrivals (same seed) ⇒ same packets and hop counts; each
        // hop now costs ≥ 3 cycles.
        assert_eq!(l1.hops_sum, l3.hops_sum);
        let m1 = l1.mean_latency().unwrap();
        let m3 = l3.mean_latency().unwrap();
        assert!(
            m3 >= 2.5 * m1 && m3 <= 4.0 * m1,
            "latency should scale ≈3× at low load: {m1:.2} → {m3:.2}"
        );
    }

    #[test]
    fn per_packet_floor_is_hops_times_latency() {
        let h = Hhc::new(2).unwrap();
        let sim = Simulator::new(&h, Pattern::UniformRandom, Strategy::SinglePath);
        let (stats, records) = sim.run_traced(cfg(4));
        assert_eq!(stats.delivered, records.len() as u64);
        for r in &records {
            assert!(
                r.latency() >= 4 * (r.route.len() as u64 - 1),
                "packet {} beat the physical floor",
                r.id
            );
        }
    }

    #[test]
    fn zero_packet_len_clamped_to_one() {
        let h = Hhc::new(1).unwrap();
        let sim = Simulator::new(&h, Pattern::UniformRandom, Strategy::SinglePath);
        let stats = sim.run(SimConfig {
            cycles: 50,
            drain_cycles: 1000,
            inject_rate: 0.05,
            seed: 2,
            packet_len: 0,
            switching: Switching::StoreAndForward,
            queue_capacity: None,
            sample_every: 0,
        });
        assert_eq!(stats.delivered, stats.injected);
        assert!(stats.latency_sum >= stats.hops_sum);
    }
}

#[cfg(test)]
mod switching_tests {
    use super::*;
    use hhc_core::Hhc;

    fn cfg(len: u64, switching: Switching) -> SimConfig {
        SimConfig {
            cycles: 200,
            drain_cycles: 30_000,
            inject_rate: 0.01,
            seed: 909,
            packet_len: len,
            switching,
            queue_capacity: None,
            sample_every: 0,
        }
    }

    #[test]
    fn cut_through_beats_store_and_forward_for_long_packets() {
        let h = Hhc::new(2).unwrap();
        let sim = Simulator::new(&h, Pattern::UniformRandom, Strategy::SinglePath);
        let saf = sim.run(cfg(8, Switching::StoreAndForward));
        let vct = sim.run(cfg(8, Switching::CutThrough));
        assert_eq!(
            saf.delivered, vct.delivered,
            "same arrivals under same seed"
        );
        let (ls, lv) = (saf.mean_latency().unwrap(), vct.mean_latency().unwrap());
        // SAF ≈ hops × 8, VCT ≈ hops + 7 at low load: a large gap.
        assert!(
            lv < ls / 2.0,
            "cut-through should at least halve latency: SAF {ls:.1} vs VCT {lv:.1}"
        );
        let hops = vct.mean_hops().unwrap();
        assert!(
            lv >= hops + 7.0,
            "VCT cannot beat the pipelining floor hops+len-1"
        );
    }

    #[test]
    fn unit_packets_make_the_disciplines_identical() {
        let h = Hhc::new(2).unwrap();
        let sim = Simulator::new(&h, Pattern::BitComplement, Strategy::SinglePath);
        assert_eq!(
            sim.run(cfg(1, Switching::StoreAndForward)),
            sim.run(cfg(1, Switching::CutThrough))
        );
    }

    #[test]
    fn link_serialization_preserved_under_cut_through() {
        // Throughput (per-link serialisation) is the same in both modes:
        // a link still carries one packet per `len` cycles.
        let h = Hhc::new(2).unwrap();
        let sim = Simulator::new(&h, Pattern::UniformRandom, Strategy::SinglePath);
        let saf = sim.run(cfg(4, Switching::StoreAndForward));
        let vct = sim.run(cfg(4, Switching::CutThrough));
        assert_eq!(saf.link_transmissions, vct.link_transmissions);
        assert_eq!(saf.delivered, vct.delivered);
    }
}

#[cfg(test)]
mod backpressure_tests {
    use super::*;
    use hhc_core::Hhc;

    fn cfg(cap: Option<u64>, rate: f64) -> SimConfig {
        SimConfig {
            cycles: 300,
            drain_cycles: 30_000,
            inject_rate: rate,
            seed: 1212,
            queue_capacity: cap,
            ..SimConfig::default()
        }
    }

    #[test]
    fn huge_capacity_equals_unbounded() {
        let h = Hhc::new(2).unwrap();
        let sim = Simulator::new(&h, Pattern::UniformRandom, Strategy::SinglePath);
        let unbounded = sim.run(cfg(None, 0.1));
        let huge = sim.run(cfg(Some(1_000_000), 0.1));
        assert_eq!(unbounded.delivered, huge.delivered);
        assert_eq!(unbounded.latency_sum, huge.latency_sum);
        assert_eq!(huge.dropped_backpressure, 0);
        assert_eq!(huge.backpressure_stalls, 0);
    }

    #[test]
    fn tiny_buffers_shed_load_and_can_deadlock() {
        // With capacity-1 buffers under heavy permutation traffic, the
        // classic store-and-forward buffer-cycle deadlock appears: a ring
        // of head-of-line packets each waiting for the next one's slot.
        // The simulator surfaces it rather than hiding it: conservation
        // counts the wedged packets as in-flight at end.
        let h = Hhc::new(2).unwrap();
        let sim = Simulator::new(&h, Pattern::BitComplement, Strategy::SinglePath);
        let open = sim.run(cfg(None, 0.4));
        let mut tight_cfg = cfg(Some(1), 0.4);
        tight_cfg.drain_cycles = 4_000; // a wedged cycle never drains anyway
        let tight = sim.run(tight_cfg);
        assert!(tight.dropped_backpressure > 0, "expected injection drops");
        assert!(tight.backpressure_stalls > 0, "expected HOL stalls");
        // Conservation including wedged packets.
        assert_eq!(tight.delivered + tight.in_flight_at_end, tight.injected);
        // This seed deterministically wedges a buffer cycle — the
        // phenomenon deadlock-free routing theory exists to prevent.
        assert!(
            tight.in_flight_at_end > 0,
            "expected a buffer-cycle deadlock at capacity 1"
        );
        assert!(tight.injected < open.injected, "admission control bites");
        // Bounded queues keep the occupancy near the cap (same-cycle
        // arrivals may overshoot by the node in-degree, here ≤ m+1 = 3).
        assert!(tight.max_queue_len <= 1 + 3, "cap grossly exceeded");
    }

    #[test]
    fn no_deadlock_on_uniform_traffic_with_small_buffers() {
        // Backpressure + cyclic routes can deadlock in principle; on
        // uniform traffic at moderate load the HHC drains. If this ever
        // stops holding, in_flight_at_end > 0 will flag it loudly.
        let h = Hhc::new(2).unwrap();
        let sim = Simulator::new(&h, Pattern::UniformRandom, Strategy::SinglePath);
        let stats = sim.run(cfg(Some(2), 0.15));
        assert_eq!(
            stats.in_flight_at_end, 0,
            "network failed to drain under backpressure (possible deadlock)"
        );
        assert_eq!(stats.delivered, stats.injected);
    }
}
