//! The `fault-analysis` engine: static route-survival sweeps.
//!
//! This is the F3c experiment's core, lifted out of the driver so a
//! scenario file can run it: for each fault count, sample `(pair,
//! fault set)` trials and measure both selection-time filtering (does
//! any member of the fault-blind disjoint family survive? — what
//! [`crate::strategy::Strategy::FaultAdaptive`] needs) and fault-aware
//! construction (is the avoiding family non-empty? — what
//! [`crate::strategy::Strategy::FaultFree`] needs).
//!
//! Determinism contract: each row seeds its own `StdRng` with
//! `seed.wrapping_add(row_index)` and draws every trial's inputs
//! *serially* from that stream; only the per-trial analysis fans across
//! rayon workers. Row results are therefore independent of worker
//! count and of which other rows run — a shrunk scenario that keeps a
//! row reproduces that row's numbers exactly.

use super::spec::Placement;
use crate::fault::analyze_with;
use crate::faults::FaultSet;
use crate::net::RouteScratch;
use hhc_core::{CrossingOrder, Hhc, NodeId, Workspace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use workloads::sampling::random_pair;
use workloads::{adversarial_fault_set, random_fault_set};

/// Aggregates of one fault-count row of a constructive sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisRow {
    /// The fault count this row swept.
    pub fault_count: usize,
    /// Trials sampled.
    pub trials: u32,
    /// Trials where ≥ 1 fault-blind family member survived.
    pub filtered: u32,
    /// Trials where the fault-avoiding family was non-empty.
    pub constructive: u32,
    /// Trials where the avoiding construction deviated from the plain
    /// family (rebuild or survivor fallback).
    pub rerouted: u32,
    /// Total avoiding-family sizes (for the mean).
    pub paths_sum: u64,
    /// Longest avoiding path seen, in hops — the achieved fault
    /// diameter of the row.
    pub max_len: usize,
}

/// Runs one constructive sweep: one [`AnalysisRow`] per fault count, in
/// the given order.
pub fn constructive_sweep(
    h: &Hhc,
    placement: Placement,
    fault_counts: &[usize],
    trials: u32,
    seed: u64,
) -> Vec<AnalysisRow> {
    fault_counts
        .iter()
        .enumerate()
        .map(|(row, &f)| {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(row as u64));
            let inputs: Vec<(NodeId, NodeId, FaultSet)> = (0..trials)
                .map(|_| {
                    let (u, v) = random_pair(h, &mut rng);
                    let faults = match placement {
                        Placement::Random => {
                            FaultSet::from_set(&random_fault_set(h, f, &[u, v], &mut rng))
                        }
                        Placement::Adversarial => {
                            let paths = h.disjoint_paths(u, v).expect("distinct healthy pair");
                            FaultSet::from_set(&adversarial_fault_set(&paths, f, &mut rng))
                        }
                    };
                    (u, v, faults)
                })
                .collect();
            analyze_row(h, f, &inputs)
        })
        .collect()
}

/// Analyses one batch of pre-drawn trials both ways — plain family
/// filtered after the fact vs fault-aware construction — in parallel,
/// each worker holding its own scratch and workspace.
fn analyze_row(h: &Hhc, fault_count: usize, inputs: &[(NodeId, NodeId, FaultSet)]) -> AnalysisRow {
    let per_trial: Vec<(u32, u32, u32, u64, usize)> = inputs
        .par_iter()
        .map_init(
            || (RouteScratch::new(), Workspace::new()),
            |(scratch, ws), (u, v, faults)| {
                let plain = analyze_with(h, *u, *v, faults, scratch);
                let (outcome, set) = ws
                    .construct_avoiding(h, *u, *v, CrossingOrder::Gray, faults)
                    .expect("valid pair, healthy endpoints");
                // The avoiding family can never do worse than filtering:
                // the constructor keeps the plain survivors when the
                // rebuild recovers fewer.
                assert!(
                    outcome.paths as u32 >= plain.surviving_paths,
                    "avoiding family smaller than the survivor set"
                );
                let longest = set.iter().map(|p| p.len() - 1).max().unwrap_or(0);
                (
                    plain.multipath_ok as u32,
                    (outcome.paths > 0) as u32,
                    outcome.rerouted as u32,
                    outcome.paths as u64,
                    longest,
                )
            },
        )
        .collect();
    let mut row = AnalysisRow {
        fault_count,
        trials: inputs.len() as u32,
        filtered: 0,
        constructive: 0,
        rerouted: 0,
        paths_sum: 0,
        max_len: 0,
    };
    for (f, c, r, p, l) in per_trial {
        row.filtered += f;
        row.constructive += c;
        row.rerouted += r;
        row.paths_sum += p;
        row.max_len = row.max_len.max(l);
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic_and_honours_the_guarantee() {
        let h = Hhc::new(2).unwrap();
        let counts = [0usize, 1, 2, 5];
        let a = constructive_sweep(&h, Placement::Random, &counts, 40, 0xF3C0);
        let b = constructive_sweep(&h, Placement::Random, &counts, 40, 0xF3C0);
        assert_eq!(a, b, "same seed must reproduce byte-identical rows");
        for row in &a {
            assert_eq!(row.trials, 40);
            // f ≤ m: the paper's guarantee — the avoiding family is
            // always non-empty (here m = 2).
            if row.fault_count <= 2 {
                assert_eq!(row.constructive, row.trials);
            }
            assert!(row.constructive >= row.filtered);
        }
    }

    #[test]
    fn rows_depend_only_on_seed_plus_index_and_fault_count() {
        let h = Hhc::new(2).unwrap();
        let full = constructive_sweep(&h, Placement::Adversarial, &[0, 2, 3], 30, 77);
        // Row index 1 draws from StdRng::seed_from_u64(77 + 1) with
        // fault count 2; a single-row sweep at seed 78 reproduces it
        // exactly. This positional reproducibility is what lets a
        // shrunk sweep keep a row's numbers.
        let alone = constructive_sweep(&h, Placement::Adversarial, &[2], 30, 78);
        assert_eq!(full[1], alone[0]);
    }
}
