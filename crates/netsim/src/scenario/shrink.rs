//! Delta-debugging a failing scenario down to a minimal reproducer.
//!
//! [`shrink`] takes a scenario and a *failure predicate* (typically
//! `|s| !execute(s).passes()`, but any property works) and greedily
//! applies size-reducing moves — dropping fault events and initial
//! faults, collapsing the sweep, halving durations and load, shrinking
//! the topology — keeping a move only when the shrunk scenario still
//! fails. Every accepted move strictly decreases an integer size
//! metric, so the loop terminates; the result is a local minimum: no
//! single remaining move preserves the failure.
//!
//! The predicate is re-run from scratch on every candidate, which is
//! what makes this sound for a DES: cell runs are fully determined by
//! the spec (see the determinism contract in `SCENARIOS.md`), so "still
//! fails" means "will still fail every time".

use super::spec::{Scenario, Sweep, Topology};

/// The integer size metric the shrinker strictly decreases. Structural
/// items (fault events, sweep axes, replications, address bits) weigh
/// far more than duration knobs, so the shrinker prefers removing
/// moving parts over merely shortening the run.
pub fn size(s: &Scenario) -> u64 {
    let structural = s.faults.events.len() as u64
        + s.faults.initial.len() as u64
        + s.sweep.cells.len() as u64
        + s.sweep.rates.len() as u64
        + s.sweep.strategies.len() as u64
        + s.replications as u64
        + s.analysis
            .as_ref()
            .map_or(0, |a| a.fault_counts.len() as u64 + a.trials as u64);
    let duration = s.sim.cycles
        + s.sim.drain_cycles
        + s.sim.packet_len
        + s.sim.sample_every
        + (s.traffic.rate * 1000.0) as u64;
    (s.topology.address_bits() as u64) * 1_000_000 + structural * 10_000 + duration
}

/// Candidate single-step shrinks of `s`, most aggressive first. Every
/// candidate is a valid scenario; not every candidate is smaller (the
/// caller filters by [`size`]).
fn moves(s: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    let mut with = |f: &dyn Fn(&mut Scenario)| {
        let mut c = s.clone();
        f(&mut c);
        out.push(c);
    };

    // Structure first: fewer moving parts beats a shorter run.
    if !s.faults.events.is_empty() {
        with(&|c| c.faults.events.clear());
        for i in 0..s.faults.events.len() {
            with(&move |c| {
                c.faults.events.remove(i);
            });
        }
    }
    for i in 0..s.faults.initial.len() {
        with(&move |c| {
            c.faults.initial.remove(i);
        });
    }
    if !s.sweep.is_empty() {
        with(&|c| c.sweep = Sweep::default());
        for i in 0..s.sweep.cells.len() {
            with(&move |c| {
                c.sweep.cells.remove(i);
            });
        }
        for i in 0..s.sweep.rates.len() {
            with(&move |c| {
                c.sweep.rates.remove(i);
            });
        }
        for i in 0..s.sweep.strategies.len() {
            with(&move |c| {
                c.sweep.strategies.remove(i);
            });
        }
    }
    if s.replications > 1 {
        with(&|c| c.replications = 1);
        with(&|c| c.replications /= 2);
    }
    if let Some(a) = &s.analysis {
        for i in 0..a.fault_counts.len() {
            if a.fault_counts.len() > 1 {
                with(&move |c| {
                    c.analysis.as_mut().unwrap().fault_counts.remove(i);
                });
            }
        }
        if a.trials > 1 {
            with(&|c| {
                let a = c.analysis.as_mut().unwrap();
                a.trials = (a.trials / 2).max(1);
            });
        }
    }

    // Topology: one size down, discarding faults that fall outside the
    // smaller address space (the predicate decides if that matters).
    let shrunk_topology = match s.topology {
        Topology::Hhc { m } if m > 1 => Some(Topology::Hhc { m: m - 1 }),
        Topology::Cube { n } if n > 1 => Some(Topology::Cube { n: n - 1 }),
        _ => None,
    };
    if let Some(topology) = shrunk_topology {
        with(&move |c| {
            c.topology = topology;
            let max = 1u64 << topology.address_bits();
            c.faults.initial.retain(|&node| node < max);
            c.faults.events.retain(|ev| ev.node.raw() < max as u128);
            // Per-cell size overrides would resurrect the old size.
            for cell in &mut c.sweep.cells {
                cell.size = None;
            }
        });
    }

    // Duration knobs last.
    if s.sim.cycles > 1 {
        with(&|c| c.sim.cycles = (c.sim.cycles / 2).max(1));
        for i in 0..s.sweep.cells.len() {
            if s.sweep.cells[i].cycles.is_some() {
                with(&move |c| {
                    let cy = c.sweep.cells[i].cycles.unwrap();
                    c.sweep.cells[i].cycles = Some((cy / 2).max(1));
                });
            }
        }
    }
    if s.sim.drain_cycles > 0 {
        with(&|c| c.sim.drain_cycles /= 2);
    }
    with(&|c| c.traffic.rate /= 2.0);
    if s.sim.packet_len > 1 {
        with(&|c| c.sim.packet_len = 1);
    }
    if s.sim.sample_every > 0 {
        with(&|c| c.sim.sample_every = 0);
    }
    out
}

/// Greedily minimises a failing scenario: returns the smallest
/// scenario reachable by accepted moves on which `failing` still
/// returns `true`. When the input itself does not fail, it is returned
/// unchanged. The result is a 1-minimal local optimum — re-running
/// [`shrink`] on it is a no-op.
pub fn shrink(orig: &Scenario, failing: &mut dyn FnMut(&Scenario) -> bool) -> Scenario {
    if !failing(orig) {
        return orig.clone();
    }
    let mut best = orig.clone();
    loop {
        let before = size(&best);
        let Some(next) = moves(&best)
            .into_iter()
            .find(|cand| size(cand) < before && failing(cand))
        else {
            return best;
        };
        best = next;
    }
}

#[cfg(test)]
mod tests {
    use super::super::run::execute;
    use super::*;

    /// The wedge reproducer: HHC(2), bit-complement at high load with
    /// single-slot queues deadlocks, violating `delivered_all`.
    fn wedge() -> Scenario {
        Scenario::from_toml(
            "name = \"wedge\"\nseed = 1212\nreplications = 2\n\
             [topology]\nkind = \"hhc\"\nm = 2\n\
             [traffic]\npattern = \"bit-complement\"\nrate = 0.4\n\
             [sim]\ncycles = 300\ndrain_cycles = 4000\nqueue_capacity = 1\nsample_every = 25\n\
             [faults]\n[[faults.events]]\ncycle = 100000\nnode = 1\naction = \"fail\"\n\
             [expect]\ndelivered_all = true\n",
        )
        .unwrap()
    }

    #[test]
    fn shrinks_to_a_strictly_smaller_still_failing_scenario() {
        let orig = wedge();
        let mut predicate = |s: &Scenario| !execute(s).passes();
        assert!(predicate(&orig), "seed scenario must fail to begin with");
        let small = shrink(&orig, &mut predicate);
        assert!(size(&small) < size(&orig), "must strictly shrink");
        assert!(predicate(&small), "must still fail");
        // The irrelevant fault event and the replication count are
        // noise: a minimal wedge has neither.
        assert!(small.faults.events.is_empty());
        assert_eq!(small.replications, 1);
        assert_eq!(small.sim.sample_every, 0);
        // Fixpoint: shrinking the minimum changes nothing.
        let again = shrink(&small, &mut predicate);
        assert_eq!(small, again);
    }

    #[test]
    fn passing_scenario_is_returned_unchanged() {
        let mut orig = wedge();
        orig.expect.delivered_all = false;
        let mut predicate = |s: &Scenario| !execute(s).passes();
        let out = shrink(&orig, &mut predicate);
        assert_eq!(out, orig);
    }
}
