//! Compiling a [`Scenario`] into runnable cells and executing it.
//!
//! Compilation expands the sweep into the cross product
//! `cells × rates × strategies` (strategy innermost, matching the
//! experiment drivers' row order), stamps each combination into a
//! [`CompiledCell`] — a fully resolved `(topology, traffic, SimConfig,
//! EngineConfig, fault schedule, replications)` tuple — and execution
//! runs each cell through [`crate::sim::Simulator::run_many`]. The
//! resulting [`ScenarioReport`] carries per-cell merged statistics,
//! the analysis rows (for `fault-analysis` scenarios), and the list of
//! [`Expect`](super::spec::Expect) violations; `passes()` is the
//! shrinker's failure predicate.

use super::analysis::{constructive_sweep, AnalysisRow};
use super::spec::{Kind, Scenario, Topology};
use crate::faults::FaultEvent;
use crate::flat::EngineConfig;
use crate::net::CubeNet;
use crate::sim::{SimConfig, Simulator};
use crate::stats::SimStats;
use crate::strategy::Strategy;
use hhc_core::{Hhc, NodeId};
use hypercube::Cube;
use std::collections::HashSet;
use std::fmt;
use workloads::Pattern;

/// One fully resolved run: everything [`execute`] needs, with every
/// sweep override already applied.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledCell {
    /// Human-readable cell label, e.g. `hhc(2) rate=0.02 strategy=single`.
    pub label: String,
    /// The cell's (possibly overridden) topology.
    pub topology: Topology,
    /// Traffic pattern.
    pub pattern: Pattern,
    /// Routing strategy after overrides.
    pub strategy: Strategy,
    /// Fully resolved simulation parameters.
    pub cfg: SimConfig,
    /// Engine variant.
    pub engine: EngineConfig,
    /// Build-time faulty nodes.
    pub faults: HashSet<NodeId>,
    /// Runtime fault timeline.
    pub events: Vec<FaultEvent>,
    /// Replications merged into the cell's statistics.
    pub replications: u32,
}

/// One executed cell: its label and merged statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// The compiled cell's label.
    pub label: String,
    /// Merged statistics over the cell's replications.
    pub stats: SimStats,
}

/// The outcome of executing a scenario.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScenarioReport {
    /// The scenario's name.
    pub name: String,
    /// Per-cell results, in compiled order (sim scenarios).
    pub cells: Vec<CellResult>,
    /// Per-fault-count rows (`fault-analysis` scenarios).
    pub rows: Vec<AnalysisRow>,
    /// Every violated expectation, as `"<cell label>: <violation>"`.
    pub violations: Vec<String>,
}

impl ScenarioReport {
    /// Whether every expectation held. This is the failure predicate
    /// the shrinker preserves: a scenario "fails" when this is false.
    pub fn passes(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for ScenarioReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "scenario {}", self.name)?;
        for cell in &self.cells {
            writeln!(
                f,
                "  {}: injected {} delivered {} p99 {:?}",
                cell.label,
                cell.stats.injected,
                cell.stats.delivered,
                cell.stats.latency_p99()
            )?;
        }
        for row in &self.rows {
            writeln!(
                f,
                "  f={}: filtered {}/{} constructive {}/{} max_len {}",
                row.fault_count,
                row.filtered,
                row.trials,
                row.constructive,
                row.trials,
                row.max_len
            )?;
        }
        for v in &self.violations {
            writeln!(f, "  VIOLATED: {v}")?;
        }
        Ok(())
    }
}

/// Expands the sweep into the ordered list of compiled cells.
///
/// Order: explicit `[[sweep.cells]]` outermost (an implicit base cell
/// when none are given), then the rate axis, then the strategy axis
/// innermost. Every combination inherits the base scenario and applies
/// overrides on top; fault schedules and the engine are shared by all
/// cells.
pub fn compile(s: &Scenario) -> Vec<CompiledCell> {
    let base_cell = super::spec::CellOverride::default();
    let cells: &[super::spec::CellOverride] = if s.sweep.cells.is_empty() {
        std::slice::from_ref(&base_cell)
    } else {
        &s.sweep.cells
    };
    let rates: Vec<Option<f64>> = if s.sweep.rates.is_empty() {
        vec![None]
    } else {
        s.sweep.rates.iter().map(|&r| Some(r)).collect()
    };
    let strategies: Vec<Option<Strategy>> = if s.sweep.strategies.is_empty() {
        vec![None]
    } else {
        s.sweep.strategies.iter().map(|&st| Some(st)).collect()
    };

    let mut out = Vec::new();
    for cell in cells {
        for &rate_axis in &rates {
            for &strategy_axis in &strategies {
                let topology = match (s.topology, cell.size) {
                    (Topology::Hhc { .. }, Some(m)) => Topology::Hhc { m },
                    (Topology::Cube { .. }, Some(n)) => Topology::Cube { n },
                    (base, None) => base,
                };
                // Axis values override the base; an explicit per-cell
                // override beats the axis (cells are the escape hatch).
                let rate = cell.rate.or(rate_axis).unwrap_or(s.traffic.rate);
                let strategy = cell
                    .strategy
                    .or(strategy_axis)
                    .unwrap_or(s.traffic.strategy);
                let cfg = SimConfig {
                    cycles: cell.cycles.unwrap_or(s.sim.cycles),
                    inject_rate: rate,
                    ..s.sim
                };
                out.push(CompiledCell {
                    label: cell_label(topology, rate, strategy),
                    topology,
                    pattern: s.traffic.pattern,
                    strategy,
                    cfg,
                    engine: s.engine,
                    faults: s
                        .faults
                        .initial
                        .iter()
                        .map(|&raw| NodeId::from_raw(raw as u128))
                        .collect(),
                    events: s.faults.events.clone(),
                    replications: s.replications,
                });
            }
        }
    }
    out
}

fn cell_label(topology: Topology, rate: f64, strategy: Strategy) -> String {
    let strategy = match strategy {
        Strategy::SinglePath => "single",
        Strategy::MultipathRandom => "multipath",
        Strategy::FaultAdaptive => "fault-adaptive",
        Strategy::FaultFree => "fault-free",
        Strategy::Valiant => "valiant",
    };
    format!("{} rate={rate:?} strategy={strategy}", topology.label())
}

/// Runs one compiled cell and returns its merged statistics.
pub fn run_cell(cell: &CompiledCell) -> SimStats {
    match cell.topology {
        Topology::Hhc { m } => {
            let h = Hhc::new(m).expect("validated topology");
            run_on(&h, cell)
        }
        Topology::Cube { n } => {
            let net = CubeNet(Cube::new(n).expect("validated topology"));
            run_on(&net, cell)
        }
    }
}

fn run_on<N: crate::net::Network + Sync + ?Sized>(net: &N, cell: &CompiledCell) -> SimStats {
    Simulator::new(net, cell.pattern, cell.strategy)
        .with_engine(cell.engine)
        .with_faults(cell.faults.clone())
        .with_fault_events(cell.events.clone())
        .run_many(cell.cfg, cell.replications as usize)
}

/// Executes a scenario end to end: compile, run every cell (or the
/// analysis sweep), evaluate expectations.
pub fn execute(s: &Scenario) -> ScenarioReport {
    let mut report = ScenarioReport {
        name: s.name.clone(),
        ..ScenarioReport::default()
    };
    match s.kind {
        Kind::Sim => {
            for cell in compile(s) {
                let stats = run_cell(&cell);
                check_expectations(&s.expect, &cell.label, &stats, &mut report.violations);
                report.cells.push(CellResult {
                    label: cell.label,
                    stats,
                });
            }
        }
        Kind::FaultAnalysis => {
            let a = s.analysis.as_ref().expect("validated fault-analysis kind");
            let Topology::Hhc { m } = s.topology else {
                unreachable!("validation rejects non-hhc analysis scenarios")
            };
            let h = Hhc::new(m).expect("validated topology");
            report.rows = constructive_sweep(&h, a.placement, &a.fault_counts, a.trials, s.seed);
        }
    }
    report
}

fn check_expectations(
    expect: &super::spec::Expect,
    label: &str,
    stats: &SimStats,
    violations: &mut Vec<String>,
) {
    if expect.delivered_all && stats.delivered != stats.injected {
        violations.push(format!(
            "{label}: expected delivered_all, got {} of {} delivered",
            stats.delivered, stats.injected
        ));
    }
    if let Some(min) = expect.min_delivery_ratio {
        let ratio = stats.delivery_ratio();
        if ratio < min {
            violations.push(format!(
                "{label}: delivery ratio {ratio:.4} below required {min:?}"
            ));
        }
    }
    if let Some(max) = expect.max_latency_p99 {
        if let Some(p99) = stats.latency_p99() {
            if p99 > max {
                violations.push(format!("{label}: latency p99 {p99} above allowed {max}"));
            }
        }
    }
    if expect.no_drops {
        let drops =
            stats.dropped_unroutable + stats.dropped_dst_faulty + stats.dropped_backpressure;
        if drops > 0 {
            violations.push(format!("{label}: expected no drops, got {drops}"));
        }
    }
    if let Some(max) = expect.max_in_flight_at_end {
        if stats.in_flight_at_end > max {
            violations.push(format!(
                "{label}: {} packets in flight at end, allowed {max}",
                stats.in_flight_at_end
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(extra: &str) -> Scenario {
        let src = format!(
            "name = \"t\"\nseed = 0x5EED\n[topology]\nkind = \"hhc\"\nm = 2\n\
             [sim]\ncycles = 40\ndrain_cycles = 2000\n{extra}"
        );
        Scenario::from_toml(&src).unwrap()
    }

    #[test]
    fn compile_expands_the_grid_in_driver_order() {
        let s = base(
            "[sweep]\nrates = [0.02, 0.05]\nstrategies = [\"single\", \"multipath\"]\n\
             [[sweep.cells]]\nm = 2\n[[sweep.cells]]\nm = 3\ncycles = 7\n",
        );
        let cells = compile(&s);
        assert_eq!(cells.len(), 8, "2 cells x 2 rates x 2 strategies");
        // Strategy varies fastest, then rate, then the explicit cell.
        assert_eq!(cells[0].strategy, Strategy::SinglePath);
        assert_eq!(cells[1].strategy, Strategy::MultipathRandom);
        assert_eq!(cells[0].cfg.inject_rate, 0.02);
        assert_eq!(cells[2].cfg.inject_rate, 0.05);
        assert_eq!(cells[0].topology, Topology::Hhc { m: 2 });
        assert_eq!(cells[4].topology, Topology::Hhc { m: 3 });
        assert_eq!(cells[4].cfg.cycles, 7, "per-cell cycles override");
        assert_eq!(cells[0].cfg.cycles, 40, "base cycles everywhere else");
        assert_eq!(cells[0].cfg.seed, 0x5EED, "seed flows into every cell");
    }

    #[test]
    fn sweepless_scenario_compiles_to_one_base_cell() {
        let s = base("[traffic]\nrate = 0.03\nstrategy = \"multipath\"\n");
        let cells = compile(&s);
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].cfg.inject_rate, 0.03);
        assert_eq!(cells[0].strategy, Strategy::MultipathRandom);
        assert_eq!(cells[0].label, "hhc(2) rate=0.03 strategy=multipath");
    }

    #[test]
    fn execute_matches_a_hand_rolled_simulator_run() {
        let s = base("[traffic]\nrate = 0.03\n");
        let report = execute(&s);
        assert_eq!(report.cells.len(), 1);
        let h = Hhc::new(2).unwrap();
        let direct = Simulator::new(&h, Pattern::UniformRandom, Strategy::SinglePath).run_many(
            SimConfig {
                cycles: 40,
                drain_cycles: 2000,
                inject_rate: 0.03,
                seed: 0x5EED,
                ..SimConfig::default()
            },
            1,
        );
        assert_eq!(report.cells[0].stats, direct);
        assert!(report.passes());
    }

    #[test]
    fn expectations_catch_violations() {
        // The deadlock scenario: queue capacity 1 + bit-complement at
        // high load wedges the network, so delivered < injected.
        let s = Scenario::from_toml(
            "name = \"wedge\"\nseed = 1212\n[topology]\nkind = \"hhc\"\nm = 2\n\
             [traffic]\npattern = \"bit-complement\"\nrate = 0.4\n\
             [sim]\ncycles = 300\ndrain_cycles = 4000\nqueue_capacity = 1\n\
             [expect]\ndelivered_all = true\n",
        )
        .unwrap();
        let report = execute(&s);
        assert!(
            !report.passes(),
            "the wedged run must violate delivered_all"
        );
        assert_eq!(report.violations.len(), 1);
    }

    #[test]
    fn analysis_scenario_executes_rows() {
        let s = Scenario::from_toml(
            "name = \"a\"\nkind = \"fault-analysis\"\nseed = 7\n\
             [topology]\nkind = \"hhc\"\nm = 2\n\
             [analysis]\ntrials = 25\nplacement = \"random\"\nfault_counts = [0, 2]\n",
        )
        .unwrap();
        let report = execute(&s);
        assert_eq!(report.rows.len(), 2);
        assert!(report.cells.is_empty());
        assert_eq!(report.rows[0].constructive, 25, "f=0 always delivers");
        assert!(report.passes());
    }
}
