//! Declarative scenarios: spec → validate → compile → run →
//! record/replay/shrink.
//!
//! A *scenario* is a TOML file describing one complete, reproducible
//! experiment: topology, traffic, strategy, fault schedule (build-time
//! faults and timed runtime events), engine variant, sweep axes,
//! replication count, seed, and the expectations the run must satisfy.
//! The pipeline:
//!
//! 1. **[`spec`]** — parse + validate into the typed [`Scenario`]
//!    (typed [`ScenarioError`]s, strict unknown-key rejection) and
//!    serialise back to a canonical normal form.
//! 2. **[`run`]** — [`compile`] the sweep into [`CompiledCell`]s and
//!    [`execute`] them on [`crate::sim::Simulator`] (or, for
//!    `kind = "fault-analysis"`, run the [`analysis`] sweep), yielding
//!    a [`ScenarioReport`] with per-cell stats and expectation
//!    violations.
//! 3. **[`trace`]** — [`render`] the report into a
//!    golden trace; *replay* re-executes and byte-compares against the
//!    committed file.
//! 4. **[`shrink()`]** — delta-debug a failing scenario to a 1-minimal
//!    reproducer preserving the failure predicate.
//!
//! The determinism contract making 3 and 4 sound — same spec, same
//! bytes, on any machine and worker count — is documented in
//! `SCENARIOS.md` and `DESIGN.md` §13.
//!
//! ```
//! use netsim::scenario::{execute, Scenario};
//!
//! let s = Scenario::from_toml(r#"
//!     name = "smoke"
//!     [topology]
//!     kind = "hhc"
//!     m = 2
//!     [traffic]
//!     rate = 0.03
//!     [sim]
//!     cycles = 40
//!     drain_cycles = 2000
//!     [expect]
//!     delivered_all = true
//! "#).unwrap();
//! let report = execute(&s);
//! assert!(report.passes());
//! ```

pub mod analysis;
pub mod run;
pub mod shrink;
pub mod spec;
pub mod trace;

pub use analysis::{constructive_sweep, AnalysisRow};
pub use run::{compile, execute, run_cell, CellResult, CompiledCell, ScenarioReport};
pub use shrink::shrink;
pub use spec::{
    Analysis, CellOverride, Expect, Faults, Kind, Placement, Scenario, ScenarioError, Sweep,
    Topology, Traffic,
};
pub use trace::{diff_lines, fnv64, render};
