//! Golden traces: recording a scenario's results and replaying against
//! the recorded file byte for byte.
//!
//! A trace is a small, line-oriented text file (committed under
//! `results/scenarios/` by convention). It pins:
//!
//! * the **spec hash** — FNV-1a 64 over the scenario's canonical TOML
//!   ([`super::spec::Scenario::to_toml`]), so a trace detects when the
//!   scenario it was recorded for has changed (while surviving pure
//!   reformatting of the file);
//! * per cell, the raw conservation counters **and** a hash of the
//!   full JSON stats (histogram and samples included), so any drift in
//!   any statistic shows up;
//! * for `fault-analysis` scenarios, every row's exact tallies.
//!
//! [`render`] is pure — file IO stays in the CLI and tests — and
//! replay is simply `render(now) == committed bytes`; [`diff_lines`]
//! turns a mismatch into a readable first-divergence report.

use super::run::ScenarioReport;
use super::spec::Scenario;
use std::fmt::Write as _;

/// FNV-1a 64 over a byte string — the same pinning hash the
/// `flat_equivalence` golden tests use.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Renders the trace for one executed scenario. Pure and total: the
/// same `(scenario, report)` always renders the same bytes, and replay
/// compares this string against the committed file.
pub fn render(s: &Scenario, report: &ScenarioReport) -> String {
    let mut out = String::new();
    let mut line = |text: String| {
        out.push_str(&text);
        out.push('\n');
    };
    line("scenario-trace v1".into());
    line(format!("name {}", s.name));
    line(format!("spec_fnv {:#018x}", fnv64(s.to_toml().as_bytes())));
    line(format!("cells {}", report.cells.len()));
    for cell in &report.cells {
        let st = &cell.stats;
        line(format!("cell {}", cell.label));
        line(format!(
            "  counters {} {} {} {} {} {} {}",
            st.injected,
            st.delivered,
            st.dropped_dst_faulty,
            st.dropped_unroutable,
            st.dropped_backpressure,
            st.self_addressed,
            st.in_flight_at_end
        ));
        line(format!(
            "  flow {} {} {} {} {} {}",
            st.latency_sum,
            st.latency_max,
            st.hops_sum,
            st.link_transmissions,
            st.max_queue_len,
            st.backpressure_stalls
        ));
        line(format!(
            "  stats_fnv {:#018x}",
            fnv64(st.to_json(0).as_bytes())
        ));
    }
    line(format!("rows {}", report.rows.len()));
    for row in &report.rows {
        line(format!(
            "row f={} trials={} filtered={} constructive={} rerouted={} \
             paths_sum={} max_len={}",
            row.fault_count,
            row.trials,
            row.filtered,
            row.constructive,
            row.rerouted,
            row.paths_sum,
            row.max_len
        ));
    }
    line(format!("violations {}", report.violations.len()));
    for v in &report.violations {
        line(format!("  violated {v}"));
    }
    out
}

/// Reports the first divergence between a freshly rendered trace and
/// the recorded golden, or `None` when they are byte-identical.
pub fn diff_lines(current: &str, recorded: &str) -> Option<String> {
    if current == recorded {
        return None;
    }
    let mut cur = current.lines();
    let mut rec = recorded.lines();
    let mut lineno = 1usize;
    loop {
        match (cur.next(), rec.next()) {
            (Some(c), Some(r)) if c == r => lineno += 1,
            (Some(c), Some(r)) => {
                let mut msg = String::new();
                let _ = write!(
                    msg,
                    "trace diverges at line {lineno}:\n  recorded: {r}\n  current:  {c}"
                );
                return Some(msg);
            }
            (Some(c), None) => {
                return Some(format!(
                    "trace diverges at line {lineno}: recorded file ends, current has: {c}"
                ))
            }
            (None, Some(r)) => {
                return Some(format!(
                    "trace diverges at line {lineno}: current ends, recorded has: {r}"
                ))
            }
            // Same lines but different bytes (trailing newline drift).
            (None, None) => return Some("traces differ only in trailing whitespace".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::run::execute;
    use super::*;

    fn tiny() -> Scenario {
        Scenario::from_toml(
            "name = \"tiny\"\nseed = 0x5EED\n[topology]\nkind = \"hhc\"\nm = 2\n\
             [traffic]\nrate = 0.03\n[sim]\ncycles = 40\ndrain_cycles = 2000\n",
        )
        .unwrap()
    }

    #[test]
    fn fnv64_matches_the_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn replay_is_byte_identical_and_detects_drift() {
        let s = tiny();
        let recorded = render(&s, &execute(&s));
        let replayed = render(&s, &execute(&s));
        assert_eq!(recorded, replayed, "same scenario, same bytes");
        assert!(diff_lines(&replayed, &recorded).is_none());

        // A different seed must diverge, and the diff names the line.
        let mut other = s.clone();
        other.seed = 1;
        other.sim.seed = 1;
        let drifted = render(&other, &execute(&other));
        let diff = diff_lines(&drifted, &recorded).expect("seeds differ, trace must differ");
        assert!(diff.contains("diverges at line"), "{diff}");
    }

    #[test]
    fn spec_hash_survives_reformatting_but_not_meaning_changes() {
        let s = tiny();
        // Same scenario written with extra whitespace and comments.
        let reformatted = Scenario::from_toml(
            "# a comment\nname = \"tiny\"\nseed = 0x5EED\n\n[topology]\n\
             kind = \"hhc\"\nm   = 2\n[traffic]\nrate = 0.03\n\
             [sim]\ncycles = 40\ndrain_cycles = 2000\n",
        )
        .unwrap();
        assert_eq!(s, reformatted);
        assert_eq!(
            fnv64(s.to_toml().as_bytes()),
            fnv64(reformatted.to_toml().as_bytes())
        );
        let mut changed = s.clone();
        changed.traffic.rate = 0.04;
        assert_ne!(
            fnv64(s.to_toml().as_bytes()),
            fnv64(changed.to_toml().as_bytes())
        );
    }
}
