//! The typed scenario spec: parse, validate, and re-serialise.
//!
//! A scenario file is TOML (the subset implemented by the
//! `scenario-spec` crate); [`Scenario::from_toml`] parses and validates
//! it into the typed [`Scenario`], rejecting unknown keys, wrong types
//! and out-of-range values with a [`ScenarioError`] that names the
//! offending field. [`Scenario::to_toml`] emits the *canonical normal
//! form* — every applicable field spelled out in a fixed order — which
//! round-trips exactly (`parse(to_toml(s)) == s`) and is what the spec
//! hash in a recorded trace covers. The full field reference lives in
//! `SCENARIOS.md` at the repository root.

use crate::faults::{FaultAction, FaultEvent};
use crate::flat::{EngineConfig, Fidelity, LinkStoreMode};
use crate::sim::{SimConfig, Switching};
use crate::strategy::Strategy;
use hhc_core::NodeId;
use scenario_spec::{LookupError, Table, Value};
use std::fmt;
use workloads::Pattern;

/// What a scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// A packet-level DES run (possibly a sweep of cells).
    Sim,
    /// A static fault-tolerance analysis sweep (the F3c engine): no
    /// queues, just route survival and fault-aware reconstruction over
    /// sampled (pair, fault set) trials.
    FaultAnalysis,
}

/// The simulated topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// The hierarchical hypercube `HHC(m)` — `2^(2^m + m)` nodes.
    Hhc {
        /// The HHC parameter (1 ≤ m ≤ 4 for the DES).
        m: u32,
    },
    /// The plain hypercube `Q_n`.
    Cube {
        /// The dimension (1 ≤ n ≤ 20 for the DES).
        n: u32,
    },
}

impl Topology {
    /// Address bits of the topology.
    pub fn address_bits(&self) -> u32 {
        match self {
            Topology::Hhc { m } => (1 << m) + m,
            Topology::Cube { n } => *n,
        }
    }

    /// Display label, e.g. `hhc(2)` or `q(6)`.
    pub fn label(&self) -> String {
        match self {
            Topology::Hhc { m } => format!("hhc({m})"),
            Topology::Cube { n } => format!("q({n})"),
        }
    }
}

/// Traffic: pattern, offered load and routing strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Traffic {
    /// Destination-selection pattern.
    pub pattern: Pattern,
    /// Injection probability per node per cycle, in `[0, 1]`.
    pub rate: f64,
    /// Route-selection strategy.
    pub strategy: Strategy,
}

/// The fault schedule: build-time faults plus timed runtime events.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Faults {
    /// Nodes faulty from cycle 0 (raw addresses, sorted, deduplicated).
    pub initial: Vec<u64>,
    /// Timed fail/recover events, in file order (the engine sorts by
    /// cycle, same-cycle events applying in this order).
    pub events: Vec<FaultEvent>,
}

/// One explicit sweep cell: overrides applied on top of the base
/// scenario before the grid axes multiply in.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CellOverride {
    /// Topology size override (`m` for HHC scenarios, `n` for cube).
    pub size: Option<u32>,
    /// Injection-rate override.
    pub rate: Option<f64>,
    /// Cycle-count override.
    pub cycles: Option<u64>,
    /// Strategy override.
    pub strategy: Option<Strategy>,
}

/// A sweep: the scenario expands into the cross product
/// `cells × rates × strategies` (each axis defaulting to the base
/// value when absent).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Sweep {
    /// Injection-rate axis (empty = base rate only).
    pub rates: Vec<f64>,
    /// Strategy axis (empty = base strategy only).
    pub strategies: Vec<Strategy>,
    /// Explicit cell overrides (empty = one implicit base cell).
    pub cells: Vec<CellOverride>,
}

impl Sweep {
    /// Whether the sweep adds nothing over the base scenario.
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty() && self.strategies.is_empty() && self.cells.is_empty()
    }
}

/// The failure predicate: expectations every cell's merged statistics
/// must satisfy. A scenario *fails* when any cell violates any
/// expectation — that is what the shrinker preserves.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Expect {
    /// Every injected packet must be delivered.
    pub delivered_all: bool,
    /// Lower bound on `delivered / injected`.
    pub min_delivery_ratio: Option<f64>,
    /// Upper bound on the p99 delivered latency.
    pub max_latency_p99: Option<u64>,
    /// No packet may be dropped (unroutable, faulty destination, or
    /// backpressure).
    pub no_drops: bool,
    /// Upper bound on packets still in flight after the drain phase.
    pub max_in_flight_at_end: Option<u64>,
}

impl Expect {
    /// Whether any expectation is configured.
    pub fn is_empty(&self) -> bool {
        *self == Expect::default()
    }
}

/// Fault-placement mode for `kind = "fault-analysis"`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Faults drawn uniformly at random, endpoints excluded.
    Random,
    /// Faults placed on the pair's fault-blind disjoint family (one
    /// interior node per path, round-robin) — the placement that
    /// defeats selection-time filtering by design.
    Adversarial,
}

/// Parameters of a `fault-analysis` scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Analysis {
    /// Sampled (pair, fault set) trials per fault count.
    pub trials: u32,
    /// How fault sets are placed.
    pub placement: Placement,
    /// The fault counts to sweep.
    pub fault_counts: Vec<usize>,
}

/// A validated scenario: the typed form of a scenario file.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (also the default trace filename stem).
    pub name: String,
    /// Sim or fault-analysis.
    pub kind: Kind,
    /// Base RNG seed (every cell runs with this seed; replications use
    /// consecutive seeds, analysis rows use `seed + row_index`).
    pub seed: u64,
    /// Replications per cell, merged via `SimStats::merge`.
    pub replications: u32,
    /// The simulated topology.
    pub topology: Topology,
    /// Traffic configuration (sim kind).
    pub traffic: Traffic,
    /// Base simulation parameters (sim kind; `seed` mirrors the
    /// top-level seed).
    pub sim: SimConfig,
    /// Engine variant (sim kind).
    pub engine: EngineConfig,
    /// Fault schedule (sim kind).
    pub faults: Faults,
    /// Optional sweep expansion (sim kind).
    pub sweep: Sweep,
    /// Failure predicate (sim kind).
    pub expect: Expect,
    /// Analysis parameters (`fault-analysis` kind only).
    pub analysis: Option<Analysis>,
}

/// A parse or validation failure, naming the offending field.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The TOML subset did not parse.
    Parse(scenario_spec::ParseError),
    /// A required key is missing or has the wrong type.
    Schema {
        /// Section the lookup happened in (empty = top level).
        section: String,
        /// The underlying lookup failure.
        error: LookupError,
    },
    /// A key no section defines (typo protection).
    UnknownKey {
        /// Section holding the stray key (empty = top level).
        section: String,
        /// The stray key.
        key: String,
    },
    /// A value outside its legal range or an illegal combination.
    Invalid {
        /// Dotted field path.
        field: String,
        /// What is wrong with it.
        reason: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Parse(e) => write!(f, "scenario parse error: {e}"),
            ScenarioError::Schema { section, error } => {
                if section.is_empty() {
                    write!(f, "scenario schema error: {error}")
                } else {
                    write!(f, "scenario schema error in [{section}]: {error}")
                }
            }
            ScenarioError::UnknownKey { section, key } => {
                if section.is_empty() {
                    write!(f, "unknown scenario key `{key}`")
                } else {
                    write!(f, "unknown scenario key `{key}` in [{section}]")
                }
            }
            ScenarioError::Invalid { field, reason } => {
                write!(f, "invalid scenario field `{field}`: {reason}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<scenario_spec::ParseError> for ScenarioError {
    fn from(e: scenario_spec::ParseError) -> Self {
        ScenarioError::Parse(e)
    }
}

fn schema(section: &str) -> impl Fn(LookupError) -> ScenarioError + '_ {
    move |error| ScenarioError::Schema {
        section: section.to_string(),
        error,
    }
}

fn invalid(field: &str, reason: impl Into<String>) -> ScenarioError {
    ScenarioError::Invalid {
        field: field.to_string(),
        reason: reason.into(),
    }
}

fn check_keys(t: &Table, section: &str, allowed: &[&str]) -> Result<(), ScenarioError> {
    for key in t.keys() {
        if !allowed.contains(&key) {
            return Err(ScenarioError::UnknownKey {
                section: section.to_string(),
                key: key.to_string(),
            });
        }
    }
    Ok(())
}

/// Optional typed lookups: absent keys yield the default.
fn opt_int(t: &Table, section: &str, key: &str) -> Result<Option<i64>, ScenarioError> {
    match t.get_int(key) {
        Ok(v) => Ok(Some(v)),
        Err(LookupError::Missing(_)) => Ok(None),
        Err(e) => Err(schema(section)(e)),
    }
}

fn opt_float(t: &Table, section: &str, key: &str) -> Result<Option<f64>, ScenarioError> {
    match t.get_float(key) {
        Ok(v) => Ok(Some(v)),
        Err(LookupError::Missing(_)) => Ok(None),
        Err(e) => Err(schema(section)(e)),
    }
}

fn opt_str<'a>(t: &'a Table, section: &str, key: &str) -> Result<Option<&'a str>, ScenarioError> {
    match t.get_str(key) {
        Ok(v) => Ok(Some(v)),
        Err(LookupError::Missing(_)) => Ok(None),
        Err(e) => Err(schema(section)(e)),
    }
}

fn opt_bool(t: &Table, section: &str, key: &str) -> Result<Option<bool>, ScenarioError> {
    match t.get_bool(key) {
        Ok(v) => Ok(Some(v)),
        Err(LookupError::Missing(_)) => Ok(None),
        Err(e) => Err(schema(section)(e)),
    }
}

fn non_negative(v: i64, field: &str) -> Result<u64, ScenarioError> {
    u64::try_from(v).map_err(|_| invalid(field, "must be non-negative"))
}

fn parse_strategy(s: &str, field: &str) -> Result<Strategy, ScenarioError> {
    match s {
        "single" => Ok(Strategy::SinglePath),
        "multipath" => Ok(Strategy::MultipathRandom),
        "fault-adaptive" => Ok(Strategy::FaultAdaptive),
        "fault-free" => Ok(Strategy::FaultFree),
        "valiant" => Ok(Strategy::Valiant),
        other => Err(invalid(
            field,
            format!(
                "unknown strategy `{other}` (expected single, multipath, \
                 fault-adaptive, fault-free or valiant)"
            ),
        )),
    }
}

fn strategy_name(s: Strategy) -> &'static str {
    match s {
        Strategy::SinglePath => "single",
        Strategy::MultipathRandom => "multipath",
        Strategy::FaultAdaptive => "fault-adaptive",
        Strategy::FaultFree => "fault-free",
        Strategy::Valiant => "valiant",
    }
}

impl Scenario {
    /// Parses and validates a scenario from TOML-subset source.
    pub fn from_toml(src: &str) -> Result<Scenario, ScenarioError> {
        let doc = scenario_spec::parse(src)?;
        let root = &doc.root;
        check_keys(
            root,
            "",
            &[
                "name",
                "kind",
                "seed",
                "replications",
                "topology",
                "traffic",
                "sim",
                "engine",
                "faults",
                "sweep",
                "expect",
                "analysis",
            ],
        )?;

        let name = root.get_str("name").map_err(schema(""))?.to_string();
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(invalid(
                "name",
                "must be non-empty and contain only [A-Za-z0-9_-] \
                 (it names the trace file)",
            ));
        }
        let kind = match opt_str(root, "", "kind")?.unwrap_or("sim") {
            "sim" => Kind::Sim,
            "fault-analysis" => Kind::FaultAnalysis,
            other => {
                return Err(invalid(
                    "kind",
                    format!("unknown kind `{other}` (expected sim or fault-analysis)"),
                ))
            }
        };
        let seed = opt_int(root, "", "seed")?
            .map(|v| non_negative(v, "seed"))
            .transpose()?
            .unwrap_or(SimConfig::default().seed);
        let replications = match opt_int(root, "", "replications")? {
            None => 1u32,
            Some(v) if (1..=100_000).contains(&v) => v as u32,
            Some(_) => return Err(invalid("replications", "must be in 1..=100000")),
        };

        let topology = Self::parse_topology(root)?;
        let bits = topology.address_bits();

        if kind == Kind::FaultAnalysis {
            for forbidden in ["traffic", "sim", "engine", "faults", "sweep", "expect"] {
                if root.get(forbidden).is_some() {
                    return Err(invalid(
                        forbidden,
                        "only applies to kind = \"sim\" scenarios",
                    ));
                }
            }
            if root.get("replications").is_some() {
                return Err(invalid(
                    "replications",
                    "only applies to kind = \"sim\" scenarios \
                     (analysis rows use `trials`)",
                ));
            }
            if !matches!(topology, Topology::Hhc { .. }) {
                return Err(invalid(
                    "topology.kind",
                    "fault-analysis scenarios require the hhc topology \
                     (the avoiding constructor is HHC-specific)",
                ));
            }
            let analysis = Self::parse_analysis(root, topology)?;
            return Ok(Scenario {
                name,
                kind,
                seed,
                replications: 1,
                topology,
                traffic: Traffic {
                    pattern: Pattern::UniformRandom,
                    rate: 0.0,
                    strategy: Strategy::SinglePath,
                },
                sim: SimConfig {
                    seed,
                    ..SimConfig::default()
                },
                engine: EngineConfig::default(),
                faults: Faults::default(),
                sweep: Sweep::default(),
                expect: Expect::default(),
                analysis: Some(analysis),
            });
        }

        if root.get("analysis").is_some() {
            return Err(invalid(
                "analysis",
                "only applies to kind = \"fault-analysis\" scenarios",
            ));
        }

        let traffic = Self::parse_traffic(root)?;
        let sim = Self::parse_sim(root, seed)?;
        let engine = Self::parse_engine(root)?;
        let faults = Self::parse_faults(root, bits)?;
        let sweep = Self::parse_sweep(root, topology)?;
        let expect = Self::parse_expect(root)?;

        Ok(Scenario {
            name,
            kind,
            seed,
            replications,
            topology,
            traffic,
            sim,
            engine,
            faults,
            sweep,
            expect,
            analysis: None,
        })
    }

    fn parse_topology(root: &Table) -> Result<Topology, ScenarioError> {
        let t = root.get_table("topology").map_err(schema(""))?;
        check_keys(t, "topology", &["kind", "m", "n"])?;
        match t.get_str("kind").map_err(schema("topology"))? {
            "hhc" => {
                if t.get("n").is_some() {
                    return Err(invalid("topology.n", "hhc topologies are sized by `m`"));
                }
                let m = t.get_int("m").map_err(schema("topology"))?;
                if !(1..=4).contains(&m) {
                    return Err(invalid(
                        "topology.m",
                        "must be in 1..=4 (HHC(4) = 2^20 nodes is the DES limit)",
                    ));
                }
                Ok(Topology::Hhc { m: m as u32 })
            }
            "cube" => {
                if t.get("m").is_some() {
                    return Err(invalid("topology.m", "cube topologies are sized by `n`"));
                }
                let n = t.get_int("n").map_err(schema("topology"))?;
                if !(1..=20).contains(&n) {
                    return Err(invalid(
                        "topology.n",
                        "must be in 1..=20 (Q_20 = 2^20 nodes is the DES limit)",
                    ));
                }
                Ok(Topology::Cube { n: n as u32 })
            }
            other => Err(invalid(
                "topology.kind",
                format!("unknown topology `{other}` (expected hhc or cube)"),
            )),
        }
    }

    fn parse_traffic(root: &Table) -> Result<Traffic, ScenarioError> {
        let defaults = Traffic {
            pattern: Pattern::UniformRandom,
            rate: SimConfig::default().inject_rate,
            strategy: Strategy::SinglePath,
        };
        let t = match root.get_table("traffic") {
            Ok(t) => t,
            Err(LookupError::Missing(_)) => return Ok(defaults),
            Err(e) => return Err(schema("")(e)),
        };
        check_keys(
            t,
            "traffic",
            &["pattern", "rate", "strategy", "hot_fraction"],
        )?;
        let hot_fraction = opt_float(t, "traffic", "hot_fraction")?;
        let pattern = match opt_str(t, "traffic", "pattern")?.unwrap_or("uniform") {
            "uniform" => Pattern::UniformRandom,
            "bit-complement" => Pattern::BitComplement,
            "bit-reversal" => Pattern::BitReversal,
            "transpose" => Pattern::Transpose,
            "nearest-neighbor" => Pattern::NearestNeighbor,
            "hotspot" => {
                let hf = hot_fraction.ok_or_else(|| {
                    invalid("traffic.hot_fraction", "required for the hotspot pattern")
                })?;
                if !(0.0..=1.0).contains(&hf) {
                    return Err(invalid("traffic.hot_fraction", "must be in [0, 1]"));
                }
                Pattern::Hotspot { hot_fraction: hf }
            }
            other => {
                return Err(invalid(
                    "traffic.pattern",
                    format!(
                        "unknown pattern `{other}` (expected uniform, bit-complement, \
                         bit-reversal, transpose, hotspot or nearest-neighbor)"
                    ),
                ))
            }
        };
        if hot_fraction.is_some() && !matches!(pattern, Pattern::Hotspot { .. }) {
            return Err(invalid(
                "traffic.hot_fraction",
                "only applies to the hotspot pattern",
            ));
        }
        let rate = opt_float(t, "traffic", "rate")?.unwrap_or(defaults.rate);
        if !(0.0..=1.0).contains(&rate) {
            return Err(invalid("traffic.rate", "must be in [0, 1]"));
        }
        let strategy = match opt_str(t, "traffic", "strategy")? {
            Some(s) => parse_strategy(s, "traffic.strategy")?,
            None => defaults.strategy,
        };
        Ok(Traffic {
            pattern,
            rate,
            strategy,
        })
    }

    fn parse_sim(root: &Table, seed: u64) -> Result<SimConfig, ScenarioError> {
        let mut cfg = SimConfig {
            seed,
            ..SimConfig::default()
        };
        let t = match root.get_table("sim") {
            Ok(t) => t,
            Err(LookupError::Missing(_)) => return Ok(cfg),
            Err(e) => return Err(schema("")(e)),
        };
        check_keys(
            t,
            "sim",
            &[
                "cycles",
                "drain_cycles",
                "packet_len",
                "switching",
                "queue_capacity",
                "sample_every",
            ],
        )?;
        if let Some(v) = opt_int(t, "sim", "cycles")? {
            cfg.cycles = non_negative(v, "sim.cycles")?;
            if cfg.cycles == 0 {
                return Err(invalid("sim.cycles", "must be at least 1"));
            }
        }
        if let Some(v) = opt_int(t, "sim", "drain_cycles")? {
            cfg.drain_cycles = non_negative(v, "sim.drain_cycles")?;
        }
        if let Some(v) = opt_int(t, "sim", "packet_len")? {
            cfg.packet_len = non_negative(v, "sim.packet_len")?;
            if cfg.packet_len == 0 {
                return Err(invalid("sim.packet_len", "must be at least 1 flit-cycle"));
            }
        }
        if let Some(s) = opt_str(t, "sim", "switching")? {
            cfg.switching = match s {
                "store-and-forward" => Switching::StoreAndForward,
                "cut-through" => Switching::CutThrough,
                other => {
                    return Err(invalid(
                        "sim.switching",
                        format!(
                            "unknown discipline `{other}` (expected \
                             store-and-forward or cut-through)"
                        ),
                    ))
                }
            };
        }
        if let Some(v) = opt_int(t, "sim", "queue_capacity")? {
            let v = non_negative(v, "sim.queue_capacity")?;
            cfg.queue_capacity = (v > 0).then_some(v);
        }
        if let Some(v) = opt_int(t, "sim", "sample_every")? {
            cfg.sample_every = non_negative(v, "sim.sample_every")?;
        }
        Ok(cfg)
    }

    fn parse_engine(root: &Table) -> Result<EngineConfig, ScenarioError> {
        let mut engine = EngineConfig::default();
        let t = match root.get_table("engine") {
            Ok(t) => t,
            Err(LookupError::Missing(_)) => return Ok(engine),
            Err(e) => return Err(schema("")(e)),
        };
        check_keys(t, "engine", &["store", "fidelity"])?;
        if let Some(s) = opt_str(t, "engine", "store")? {
            engine.store = match s {
                "lazy" => LinkStoreMode::Lazy,
                "eager" => LinkStoreMode::Eager,
                other => {
                    return Err(invalid(
                        "engine.store",
                        format!("unknown store `{other}` (expected lazy or eager)"),
                    ))
                }
            };
        }
        if let Some(s) = opt_str(t, "engine", "fidelity")? {
            engine.fidelity = match s {
                "hybrid" => Fidelity::Hybrid,
                "full" => Fidelity::Full,
                other => {
                    return Err(invalid(
                        "engine.fidelity",
                        format!("unknown fidelity `{other}` (expected hybrid or full)"),
                    ))
                }
            };
        }
        Ok(engine)
    }

    fn parse_faults(root: &Table, bits: u32) -> Result<Faults, ScenarioError> {
        let mut faults = Faults::default();
        let t = match root.get_table("faults") {
            Ok(t) => t,
            Err(LookupError::Missing(_)) => return Ok(faults),
            Err(e) => return Err(schema("")(e)),
        };
        check_keys(t, "faults", &["initial", "events"])?;
        let max = 1u64 << bits;
        if let Some(Value::Array(_)) = t.get_value("initial") {
            let arr = t.get_array("initial").map_err(schema("faults"))?;
            for v in arr {
                let raw = v
                    .as_i64()
                    .ok_or_else(|| invalid("faults.initial", "entries must be integers"))?;
                let raw = non_negative(raw, "faults.initial")?;
                if raw >= max {
                    return Err(invalid(
                        "faults.initial",
                        format!("node {raw} is outside the {bits}-bit address space"),
                    ));
                }
                faults.initial.push(raw);
            }
            faults.initial.sort_unstable();
            faults.initial.dedup();
        } else if t.get("initial").is_some() {
            return Err(invalid("faults.initial", "must be an array of node ids"));
        }
        if let Ok(events) = t.get_tables("events") {
            for (i, ev) in events.iter().enumerate() {
                let section = format!("faults.events[{i}]");
                check_keys(ev, &section, &["cycle", "node", "action"])?;
                let cycle = non_negative(
                    ev.get_int("cycle").map_err(schema(&section))?,
                    "faults.events.cycle",
                )?;
                let node = non_negative(
                    ev.get_int("node").map_err(schema(&section))?,
                    "faults.events.node",
                )?;
                if node >= max {
                    return Err(invalid(
                        "faults.events.node",
                        format!("node {node} is outside the {bits}-bit address space"),
                    ));
                }
                let action = match ev.get_str("action").map_err(schema(&section))? {
                    "fail" => FaultAction::Fail,
                    "recover" => FaultAction::Recover,
                    other => {
                        return Err(invalid(
                            "faults.events.action",
                            format!("unknown action `{other}` (expected fail or recover)"),
                        ))
                    }
                };
                faults.events.push(FaultEvent {
                    cycle,
                    node: NodeId::from_raw(node as u128),
                    action,
                });
            }
        } else if t.get("events").is_some() {
            return Err(invalid(
                "faults.events",
                "must be an array of tables ([[faults.events]])",
            ));
        }
        Ok(faults)
    }

    fn parse_sweep(root: &Table, topology: Topology) -> Result<Sweep, ScenarioError> {
        let mut sweep = Sweep::default();
        let t = match root.get_table("sweep") {
            Ok(t) => t,
            Err(LookupError::Missing(_)) => return Ok(sweep),
            Err(e) => return Err(schema("")(e)),
        };
        check_keys(t, "sweep", &["rates", "strategies", "cells"])?;
        if t.get("rates").is_some() {
            for v in t.get_array("rates").map_err(schema("sweep"))? {
                let rate = v
                    .as_f64()
                    .ok_or_else(|| invalid("sweep.rates", "entries must be numbers"))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(invalid("sweep.rates", "rates must be in [0, 1]"));
                }
                sweep.rates.push(rate);
            }
            if sweep.rates.is_empty() {
                return Err(invalid("sweep.rates", "must not be an empty array"));
            }
        }
        if t.get("strategies").is_some() {
            for v in t.get_array("strategies").map_err(schema("sweep"))? {
                let s = v
                    .as_str()
                    .ok_or_else(|| invalid("sweep.strategies", "entries must be strings"))?;
                sweep
                    .strategies
                    .push(parse_strategy(s, "sweep.strategies")?);
            }
            if sweep.strategies.is_empty() {
                return Err(invalid("sweep.strategies", "must not be an empty array"));
            }
        }
        if let Ok(cells) = t.get_tables("cells") {
            for (i, cell) in cells.iter().enumerate() {
                let section = format!("sweep.cells[{i}]");
                check_keys(cell, &section, &["m", "n", "rate", "cycles", "strategy"])?;
                let size = match topology {
                    Topology::Hhc { .. } => {
                        if cell.get("n").is_some() {
                            return Err(invalid(
                                "sweep.cells.n",
                                "hhc scenarios size cells by `m`",
                            ));
                        }
                        match opt_int(cell, &section, "m")? {
                            Some(m) if (1..=4).contains(&m) => Some(m as u32),
                            Some(_) => return Err(invalid("sweep.cells.m", "must be in 1..=4")),
                            None => None,
                        }
                    }
                    Topology::Cube { .. } => {
                        if cell.get("m").is_some() {
                            return Err(invalid(
                                "sweep.cells.m",
                                "cube scenarios size cells by `n`",
                            ));
                        }
                        match opt_int(cell, &section, "n")? {
                            Some(n) if (1..=20).contains(&n) => Some(n as u32),
                            Some(_) => return Err(invalid("sweep.cells.n", "must be in 1..=20")),
                            None => None,
                        }
                    }
                };
                let rate = match opt_float(cell, &section, "rate")? {
                    Some(r) if (0.0..=1.0).contains(&r) => Some(r),
                    Some(_) => return Err(invalid("sweep.cells.rate", "must be in [0, 1]")),
                    None => None,
                };
                let cycles = match opt_int(cell, &section, "cycles")? {
                    Some(c) if c >= 1 => Some(c as u64),
                    Some(_) => return Err(invalid("sweep.cells.cycles", "must be at least 1")),
                    None => None,
                };
                let strategy = match opt_str(cell, &section, "strategy")? {
                    Some(s) => Some(parse_strategy(s, "sweep.cells.strategy")?),
                    None => None,
                };
                sweep.cells.push(CellOverride {
                    size,
                    rate,
                    cycles,
                    strategy,
                });
            }
        } else if t.get("cells").is_some() {
            return Err(invalid(
                "sweep.cells",
                "must be an array of tables ([[sweep.cells]])",
            ));
        }
        Ok(sweep)
    }

    fn parse_expect(root: &Table) -> Result<Expect, ScenarioError> {
        let mut expect = Expect::default();
        let t = match root.get_table("expect") {
            Ok(t) => t,
            Err(LookupError::Missing(_)) => return Ok(expect),
            Err(e) => return Err(schema("")(e)),
        };
        check_keys(
            t,
            "expect",
            &[
                "delivered_all",
                "min_delivery_ratio",
                "max_latency_p99",
                "no_drops",
                "max_in_flight_at_end",
            ],
        )?;
        expect.delivered_all = opt_bool(t, "expect", "delivered_all")?.unwrap_or(false);
        expect.no_drops = opt_bool(t, "expect", "no_drops")?.unwrap_or(false);
        if let Some(r) = opt_float(t, "expect", "min_delivery_ratio")? {
            if !(0.0..=1.0).contains(&r) {
                return Err(invalid("expect.min_delivery_ratio", "must be in [0, 1]"));
            }
            expect.min_delivery_ratio = Some(r);
        }
        expect.max_latency_p99 = opt_int(t, "expect", "max_latency_p99")?
            .map(|v| non_negative(v, "expect.max_latency_p99"))
            .transpose()?;
        expect.max_in_flight_at_end = opt_int(t, "expect", "max_in_flight_at_end")?
            .map(|v| non_negative(v, "expect.max_in_flight_at_end"))
            .transpose()?;
        Ok(expect)
    }

    fn parse_analysis(root: &Table, topology: Topology) -> Result<Analysis, ScenarioError> {
        let t = root.get_table("analysis").map_err(schema(""))?;
        check_keys(t, "analysis", &["trials", "placement", "fault_counts"])?;
        let trials = match t.get_int("trials").map_err(schema("analysis"))? {
            v if (1..=1_000_000).contains(&v) => v as u32,
            _ => return Err(invalid("analysis.trials", "must be in 1..=1000000")),
        };
        let placement = match t.get_str("placement").map_err(schema("analysis"))? {
            "random" => Placement::Random,
            "adversarial" => Placement::Adversarial,
            other => {
                return Err(invalid(
                    "analysis.placement",
                    format!("unknown placement `{other}` (expected random or adversarial)"),
                ))
            }
        };
        let max_faults = (1u64 << topology.address_bits()).saturating_sub(2);
        let mut fault_counts = Vec::new();
        for v in t.get_array("fault_counts").map_err(schema("analysis"))? {
            let f = v
                .as_i64()
                .ok_or_else(|| invalid("analysis.fault_counts", "entries must be integers"))?;
            let f = non_negative(f, "analysis.fault_counts")?;
            if f > max_faults {
                return Err(invalid(
                    "analysis.fault_counts",
                    format!("{f} faults leave no healthy pair in this topology"),
                ));
            }
            fault_counts.push(f as usize);
        }
        if fault_counts.is_empty() {
            return Err(invalid("analysis.fault_counts", "must not be empty"));
        }
        Ok(Analysis {
            trials,
            placement,
            fault_counts,
        })
    }

    /// Serialises the scenario to its canonical TOML normal form: every
    /// applicable field spelled out, sections and keys in fixed order.
    /// Round-trips exactly: `Scenario::from_toml(&s.to_toml())` equals
    /// `s`. The recorded-trace spec hash covers this string, so
    /// reformatting a scenario file does not invalidate its trace.
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        let push = |out: &mut String, s: &str| {
            out.push_str(s);
            out.push('\n');
        };
        push(&mut out, &format!("name = \"{}\"", self.name));
        let kind = match self.kind {
            Kind::Sim => "sim",
            Kind::FaultAnalysis => "fault-analysis",
        };
        push(&mut out, &format!("kind = \"{kind}\""));
        push(&mut out, &format!("seed = {:#x}", self.seed));
        if self.kind == Kind::Sim {
            push(&mut out, &format!("replications = {}", self.replications));
        }
        push(&mut out, "");
        push(&mut out, "[topology]");
        match self.topology {
            Topology::Hhc { m } => {
                push(&mut out, "kind = \"hhc\"");
                push(&mut out, &format!("m = {m}"));
            }
            Topology::Cube { n } => {
                push(&mut out, "kind = \"cube\"");
                push(&mut out, &format!("n = {n}"));
            }
        }
        if let Some(a) = &self.analysis {
            push(&mut out, "");
            push(&mut out, "[analysis]");
            push(&mut out, &format!("trials = {}", a.trials));
            let placement = match a.placement {
                Placement::Random => "random",
                Placement::Adversarial => "adversarial",
            };
            push(&mut out, &format!("placement = \"{placement}\""));
            let counts: Vec<String> = a.fault_counts.iter().map(|f| f.to_string()).collect();
            push(&mut out, &format!("fault_counts = [{}]", counts.join(", ")));
            return out;
        }
        push(&mut out, "");
        push(&mut out, "[traffic]");
        let (pattern, hot) = match self.traffic.pattern {
            Pattern::UniformRandom => ("uniform", None),
            Pattern::BitComplement => ("bit-complement", None),
            Pattern::BitReversal => ("bit-reversal", None),
            Pattern::Transpose => ("transpose", None),
            Pattern::Hotspot { hot_fraction } => ("hotspot", Some(hot_fraction)),
            Pattern::NearestNeighbor => ("nearest-neighbor", None),
        };
        push(&mut out, &format!("pattern = \"{pattern}\""));
        if let Some(hf) = hot {
            push(&mut out, &format!("hot_fraction = {hf:?}"));
        }
        push(&mut out, &format!("rate = {:?}", self.traffic.rate));
        push(
            &mut out,
            &format!("strategy = \"{}\"", strategy_name(self.traffic.strategy)),
        );
        push(&mut out, "");
        push(&mut out, "[sim]");
        push(&mut out, &format!("cycles = {}", self.sim.cycles));
        push(
            &mut out,
            &format!("drain_cycles = {}", self.sim.drain_cycles),
        );
        push(&mut out, &format!("packet_len = {}", self.sim.packet_len));
        let switching = match self.sim.switching {
            Switching::StoreAndForward => "store-and-forward",
            Switching::CutThrough => "cut-through",
        };
        push(&mut out, &format!("switching = \"{switching}\""));
        push(
            &mut out,
            &format!("queue_capacity = {}", self.sim.queue_capacity.unwrap_or(0)),
        );
        push(
            &mut out,
            &format!("sample_every = {}", self.sim.sample_every),
        );
        push(&mut out, "");
        push(&mut out, "[engine]");
        let store = match self.engine.store {
            LinkStoreMode::Lazy => "lazy",
            LinkStoreMode::Eager => "eager",
        };
        push(&mut out, &format!("store = \"{store}\""));
        let fidelity = match self.engine.fidelity {
            Fidelity::Hybrid => "hybrid",
            Fidelity::Full => "full",
        };
        push(&mut out, &format!("fidelity = \"{fidelity}\""));
        if !self.faults.initial.is_empty() || !self.faults.events.is_empty() {
            push(&mut out, "");
            push(&mut out, "[faults]");
            if !self.faults.initial.is_empty() {
                let nodes: Vec<String> =
                    self.faults.initial.iter().map(|n| n.to_string()).collect();
                push(&mut out, &format!("initial = [{}]", nodes.join(", ")));
            }
            for ev in &self.faults.events {
                push(&mut out, "");
                push(&mut out, "[[faults.events]]");
                push(&mut out, &format!("cycle = {}", ev.cycle));
                push(&mut out, &format!("node = {}", ev.node.raw()));
                let action = match ev.action {
                    FaultAction::Fail => "fail",
                    FaultAction::Recover => "recover",
                };
                push(&mut out, &format!("action = \"{action}\""));
            }
        }
        if !self.sweep.is_empty() {
            push(&mut out, "");
            push(&mut out, "[sweep]");
            if !self.sweep.rates.is_empty() {
                let rates: Vec<String> =
                    self.sweep.rates.iter().map(|r| format!("{r:?}")).collect();
                push(&mut out, &format!("rates = [{}]", rates.join(", ")));
            }
            if !self.sweep.strategies.is_empty() {
                let names: Vec<String> = self
                    .sweep
                    .strategies
                    .iter()
                    .map(|&s| format!("\"{}\"", strategy_name(s)))
                    .collect();
                push(&mut out, &format!("strategies = [{}]", names.join(", ")));
            }
            let size_key = match self.topology {
                Topology::Hhc { .. } => "m",
                Topology::Cube { .. } => "n",
            };
            for cell in &self.sweep.cells {
                push(&mut out, "");
                push(&mut out, "[[sweep.cells]]");
                if let Some(size) = cell.size {
                    push(&mut out, &format!("{size_key} = {size}"));
                }
                if let Some(rate) = cell.rate {
                    push(&mut out, &format!("rate = {rate:?}"));
                }
                if let Some(cycles) = cell.cycles {
                    push(&mut out, &format!("cycles = {cycles}"));
                }
                if let Some(strategy) = cell.strategy {
                    push(
                        &mut out,
                        &format!("strategy = \"{}\"", strategy_name(strategy)),
                    );
                }
            }
        }
        if !self.expect.is_empty() {
            push(&mut out, "");
            push(&mut out, "[expect]");
            if self.expect.delivered_all {
                push(&mut out, "delivered_all = true");
            }
            if let Some(r) = self.expect.min_delivery_ratio {
                push(&mut out, &format!("min_delivery_ratio = {r:?}"));
            }
            if let Some(v) = self.expect.max_latency_p99 {
                push(&mut out, &format!("max_latency_p99 = {v}"));
            }
            if self.expect.no_drops {
                push(&mut out, "no_drops = true");
            }
            if let Some(v) = self.expect.max_in_flight_at_end {
                push(&mut out, &format!("max_in_flight_at_end = {v}"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: &str = r#"
name = "full-demo"
kind = "sim"
seed = 0xF4F4
replications = 3

[topology]
kind = "hhc"
m = 2

[traffic]
pattern = "hotspot"
hot_fraction = 0.1
rate = 0.05
strategy = "fault-adaptive"

[sim]
cycles = 300
drain_cycles = 5000
packet_len = 2
switching = "cut-through"
queue_capacity = 4
sample_every = 50

[engine]
store = "eager"
fidelity = "full"

[faults]
initial = [17, 3, 17]

[[faults.events]]
cycle = 100
node = 9
action = "fail"

[[faults.events]]
cycle = 200
node = 9
action = "recover"

[sweep]
rates = [0.02, 0.05]
strategies = ["single", "multipath"]

[[sweep.cells]]
m = 3
cycles = 200

[expect]
delivered_all = true
min_delivery_ratio = 0.95
max_latency_p99 = 400
no_drops = true
max_in_flight_at_end = 0
"#;

    #[test]
    fn full_scenario_parses_with_every_field() {
        let s = Scenario::from_toml(FULL).unwrap();
        assert_eq!(s.name, "full-demo");
        assert_eq!(s.kind, Kind::Sim);
        assert_eq!(s.seed, 0xF4F4);
        assert_eq!(s.replications, 3);
        assert_eq!(s.topology, Topology::Hhc { m: 2 });
        assert_eq!(s.traffic.pattern, Pattern::Hotspot { hot_fraction: 0.1 });
        assert_eq!(s.traffic.strategy, Strategy::FaultAdaptive);
        assert_eq!(s.sim.cycles, 300);
        assert_eq!(s.sim.queue_capacity, Some(4));
        assert_eq!(s.sim.switching, Switching::CutThrough);
        assert_eq!(s.sim.seed, 0xF4F4, "sim seed mirrors the top-level seed");
        assert_eq!(s.engine.store, LinkStoreMode::Eager);
        assert_eq!(s.engine.fidelity, Fidelity::Full);
        assert_eq!(s.faults.initial, vec![3, 17], "sorted and deduplicated");
        assert_eq!(s.faults.events.len(), 2);
        assert_eq!(s.faults.events[1].action, FaultAction::Recover);
        assert_eq!(s.sweep.rates, vec![0.02, 0.05]);
        assert_eq!(s.sweep.strategies.len(), 2);
        assert_eq!(s.sweep.cells.len(), 1);
        assert_eq!(s.sweep.cells[0].size, Some(3));
        assert!(s.expect.delivered_all && s.expect.no_drops);
        assert_eq!(s.expect.max_in_flight_at_end, Some(0));
        assert!(s.analysis.is_none());
    }

    #[test]
    fn minimal_scenario_gets_defaults() {
        let s =
            Scenario::from_toml("name = \"tiny\"\n[topology]\nkind = \"hhc\"\nm = 2\n").unwrap();
        assert_eq!(s.kind, Kind::Sim);
        assert_eq!(s.seed, SimConfig::default().seed);
        assert_eq!(s.replications, 1);
        assert_eq!(s.traffic.pattern, Pattern::UniformRandom);
        assert_eq!(s.traffic.rate, SimConfig::default().inject_rate);
        assert_eq!(s.traffic.strategy, Strategy::SinglePath);
        assert_eq!(s.sim.cycles, SimConfig::default().cycles);
        assert_eq!(s.engine, EngineConfig::default());
        assert!(s.faults.initial.is_empty() && s.faults.events.is_empty());
        assert!(s.sweep.is_empty());
        assert!(s.expect.is_empty());
    }

    #[test]
    fn canonical_form_round_trips() {
        let s = Scenario::from_toml(FULL).unwrap();
        let canon = s.to_toml();
        let reparsed = Scenario::from_toml(&canon).unwrap();
        assert_eq!(s, reparsed);
        // And the canonical form is a fixpoint.
        assert_eq!(canon, reparsed.to_toml());
    }

    #[test]
    fn analysis_scenario_parses_and_round_trips() {
        let src = r#"
name = "f3c-demo"
kind = "fault-analysis"
seed = 0xF3C1

[topology]
kind = "hhc"
m = 3

[analysis]
trials = 150
placement = "adversarial"
fault_counts = [0, 1, 2, 3, 4, 5]
"#;
        let s = Scenario::from_toml(src).unwrap();
        assert_eq!(s.kind, Kind::FaultAnalysis);
        let a = s.analysis.as_ref().unwrap();
        assert_eq!(a.trials, 150);
        assert_eq!(a.placement, Placement::Adversarial);
        assert_eq!(a.fault_counts, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(s, Scenario::from_toml(&s.to_toml()).unwrap());
    }

    fn err_of(src: &str) -> ScenarioError {
        Scenario::from_toml(src).unwrap_err()
    }

    #[test]
    fn unknown_keys_are_rejected_everywhere() {
        let e = err_of("name = \"x\"\nbogus = 1\n[topology]\nkind = \"hhc\"\nm = 2\n");
        assert!(matches!(e, ScenarioError::UnknownKey { ref key, .. } if key == "bogus"));
        let e = err_of("name = \"x\"\n[topology]\nkind = \"hhc\"\nm = 2\nbogus = 1\n");
        assert!(
            matches!(e, ScenarioError::UnknownKey { ref section, ref key, .. }
                     if section == "topology" && key == "bogus")
        );
        let e = err_of("name = \"x\"\n[topology]\nkind = \"hhc\"\nm = 2\n[traffic]\nratez = 0.1\n");
        assert!(matches!(e, ScenarioError::UnknownKey { ref key, .. } if key == "ratez"));
    }

    #[test]
    fn validation_rejects_out_of_range_values() {
        // m beyond the DES limit.
        let e = err_of("name = \"x\"\n[topology]\nkind = \"hhc\"\nm = 5\n");
        assert!(matches!(e, ScenarioError::Invalid { ref field, .. } if field == "topology.m"));
        // Rate out of [0, 1].
        let e = err_of("name = \"x\"\n[topology]\nkind = \"hhc\"\nm = 2\n[traffic]\nrate = 1.5\n");
        assert!(matches!(e, ScenarioError::Invalid { ref field, .. } if field == "traffic.rate"));
        // Fault node outside the address space (HHC(2) has 64 nodes).
        let e =
            err_of("name = \"x\"\n[topology]\nkind = \"hhc\"\nm = 2\n[faults]\ninitial = [64]\n");
        assert!(matches!(e, ScenarioError::Invalid { ref field, .. } if field == "faults.initial"));
        // Hotspot without its fraction.
        let e = err_of(
            "name = \"x\"\n[topology]\nkind = \"hhc\"\nm = 2\n[traffic]\npattern = \"hotspot\"\n",
        );
        assert!(
            matches!(e, ScenarioError::Invalid { ref field, .. } if field == "traffic.hot_fraction")
        );
        // hot_fraction on a non-hotspot pattern.
        let e = err_of(
            "name = \"x\"\n[topology]\nkind = \"hhc\"\nm = 2\n\
             [traffic]\npattern = \"uniform\"\nhot_fraction = 0.1\n",
        );
        assert!(
            matches!(e, ScenarioError::Invalid { ref field, .. } if field == "traffic.hot_fraction")
        );
        // Bad name (it becomes a file name).
        let e = err_of("name = \"a/b\"\n[topology]\nkind = \"hhc\"\nm = 2\n");
        assert!(matches!(e, ScenarioError::Invalid { ref field, .. } if field == "name"));
    }

    #[test]
    fn kind_sections_are_mutually_exclusive() {
        // [analysis] on a sim scenario.
        let e = err_of(
            "name = \"x\"\n[topology]\nkind = \"hhc\"\nm = 2\n\
             [analysis]\ntrials = 10\nplacement = \"random\"\nfault_counts = [1]\n",
        );
        assert!(matches!(e, ScenarioError::Invalid { ref field, .. } if field == "analysis"));
        // [traffic] on a fault-analysis scenario.
        let e = err_of(
            "name = \"x\"\nkind = \"fault-analysis\"\n\
             [topology]\nkind = \"hhc\"\nm = 3\n[traffic]\nrate = 0.1\n\
             [analysis]\ntrials = 10\nplacement = \"random\"\nfault_counts = [1]\n",
        );
        assert!(matches!(e, ScenarioError::Invalid { ref field, .. } if field == "traffic"));
        // fault-analysis on a cube topology.
        let e = err_of(
            "name = \"x\"\nkind = \"fault-analysis\"\n\
             [topology]\nkind = \"cube\"\nn = 6\n\
             [analysis]\ntrials = 10\nplacement = \"random\"\nfault_counts = [1]\n",
        );
        assert!(matches!(e, ScenarioError::Invalid { ref field, .. } if field == "topology.kind"));
    }
}
