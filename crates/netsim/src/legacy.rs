//! The legacy map-based simulation engine, kept verbatim as the
//! reference implementation.
//!
//! This is the original core: per-link state in
//! `BTreeMap<(NodeId, NodeId), _>`, in-flight packets in
//! `BTreeMap<u64, Vec<Packet>>`, and an owned `Vec<NodeId>` route per
//! packet. The flat core ([`crate::flat`]) replaces every one of those
//! with dense indexed structures while preserving this engine's exact
//! observable behaviour; the `flat_equivalence` test suite and the
//! `profile_sim` bench assert byte-identical [`SimStats`] on shared
//! configurations. Once the flat core has burned in, this module — and
//! [`crate::Simulator::run_legacy`] — can be deleted.

use crate::faults::FaultSet;
use crate::net::{Network, RouteScratch};
use crate::packet::Packet;
use crate::sim::{SimConfig, Switching};
use crate::stats::SimStats;
use crate::strategy::Strategy;
use hhc_core::{CacheConfig, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, HashSet, VecDeque};
use workloads::{Bernoulli, Pattern};

/// One legacy simulation run; same parameters and observable behaviour
/// as [`crate::flat::run_flat`] without a trace.
pub(crate) fn run_legacy<N: Network + ?Sized>(
    net: &N,
    pattern: Pattern,
    strategy: Strategy,
    fault_set: &HashSet<NodeId>,
    route_cache: CacheConfig,
    cfg: SimConfig,
) -> SimStats {
    let busy = cfg.packet_len.max(1);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let arrivals = Bernoulli::new(cfg.inject_rate);
    let mut stats = SimStats {
        nodes: net.num_addresses() as u64,
        cycles: cfg.cycles,
        ..Default::default()
    };
    // Per-directed-link FIFO queues, keyed by (from, to).
    // BTreeMap: deterministic iteration order makes the whole run
    // reproducible (same-cycle arrivals into one queue keep a fixed order).
    let mut queues: BTreeMap<(NodeId, NodeId), VecDeque<Packet>> = BTreeMap::new();
    // A transmission started at cycle c occupies its link through
    // c + busy − 1; when the packet lands depends on the switching
    // discipline (full packet vs header cut-through).
    let mut busy_until: BTreeMap<(NodeId, NodeId), u64> = BTreeMap::new();
    let mut in_flight: BTreeMap<u64, Vec<Packet>> = BTreeMap::new();
    let mut next_id = 0u64;
    let nodes: Vec<NodeId> = net.all_nodes();
    // One route scratch for the whole run: route selection reuses the
    // disjoint-path construction buffers — and the symmetry caches —
    // across every injection.
    let mut route_scratch = RouteScratch::with_route_cache(route_cache);
    // Sorted-slice fault set for the per-packet membership probes.
    let faults = FaultSet::from_set(fault_set);

    for cycle in 0..cfg.cycles + cfg.drain_cycles {
        // Phase 1: injection (disabled during drain).
        if cycle < cfg.cycles {
            for &src in &nodes {
                if faults.contains(src) || !arrivals.fires(&mut rng) {
                    continue;
                }
                let Some(dst) = pattern.destination(net, src, &mut rng) else {
                    stats.self_addressed += 1;
                    continue;
                };
                if faults.contains(dst) {
                    stats.dropped_dst_faulty += 1;
                    continue;
                }
                match strategy.select_with(net, src, dst, &faults, &mut rng, &mut route_scratch) {
                    Some(route) => {
                        let pkt = Packet::new(next_id, cycle, route);
                        next_id += 1;
                        let key = (pkt.current(), pkt.next().expect("≥1 hop"));
                        let q = queues.entry(key).or_default();
                        if cfg.queue_capacity.is_some_and(|cap| q.len() as u64 >= cap) {
                            stats.dropped_backpressure += 1;
                            continue;
                        }
                        stats.injected += 1;
                        q.push_back(pkt);
                        stats.max_queue_len = stats.max_queue_len.max(q.len() as u64);
                    }
                    None => stats.dropped_unroutable += 1,
                }
            }
        }

        // Phase 2: start transmissions on every idle link with a
        // queued packet. The link is busy for `busy` cycles; the
        // packet lands after the full packet (store-and-forward) or
        // after one header cycle (cut-through; the tail still pays
        // `busy` on the final hop so delivery sees the whole packet).
        let mut started: Vec<(u64, Packet)> = Vec::new();
        // Snapshot queue lengths for backpressure decisions (a head
        // may only advance when its next queue has room).
        let occupancy: BTreeMap<(NodeId, NodeId), u64> = if cfg.queue_capacity.is_some() {
            queues.iter().map(|(&k, q)| (k, q.len() as u64)).collect()
        } else {
            BTreeMap::new()
        };
        for (&link, q) in queues.iter_mut() {
            if q.is_empty() || busy_until.get(&link).copied().unwrap_or(0) > cycle {
                continue;
            }
            if let Some(cap) = cfg.queue_capacity {
                // Peek: where would the head go next?
                let head = q.front().expect("non-empty");
                let mut peek = head.clone();
                if !peek.advance() {
                    let next_key = (peek.current(), peek.next().expect("not at dst"));
                    if occupancy.get(&next_key).copied().unwrap_or(0) >= cap {
                        stats.backpressure_stalls += 1;
                        continue;
                    }
                }
            }
            let pkt = q.pop_front().expect("non-empty");
            busy_until.insert(link, cycle + busy);
            let final_hop = pkt.hop + 2 == pkt.route.len();
            let delay = match cfg.switching {
                Switching::StoreAndForward => busy,
                Switching::CutThrough => {
                    if final_hop {
                        busy
                    } else {
                        1
                    }
                }
            };
            started.push((cycle + delay - 1, pkt));
        }
        let started_this_cycle = started.len() as u64;
        stats.link_transmissions += started_this_cycle;
        for (land, pkt) in started {
            in_flight.entry(land).or_default().push(pkt);
        }

        // Phase 3: land packets whose hop completes this cycle.
        for mut pkt in in_flight.remove(&cycle).unwrap_or_default() {
            let arrived = pkt.advance();
            if arrived {
                stats.delivered += 1;
                let lat = cycle + 1 - pkt.injected_at;
                stats.latency_sum += lat;
                stats.latency_max = stats.latency_max.max(lat);
                stats.latency_hist.record(lat);
                stats.hops_sum += (pkt.route.len() - 1) as u64;
            } else {
                let key = (pkt.current(), pkt.next().expect("not at dst"));
                let q = queues.entry(key).or_default();
                q.push_back(pkt);
                stats.max_queue_len = stats.max_queue_len.max(q.len() as u64);
            }
        }

        // Time-series sampling: end-of-cycle snapshot of queue state
        // and this cycle's link activity. Entirely skipped (no scan,
        // no allocation) when sampling is disabled.
        if cfg.sample_every > 0 && cycle % cfg.sample_every == 0 {
            let queued_packets: u64 = queues.values().map(|q| q.len() as u64).sum();
            let max_queue_len = queues.values().map(|q| q.len() as u64).max().unwrap_or(0);
            stats.samples.push(crate::stats::CycleSample {
                cycle,
                queued_packets,
                max_queue_len,
                transmissions: started_this_cycle,
            });
        }
    }

    stats.in_flight_at_end = queues.values().map(|q| q.len() as u64).sum::<u64>()
        + in_flight.values().map(|v| v.len() as u64).sum::<u64>();
    let routing = route_scratch.construction_metrics();
    stats.route_constructions = routing.construction.queries;
    stats.route_family_hits = routing.construction.family_hits;
    stats
}
