//! The flat simulation core: dense integer-indexed data structures.
//!
//! The legacy engine ([`crate::legacy`]) keyed every per-link structure
//! by `(NodeId, NodeId)` in `BTreeMap`s and gave every packet an owned
//! `Vec<NodeId>` route — an O(log links) probe plus an allocation on
//! each hop. This module replaces all of it with arrays:
//!
//! * **[`LinkTable`]** — CSR adjacency built once per run; a directed
//!   link *is* an index, and ids ascend in `(from, to)` order, which is
//!   exactly the legacy `BTreeMap` iteration order.
//! * **link queues** — `Vec<VecDeque<FlatPacket>>` indexed by link id; a
//!   sorted active-link list (plus an unsorted pending list merged each
//!   cycle) visits only non-empty queues, in id order — identical link
//!   service order to the legacy map sweep over non-empty queues.
//! * **[`RouteArena`]** — interned, deduplicated routes with
//!   precomputed per-hop link ids; packets ([`FlatPacket`]) carry
//!   `(route_id, hop)` and are `Copy`.
//! * **[`EventCalendar`]** — a timing wheel over delivery cycles
//!   replacing the in-flight `BTreeMap<u64, Vec<Packet>>`. Every
//!   scheduled landing is at most `packet_len` cycles out, so a wheel of
//!   `packet_len` slots never collides, and per-slot insertion order
//!   matches the map's per-key push order.
//!
//! The run loop itself keeps the legacy phase structure (injection →
//! transmission → landing) and draws from the RNG in exactly the same
//! order, so a flat run and a legacy run of the same configuration
//! produce **byte-identical [`SimStats`]** — enforced by the
//! `flat_equivalence` test suite and the `profile_sim` bench.

use crate::faults::{FaultFlags, FaultLookup};
use crate::net::{LinkTable, Network, RouteScratch};
use crate::packet::FlatPacket;
use crate::sim::{DeliveryRecord, SimConfig, Switching};
use crate::stats::{CycleSample, SimStats};
use crate::strategy::Strategy;
use hhc_core::{CacheConfig, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet, VecDeque};
use workloads::{Bernoulli, Pattern};

/// Arena of interned routes. Each distinct node sequence is stored once
/// (deduplicated via a hash index) together with its precomputed per-hop
/// link ids; packets refer to routes by arena id. Traffic patterns
/// repeat (src, dst) pairs constantly, so the arena stays small while
/// packet hand-off becomes a `Copy` of 24 bytes.
#[derive(Debug)]
pub struct RouteArena {
    /// Concatenated node sequences (raw addresses).
    nodes: Vec<u32>,
    /// Concatenated per-hop link ids: route `r` with `k` nodes has
    /// `k - 1` entries starting at `offsets[r] - r`.
    links: Vec<u32>,
    /// CSR offsets into `nodes`; `offsets.len() = routes + 1`.
    offsets: Vec<u32>,
    index: HashMap<Box<[u32]>, u32>,
}

impl RouteArena {
    /// An empty arena.
    pub fn new() -> Self {
        RouteArena {
            nodes: Vec::new(),
            links: Vec::new(),
            offsets: vec![0],
            index: HashMap::new(),
        }
    }

    /// Number of distinct routes interned so far.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether no route has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Interns `route` (raw node addresses, ≥ 2 nodes), returning its
    /// arena id. A sequence already present is not stored again.
    pub fn intern(&mut self, route: &[u32], table: &LinkTable) -> u32 {
        debug_assert!(route.len() >= 2, "a route needs at least one hop");
        if let Some(&id) = self.index.get(route) {
            return id;
        }
        let id = (self.offsets.len() - 1) as u32;
        self.nodes.extend_from_slice(route);
        for w in route.windows(2) {
            self.links.push(table.link_id(w[0], w[1]));
        }
        self.offsets.push(self.nodes.len() as u32);
        self.index.insert(route.into(), id);
        id
    }

    /// Node sequence of route `r`.
    #[inline]
    pub fn route_nodes(&self, r: u32) -> &[u32] {
        &self.nodes[self.offsets[r as usize] as usize..self.offsets[r as usize + 1] as usize]
    }

    /// Per-hop link ids of route `r` (`route_len(r) - 1` entries; entry
    /// `h` is the link from node `h` to node `h + 1`).
    #[inline]
    pub fn route_links(&self, r: u32) -> &[u32] {
        let lo = self.offsets[r as usize] as usize - r as usize;
        let hi = self.offsets[r as usize + 1] as usize - (r as usize + 1);
        &self.links[lo..hi]
    }

    /// Node count of route `r`.
    #[inline]
    pub fn route_len(&self, r: u32) -> u32 {
        self.offsets[r as usize + 1] - self.offsets[r as usize]
    }
}

impl Default for RouteArena {
    fn default() -> Self {
        RouteArena::new()
    }
}

/// Bucketed event calendar (timing wheel) over landing cycles. A
/// transmission started at cycle `c` lands within `[c, c + horizon - 1]`
/// (the landing delay is at most `packet_len`), so a wheel of `horizon`
/// slots indexed by `cycle % horizon` never holds two distinct landing
/// cycles in one slot. Scheduling and draining are O(1) per packet with
/// no per-cycle allocation — slot buffers are recycled.
#[derive(Debug)]
pub struct EventCalendar {
    slots: Vec<Vec<FlatPacket>>,
    horizon: u64,
    scheduled: u64,
}

impl EventCalendar {
    /// A calendar able to schedule up to `horizon` (≥ 1 enforced)
    /// cycles ahead of the drain cursor.
    pub fn new(horizon: u64) -> Self {
        let horizon = horizon.max(1);
        EventCalendar {
            slots: (0..horizon).map(|_| Vec::new()).collect(),
            horizon,
            scheduled: 0,
        }
    }

    /// Schedules `pkt` to land at cycle `land`, which must be less than
    /// `horizon` cycles past the most recently drained cycle.
    #[inline]
    pub fn schedule(&mut self, land: u64, pkt: FlatPacket) {
        self.slots[(land % self.horizon) as usize].push(pkt);
        self.scheduled += 1;
    }

    /// Moves the packets landing at `cycle` into `out` (cleared first),
    /// in scheduling order. `out`'s previous buffer is recycled as the
    /// slot's storage.
    pub fn drain_into(&mut self, cycle: u64, out: &mut Vec<FlatPacket>) {
        out.clear();
        std::mem::swap(out, &mut self.slots[(cycle % self.horizon) as usize]);
        self.scheduled -= out.len() as u64;
    }

    /// Packets scheduled but not yet drained.
    pub fn in_flight(&self) -> u64 {
        self.scheduled
    }
}

/// One flat simulation run. Shared by [`crate::Simulator::run`] and
/// [`crate::Simulator::run_traced`] (the trace differs only in whether
/// delivery records are collected), and replicated with reseeded
/// configurations by [`crate::Simulator::run_many`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_flat<N: Network + ?Sized>(
    net: &N,
    pattern: Pattern,
    strategy: Strategy,
    fault_set: &HashSet<NodeId>,
    route_cache: CacheConfig,
    cfg: SimConfig,
    mut trace: Option<&mut Vec<DeliveryRecord>>,
) -> SimStats {
    let busy = cfg.packet_len.max(1);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let arrivals = Bernoulli::new(cfg.inject_rate);
    let n_nodes = 1usize << net.address_bits();
    let mut stats = SimStats {
        nodes: net.num_addresses() as u64,
        cycles: cfg.cycles,
        ..Default::default()
    };

    let table = LinkTable::build(net);
    let n_links = table.num_links();
    let mut arena = RouteArena::new();
    let mut queues: Vec<VecDeque<FlatPacket>> = vec![VecDeque::new(); n_links];
    // Cycle through which each link is occupied by its last transmission.
    let mut busy_until = vec![0u64; n_links];
    // Non-empty-queue links, visited in ascending id order (= legacy
    // BTreeMap order): `active` is sorted; links becoming non-empty are
    // appended to `pending` (guarded by `in_active`) and merged in
    // before each transmission phase.
    let mut active: Vec<u32> = Vec::new();
    let mut pending: Vec<u32> = Vec::new();
    let mut merge_buf: Vec<u32> = Vec::new();
    let mut in_active = vec![false; n_links];
    // Queue-occupancy snapshot for backpressure (finite-buffer mode
    // only); `occ_touched` remembers which entries need zeroing.
    let mut occupancy: Vec<u64> = if cfg.queue_capacity.is_some() {
        vec![0; n_links]
    } else {
        Vec::new()
    };
    let mut occ_touched: Vec<u32> = Vec::new();
    let mut calendar = EventCalendar::new(busy);
    let mut landed: Vec<FlatPacket> = Vec::new();
    let mut route_scratch = RouteScratch::with_route_cache(route_cache);
    let faults = FaultFlags::from_set(fault_set, n_nodes);
    let mut route_buf: Vec<NodeId> = Vec::new();
    let mut idx_buf: Vec<u32> = Vec::new();
    let mut next_id = 0u64;

    for cycle in 0..cfg.cycles + cfg.drain_cycles {
        // Phase 1: injection (disabled during drain).
        if cycle < cfg.cycles {
            for raw in 0..n_nodes as u32 {
                let src = NodeId::from_raw(raw as u128);
                if faults.is_faulty(src) || !arrivals.fires(&mut rng) {
                    continue;
                }
                let Some(dst) = pattern.destination(net, src, &mut rng) else {
                    stats.self_addressed += 1;
                    continue;
                };
                if faults.is_faulty(dst) {
                    stats.dropped_dst_faulty += 1;
                    continue;
                }
                if strategy.select_into(
                    net,
                    src,
                    dst,
                    &faults,
                    &mut rng,
                    &mut route_scratch,
                    &mut route_buf,
                ) {
                    idx_buf.clear();
                    idx_buf.extend(route_buf.iter().map(|v| v.raw() as u32));
                    let rid = arena.intern(&idx_buf, &table);
                    // Ids are consumed even by backpressure drops,
                    // mirroring the legacy engine's numbering.
                    let id = next_id;
                    next_id += 1;
                    let link = arena.route_links(rid)[0] as usize;
                    let q = &mut queues[link];
                    if cfg.queue_capacity.is_some_and(|cap| q.len() as u64 >= cap) {
                        stats.dropped_backpressure += 1;
                        continue;
                    }
                    stats.injected += 1;
                    q.push_back(FlatPacket {
                        id,
                        injected_at: cycle,
                        route: rid,
                        hop: 0,
                    });
                    stats.max_queue_len = stats.max_queue_len.max(q.len() as u64);
                    if !in_active[link] {
                        in_active[link] = true;
                        pending.push(link as u32);
                    }
                } else {
                    stats.dropped_unroutable += 1;
                }
            }
        }

        // Merge newly non-empty links into the sorted active list.
        // `pending` and `active` are disjoint (the `in_active` guard),
        // so a plain two-way merge keeps the list sorted and duplicate-
        // free.
        if !pending.is_empty() {
            pending.sort_unstable();
            merge_buf.clear();
            merge_buf.reserve(active.len() + pending.len());
            let (mut i, mut j) = (0, 0);
            while i < active.len() && j < pending.len() {
                if active[i] < pending[j] {
                    merge_buf.push(active[i]);
                    i += 1;
                } else {
                    merge_buf.push(pending[j]);
                    j += 1;
                }
            }
            merge_buf.extend_from_slice(&active[i..]);
            merge_buf.extend_from_slice(&pending[j..]);
            std::mem::swap(&mut active, &mut merge_buf);
            pending.clear();
        }

        // Phase 2: start transmissions on every idle link with a queued
        // packet, in link-id order. Links whose queue empties are
        // compacted out of the active list in place.
        if cfg.queue_capacity.is_some() {
            for &l in &occ_touched {
                occupancy[l as usize] = 0;
            }
            occ_touched.clear();
            for &l in &active {
                occupancy[l as usize] = queues[l as usize].len() as u64;
                occ_touched.push(l);
            }
        }
        let mut started_this_cycle = 0u64;
        let mut w = 0usize;
        for i in 0..active.len() {
            let l = active[i];
            let li = l as usize;
            if busy_until[li] > cycle {
                active[w] = l;
                w += 1;
                continue;
            }
            if let Some(cap) = cfg.queue_capacity {
                // Peek: where would the head go next? The final hop
                // leaves the network, so only intermediate hops check.
                let head = queues[li].front().expect("active link has a packet");
                if head.hop + 2 < arena.route_len(head.route) {
                    let next_link = arena.route_links(head.route)[head.hop as usize + 1];
                    if occupancy[next_link as usize] >= cap {
                        stats.backpressure_stalls += 1;
                        active[w] = l;
                        w += 1;
                        continue;
                    }
                }
            }
            let pkt = queues[li].pop_front().expect("active link has a packet");
            busy_until[li] = cycle + busy;
            let final_hop = pkt.hop + 2 == arena.route_len(pkt.route);
            let delay = match cfg.switching {
                Switching::StoreAndForward => busy,
                Switching::CutThrough => {
                    if final_hop {
                        busy
                    } else {
                        1
                    }
                }
            };
            calendar.schedule(cycle + delay - 1, pkt);
            started_this_cycle += 1;
            if queues[li].is_empty() {
                in_active[li] = false;
            } else {
                active[w] = l;
                w += 1;
            }
        }
        active.truncate(w);
        stats.link_transmissions += started_this_cycle;

        // Phase 3: land packets whose hop completes this cycle.
        calendar.drain_into(cycle, &mut landed);
        for mut pkt in landed.drain(..) {
            pkt.hop += 1;
            let rlen = arena.route_len(pkt.route);
            if pkt.hop + 1 == rlen {
                stats.delivered += 1;
                let lat = cycle + 1 - pkt.injected_at;
                stats.latency_sum += lat;
                stats.latency_max = stats.latency_max.max(lat);
                stats.latency_hist.record(lat);
                stats.hops_sum += (rlen - 1) as u64;
                if let Some(records) = trace.as_deref_mut() {
                    records.push(DeliveryRecord {
                        id: pkt.id,
                        injected_at: pkt.injected_at,
                        delivered_at: cycle + 1,
                        route: arena
                            .route_nodes(pkt.route)
                            .iter()
                            .map(|&x| NodeId::from_raw(x as u128))
                            .collect(),
                    });
                }
            } else {
                let link = arena.route_links(pkt.route)[pkt.hop as usize] as usize;
                let q = &mut queues[link];
                q.push_back(pkt);
                stats.max_queue_len = stats.max_queue_len.max(q.len() as u64);
                if !in_active[link] {
                    in_active[link] = true;
                    pending.push(link as u32);
                }
            }
        }

        // Time-series sampling: end-of-cycle snapshot. active ∪ pending
        // covers every non-empty queue (phase 3 lands into pending).
        if cfg.sample_every > 0 && cycle % cfg.sample_every == 0 {
            let mut queued_packets = 0u64;
            let mut max_queue_len = 0u64;
            for &l in active.iter().chain(pending.iter()) {
                let len = queues[l as usize].len() as u64;
                queued_packets += len;
                max_queue_len = max_queue_len.max(len);
            }
            stats.samples.push(CycleSample {
                cycle,
                queued_packets,
                max_queue_len,
                transmissions: started_this_cycle,
            });
        }

        // Drain-phase early exit: with injection over, no queued packet
        // and nothing on the calendar, the remaining cycles are no-ops.
        // Skipping them is observationally invisible — unless sampling
        // is on, which would record the (all-zero) tail samples.
        if cycle >= cfg.cycles
            && cfg.sample_every == 0
            && active.is_empty()
            && pending.is_empty()
            && calendar.in_flight() == 0
        {
            break;
        }
    }

    stats.in_flight_at_end = active
        .iter()
        .chain(pending.iter())
        .map(|&l| queues[l as usize].len() as u64)
        .sum::<u64>()
        + calendar.in_flight();
    let routing = route_scratch.construction_metrics();
    stats.route_constructions = routing.construction.queries;
    stats.route_family_hits = routing.construction.family_hits;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhc_core::Hhc;

    fn table() -> (Hhc, LinkTable) {
        let h = Hhc::new(2).unwrap();
        let t = LinkTable::build(&h);
        (h, t)
    }

    #[test]
    fn arena_interns_and_dedups() {
        let (h, t) = table();
        let mut arena = RouteArena::new();
        assert!(arena.is_empty());
        let route: Vec<u32> = h
            .route(NodeId::from_raw(0), NodeId::from_raw(45))
            .unwrap()
            .iter()
            .map(|v| v.raw() as u32)
            .collect();
        let a = arena.intern(&route, &t);
        let b = arena.intern(&route, &t);
        assert_eq!(a, b);
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.route_nodes(a), &route[..]);
        assert_eq!(arena.route_len(a) as usize, route.len());
        let links = arena.route_links(a);
        assert_eq!(links.len(), route.len() - 1);
        for (i, w) in route.windows(2).enumerate() {
            assert_eq!(links[i], t.link_id(w[0], w[1]));
        }
        // A second, different route gets its own id and slices.
        let other: Vec<u32> = h
            .route(NodeId::from_raw(45), NodeId::from_raw(0))
            .unwrap()
            .iter()
            .map(|v| v.raw() as u32)
            .collect();
        let c = arena.intern(&other, &t);
        assert_ne!(a, c);
        assert_eq!(arena.route_nodes(c), &other[..]);
        assert_eq!(arena.route_links(c).len(), other.len() - 1);
    }

    #[test]
    fn calendar_slots_by_cycle_and_recycles_buffers() {
        let mut cal = EventCalendar::new(4);
        let pkt = |id| FlatPacket {
            id,
            injected_at: 0,
            route: 0,
            hop: 0,
        };
        cal.schedule(10, pkt(1));
        cal.schedule(13, pkt(2));
        cal.schedule(10, pkt(3));
        assert_eq!(cal.in_flight(), 3);
        let mut out = Vec::new();
        cal.drain_into(10, &mut out);
        // Scheduling order within a slot is preserved.
        assert_eq!(out.iter().map(|p| p.id).collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(cal.in_flight(), 1);
        cal.drain_into(11, &mut out);
        assert!(out.is_empty());
        cal.drain_into(13, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(cal.in_flight(), 0);
    }

    #[test]
    fn zero_horizon_clamps_to_one() {
        let mut cal = EventCalendar::new(0);
        cal.schedule(
            7,
            FlatPacket {
                id: 0,
                injected_at: 0,
                route: 0,
                hop: 0,
            },
        );
        let mut out = Vec::new();
        cal.drain_into(7, &mut out);
        assert_eq!(out.len(), 1);
    }
}
