//! The flat simulation core: traffic-proportional data structures.
//!
//! Per-cycle cost and resident memory scale with *traffic* (packets in
//! flight, links actually crossed), not with topology size — that is
//! what admits HHC(4) (2^20 nodes, ~5M directed links) packet-level:
//!
//! * **[`LinkTable`]** — CSR adjacency built once per run; a directed
//!   link *is* a u32 index, and ids ascend in `(from, to)` order, fixing
//!   the canonical link service order.
//! * **`LinkStore`** — per-link queue/occupancy state, materialised
//!   lazily on first use (default): a slab of `LinkState` plus a paged
//!   id→slot map, so a run allocates queue state only for the links its
//!   routes cross. [`LinkStoreMode::Eager`] keeps the dense
//!   one-slot-per-link layout as the microbenchmark baseline.
//! * **[`RouteArena`]** — interned, deduplicated routes with
//!   precomputed per-hop link ids, sharded 16 ways by a route-endpoint
//!   hash so million-node pair sets don't grow one monolithic index;
//!   packets ([`FlatPacket`]) carry `(route_id, hop)` and are `Copy`.
//! * **[`EventCalendar`]** — a timing wheel over landing cycles. Every
//!   entry carries its transmission-start cycle and link id, and slots
//!   drain in `(start, link)` order — the canonical landing order — so
//!   engine variants that schedule the same transmissions at different
//!   moments still land them identically.
//! * **`ArrivalSampler`** — the Bernoulli arrival process evaluated by
//!   geometric gap-sampling over the (cycle-major) healthy-source index
//!   space: injection visits only the sources that actually fire, an
//!   O(arrivals) worklist instead of an O(nodes) per-cycle scan.
//! * **hybrid link fidelity** ([`Fidelity::Hybrid`], default) — a
//!   packet arriving at an idle, uncontended link is committed
//!   analytically (its service is scheduled straight onto the calendar
//!   at exactly the cycle the queued engine would start it) and the
//!   link is promoted to full queued simulation on first contention, a
//!   ghost entry standing in for the analytically committed packet.
//!
//! All engine variants ([`EngineConfig`]) draw from the RNG in the same
//! order, service links in the same order and land packets in the same
//! order, so they produce **byte-identical [`SimStats`]** — enforced by
//! the `flat_equivalence` test suite and the `profile_sim` bench.

use crate::faults::{FaultAction, FaultEvent, FaultFlags, FaultLookup};
use crate::net::{LinkTable, Network, RouteScratch};
use crate::packet::FlatPacket;
use crate::sim::{DeliveryRecord, SimConfig, Switching};
use crate::stats::{CycleSample, SimStats};
use crate::strategy::Strategy;
use hhc_core::{CacheConfig, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use workloads::Pattern;

/// How per-link queue state is materialised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LinkStoreMode {
    /// One dense slot per directed link, allocated up front. Memory is
    /// O(links) — fine up to mid-size topologies, and the reference
    /// layout the lazy store is benchmarked against.
    Eager,
    /// Queue state allocated on first use (slab + paged id→slot map).
    /// Memory is O(links actually traversed).
    #[default]
    Lazy,
}

/// Link service fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fidelity {
    /// Every packet goes through its link's queue and is popped by the
    /// per-cycle transmission phase.
    Full,
    /// Packets meeting an idle, uncontended link are committed
    /// analytically (scheduled straight onto the calendar, no queue
    /// residency); a link is promoted to full queued simulation the
    /// moment a second packet wants it. Byte-identical statistics to
    /// [`Fidelity::Full`]. Falls back to full fidelity automatically
    /// when backpressure (`queue_capacity`) or time-series sampling
    /// (`sample_every`) is configured, since both observe queue
    /// residency directly.
    #[default]
    Hybrid,
}

/// Engine variant: link-store mode × link fidelity. All variants
/// produce byte-identical [`SimStats`]; the choice trades memory and
/// speed only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineConfig {
    /// Link-state materialisation (lazy by default).
    pub store: LinkStoreMode,
    /// Link service fidelity (hybrid by default).
    pub fidelity: Fidelity,
}

impl EngineConfig {
    /// The reference engine: eager dense link state, full queueing.
    pub fn reference() -> Self {
        EngineConfig {
            store: LinkStoreMode::Eager,
            fidelity: Fidelity::Full,
        }
    }
}

/// Route-id sentinel marking a ghost queue entry: the stand-in for a
/// packet that was committed analytically before its link got promoted
/// to full queued simulation. Never observable outside the engine.
const GHOST_ROUTE: u32 = u32::MAX;

const ARENA_SHARDS: usize = 16;
const ARENA_SHARD_BITS: u32 = 4;

#[derive(Debug)]
struct ArenaShard {
    /// Concatenated node sequences (raw addresses).
    nodes: Vec<u32>,
    /// Concatenated per-hop link ids: local route `r` with `k` nodes has
    /// `k - 1` entries starting at `offsets[r] - r`.
    links: Vec<u32>,
    /// CSR offsets into `nodes`; `offsets.len() = routes + 1`.
    offsets: Vec<u32>,
    index: HashMap<Box<[u32]>, u32>,
}

impl Default for ArenaShard {
    fn default() -> Self {
        ArenaShard {
            nodes: Vec::new(),
            links: Vec::new(),
            offsets: vec![0],
            index: HashMap::new(),
        }
    }
}

/// Arena of interned routes. Each distinct node sequence is stored once
/// (deduplicated via a hash index) together with its precomputed per-hop
/// link ids; packets refer to routes by arena id. Traffic patterns
/// repeat (src, dst) pairs constantly, so the arena stays small while
/// packet hand-off becomes a `Copy` of 24 bytes. Storage is sharded 16
/// ways by an endpoint hash — ids encode `(local « 4) | shard` — so a
/// million-node run's route set spreads across sixteen independent
/// indexes and backing vectors instead of monopolising one allocation.
///
/// An arena can be layered over a **frozen base**
/// ([`RouteArena::with_base`]): lookups consult the base's index first
/// (read-only), and only routes the base does not hold are stored
/// locally. Per shard, local ids `0..base_len` address the base and
/// higher ids the overlay, so base-resident route ids are stable across
/// every overlay built on the same base — this is what lets
/// [`crate::Simulator::run_many_warm`] share one warmed arena across
/// replications instead of re-interning the hot routes per run.
#[derive(Debug)]
pub struct RouteArena {
    shards: Vec<ArenaShard>,
    /// Frozen pre-warmed routes, consulted before the own shards. The
    /// base is immutable (never layered itself), so shard splits are
    /// fixed for the overlay's lifetime.
    base: Option<Arc<RouteArena>>,
}

impl RouteArena {
    /// An empty arena.
    pub fn new() -> Self {
        RouteArena {
            shards: (0..ARENA_SHARDS).map(|_| ArenaShard::default()).collect(),
            base: None,
        }
    }

    /// An empty overlay over a frozen `base` arena: every route already
    /// in the base is served from it (same ids as the base would
    /// return), only new sequences are stored locally. The base must be
    /// a plain arena — overlays do not stack.
    pub fn with_base(base: Arc<RouteArena>) -> Self {
        assert!(base.base.is_none(), "route-arena overlays do not stack");
        RouteArena {
            shards: (0..ARENA_SHARDS).map(|_| ArenaShard::default()).collect(),
            base: Some(base),
        }
    }

    /// Number of distinct routes interned so far (base included).
    pub fn len(&self) -> usize {
        let own: usize = self.shards.iter().map(|s| s.offsets.len() - 1).sum();
        own + self.base.as_deref().map_or(0, RouteArena::len)
    }

    /// Whether no route has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard_of(route: &[u32]) -> usize {
        // FNV-1a over (src, dst, len): routes of one flow co-locate,
        // different flows spread.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for w in [route[0], route[route.len() - 1], route.len() as u32] {
            h ^= w as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h as usize & (ARENA_SHARDS - 1)
    }

    /// Routes the base holds in shard `si` (0 without a base): the local
    /// ids below this address the base, the rest the overlay.
    #[inline]
    fn base_len(&self, si: usize) -> usize {
        self.base
            .as_deref()
            .map_or(0, |b| b.shards[si].offsets.len() - 1)
    }

    /// Interns `route` (raw node addresses, ≥ 2 nodes), returning its
    /// arena id. A sequence already present — in the frozen base or
    /// locally — is not stored again.
    pub fn intern(&mut self, route: &[u32], table: &LinkTable) -> u32 {
        debug_assert!(route.len() >= 2, "a route needs at least one hop");
        let si = Self::shard_of(route);
        if let Some(b) = self.base.as_deref() {
            if let Some(&local) = b.shards[si].index.get(route) {
                return (local << ARENA_SHARD_BITS) | si as u32;
            }
        }
        let base_len = self.base_len(si) as u32;
        let shard = &mut self.shards[si];
        if let Some(&local) = shard.index.get(route) {
            return (local << ARENA_SHARD_BITS) | si as u32;
        }
        let local = base_len + (shard.offsets.len() - 1) as u32;
        shard.nodes.extend_from_slice(route);
        for w in route.windows(2) {
            shard.links.push(table.link_id(w[0], w[1]));
        }
        shard.offsets.push(shard.nodes.len() as u32);
        shard.index.insert(route.into(), local);
        let id = (local << ARENA_SHARD_BITS) | si as u32;
        debug_assert_ne!(id, GHOST_ROUTE, "route id space exhausted");
        id
    }

    #[inline]
    fn locate(&self, r: u32) -> (&ArenaShard, usize) {
        let si = (r & (ARENA_SHARDS as u32 - 1)) as usize;
        let local = (r >> ARENA_SHARD_BITS) as usize;
        if let Some(b) = self.base.as_deref() {
            let bl = b.shards[si].offsets.len() - 1;
            if local < bl {
                return (&b.shards[si], local);
            }
            return (&self.shards[si], local - bl);
        }
        (&self.shards[si], local)
    }

    /// Node sequence of route `r`.
    #[inline]
    pub fn route_nodes(&self, r: u32) -> &[u32] {
        let (s, local) = self.locate(r);
        &s.nodes[s.offsets[local] as usize..s.offsets[local + 1] as usize]
    }

    /// Per-hop link ids of route `r` (`route_len(r) - 1` entries; entry
    /// `h` is the link from node `h` to node `h + 1`).
    #[inline]
    pub fn route_links(&self, r: u32) -> &[u32] {
        let (s, local) = self.locate(r);
        let lo = s.offsets[local] as usize - local;
        let hi = s.offsets[local + 1] as usize - (local + 1);
        &s.links[lo..hi]
    }

    /// Node count of route `r`.
    #[inline]
    pub fn route_len(&self, r: u32) -> u32 {
        let (s, local) = self.locate(r);
        s.offsets[local + 1] - s.offsets[local]
    }
}

impl Default for RouteArena {
    fn default() -> Self {
        RouteArena::new()
    }
}

/// A frozen, shareable pre-warmed route arena, built once by
/// [`crate::Simulator::warm_routes`] and layered (read-only) under every
/// replication of [`crate::Simulator::run_many_warm`]. Routes the warmup
/// predicted are served from the shared arena; anything else falls
/// through to the run's private overlay, so warming is purely an
/// optimisation — statistics are byte-identical with or without it.
#[derive(Debug, Clone)]
pub struct WarmRoutes {
    pub(crate) arena: Arc<RouteArena>,
}

impl WarmRoutes {
    /// Number of pre-interned routes.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// Whether the warmup interned nothing.
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }
}

/// Per-link simulation state. Materialised by [`LinkStore`] only when a
/// link is first used (lazy mode); `VecDeque::new` does not allocate, so
/// an untouched slot costs its struct size alone.
#[derive(Debug)]
pub(crate) struct LinkState {
    /// FIFO of queued packets (may start with a ghost entry in hybrid
    /// fidelity — see [`Fidelity::Hybrid`]).
    pub(crate) queue: VecDeque<FlatPacket>,
    /// Cycle through which the link is occupied by its last transmission.
    pub(crate) busy_until: u64,
    /// Committed service-start cycle of the most recent transmission,
    /// plus one (0 = never). Lets the hybrid deposit path detect an
    /// analytically committed packet whose service is still in the
    /// future and must be re-materialised as a ghost.
    pub(crate) last_pop1: u64,
    /// Queue-occupancy snapshot for backpressure, valid iff
    /// `occ_cycle` equals the current cycle.
    pub(crate) occ: u64,
    pub(crate) occ_cycle: u64,
    /// Whether the link is on the active/pending worklist.
    pub(crate) in_active: bool,
}

impl LinkState {
    fn new() -> Self {
        LinkState {
            queue: VecDeque::new(),
            busy_until: 0,
            last_pop1: 0,
            occ: 0,
            occ_cycle: u64::MAX,
            in_active: false,
        }
    }
}

const PAGE_BITS: u32 = 10;
const PAGE_SIZE: usize = 1 << PAGE_BITS;

#[derive(Debug)]
enum Slots {
    Eager(Vec<LinkState>),
    Lazy {
        slab: Vec<LinkState>,
        /// Page table from link id to slab slot; an entry holds
        /// `slot + 1`, 0 meaning not materialised, so fresh pages are
        /// plain zeroed allocations.
        pages: Vec<Option<Box<[u32; PAGE_SIZE]>>>,
    },
}

/// Per-link state storage: dense ([`LinkStoreMode::Eager`]) or
/// materialised on first touch ([`LinkStoreMode::Lazy`]). In lazy mode a
/// run's resident link state is proportional to the number of distinct
/// links its traffic crosses, not to the topology's link count.
#[derive(Debug)]
pub(crate) struct LinkStore {
    slots: Slots,
}

impl LinkStore {
    pub(crate) fn new(n_links: usize, mode: LinkStoreMode) -> Self {
        let slots = match mode {
            LinkStoreMode::Eager => Slots::Eager((0..n_links).map(|_| LinkState::new()).collect()),
            LinkStoreMode::Lazy => Slots::Lazy {
                slab: Vec::new(),
                pages: (0..n_links.div_ceil(PAGE_SIZE)).map(|_| None).collect(),
            },
        };
        LinkStore { slots }
    }

    /// Link-state slots materialised so far (eager: all of them).
    pub(crate) fn materialised(&self) -> u64 {
        match &self.slots {
            Slots::Eager(v) => v.len() as u64,
            Slots::Lazy { slab, .. } => slab.len() as u64,
        }
    }

    /// Mutable state of `link`, materialising the slot on first touch.
    #[inline]
    pub(crate) fn state_mut(&mut self, link: u32) -> &mut LinkState {
        match &mut self.slots {
            Slots::Eager(v) => &mut v[link as usize],
            Slots::Lazy { slab, pages } => {
                let page = pages[(link >> PAGE_BITS) as usize]
                    .get_or_insert_with(|| Box::new([0u32; PAGE_SIZE]));
                let entry = &mut page[(link & (PAGE_SIZE as u32 - 1)) as usize];
                if *entry == 0 {
                    slab.push(LinkState::new());
                    *entry = slab.len() as u32;
                }
                &mut slab[(*entry - 1) as usize]
            }
        }
    }

    /// State of `link` if materialised; never allocates.
    #[inline]
    pub(crate) fn peek(&self, link: u32) -> Option<&LinkState> {
        match &self.slots {
            Slots::Eager(v) => v.get(link as usize),
            Slots::Lazy { slab, pages } => {
                let entry = pages[(link >> PAGE_BITS) as usize].as_ref()?
                    [(link & (PAGE_SIZE as u32 - 1)) as usize];
                (entry != 0).then(|| &slab[(entry - 1) as usize])
            }
        }
    }

    /// End-of-cycle queue occupancy of `link` for backpressure checks:
    /// the snapshot taken this `cycle`, or 0 when the link has no
    /// snapshot (empty queue). Never materialises.
    #[inline]
    fn occupancy_at(&self, link: u32, cycle: u64) -> u64 {
        self.peek(link)
            .map_or(0, |st| if st.occ_cycle == cycle { st.occ } else { 0 })
    }
}

/// A scheduled landing: the packet, the link it is crossing, and the
/// cycle its transmission started. `(start, link)` is unique per entry
/// (a link starts at most one transmission per cycle) and defines the
/// canonical landing order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CalEntry {
    /// Cycle the transmission started.
    pub start: u64,
    /// Directed link being crossed.
    pub link: u32,
    /// The packet in flight.
    pub pkt: FlatPacket,
}

/// Bucketed event calendar (timing wheel) over landing cycles. A
/// transmission committed at cycle `c` lands within `[c, c + horizon - 1]`,
/// so a wheel of `horizon` slots indexed by `cycle % horizon` never holds
/// two distinct landing cycles in one slot. Scheduling is O(1);
/// draining sorts the slot into canonical `(start, link)` order — a
/// no-op for the full-fidelity engine (which schedules in that order
/// already) and the step that makes hybrid fidelity land identically.
#[derive(Debug)]
pub struct EventCalendar {
    slots: Vec<Vec<CalEntry>>,
    horizon: u64,
    scheduled: u64,
}

impl EventCalendar {
    /// A calendar able to schedule up to `horizon` (≥ 1 enforced)
    /// cycles ahead of the drain cursor.
    pub fn new(horizon: u64) -> Self {
        let horizon = horizon.max(1);
        EventCalendar {
            slots: (0..horizon).map(|_| Vec::new()).collect(),
            horizon,
            scheduled: 0,
        }
    }

    /// Schedules `pkt` (crossing `link`, transmission started at
    /// `start`) to land at cycle `land`, which must be less than
    /// `horizon` cycles past the most recently drained cycle.
    #[inline]
    pub fn schedule(&mut self, land: u64, start: u64, link: u32, pkt: FlatPacket) {
        self.slots[(land % self.horizon) as usize].push(CalEntry { start, link, pkt });
        self.scheduled += 1;
    }

    /// Moves the entries landing at `cycle` into `out` (cleared first),
    /// sorted by `(start, link)`. `out`'s previous buffer is recycled as
    /// the slot's storage.
    pub fn drain_into(&mut self, cycle: u64, out: &mut Vec<CalEntry>) {
        out.clear();
        std::mem::swap(out, &mut self.slots[(cycle % self.horizon) as usize]);
        out.sort_unstable_by_key(|e| (e.start, e.link));
        self.scheduled -= out.len() as u64;
    }

    /// Packets scheduled but not yet drained.
    pub fn in_flight(&self) -> u64 {
        self.scheduled
    }
}

/// The Bernoulli arrival process, evaluated sparsely. Arrivals over the
/// cycle-major index space `cycle * n_sources + source_rank` form a
/// Bernoulli(`rate`) sequence; instead of one RNG draw per index, the
/// sampler draws geometric gaps between hits, so a cycle's injection
/// phase visits exactly the sources that fire. Rate 0 never fires and
/// draws nothing; rate ≥ 1 fires every index and draws nothing for the
/// gaps.
#[derive(Debug)]
pub(crate) struct ArrivalSampler {
    next: u128,
    mode: ArrivalMode,
}

#[derive(Debug, Clone, Copy)]
enum ArrivalMode {
    Off,
    Dense,
    Geometric { ln_q: f64 },
}

impl ArrivalSampler {
    pub(crate) fn new(rate: f64, rng: &mut StdRng) -> Self {
        if rate <= 0.0 {
            return ArrivalSampler {
                next: u128::MAX,
                mode: ArrivalMode::Off,
            };
        }
        if rate >= 1.0 {
            return ArrivalSampler {
                next: 0,
                mode: ArrivalMode::Dense,
            };
        }
        let ln_q = (1.0 - rate).ln();
        let gap = Self::gap(ln_q, rng);
        ArrivalSampler {
            next: gap,
            mode: ArrivalMode::Geometric { ln_q },
        }
    }

    /// Indices skipped before the next hit: `floor(ln(1-U)/ln(1-p))`,
    /// the standard inversion of the geometric CDF. `1 - U ∈ (0, 1]`, so
    /// the logarithm is finite and ≤ 0; huge gaps (rate ≈ 0) clamp
    /// rather than overflow the cast.
    fn gap(ln_q: f64, rng: &mut StdRng) -> u128 {
        let u: f64 = rng.gen();
        let g = (1.0 - u).ln() / ln_q;
        if g >= 1.0e30 {
            1u128 << 100
        } else {
            g as u128
        }
    }

    /// Index of the next firing arrival.
    #[inline]
    pub(crate) fn next_index(&self) -> u128 {
        self.next
    }

    /// Consumes the current firing and positions on the next one.
    pub(crate) fn advance(&mut self, rng: &mut StdRng) {
        match self.mode {
            ArrivalMode::Off => {}
            ArrivalMode::Dense => self.next += 1,
            ArrivalMode::Geometric { ln_q } => {
                self.next = self.next + 1 + Self::gap(ln_q, rng);
            }
        }
    }
}

/// Deposits `pkt` onto `link`, becoming serviceable at cycle `ready`.
/// In hybrid fidelity an idle, uncontended link commits the transmission
/// analytically (calendar only); contention promotes the link to full
/// queueing, with a ghost entry standing in for a previously committed
/// packet whose service is still pending.
#[allow(clippy::too_many_arguments)]
fn deposit(
    pkt: FlatPacket,
    link: u32,
    ready: u64,
    last_cycle: u64,
    hybrid: bool,
    busy: u64,
    switching: Switching,
    store: &mut LinkStore,
    arena: &RouteArena,
    calendar: &mut EventCalendar,
    stats: &mut SimStats,
    pending: &mut Vec<u32>,
    ghosts_outstanding: &mut u64,
) {
    let st = store.state_mut(link);
    if hybrid && st.queue.is_empty() {
        debug_assert!(!st.in_active, "empty queue must be off the worklist");
        if st.last_pop1 > ready {
            // An analytically committed packet is still awaiting service
            // (it pops at last_pop1 - 1): promote to full queueing. The
            // ghost reproduces that pending pop — the queued engine
            // would have the real packet at the head here.
            let t_pend = st.last_pop1 - 1;
            st.busy_until = t_pend;
            st.queue.push_back(FlatPacket {
                id: 0,
                injected_at: 0,
                route: GHOST_ROUTE,
                hop: 0,
            });
            st.queue.push_back(pkt);
            *ghosts_outstanding += 1;
            stats.max_queue_len = stats.max_queue_len.max(st.queue.len() as u64);
            st.in_active = true;
            pending.push(link);
            return;
        }
        if st.busy_until <= ready && ready <= last_cycle {
            // Uncontended: the queued engine would pop this packet at
            // exactly `ready` — commit that transmission now.
            let rlen = arena.route_len(pkt.route);
            let final_hop = pkt.hop + 2 == rlen;
            let delay = match switching {
                Switching::StoreAndForward => busy,
                Switching::CutThrough => {
                    if final_hop {
                        busy
                    } else {
                        1
                    }
                }
            };
            st.busy_until = ready + busy;
            st.last_pop1 = ready + 1;
            calendar.schedule(ready + delay - 1, ready, link, pkt);
            stats.link_transmissions += 1;
            stats.max_queue_len = stats.max_queue_len.max(1);
            return;
        }
        // Link busy from an already-serviced transmission (or the run
        // ends before `ready`): fall through to plain queueing.
    }
    st.queue.push_back(pkt);
    stats.max_queue_len = stats.max_queue_len.max(st.queue.len() as u64);
    if !st.in_active {
        st.in_active = true;
        pending.push(link);
    }
}

/// One flat simulation run. Shared by [`crate::Simulator::run`] and
/// [`crate::Simulator::run_traced`] (the trace differs only in whether
/// delivery records are collected), and replicated with reseeded
/// configurations by [`crate::Simulator::run_many`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_flat<N: Network + ?Sized>(
    net: &N,
    pattern: Pattern,
    strategy: Strategy,
    fault_set: &HashSet<NodeId>,
    fault_events: &[FaultEvent],
    route_cache: CacheConfig,
    cfg: SimConfig,
    engine: EngineConfig,
    warm: Option<&WarmRoutes>,
    mut trace: Option<&mut Vec<DeliveryRecord>>,
) -> SimStats {
    let busy = cfg.packet_len.max(1);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n_nodes = 1usize << net.address_bits();
    // Hybrid fidelity is exact only while nothing observes queue
    // residency mid-service: backpressure reads occupancy and sampling
    // reads queue depth, so either forces full fidelity.
    let hybrid = engine.fidelity == Fidelity::Hybrid
        && cfg.queue_capacity.is_none()
        && cfg.sample_every == 0;
    let total_cycles = cfg.cycles + cfg.drain_cycles;
    let last_cycle = total_cycles.saturating_sub(1);
    let mut stats = SimStats {
        nodes: net.num_addresses() as u64,
        cycles: cfg.cycles,
        ..Default::default()
    };

    let table = LinkTable::build(net);
    let n_links = table.num_links();
    // A warmed run layers a private overlay over the shared frozen
    // arena: hot routes resolve through the shared index, only routes
    // the warmup missed are stored per run.
    let mut arena = match warm {
        Some(w) => RouteArena::with_base(w.arena.clone()),
        None => RouteArena::new(),
    };
    let mut store = LinkStore::new(n_links, engine.store);
    // Non-empty-queue links, visited in ascending id order: `active` is
    // sorted; links becoming non-empty are appended to `pending`
    // (guarded by `LinkState::in_active`) and merged in before each
    // transmission phase.
    let mut active: Vec<u32> = Vec::new();
    let mut pending: Vec<u32> = Vec::new();
    let mut merge_buf: Vec<u32> = Vec::new();
    // An analytic landing can trail the drain cursor by up to `busy`
    // cycles (phase-3 deposits commit at `cycle + 1`).
    let mut calendar = EventCalendar::new(busy + 1);
    let mut landed: Vec<CalEntry> = Vec::new();
    let mut route_scratch = RouteScratch::with_route_cache(route_cache);
    let mut faults = FaultFlags::from_set(fault_set, n_nodes);
    // Timed fault events switch the run into dynamic mode: the arrival
    // index space covers *all* addresses (so the sampler's index stream
    // is invariant under churn) and arrivals at currently-faulty
    // sources are suppressed inside the attempt block. With no events
    // the static fast path below is untouched — byte-identical to every
    // recorded golden.
    let dynamic = !fault_events.is_empty();
    let mut events: Vec<FaultEvent> = fault_events.to_vec();
    events.sort_by_key(|e| e.cycle); // stable: same-cycle events keep order
    let mut next_event = 0usize;
    // Injection order is cycle-major over the healthy sources in
    // ascending address order; with no faults ranks are addresses.
    let healthy: Option<Vec<u32>> = (!dynamic && !faults.is_empty()).then(|| {
        (0..n_nodes as u32)
            .filter(|&raw| !faults.is_faulty(NodeId::from_raw(raw as u128)))
            .collect()
    });
    let n_healthy = healthy.as_ref().map_or(n_nodes, Vec::len);
    let mut arrivals = ArrivalSampler::new(cfg.inject_rate, &mut rng);
    let mut route_buf: Vec<NodeId> = Vec::new();
    let mut idx_buf: Vec<u32> = Vec::new();
    let mut next_id = 0u64;
    let mut ghosts_outstanding = 0u64;

    for cycle in 0..total_cycles {
        // Phase 0: apply fault events due at the start of this cycle.
        while next_event < events.len() && events[next_event].cycle <= cycle {
            let ev = events[next_event];
            next_event += 1;
            faults.set(ev.node, ev.action == FaultAction::Fail);
        }

        // Phase 1: injection (disabled during drain). Only the sources
        // whose arrival fires this cycle are visited.
        if cycle < cfg.cycles && n_healthy > 0 {
            let base = cycle as u128 * n_healthy as u128;
            let limit = base + n_healthy as u128;
            while arrivals.next_index() < limit {
                let rank = (arrivals.next_index() - base) as usize;
                let raw = healthy.as_ref().map_or(rank as u32, |h| h[rank]);
                let src = NodeId::from_raw(raw as u128);
                // The labelled block gives every rejected attempt a
                // single exit that still advances the sampler.
                'attempt: {
                    if dynamic && faults.is_faulty(src) {
                        // The source is down right now: its arrival is
                        // suppressed (no RNG draws beyond the sampler
                        // advance, so the arrival stream stays invariant
                        // under churn).
                        break 'attempt;
                    }
                    let Some(dst) = pattern.destination(net, src, &mut rng) else {
                        stats.self_addressed += 1;
                        break 'attempt;
                    };
                    if faults.is_faulty(dst) {
                        stats.dropped_dst_faulty += 1;
                        break 'attempt;
                    }
                    if !strategy.select_into(
                        net,
                        src,
                        dst,
                        &faults,
                        &mut rng,
                        &mut route_scratch,
                        &mut route_buf,
                    ) {
                        stats.dropped_unroutable += 1;
                        break 'attempt;
                    }
                    idx_buf.clear();
                    idx_buf.extend(route_buf.iter().map(|v| v.raw() as u32));
                    let rid = arena.intern(&idx_buf, &table);
                    // Ids are consumed even by backpressure drops, so
                    // the numbering is capacity-invariant.
                    let id = next_id;
                    next_id += 1;
                    let link = arena.route_links(rid)[0];
                    if cfg
                        .queue_capacity
                        .is_some_and(|cap| store.state_mut(link).queue.len() as u64 >= cap)
                    {
                        stats.dropped_backpressure += 1;
                        break 'attempt;
                    }
                    stats.injected += 1;
                    deposit(
                        FlatPacket {
                            id,
                            injected_at: cycle,
                            route: rid,
                            hop: 0,
                        },
                        link,
                        cycle,
                        last_cycle,
                        hybrid,
                        busy,
                        cfg.switching,
                        &mut store,
                        &arena,
                        &mut calendar,
                        &mut stats,
                        &mut pending,
                        &mut ghosts_outstanding,
                    );
                }
                arrivals.advance(&mut rng);
            }
        }

        // Merge newly non-empty links into the sorted active list.
        // `pending` and `active` are disjoint (the `in_active` guard),
        // so a plain two-way merge keeps the list sorted and duplicate-
        // free.
        if !pending.is_empty() {
            pending.sort_unstable();
            merge_buf.clear();
            merge_buf.reserve(active.len() + pending.len());
            let (mut i, mut j) = (0, 0);
            while i < active.len() && j < pending.len() {
                if active[i] < pending[j] {
                    merge_buf.push(active[i]);
                    i += 1;
                } else {
                    merge_buf.push(pending[j]);
                    j += 1;
                }
            }
            merge_buf.extend_from_slice(&active[i..]);
            merge_buf.extend_from_slice(&pending[j..]);
            std::mem::swap(&mut active, &mut merge_buf);
            pending.clear();
        }

        // Phase 2: start transmissions on every idle link with a queued
        // packet, in link-id order. Links whose queue empties are
        // compacted out of the active list in place.
        if cfg.queue_capacity.is_some() {
            for &l in &active {
                let st = store.state_mut(l);
                st.occ = st.queue.len() as u64;
                st.occ_cycle = cycle;
            }
        }
        let mut started_this_cycle = 0u64;
        let mut w = 0usize;
        for i in 0..active.len() {
            let l = active[i];
            let head = {
                let st = store.state_mut(l);
                if st.busy_until > cycle {
                    None
                } else {
                    Some(*st.queue.front().expect("active link has a packet"))
                }
            };
            let Some(head) = head else {
                active[w] = l;
                w += 1;
                continue;
            };
            if head.route == GHOST_ROUTE {
                // The pending analytic transmission starts now; its
                // packet is already on the calendar.
                let st = store.state_mut(l);
                st.queue.pop_front();
                st.busy_until = cycle + busy;
                ghosts_outstanding -= 1;
                debug_assert!(
                    !st.queue.is_empty(),
                    "a ghost always has a real packet behind it"
                );
                active[w] = l;
                w += 1;
                continue;
            }
            if let Some(cap) = cfg.queue_capacity {
                // Peek: where would the head go next? The final hop
                // leaves the network, so only intermediate hops check.
                if head.hop + 2 < arena.route_len(head.route) {
                    let next_link = arena.route_links(head.route)[head.hop as usize + 1];
                    if store.occupancy_at(next_link, cycle) >= cap {
                        stats.backpressure_stalls += 1;
                        active[w] = l;
                        w += 1;
                        continue;
                    }
                }
            }
            let final_hop = head.hop + 2 == arena.route_len(head.route);
            let delay = match cfg.switching {
                Switching::StoreAndForward => busy,
                Switching::CutThrough => {
                    if final_hop {
                        busy
                    } else {
                        1
                    }
                }
            };
            let st = store.state_mut(l);
            let pkt = st.queue.pop_front().expect("active link has a packet");
            st.busy_until = cycle + busy;
            st.last_pop1 = cycle + 1;
            let emptied = st.queue.is_empty();
            if emptied {
                st.in_active = false;
            }
            calendar.schedule(cycle + delay - 1, cycle, l, pkt);
            started_this_cycle += 1;
            if !emptied {
                active[w] = l;
                w += 1;
            }
        }
        active.truncate(w);
        stats.link_transmissions += started_this_cycle;

        // Phase 3: land packets whose hop completes this cycle, in
        // canonical (start, link) order.
        calendar.drain_into(cycle, &mut landed);
        for entry in landed.drain(..) {
            let mut pkt = entry.pkt;
            pkt.hop += 1;
            let rlen = arena.route_len(pkt.route);
            if pkt.hop + 1 == rlen {
                stats.delivered += 1;
                let lat = cycle + 1 - pkt.injected_at;
                stats.latency_sum += lat;
                stats.latency_max = stats.latency_max.max(lat);
                stats.latency_hist.record(lat);
                stats.hops_sum += (rlen - 1) as u64;
                if let Some(records) = trace.as_deref_mut() {
                    records.push(DeliveryRecord {
                        id: pkt.id,
                        injected_at: pkt.injected_at,
                        delivered_at: cycle + 1,
                        route: arena
                            .route_nodes(pkt.route)
                            .iter()
                            .map(|&x| NodeId::from_raw(x as u128))
                            .collect(),
                    });
                }
            } else {
                let link = arena.route_links(pkt.route)[pkt.hop as usize];
                deposit(
                    pkt,
                    link,
                    cycle + 1,
                    last_cycle,
                    hybrid,
                    busy,
                    cfg.switching,
                    &mut store,
                    &arena,
                    &mut calendar,
                    &mut stats,
                    &mut pending,
                    &mut ghosts_outstanding,
                );
            }
        }

        // Time-series sampling: end-of-cycle snapshot. active ∪ pending
        // covers every non-empty queue (phase 3 lands into pending).
        // Sampling forces full fidelity, so queue depths are exact.
        if cfg.sample_every > 0 && cycle % cfg.sample_every == 0 {
            let mut queued_packets = 0u64;
            let mut max_queue_len = 0u64;
            for &l in active.iter().chain(pending.iter()) {
                let len = store.peek(l).map_or(0, |st| st.queue.len() as u64);
                queued_packets += len;
                max_queue_len = max_queue_len.max(len);
            }
            stats.samples.push(CycleSample {
                cycle,
                queued_packets,
                max_queue_len,
                transmissions: started_this_cycle,
            });
        }

        // Drain-phase early exit: with injection over, no queued packet
        // and nothing on the calendar, the remaining cycles are no-ops.
        // Skipping them is observationally invisible — unless sampling
        // is on, which would record the (all-zero) tail samples.
        if cycle >= cfg.cycles
            && cfg.sample_every == 0
            && active.is_empty()
            && pending.is_empty()
            && calendar.in_flight() == 0
        {
            break;
        }
    }

    // Ghosts pop strictly before the loop can end (their service cycle
    // is within the run and their link stays active until then), so the
    // correction below is defensive.
    debug_assert_eq!(ghosts_outstanding, 0, "ghost survived the run");
    stats.in_flight_at_end = active
        .iter()
        .chain(pending.iter())
        .map(|&l| store.peek(l).map_or(0, |st| st.queue.len() as u64))
        .sum::<u64>()
        + calendar.in_flight()
        - ghosts_outstanding;
    stats.peak_links_materialised = store.materialised();
    stats.links_total = n_links as u64;
    let routing = route_scratch.construction_metrics();
    stats.route_constructions = routing.construction.queries;
    stats.route_family_hits = routing.construction.family_hits;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhc_core::Hhc;

    fn table() -> (Hhc, LinkTable) {
        let h = Hhc::new(2).unwrap();
        let t = LinkTable::build(&h);
        (h, t)
    }

    #[test]
    fn arena_interns_and_dedups() {
        let (h, t) = table();
        let mut arena = RouteArena::new();
        assert!(arena.is_empty());
        let route: Vec<u32> = h
            .route(NodeId::from_raw(0), NodeId::from_raw(45))
            .unwrap()
            .iter()
            .map(|v| v.raw() as u32)
            .collect();
        let a = arena.intern(&route, &t);
        let b = arena.intern(&route, &t);
        assert_eq!(a, b);
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.route_nodes(a), &route[..]);
        assert_eq!(arena.route_len(a) as usize, route.len());
        let links = arena.route_links(a);
        assert_eq!(links.len(), route.len() - 1);
        for (i, w) in route.windows(2).enumerate() {
            assert_eq!(links[i], t.link_id(w[0], w[1]));
        }
        // A second, different route gets its own id and slices.
        let other: Vec<u32> = h
            .route(NodeId::from_raw(45), NodeId::from_raw(0))
            .unwrap()
            .iter()
            .map(|v| v.raw() as u32)
            .collect();
        let c = arena.intern(&other, &t);
        assert_ne!(a, c);
        assert_eq!(arena.route_nodes(c), &other[..]);
        assert_eq!(arena.route_links(c).len(), other.len() - 1);
        assert_eq!(arena.len(), 2);
    }

    #[test]
    fn arena_shards_spread_and_stay_consistent() {
        let (h, t) = table();
        let mut arena = RouteArena::new();
        let mut routes = Vec::new();
        for dst in 1u32..40 {
            if let Ok(r) = h.route(NodeId::from_raw(0), NodeId::from_raw(dst as u128)) {
                routes.push(r.iter().map(|v| v.raw() as u32).collect::<Vec<u32>>());
            }
        }
        let ids: Vec<u32> = routes.iter().map(|r| arena.intern(r, &t)).collect();
        assert_eq!(arena.len(), routes.len());
        let shards: std::collections::HashSet<u32> = ids
            .iter()
            .map(|id| id & (ARENA_SHARDS as u32 - 1))
            .collect();
        assert!(shards.len() > 1, "all routes landed in one shard");
        for (r, &id) in routes.iter().zip(&ids) {
            assert_eq!(arena.route_nodes(id), &r[..]);
            assert_eq!(arena.route_len(id) as usize, r.len());
            let links = arena.route_links(id);
            for (i, w) in r.windows(2).enumerate() {
                assert_eq!(links[i], t.link_id(w[0], w[1]));
            }
        }
    }

    #[test]
    fn arena_overlay_reads_base_and_extends_past_it() {
        let (h, t) = table();
        let as_raw = |u: u128, v: u128| -> Vec<u32> {
            h.route(NodeId::from_raw(u), NodeId::from_raw(v))
                .unwrap()
                .iter()
                .map(|x| x.raw() as u32)
                .collect()
        };
        // Warm a base with a spread of routes, then freeze it.
        let warmed: Vec<Vec<u32>> = (1u128..30).map(|dst| as_raw(0, dst)).collect();
        let mut base = RouteArena::new();
        let base_ids: Vec<u32> = warmed.iter().map(|r| base.intern(r, &t)).collect();
        let base_len = base.len();
        let base = Arc::new(base);

        let mut overlay = RouteArena::with_base(base.clone());
        assert_eq!(overlay.len(), base_len, "empty overlay counts the base");
        // Every warmed route resolves to the base's id, stores nothing.
        for (r, &id) in warmed.iter().zip(&base_ids) {
            assert_eq!(overlay.intern(r, &t), id);
            assert_eq!(overlay.route_nodes(id), &r[..]);
            assert_eq!(overlay.route_len(id) as usize, r.len());
            let links = overlay.route_links(id);
            for (i, w) in r.windows(2).enumerate() {
                assert_eq!(links[i], t.link_id(w[0], w[1]));
            }
        }
        assert_eq!(overlay.len(), base_len, "base hits must not store");

        // Routes the base lacks land in the overlay with fresh ids that
        // never collide with base ids, and all accessors work across the
        // base/overlay split.
        let misses: Vec<Vec<u32>> = (31u128..60).map(|dst| as_raw(63, dst)).collect();
        let miss_ids: Vec<u32> = misses.iter().map(|r| overlay.intern(r, &t)).collect();
        assert_eq!(overlay.len(), base_len + misses.len());
        let mut seen: HashSet<u32> = base_ids.iter().copied().collect();
        for (r, &id) in misses.iter().zip(&miss_ids) {
            assert!(seen.insert(id), "overlay id collided");
            assert_eq!(overlay.intern(r, &t), id, "re-intern must dedup");
            assert_eq!(overlay.route_nodes(id), &r[..]);
            assert_eq!(overlay.route_len(id) as usize, r.len());
            let links = overlay.route_links(id);
            for (i, w) in r.windows(2).enumerate() {
                assert_eq!(links[i], t.link_id(w[0], w[1]));
            }
        }
        // The frozen base itself is untouched.
        assert_eq!(base.len(), base_len);

        // A second overlay on the same base sees the same base ids but
        // none of the first overlay's private routes.
        let mut overlay2 = RouteArena::with_base(base.clone());
        assert_eq!(overlay2.intern(&warmed[0], &t), base_ids[0]);
        assert_eq!(overlay2.len(), base_len);
    }

    #[test]
    #[should_panic(expected = "overlays do not stack")]
    fn arena_overlay_rejects_stacking() {
        let base = Arc::new(RouteArena::new());
        let overlay = RouteArena::with_base(base);
        RouteArena::with_base(Arc::new(overlay));
    }

    fn pkt(id: u64) -> FlatPacket {
        FlatPacket {
            id,
            injected_at: 0,
            route: 0,
            hop: 0,
        }
    }

    #[test]
    fn calendar_slots_by_cycle_and_sorts_canonically() {
        let mut cal = EventCalendar::new(4);
        // Same landing cycle, scheduled out of canonical order.
        cal.schedule(10, 9, 7, pkt(1));
        cal.schedule(13, 13, 0, pkt(2));
        cal.schedule(10, 8, 3, pkt(3));
        cal.schedule(10, 9, 2, pkt(4));
        assert_eq!(cal.in_flight(), 4);
        let mut out = Vec::new();
        cal.drain_into(10, &mut out);
        // Canonical (start, link) order, not insertion order.
        assert_eq!(
            out.iter().map(|e| e.pkt.id).collect::<Vec<_>>(),
            vec![3, 4, 1]
        );
        assert_eq!(cal.in_flight(), 1);
        cal.drain_into(11, &mut out);
        assert!(out.is_empty());
        cal.drain_into(13, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(cal.in_flight(), 0);
    }

    #[test]
    fn zero_horizon_clamps_to_one() {
        let mut cal = EventCalendar::new(0);
        cal.schedule(7, 7, 0, pkt(0));
        let mut out = Vec::new();
        cal.drain_into(7, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn lazy_store_materialises_only_touched_links() {
        let mut store = LinkStore::new(10_000, LinkStoreMode::Lazy);
        assert_eq!(store.materialised(), 0);
        assert!(store.peek(1234).is_none());
        store.state_mut(1234).busy_until = 7;
        store.state_mut(9_999).busy_until = 9;
        store.state_mut(1234).last_pop1 = 3; // re-touch: no new slot
        assert_eq!(store.materialised(), 2);
        assert_eq!(store.peek(1234).unwrap().busy_until, 7);
        assert_eq!(store.peek(9_999).unwrap().busy_until, 9);
        assert!(store.peek(0).is_none());
        assert!(store.peek(1235).is_none(), "same page, different link");
    }

    #[test]
    fn eager_store_materialises_everything_up_front() {
        let store = LinkStore::new(48, LinkStoreMode::Eager);
        assert_eq!(store.materialised(), 48);
        assert!(store.peek(47).is_some());
    }

    #[test]
    fn sampler_rate_one_fires_every_index_and_zero_never() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut dense = ArrivalSampler::new(1.0, &mut rng);
        for i in 0..100u128 {
            assert_eq!(dense.next_index(), i);
            dense.advance(&mut rng);
        }
        let mut off = ArrivalSampler::new(0.0, &mut rng);
        assert_eq!(off.next_index(), u128::MAX);
        off.advance(&mut rng);
        assert_eq!(off.next_index(), u128::MAX);
    }

    #[test]
    fn sampler_hit_rate_matches_bernoulli_rate() {
        let mut rng = StdRng::seed_from_u64(42);
        let rate = 0.05;
        let mut s = ArrivalSampler::new(rate, &mut rng);
        let horizon: u128 = 400_000;
        let mut hits = 0u64;
        while s.next_index() < horizon {
            hits += 1;
            s.advance(&mut rng);
        }
        let expect = rate * horizon as f64;
        let sigma = (horizon as f64 * rate * (1.0 - rate)).sqrt();
        assert!(
            (hits as f64 - expect).abs() < 5.0 * sigma,
            "hits {hits} vs expected {expect}"
        );
    }
}
