//! Packets: source-routed, with injection timestamps for latency stats.
//!
//! The engine's packet is [`FlatPacket`]: a `Copy` struct that carries
//! only an id into the run's [`RouteArena`](crate::flat::RouteArena)
//! plus a hop index, so moving a packet between queues never allocates.
//! Delivery traces ([`crate::DeliveryRecord`]) expand the interned route
//! back into nodes only for delivered packets.

/// A packet in the flat simulation core. Routes are interned in the
/// run's [`RouteArena`](crate::flat::RouteArena); the packet carries the
/// arena id and its current hop index (node position on the route).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlatPacket {
    /// Unique id (injection order).
    pub id: u64,
    /// Cycle the packet entered the network.
    pub injected_at: u64,
    /// Arena id of the packet's (interned) route.
    pub route: u32,
    /// Index into the route's node sequence of the current position.
    pub hop: u32,
}
