//! Packets: source-routed, with injection timestamps for latency stats.
//!
//! Two representations exist. [`Packet`] owns its route as a
//! `Vec<NodeId>` and is used by the legacy reference engine and by
//! delivery traces. [`FlatPacket`] is the flat-core representation: a
//! `Copy` struct that carries only an id into the run's
//! [`RouteArena`](crate::flat::RouteArena) plus a hop index, so moving a
//! packet between queues never allocates.

use hhc_core::NodeId;

/// A packet in the flat simulation core. Routes are interned in the
/// run's [`RouteArena`](crate::flat::RouteArena); the packet carries the
/// arena id and its current hop index (node position on the route).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlatPacket {
    /// Unique id (injection order).
    pub id: u64,
    /// Cycle the packet entered the network.
    pub injected_at: u64,
    /// Arena id of the packet's (interned) route.
    pub route: u32,
    /// Index into the route's node sequence of the current position.
    pub hop: u32,
}

/// A packet in flight. The route is fixed at injection (source routing);
/// `hop` indexes the node the packet currently sits at.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Unique id (injection order).
    pub id: u64,
    /// Cycle the packet entered the network.
    pub injected_at: u64,
    /// Full node sequence from source to destination, inclusive.
    pub route: Vec<NodeId>,
    /// Index into `route` of the current position.
    pub hop: usize,
}

impl Packet {
    /// Creates a packet at the start of its route.
    pub fn new(id: u64, injected_at: u64, route: Vec<NodeId>) -> Self {
        assert!(route.len() >= 2, "a packet needs at least one hop");
        Packet {
            id,
            injected_at,
            route,
            hop: 0,
        }
    }

    /// Node the packet currently occupies.
    #[inline]
    pub fn current(&self) -> NodeId {
        self.route[self.hop]
    }

    /// Next node on the route (`None` at the destination).
    #[inline]
    pub fn next(&self) -> Option<NodeId> {
        self.route.get(self.hop + 1).copied()
    }

    /// Advances one hop; returns `true` if the destination was reached.
    pub fn advance(&mut self) -> bool {
        debug_assert!(self.hop + 1 < self.route.len());
        self.hop += 1;
        self.hop + 1 == self.route.len()
    }

    /// Source node.
    #[inline]
    pub fn src(&self) -> NodeId {
        self.route[0]
    }

    /// Destination node.
    #[inline]
    pub fn dst(&self) -> NodeId {
        *self.route.last().expect("non-empty route")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(x: u128) -> NodeId {
        NodeId::from_raw(x)
    }

    #[test]
    fn lifecycle() {
        let mut p = Packet::new(1, 10, vec![nid(0), nid(1), nid(3)]);
        assert_eq!(p.src(), nid(0));
        assert_eq!(p.dst(), nid(3));
        assert_eq!(p.current(), nid(0));
        assert_eq!(p.next(), Some(nid(1)));
        assert!(!p.advance());
        assert_eq!(p.current(), nid(1));
        assert!(p.advance());
        assert_eq!(p.current(), nid(3));
        assert_eq!(p.next(), None);
    }

    #[test]
    #[should_panic(expected = "at least one hop")]
    fn rejects_trivial_route() {
        Packet::new(0, 0, vec![nid(5)]);
    }
}
